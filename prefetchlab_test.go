package prefetchlab

import (
	"testing"

	"prefetchlab/internal/pipeline"
)

// streamingProgram builds a two-pass stream over an 8 MB array — the
// simplest prefetchable workload.
func streamingProgram() *Program {
	b := NewProgramBuilder("stream")
	arena := b.Arena(8 << 20)
	r, v := b.Reg(), b.Reg()
	b.Loop(2, func() {
		b.MovI(r, int64(arena))
		b.Loop(8<<20/64, func() {
			b.Load(v, r, 0)
			b.AddI(r, 64)
			b.Compute(30)
		})
	})
	return b.MustProgram()
}

func TestOptimizeSpeedsUpStream(t *testing.T) {
	prog := streamingProgram()
	mach := AMDPhenomII()
	before, err := Simulate(prog, mach, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, plan, err := Optimize(prog, mach)
	if err != nil {
		t.Fatal(err)
	}
	if plan.InsertedCount() == 0 {
		t.Fatal("no prefetches planned for a pure stream")
	}
	after, err := Simulate(fast, mach, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cycles >= before.Cycles {
		t.Fatalf("no speedup: %d → %d cycles", before.Cycles, after.Cycles)
	}
	if after.Stats.SWPrefIssued == 0 {
		t.Fatal("rewritten program executed no prefetches")
	}
}

func TestProfileAndAnalyze(t *testing.T) {
	prog := streamingProgram()
	prof, err := NewProfile(prog, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Samples.TotalRefs == 0 {
		t.Fatal("no references sampled")
	}
	plan, err := prof.Analyze(IntelSandyBridge(), AnalyzeOptions{EnableNT: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Loads) == 0 {
		t.Fatal("no loads analyzed")
	}
}

func TestCalibrate(t *testing.T) {
	prof, err := NewProfile(streamingProgram(), DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	o, err := prof.Calibrate(AMDPhenomII())
	if err != nil {
		t.Fatal(err)
	}
	if o.Delta <= 0 || o.MissLat <= 0 {
		t.Fatalf("calibration = %+v", o)
	}
}

func TestWorkloadAccess(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 12 {
		t.Fatalf("got %d workloads", len(names))
	}
	p, err := Workload("libquantum", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "libquantum" {
		t.Fatalf("name = %q", p.Name)
	}
	if _, err := Workload("bogus", 1); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestSimulateMixValidation(t *testing.T) {
	if _, err := SimulateMix(nil, AMDPhenomII(), SimOptions{}); err == nil {
		t.Fatal("empty mix should fail")
	}
}

func TestSimulateMixRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("mix simulation is slow")
	}
	a, err := Workload("libquantum", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := Workload("omnetpp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SimulateMix([]*Program{a, bn}, AMDPhenomII(), SimOptions{HWPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Cycles <= 0 || rs[1].Cycles <= 0 {
		t.Fatalf("results = %+v", rs)
	}
}

func TestPolicyReexports(t *testing.T) {
	// The internal policy enumeration backs the experiment drivers; the
	// facade's Simulate options must agree with it on the baseline
	// convention (hardware prefetching off).
	if pipeline.Baseline.UsesHW() {
		t.Fatal("baseline must not use hardware prefetching")
	}
}
