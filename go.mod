module prefetchlab

go 1.22
