// Pointer chase: the analysis identifies the chase load as delinquent
// (its miss ratio is high at every cache size) but *declines to prefetch
// it* — there is no dominant stride, so a prefetch could not be scheduled
// (§VI). This is the resource-efficiency half of the paper: unlike the
// stride-centric baseline or an aggressive hardware prefetcher, the method
// issues nothing it cannot make useful.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prefetchlab"
)

func main() {
	b := prefetchlab.NewProgramBuilder("pointerchase")
	// A 4 MB randomized cyclic list of cache-line-sized nodes.
	region := b.Backed("list", 4<<20)
	nodes := region.Words() / 8
	perm := rand.New(rand.NewSource(42)).Perm(int(nodes))
	// Sattolo-style: link node i to node perm[i] (a permutation keeps every
	// node reachable; good enough for a demonstration).
	for i := uint64(0); i < nodes; i++ {
		region.SetWord(i*8, int64(region.Base+uint64(perm[i])*64))
	}
	p := b.Reg()
	b.MovI(p, int64(region.Base))
	b.Loop(400000, func() {
		b.Load(p, p, 0) // p = *p: every step depends on the previous one
		b.Compute(6)
	})
	prog := b.MustProgram()

	mach := prefetchlab.IntelSandyBridge()
	prof, err := prefetchlab.NewProfile(prog, prefetchlab.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	opts, err := prof.Calibrate(mach)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := prof.Analyze(mach, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %s\n", mach.Name)
	fmt.Printf("plan:    %s\n", plan)
	for _, li := range plan.Loads {
		fmt.Printf("  load pc=%d  L1 mr %.2f  LLC mr %.2f  stride samples %d  decision: %s\n",
			li.PC, li.MRL1, li.MRLLC, li.Strides, li.Decision)
	}
	if plan.InsertedCount() == 0 {
		fmt.Println("→ correctly declined: pointer chasing has no regular stride to prefetch")
	}

	// Hardware prefetching cannot do much here either.
	base, _ := prefetchlab.Simulate(prog, mach, prefetchlab.SimOptions{})
	hw, _ := prefetchlab.Simulate(prog, mach, prefetchlab.SimOptions{HWPrefetch: true})
	fmt.Printf("baseline %d cycles, hardware prefetching %d cycles (%+.1f%%)\n",
		base.Cycles, hw.Cycles, (float64(base.Cycles)/float64(hw.Cycles)-1)*100)
}
