// Cross-architecture optimization: the paper optimizes for both target
// processors *from a single input profile* (§VII) — the sampling output is
// architecture-independent, and only the analysis is parameterized by the
// target's cache sizes and latencies. This example profiles mcf once and
// derives (different) plans for the AMD and Intel models, then validates
// each on its target.
package main

import (
	"fmt"
	"log"

	"prefetchlab"
)

func main() {
	prog, err := prefetchlab.Workload("mcf", 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// One sampling pass — the only profiling work.
	prof, err := prefetchlab.NewProfile(prog, prefetchlab.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s once: %d refs, %d reuse samples, %d stride samples\n",
		prog.Name, prof.Samples.TotalRefs, len(prof.Samples.Reuse), len(prof.Samples.Strides))

	for _, mach := range prefetchlab.Machines() {
		// Per-target calibration is a cheap baseline run (performance
		// counters on real hardware); the samples are reused as-is.
		opts, err := prof.Calibrate(mach)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := prof.Analyze(mach, opts)
		if err != nil {
			log.Fatal(err)
		}
		fast, err := plan.Apply(prog)
		if err != nil {
			log.Fatal(err)
		}
		base, err := prefetchlab.Simulate(prog, mach, prefetchlab.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := prefetchlab.Simulate(fast, mach, prefetchlab.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (L1 %dk / L2 %dk / LLC %dM):\n", mach.Name,
			mach.L1.Size>>10, mach.L2.Size>>10, mach.LLC.Size>>20)
		fmt.Printf("  %s\n", plan)
		for _, li := range plan.Loads {
			if li.Inserted() {
				fmt.Printf("    pc=%d stride=%d distance=%d nta=%v\n", li.PC, li.Stride, li.Distance, li.NTA)
			}
		}
		fmt.Printf("  speedup: %+.1f%%\n", (float64(base.Cycles)/float64(opt.Cycles)-1)*100)
	}
}
