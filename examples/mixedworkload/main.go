// Mixed workload: four of the paper's benchmarks share a four-core socket.
// Resource-efficient software prefetching conserves the shared LLC and
// off-chip bandwidth, so its throughput advantage over hardware prefetching
// appears exactly where the paper claims it: under full-system contention
// (§VII-C).
package main

import (
	"fmt"
	"log"

	"prefetchlab"
)

const scale = 0.35 // run length multiplier; raise for longer experiments

func main() {
	mach := prefetchlab.AMDPhenomII()
	names := []string{"libquantum", "mcf", "lbm", "cigar"}

	// Build the original programs and, per app, the SW+NT optimized ones.
	var base, opt []*prefetchlab.Program
	for _, n := range names {
		p, err := prefetchlab.Workload(n, scale)
		if err != nil {
			log.Fatal(err)
		}
		base = append(base, p)
		fast, _, err := prefetchlab.Optimize(p, mach)
		if err != nil {
			log.Fatal(err)
		}
		opt = append(opt, fast)
	}

	run := func(progs []*prefetchlab.Program, hw bool) []prefetchlab.Result {
		rs, err := prefetchlab.SimulateMix(progs, mach, prefetchlab.SimOptions{HWPrefetch: hw})
		if err != nil {
			log.Fatal(err)
		}
		return rs
	}
	fmt.Printf("machine: %s | mix: %v\n", mach.Name, names)
	baseline := run(base, false)
	hw := run(base, true)
	sw := run(opt, false)

	traffic := func(rs []prefetchlab.Result) float64 {
		var t int64
		for _, r := range rs {
			t += r.Stats.TotalTraffic()
		}
		return float64(t) / 1e6
	}
	ws := func(rs []prefetchlab.Result) float64 {
		var s float64
		for i := range rs {
			s += float64(baseline[i].Cycles) / float64(rs[i].Cycles)
		}
		return s / float64(len(rs))
	}

	fmt.Printf("%-16s %-12s %10s %10s\n", "policy", "app", "cycles", "restarts")
	for label, rs := range map[string][]prefetchlab.Result{
		"baseline": baseline, "hardware": hw, "software+NT": sw,
	} {
		for i, r := range rs {
			fmt.Printf("%-16s %-12s %10d %10d\n", label, names[i], r.Cycles, r.Restarts)
		}
	}
	fmt.Printf("\nweighted speedup: hardware %+.1f%%, software+NT %+.1f%%\n",
		(ws(hw)-1)*100, (ws(sw)-1)*100)
	fmt.Printf("off-chip traffic: baseline %.1f MB, hardware %.1f MB, software+NT %.1f MB\n",
		traffic(baseline), traffic(hw), traffic(sw))

	// Re-run the software mix on a fresh hierarchy to show the per-level
	// breakdown: where the traffic goes and what the prefetches achieved.
	_, summary, err := prefetchlab.SimulateMixVerbose(opt, mach, prefetchlab.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared memory system under software+NT:\n%s", summary)
}
