// Quickstart: build a small streaming kernel, run the paper's full pipeline
// (sample → model → MDDLI → stride analysis → prefetch insertion) against
// the AMD Phenom II model, and compare it with the original program and
// with hardware prefetching.
package main

import (
	"fmt"
	"log"

	"prefetchlab"
)

func main() {
	// A two-pass read-modify-write sweep over a 16 MB array — bigger than
	// the 6 MB LLC, so every line comes from DRAM.
	b := prefetchlab.NewProgramBuilder("quickstart")
	arena := b.Arena(16 << 20)
	r, v := b.Reg(), b.Reg()
	b.Loop(2, func() {
		b.MovI(r, int64(arena))
		b.Loop(16<<20/64, func() {
			b.Load(v, r, 0)
			b.Compute(40) // the work that consumes each line
			b.Store(v, r, 8)
			b.AddI(r, 64)
		})
	})
	prog := b.MustProgram()

	mach := prefetchlab.AMDPhenomII()
	baseline, err := prefetchlab.Simulate(prog, mach, prefetchlab.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hw, err := prefetchlab.Simulate(prog, mach, prefetchlab.SimOptions{HWPrefetch: true})
	if err != nil {
		log.Fatal(err)
	}

	fast, plan, err := prefetchlab.Optimize(prog, mach)
	if err != nil {
		log.Fatal(err)
	}
	sw, swSummary, err := prefetchlab.SimulateVerbose(fast, mach, prefetchlab.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %s\n", mach.Name)
	fmt.Printf("plan:    %s\n", plan)
	for _, li := range plan.Loads {
		fmt.Printf("  load pc=%d  L1 miss ratio %.2f  stride %d  distance %d B  nta=%v  → %s\n",
			li.PC, li.MRL1, li.Stride, li.Distance, li.NTA, li.Decision)
	}
	show := func(name string, res prefetchlab.Result) {
		fmt.Printf("%-18s %12d cycles  IPC %.2f  off-chip %6.1f MB\n",
			name, res.Cycles, res.IPC(), float64(res.Stats.TotalTraffic())/1e6)
	}
	show("baseline", baseline)
	show("hardware pref.", hw)
	show("software pref.+NT", sw)
	fmt.Printf("software speedup over baseline: %+.1f%%\n",
		(float64(baseline.Cycles)/float64(sw.Cycles)-1)*100)
	fmt.Printf("\nmemory system under software pref.+NT:\n%s", swSummary)
}
