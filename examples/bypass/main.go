// Cache bypassing: a streaming kernel thrashes the shared LLC and evicts a
// hot lookup table between passes. The paper's §VI-B analysis marks the
// stream's prefetches non-temporal (PREFETCHNTA) because nothing re-uses
// the streamed data out of L2/LLC; the stream then bypasses the LLC, the
// table stays resident, and off-chip traffic drops *below the baseline* —
// Figure 5's negative bars.
package main

import (
	"fmt"
	"log"

	"prefetchlab"
)

// build constructs the stream+table kernel.
func build() *prefetchlab.Program {
	b := prefetchlab.NewProgramBuilder("bypass")
	streamBytes := uint64(12 << 20) // streams through the 6 MB LLC
	stream := b.Arena(streamBytes)
	table := b.Arena(3 << 20) // hot table: fits the LLC on its own

	r, v := b.Reg(), b.Reg()
	// LCG-driven gathers into the table (irregular, so never prefetched —
	// their hits depend entirely on the table staying cached).
	st, tmp, addr, base := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	tv := b.Reg()
	b.MovI(st, 12345)
	b.MovI(base, int64(table))

	b.Loop(3, func() { // passes
		b.MovI(r, int64(stream))
		b.Loop(4, func() { // interleave stream chunks with table probes
			b.Loop(int64(streamBytes/64/4), func() {
				b.Load(v, r, 0)
				b.AddI(r, 64)
				b.Compute(40)
			})
			b.Loop(3<<20/64, func() {
				b.MulI(st, 6364136223846793005)
				b.AddI(st, 1442695040888963407)
				b.MovR(tmp, st)
				b.ShrI(tmp, 17)
				b.AndI(tmp, 3<<20/64-1)
				b.MulI(tmp, 64)
				b.MovR(addr, base)
				b.AddR(addr, tmp)
				b.Load(tv, addr, 0)
				b.Compute(4)
			})
		})
	})
	return b.MustProgram()
}

func main() {
	mach := prefetchlab.AMDPhenomII()
	prog := build()

	prof, err := prefetchlab.NewProfile(prog, prefetchlab.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	opts, err := prof.Calibrate(mach)
	if err != nil {
		log.Fatal(err)
	}

	// With cache bypassing (the paper's Soft. Pref.+NT).
	plan, err := prof.Analyze(mach, opts)
	if err != nil {
		log.Fatal(err)
	}
	// Without (plain Software Pref.): same insertions, all temporal.
	opts.EnableNT = false
	planPlain, err := prof.Analyze(mach, opts)
	if err != nil {
		log.Fatal(err)
	}

	run := func(p *prefetchlab.Program) prefetchlab.Result {
		res, err := prefetchlab.Simulate(p, mach, prefetchlab.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(prog)
	withNT, err := plan.Apply(prog)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := planPlain.Apply(prog)
	if err != nil {
		log.Fatal(err)
	}
	nt := run(withNT)
	pl := run(plain)

	fmt.Printf("machine: %s\n", mach.Name)
	fmt.Printf("NT plan: %s\n", plan)
	show := func(name string, r prefetchlab.Result) {
		fmt.Printf("%-16s %12d cycles   off-chip %6.1f MB (%+.1f%% vs baseline)\n",
			name, r.Cycles, float64(r.Stats.TotalTraffic())/1e6,
			(float64(r.Stats.TotalTraffic())/float64(base.Stats.TotalTraffic())-1)*100)
	}
	show("baseline", base)
	show("software pref.", pl)
	show("soft. pref.+NT", nt)
	fmt.Println("→ bypassing keeps the hot table in the LLC: less traffic than the baseline itself")
}
