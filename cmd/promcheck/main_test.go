package main

import (
	"strings"
	"testing"
)

const sample = `# HELP reqs_total requests
# TYPE reqs_total counter
reqs_total 3
`

func TestPromcheckOK(t *testing.T) {
	var out, errb strings.Builder
	if code := appMain([]string{"-require", "reqs_total"}, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "1 families, 1 samples ok") {
		t.Fatalf("summary = %q", out.String())
	}
}

func TestPromcheckMissingFamily(t *testing.T) {
	var out, errb strings.Builder
	if code := appMain([]string{"-require", "reqs_total,nope"}, strings.NewReader(sample), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "nope") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestPromcheckUnparseable(t *testing.T) {
	var out, errb strings.Builder
	if code := appMain(nil, strings.NewReader("garbage here\n"), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestPromcheckRejectsArgs(t *testing.T) {
	var out, errb strings.Builder
	if code := appMain([]string{"file.prom"}, strings.NewReader(sample), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
