// Command promcheck validates a Prometheus text exposition read from
// stdin: strict-parses it with internal/obs/prom/promtext and optionally
// asserts that required metric families are present. CI pipes a live
// /metrics scrape through it, so an unparseable exposition or a silently
// dropped family fails the build instead of an alert rule months later.
//
// Usage:
//
//	curl -sf localhost:8437/metrics | promcheck -require fam1,fam2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prefetchlab/internal/obs/prom/promtext"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func appMain(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	require := fs.String("require", "", "comma-separated metric family names that must be present")
	quiet := fs.Bool("q", false, "suppress the summary line on success")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "promcheck: unexpected arguments %q (exposition is read from stdin)\n", fs.Args())
		return 2
	}
	fams, err := promtext.Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "promcheck: %v\n", err)
		return 1
	}
	if *require != "" {
		var names []string
		for _, n := range strings.Split(*require, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if err := promtext.RequireFamilies(fams, names...); err != nil {
			fmt.Fprintf(stderr, "promcheck: %v\n", err)
			return 1
		}
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	if !*quiet {
		fmt.Fprintf(stdout, "promcheck: %d families, %d samples ok\n", len(fams), samples)
	}
	return 0
}
