package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefetchlab/internal/experiments"
	"prefetchlab/internal/obs"
)

// cli runs appMain with captured output streams.
func cli(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = appMain(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestNoArgumentsIsUsageError(t *testing.T) {
	code, _, _ := cli()
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestFlagParsing(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		errs string // substring expected on stderr
	}{
		{"bad flag", []string{"-nope", "list"}, 2, "flag provided but not defined"},
		{"bad workers value", []string{"-workers", "x", "list"}, 2, "invalid value"},
		{"bad scale value", []string{"-scale", "big", "list"}, 2, "invalid value"},
		{"flags then command", []string{"-workers", "2", "-scale", "0.5", "list"}, 0, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := cli(c.args...)
			if code != c.code {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, c.code, stderr)
			}
			if c.errs != "" && !strings.Contains(stderr, c.errs) {
				t.Errorf("stderr %q does not contain %q", stderr, c.errs)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := cli("fig99")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown experiment "fig99"`) {
		t.Errorf("stderr %q lacks unknown-experiment message", stderr)
	}
}

func TestListCommand(t *testing.T) {
	code, stdout, _ := cli("list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, want := range []string{"Table I benchmarks:", "libquantum", "Parallel workloads (fig12):", "swim"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("list output lacks %q", want)
		}
	}
}

func TestDisasmCommand(t *testing.T) {
	code, stdout, _ := cli("disasm", "libquantum")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if stdout == "" {
		t.Error("disasm printed nothing")
	}
	if code, _, stderr := cli("disasm", "nosuchbench"); code != 1 || stderr == "" {
		t.Errorf("disasm of unknown bench: exit = %d, stderr = %q; want 1 with message", code, stderr)
	}
	if code, _, _ := cli("disasm"); code != 2 {
		t.Errorf("disasm with no operand: exit = %d, want 2", code)
	}
}

func TestProfileAnalyzeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles a benchmark; skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "prof.json")
	code, stdout, stderr := cli("-scale", "0.05", "profile", "libquantum", out)
	if code != 0 {
		t.Fatalf("profile: exit = %d, stderr = %s", code, stderr)
	}
	if !strings.Contains(stdout, "profiled libquantum") {
		t.Errorf("profile output %q lacks summary line", stdout)
	}
	code, stdout, stderr = cli("-scale", "0.05", "analyze", out, "amd")
	if code != 0 {
		t.Fatalf("analyze: exit = %d, stderr = %s", code, stderr)
	}
	if !strings.Contains(stdout, "libquantum on") {
		t.Errorf("analyze output %q lacks plan header", stdout)
	}
	if code, _, stderr := cli("analyze", out, "sparc"); code != 1 ||
		!strings.Contains(stderr, "unknown machine") {
		t.Errorf("analyze with bad machine: exit = %d, stderr = %q", code, stderr)
	}
}

// TestWorkersFlagDeterminism runs the same experiment serially and with
// several workers and requires byte-identical output — the engine's replay
// guarantee surfaced at the CLI.
func TestWorkersFlagDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment twice; skipped in -short")
	}
	base := []string{"-scale", "0.05", "-seed", "11", "-benches", "libquantum,lbm", "statcov"}
	code, serial, stderr := cli(append([]string{"-workers", "1"}, base...)...)
	if code != 0 {
		t.Fatalf("workers=1: exit = %d, stderr = %s", code, stderr)
	}
	code, parallel, stderr := cli(append([]string{"-workers", "4"}, base...)...)
	if code != 0 {
		t.Fatalf("workers=4: exit = %d, stderr = %s", code, stderr)
	}
	if serial != parallel {
		t.Errorf("output differs between -workers 1 and -workers 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "StatStack miss coverage") {
		t.Errorf("statcov output %q lacks header", serial)
	}
}

// TestStatsJSONDeterminism is the tentpole acceptance check: the stats
// snapshot of a figure run is byte-identical at -workers 1 and -workers 8,
// stdout is unchanged by enabling observability, and the trace file is
// well-formed Chrome trace_event JSON with matched B/E pairs.
func TestStatsJSONDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig8 three times; skipped in -short")
	}
	dir := t.TempDir()
	s1, s8 := filepath.Join(dir, "s1.json"), filepath.Join(dir, "s8.json")
	trace := filepath.Join(dir, "t.json")
	base := []string{"-scale", "0.05", "fig8"}

	code, plain, stderr := cli(base...)
	if code != 0 {
		t.Fatalf("plain run: exit = %d, stderr = %s", code, stderr)
	}
	code, out1, stderr := cli(append([]string{"-workers", "1", "-stats-json", s1}, base...)...)
	if code != 0 {
		t.Fatalf("workers=1: exit = %d, stderr = %s", code, stderr)
	}
	code, out8, stderr := cli(append([]string{"-workers", "8", "-stats-json", s8, "-trace", trace}, base...)...)
	if code != 0 {
		t.Fatalf("workers=8: exit = %d, stderr = %s", code, stderr)
	}

	if plain != out1 || plain != out8 {
		t.Error("enabling observability changed figure output")
	}
	b1, err := os.ReadFile(s1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := os.ReadFile(s8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Errorf("stats JSON differs between -workers 1 and -workers 8:\n--- w1 ---\n%s\n--- w8 ---\n%s", b1, b8)
	}
	var stats struct {
		Tasks []struct {
			Task    string `json:"task"`
			Machine string `json:"machine"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(b1, &stats); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	if len(stats.Tasks) == 0 {
		t.Fatal("stats JSON recorded no tasks")
	}
	var sawFig8 bool
	for _, task := range stats.Tasks {
		if strings.HasPrefix(task.Task, "fig8/") {
			sawFig8 = true
		}
	}
	if !sawFig8 {
		t.Errorf("no fig8/ task keys in stats: %+v", stats.Tasks)
	}

	tb, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tout struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &tout); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	prev := -1.0
	depth := map[int]int{}
	var spans int
	for _, e := range tout.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "B":
			depth[e.TID]++
			spans++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("lane %d has E before B", e.TID)
			}
		}
		if e.TS < prev {
			t.Fatalf("trace timestamps not monotonic: %g after %g", e.TS, prev)
		}
		prev = e.TS
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("lane %d has %d unmatched B events", tid, d)
		}
	}
	if spans == 0 {
		t.Error("trace recorded no spans")
	}
}

// TestProgressAndPprofFlags exercises the self-profiling path end to end.
func TestProgressAndPprofFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment; skipped in -short")
	}
	dir := t.TempDir()
	cpuOut, memOut := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	code, _, stderr := cli("-scale", "0.05", "-benches", "libquantum", "-progress",
		"-cpuprofile", cpuOut, "-memprofile", memOut, "statcov")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, stderr)
	}
	if !strings.Contains(stderr, "tasks") {
		t.Errorf("progress ticker wrote nothing to stderr: %q", stderr)
	}
	for _, p := range []string{cpuOut, memOut} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestBenchesFlagFilters(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment; skipped in -short")
	}
	code, stdout, stderr := cli("-scale", "0.05", "-benches", "libquantum", "statcov")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, stderr)
	}
	if !strings.Contains(stdout, "libquantum") {
		t.Errorf("output lacks the selected bench: %q", stdout)
	}
	if strings.Contains(stdout, "mcf") {
		t.Errorf("output includes a filtered-out bench: %q", stdout)
	}
}

func TestAllExpandsToKnownExperiments(t *testing.T) {
	// Every name "all" expands to must dispatch (i.e. not hit the
	// unknown-experiment branch). Use a nil session: reaching into an
	// experiment would panic, while the unknown branch returns an error
	// without touching the session — so probe with a definitely-unknown
	// name first, then verify the list is exactly the documented set.
	if err := experiments.Run(context.Background(), nil, "not-an-experiment"); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown name error = %v", err)
	}
	want := map[string]bool{
		"table1": true, "fig3": true, "fig4": true, "fig5": true, "fig6": true,
		"fig7": true, "fig8": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "statcov": true, "ablation-combined": true,
		"ablation-l2": true, "ablation-throttle": true, "ablation-window": true,
		"analytic": true, "analytic-validate": true, "static-validate": true,
	}
	names := experiments.Names()
	if len(names) != len(want) {
		t.Fatalf("experiments.Names() has %d entries, want %d", len(names), len(want))
	}
	for _, name := range names {
		if !want[name] {
			t.Errorf("experiments.Names() contains unexpected %q", name)
		}
	}
}

func TestTierFlagValidation(t *testing.T) {
	// Unknown tiers are usage errors, rejected before any work starts.
	code, _, stderr := cli("-tier", "bogus", "analytic")
	if code != 2 {
		t.Errorf("exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, `unknown tier "bogus"`) {
		t.Errorf("stderr %q lacks unknown-tier message", stderr)
	}
}

func TestAnalyticTierRejectsSimulatorExperiments(t *testing.T) {
	// fig8 needs the timing simulator; under -tier=analytic it must fail
	// with a pointed message instead of silently running the simulator.
	code, _, stderr := cli("-tier", "analytic", "fig8")
	if code != 1 {
		t.Errorf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "requires the timing simulator") {
		t.Errorf("stderr %q lacks tier-gate message", stderr)
	}
}

func TestStaticTierRejectsOtherExperiments(t *testing.T) {
	// The static tier runs only its own differential harness; anything else
	// must fail with a pointed message instead of silently simulating.
	code, _, stderr := cli("-tier", "static", "fig8")
	if code != 1 {
		t.Errorf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "static tier") {
		t.Errorf("stderr %q lacks static tier-gate message", stderr)
	}
}
