package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestChaosCheckpointResume is the resume guarantee surfaced at the CLI: a
// run interrupted by -timeout and resumed from its -checkpoint — at a
// different worker count — produces byte-identical stdout and -stats-json to
// an uninterrupted run.
func TestChaosCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment several times; skipped in -short")
	}
	dir := t.TempDir()
	base := []string{"-scale", "0.02", "-seed", "11", "-period", "512",
		"-benches", "libquantum,mcf", "statcov"}

	goldenStats := filepath.Join(dir, "golden.json")
	code, goldenOut, stderr := cli(append([]string{"-workers", "2", "-stats-json", goldenStats}, base...)...)
	if code != 0 {
		t.Fatalf("golden run: exit = %d, stderr = %s", code, stderr)
	}

	// Interrupt a checkpointed run almost immediately. Depending on timing it
	// may cancel before, during, or after the batch — every case must leave a
	// checkpoint the next run can resume from.
	ck := filepath.Join(dir, "run.ckpt")
	code, _, stderr = cli(append([]string{"-workers", "1", "-timeout", "30ms", "-checkpoint", ck}, base...)...)
	if code != 0 && !strings.Contains(stderr, "canceled") {
		t.Fatalf("interrupted run: exit = %d with unexpected stderr: %s", code, stderr)
	}

	// Resume at a different worker count and demand byte-identity.
	for _, workers := range []string{"1", "4"} {
		resumedStats := filepath.Join(dir, "resumed-w"+workers+".json")
		code, out, stderr := cli(append([]string{"-workers", workers, "-checkpoint", ck,
			"-stats-json", resumedStats}, base...)...)
		if code != 0 {
			t.Fatalf("resumed run (workers=%s): exit = %d, stderr = %s", workers, code, stderr)
		}
		if out != goldenOut {
			t.Errorf("resumed stdout (workers=%s) differs from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s",
				workers, goldenOut, out)
		}
		g, err := os.ReadFile(goldenStats)
		if err != nil {
			t.Fatal(err)
		}
		r, err := os.ReadFile(resumedStats)
		if err != nil {
			t.Fatal(err)
		}
		if string(g) != string(r) {
			t.Errorf("resumed stats JSON (workers=%s) differs from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s",
				workers, g, r)
		}
	}
}

// TestCheckpointRejectsMismatchedConfig pins the fingerprint check: resuming
// with options that change task results must fail loudly instead of
// replaying stale records.
func TestCheckpointRejectsMismatchedConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment; skipped in -short")
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "run.ckpt")
	base := []string{"-benches", "libquantum", "-period", "512", "-checkpoint", ck}
	code, _, stderr := cli(append(append([]string{"-scale", "0.02"}, base...), "statcov")...)
	if code != 0 {
		t.Fatalf("first run: exit = %d, stderr = %s", code, stderr)
	}
	code, _, stderr = cli(append(append([]string{"-scale", "0.03"}, base...), "statcov")...)
	if code != 1 || !strings.Contains(stderr, "checkpoint") {
		t.Errorf("mismatched resume: exit = %d, stderr = %q; want 1 with checkpoint error", code, stderr)
	}
}

// TestFaultsFlagChaosSmoke drives a figure end to end with injected faults:
// the run must exit 0, report skipped cells explicitly (or absorb every
// fault via retries), and keep the fault accounting off stdout.
func TestFaultsFlagChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment; skipped in -short")
	}
	code, stdout, stderr := cli("-scale", "0.02", "-period", "512",
		"-benches", "libquantum,mcf,omnetpp", "-retries", "2",
		"-faults", "panic=0.05,error=0.05,latency=0.02,seed=7", "statcov")
	if code != 0 {
		t.Fatalf("faulted run: exit = %d, stderr = %s", code, stderr)
	}
	if !strings.Contains(stderr, "# faults:") {
		t.Errorf("stderr lacks fault accounting: %q", stderr)
	}
	if strings.Contains(stdout, "# faults:") {
		t.Error("fault accounting leaked onto stdout")
	}
	if !strings.Contains(stdout, "StatStack miss coverage") {
		t.Errorf("figure output missing under faults: %q", stdout)
	}
}

// TestBadFaultSpecIsUsageError pins -faults validation.
func TestBadFaultSpecIsUsageError(t *testing.T) {
	code, _, stderr := cli("-faults", "panic=lots", "statcov")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "faultinject") {
		t.Errorf("stderr %q lacks parse error", stderr)
	}
}
