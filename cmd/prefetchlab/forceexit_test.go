package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncWriter collects subprocess stderr concurrently with the test's
// signal delivery.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestCLIHelperProcess re-executes the CLI inside the test binary for the
// force-exit test. Not a real test.
func TestCLIHelperProcess(t *testing.T) {
	if os.Getenv("PREFETCHLAB_HELPER") != "1" {
		t.Skip("helper process")
	}
	args := strings.Split(os.Getenv("PREFETCHLAB_ARGS"), "\x1f")
	os.Exit(appMain(args, os.Stdout, os.Stderr))
}

// TestSecondSignalForcesExit runs the CLI as a subprocess wedged on a
// latency-injected task (far beyond any test timeout) and delivers two
// SIGINTs: the first starts the graceful drain, which cannot finish while
// the task sleeps; the second must force immediate exit with the distinct
// ForcedExitCode — a stuck task can never hold the process hostage.
func TestSecondSignalForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	args := []string{
		"-benches", "libquantum",
		"-scale", "0.02",
		"-period", "512",
		"-workers", "1",
		"-faults", "latency=1,latms=120000,seed=1",
		"-failure-budget", "0",
		"statcov",
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestCLIHelperProcess$")
	cmd.Env = append(os.Environ(),
		"PREFETCHLAB_HELPER=1",
		"PREFETCHLAB_ARGS="+strings.Join(args, "\x1f"))
	var stderr syncWriter
	cmd.Stderr = &stderr
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Give the run a moment to enter the wedged task, then interrupt twice.
	// The second signal may only be sent after the first was observed
	// (drain in progress), which the helper cannot report — so pace the
	// signals; the 120s injected latency dwarfs any scheduling jitter.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- cmd.Wait() }()
	select {
	case err := <-errCh:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("process exit: %v (want exit error with code %d)", err, ForcedExitCode)
		}
		if got := ee.ExitCode(); got != ForcedExitCode {
			t.Fatalf("exit code = %d, want %d; stderr:\n%s", got, ForcedExitCode, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("second SIGINT did not force exit; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "forcing exit") {
		t.Fatalf("stderr missing forcing-exit line:\n%s", stderr.String())
	}
}
