// Command prefetchlab regenerates the tables and figures of "A Case for
// Resource Efficient Prefetching in Multicores" (ICPP 2014) on the
// simulated substrate.
//
// Usage:
//
//	prefetchlab [flags] <experiment> [experiment...]
//
// Experiments: table1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, statcov, ablation-combined, ablation-l2, ablation-throttle,
// ablation-window, analytic, analytic-validate, all.
//
// Tooling commands:
//
//	list                         describe the available benchmarks
//	disasm <bench>               print a benchmark's program listing
//	profile <bench> <out.json>   run the sampling pass and save the profile
//	analyze <in.json> <machine>  load a profile and print the prefetch plan
//	                             (machine: amd or intel)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prefetchlab/internal/atomicio"
	"prefetchlab/internal/ckpt"
	"prefetchlab/internal/cluster"
	"prefetchlab/internal/core"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/faultinject"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/serve/client"
	"prefetchlab/internal/workloads"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// ForcedExitCode is the distinct exit code for a second SIGINT/SIGTERM
// delivered while the first is still draining: the run is abandoned
// immediately instead of waiting on a stuck task.
const ForcedExitCode = 3

// forceExit is os.Exit behind a seam so the force-exit path is visible to
// tests (which exercise it through a helper subprocess).
var forceExit = os.Exit

// appMain is the whole CLI behind an injectable argv and output streams, so
// tests can drive it end to end; it returns the process exit code.
func appMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefetchlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale   = fs.Float64("scale", 1.0, "workload iteration scale (1.0 = default run lengths)")
		mixes   = fs.Int("mixes", 45, "number of random 4-app mixes for fig7-fig11 (paper: 180)")
		seed    = fs.Int64("seed", 42, "random seed for mixes and inputs")
		period  = fs.Int64("period", 4096, "mean references between profile samples")
		workers = fs.Int("workers", 0, "experiment engine workers (0 = all CPUs, 1 = serial; results are identical at any setting)")
		benches = fs.String("benches", "", "comma-separated benchmark subset for the single-thread studies (default: all)")
		tier    = fs.String("tier", "sim", "prediction tier: sim (cycle-level simulator), analytic (MRC-only model) or static (zero-execution IR analysis); non-sim tiers run only tier-capable experiments")
		verbose = fs.Bool("v", false, "print per-step progress")

		statsJSON  = fs.String("stats-json", "", "write per-task machine-stats snapshots (caches, prefetchers, DRAM) to this JSON file; identical at any -workers setting")
		traceOut   = fs.String("trace", "", "write a Chrome trace_event JSON of engine tasks and caches to this file (open in Perfetto or chrome://tracing)")
		cpuprofile = fs.String("cpuprofile", "", "write an engine CPU profile (pprof) to this file")
		memprofile = fs.String("memprofile", "", "write an engine heap profile (pprof) to this file")
		progress   = fs.Bool("progress", false, "print a live tasks-done/ETA ticker to stderr")

		timeout    = fs.Duration("timeout", 0, "overall wall-clock budget; on expiry the engine drains in-flight tasks and exits cleanly (0 = none)")
		checkpoint = fs.String("checkpoint", "", "append each completed task result to this file and replay verified records on restart; a resumed run produces byte-identical output")
		faults     = fs.String("faults", "", "inject deterministic task faults for chaos testing, e.g. panic=0.05,error=0.05,latency=0.01,corrupt=0.01,seed=1")
		retries    = fs.Int("retries", 0, "extra attempts per failing engine task (deterministic, task-keyed backoff)")
		budget     = fs.Int("failure-budget", 0, "failed cells absorbed per batch as explicit skips (-1 = unlimited, 0 = fail fast; defaults to -1 when -faults is set)")

		clusterHosts  = fs.String("cluster", "", "comma-separated prefetchd worker base URLs (started with -join) to shard sweeps across; output stays byte-identical to a local run")
		clusterLedger = fs.String("cluster-ledger", "", "durable shard ledger: acked remote results are appended here and replayed on coordinator restart")
		shardSize     = fs.Int("shard-size", 0, "task indices per dispatched shard (0 = about two shards per worker)")
		clusterCache  = fs.String("result-cache", "", "content-addressed result cache directory the coordinator consults before dispatching shards; acked task values are stored for the next sweep (requires -cluster)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	budgetSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "failure-budget" {
			budgetSet = true
		}
	})
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if !experiments.ValidTier(*tier) {
		fmt.Fprintf(stderr, "prefetchlab: unknown tier %q (want %s)\n",
			*tier, strings.Join(experiments.Tiers(), " or "))
		return 2
	}
	if *clusterCache != "" && *clusterHosts == "" {
		fmt.Fprintln(stderr, "prefetchlab: -result-cache requires -cluster (the cache fronts shard dispatch)")
		return 2
	}
	var benchList []string
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}
	args := fs.Args()
	switch args[0] {
	case "list":
		listWorkloads(stdout)
		return 0
	case "profile":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: prefetchlab profile <bench> <out.json>")
			return 2
		}
		if err := profileCmd(stdout, args[1], args[2], *scale, *period, *seed); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		return 0
	case "disasm":
		if len(args) != 2 {
			fmt.Fprintln(stderr, "usage: prefetchlab disasm <bench>")
			return 2
		}
		spec, err := workloads.ByName(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		prog, err := spec.Build(workloads.Input{ID: 0, Scale: *scale})
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		if err := isa.Disasm(stdout, prog); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		return 0
	case "analyze":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: prefetchlab analyze <profile.json> <amd|intel>")
			return 2
		}
		if err := analyzeCmd(stdout, args[1], args[2], *scale); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		return 0
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.Names()
	}

	// Cancellation: SIGINT/SIGTERM and the optional -timeout budget both
	// cancel the run context; the engine drains in-flight tasks and the
	// deterministic prefix of completed work is flushed below. A second
	// signal while draining forces immediate exit with ForcedExitCode, so a
	// stuck task can never hold the process hostage.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	runDone := make(chan struct{})
	defer close(runDone)
	go func() {
		select {
		case <-sigCh:
			cancel()
		case <-runDone:
			return
		}
		select {
		case <-sigCh:
			fmt.Fprintln(stderr, "prefetchlab: second signal while draining: forcing exit")
			forceExit(ForcedExitCode)
		case <-runDone:
		}
	}()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Fault injection is opt-in chaos testing; when enabled, batches absorb
	// failures as explicit skips by default instead of failing fast.
	var fault sched.FaultHook
	var inj *faultinject.Injector
	if *faults != "" {
		spec, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 2
		}
		inj = faultinject.New(spec)
		fault = inj
		if !budgetSet {
			*budget = -1
		}
	}

	// Observability is assembled only when asked for; a nil *obs.Obs keeps
	// every hook in the engine inert, so default runs are untouched. A
	// checkpoint needs the stats registry even without -stats-json, so that
	// replayed tasks restore their recorded snapshots.
	var o *obs.Obs
	if *statsJSON != "" || *traceOut != "" || *progress || *checkpoint != "" || *clusterHosts != "" {
		o = &obs.Obs{}
		if *statsJSON != "" || *checkpoint != "" {
			o.Stats = obs.NewStats()
		}
		if *traceOut != "" {
			o.Trace = obs.NewTracer()
		}
		if *progress {
			o.Progress = obs.NewProgress(stderr)
		}
	}

	// The checkpoint fingerprint covers every option that changes task
	// results — but not -workers, -timeout, -retries or -faults, which only
	// change scheduling: a run interrupted at one worker count may resume at
	// another and still produce byte-identical output.
	baseOpts := experiments.Options{
		Scale: *scale, Mixes: *mixes, Seed: *seed, SamplerPeriod: *period,
		Workers: *workers, Benches: benchList, Tier: *tier,
	}.Normalized()
	var cp *ckpt.File
	var save sched.Saver
	if *checkpoint != "" {
		var err error
		cp, err = ckpt.Open(*checkpoint, baseOpts.Fingerprint())
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: checkpoint: %v\n", err)
			return 1
		}
		defer cp.Close()
		save = cp.Tasks()
		// Restore stats snapshots captured before the interruption, then
		// persist every new one as it is recorded.
		cp.Each("stat", func(key string, index int, data []byte) {
			if snap, err := obs.DecodeSnapshot(data); err == nil {
				o.Stats.Record(key, snap)
			}
		})
		o.Stats.Persist = func(key string, data []byte) {
			cp.Append("stat", key, 0, data)
		}
	}

	// The cluster coordinator shards sweeps across a prefetchd fleet; the
	// scheduler runs anything the fleet does not cover locally, so output
	// stays byte-identical to a single-process run at any fleet size.
	var coord *cluster.Coordinator
	var ledger *cluster.Ledger
	if *clusterHosts != "" {
		if *clusterLedger != "" {
			var err error
			ledger, err = cluster.OpenLedger(*clusterLedger, baseOpts.Fingerprint())
			if err != nil {
				fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
				return 1
			}
		}
		var cache *resultcache.Cache
		if *clusterCache != "" {
			var err error
			cache, err = resultcache.New(resultcache.Config{
				MaxEntries: 4096,
				Dir:        *clusterCache,
				Obs:        o,
			})
			if err != nil {
				fmt.Fprintf(stderr, "prefetchlab: result cache: %v\n", err)
				return 1
			}
		}
		var err error
		coord, err = cluster.New(cluster.Config{
			Workers:   strings.Split(*clusterHosts, ","),
			Options:   baseOpts,
			Ledger:    ledger,
			Cache:     cache,
			Obs:       o,
			ShardSize: *shardSize,
			NewClient: func(baseURL string) cluster.Getter {
				return client.New(client.Config{BaseURL: baseURL, MaxRetries: 2})
			},
		})
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		coord.Start(ctx)
		defer coord.Stop()
	}

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
		return 1
	}
	runOpts := baseOpts
	runOpts.Out = stdout
	runOpts.Verbose = *verbose
	runOpts.Obs = o
	runOpts.Retries = *retries
	runOpts.FailureBudget = *budget
	runOpts.Fault = fault
	runOpts.Save = save
	if coord != nil {
		runOpts.Remote = coord
	}
	s := experiments.NewSession(runOpts)

	code := 0
	canceled := false
	for _, name := range args {
		t0 := time.Now()
		if coord != nil {
			coord.SetExperiment(name)
		}
		done := o.Span("experiment", name, nil)
		err := experiments.Run(ctx, s, name)
		done()
		if err != nil {
			if experiments.IsCancellation(err) {
				fmt.Fprintf(stderr, "prefetchlab: %s: run canceled: %v\n", name, err)
				canceled = true
			} else {
				fmt.Fprintf(stderr, "prefetchlab: %s: %v\n", name, err)
			}
			code = 1
			break
		}
		if *verbose {
			fmt.Fprintf(stdout, "# %s done in %s\n", name, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}

	// Flush observability outputs even when an experiment failed: a partial
	// stats file or trace is exactly what debugging that failure needs.
	o.StopProgress()
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
		code = 1
	}
	if o != nil && o.Stats != nil && *statsJSON != "" {
		// Fold engine fault and cluster tallies into the stats export.
		// Fault-free single-process runs set nothing, so their files stay
		// byte-identical to earlier releases.
		o.PublishFaults()
		o.PublishCluster()
		if err := writeObsFile(*statsJSON, o.Stats.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			code = 1
		} else if *verbose {
			fmt.Fprintf(stdout, "# wrote %d stats snapshots to %s\n", o.Stats.Len(), *statsJSON)
		}
	}
	if o != nil && o.Trace != nil {
		if err := writeObsFile(*traceOut, o.Trace.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			code = 1
		} else if *verbose {
			fmt.Fprintf(stdout, "# wrote %d trace events to %s\n", o.Trace.Len(), *traceOut)
		}
	}
	// Fault and checkpoint accounting goes to stderr only: stdout carries the
	// figures and must stay byte-identical across runs and resumes.
	if inj != nil {
		fmt.Fprintf(stderr, "# faults: %s\n", inj)
	}
	if sum := o.FaultSummary(); sum != "" {
		fmt.Fprintf(stderr, "# engine: %s\n", sum)
	}
	if sum := o.ClusterSummary(); sum != "" {
		fmt.Fprintf(stderr, "# %s\n", sum)
	}
	if ledger != nil {
		if *verbose || canceled {
			fmt.Fprintf(stderr, "# ledger: replayed %d record(s), appended %d to %s\n",
				ledger.Replayed(), ledger.Appended(), *clusterLedger)
		}
		if err := ledger.Close(); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: ledger: %v\n", err)
			code = 1
		}
	}
	if cp != nil {
		if *verbose || canceled {
			fmt.Fprintf(stderr, "# checkpoint: replayed %d record(s), appended %d to %s\n",
				cp.Replayed(), cp.Appended(), *checkpoint)
		}
		if err := cp.Close(); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: checkpoint: %v\n", err)
			code = 1
		}
	}
	return code
}

// writeObsFile writes one observability export to path atomically, so a
// crash mid-write never leaves a truncated artifact behind.
func writeObsFile(path string, write func(io.Writer) error) error {
	return atomicio.WriteFile(path, write)
}

// listWorkloads prints the benchmark registry.
func listWorkloads(w io.Writer) {
	fmt.Fprintln(w, "Table I benchmarks:")
	for _, name := range workloads.Names() {
		spec, _ := workloads.ByName(name)
		fmt.Fprintf(w, "  %-12s %s\n", spec.Name, spec.Desc)
	}
	fmt.Fprintln(w, "Parallel workloads (fig12):")
	for _, spec := range workloads.Parallel() {
		mark := " "
		if spec.HighBandwidth {
			mark = "*"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", spec.Name, mark, spec.Desc)
	}
}

// profileCmd samples a benchmark and writes the profile to a JSON file.
func profileCmd(w io.Writer, bench, out string, scale float64, period, seed int64) error {
	spec, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	prog, err := spec.Build(workloads.Input{ID: 0, Scale: scale})
	if err != nil {
		return err
	}
	c, err := isa.Compile(prog)
	if err != nil {
		return err
	}
	s := sampler.New(sampler.Config{Period: period, Seed: seed})
	refs := isa.Trace(c, s)
	samples := s.Finish()
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pipeline.WriteProfile(f, bench, samples); err != nil {
		return err
	}
	fmt.Fprintf(w, "profiled %s: %d refs, %d reuse + %d stride + %d cold samples → %s\n",
		bench, refs, len(samples.Reuse), len(samples.Strides), len(samples.Cold), out)
	return nil
}

// analyzeCmd loads a profile and prints the prefetch plan for a machine.
func analyzeCmd(w io.Writer, in, machName string, scale float64) error {
	var mach machine.Machine
	switch machName {
	case "amd":
		mach = machine.AMDPhenomII()
	case "intel":
		mach = machine.IntelSandyBridge()
	default:
		return fmt.Errorf("unknown machine %q (want amd or intel)", machName)
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	bench, samples, model, err := pipeline.ReadProfile(f)
	if err != nil {
		return err
	}
	spec, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	prog, err := spec.Build(workloads.Input{ID: 0, Scale: scale})
	if err != nil {
		return err
	}
	c, err := isa.Compile(prog)
	if err != nil {
		return err
	}
	params := core.DefaultParams(mach.L1.Size, mach.L2.Size, mach.LLC.Size,
		mach.L2Lat, mach.LLCLat, mach.DRAM.ServiceLat+mach.LLCLat+14)
	plan := core.Analyze(c, model, samples, params)
	fmt.Fprintf(w, "%s on %s: %s\n", bench, mach.Name, plan)
	core.SortLoadsByMisses(plan.Loads)
	for _, li := range plan.Loads {
		fmt.Fprintf(w, "  pc=%-4d mr(L1)=%.3f mr(LLC)=%.3f stride=%-6d dist=%-6d nta=%-5v %s\n",
			li.PC, li.MRL1, li.MRLLC, li.Stride, li.Distance, li.NTA, li.Decision)
	}
	return nil
}
