// Command prefetchlab regenerates the tables and figures of "A Case for
// Resource Efficient Prefetching in Multicores" (ICPP 2014) on the
// simulated substrate.
//
// Usage:
//
//	prefetchlab [flags] <experiment> [experiment...]
//
// Experiments: table1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
// fig11, fig12, statcov, ablation-combined, ablation-l2, ablation-throttle,
// ablation-window, all.
//
// Tooling commands:
//
//	list                         describe the available benchmarks
//	disasm <bench>               print a benchmark's program listing
//	profile <bench> <out.json>   run the sampling pass and save the profile
//	analyze <in.json> <machine>  load a profile and print the prefetch plan
//	                             (machine: amd or intel)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"prefetchlab/internal/core"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/workloads"
)

// allExperiments is what "all" expands to, in presentation order.
var allExperiments = []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig10", "fig11", "fig12", "statcov", "ablation-combined",
	"ablation-l2", "ablation-throttle", "ablation-window"}

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is the whole CLI behind an injectable argv and output streams, so
// tests can drive it end to end; it returns the process exit code.
func appMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefetchlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale   = fs.Float64("scale", 1.0, "workload iteration scale (1.0 = default run lengths)")
		mixes   = fs.Int("mixes", 45, "number of random 4-app mixes for fig7-fig11 (paper: 180)")
		seed    = fs.Int64("seed", 42, "random seed for mixes and inputs")
		period  = fs.Int64("period", 4096, "mean references between profile samples")
		workers = fs.Int("workers", 0, "experiment engine workers (0 = all CPUs, 1 = serial; results are identical at any setting)")
		benches = fs.String("benches", "", "comma-separated benchmark subset for the single-thread studies (default: all)")
		verbose = fs.Bool("v", false, "print per-step progress")

		statsJSON  = fs.String("stats-json", "", "write per-task machine-stats snapshots (caches, prefetchers, DRAM) to this JSON file; identical at any -workers setting")
		traceOut   = fs.String("trace", "", "write a Chrome trace_event JSON of engine tasks and caches to this file (open in Perfetto or chrome://tracing)")
		cpuprofile = fs.String("cpuprofile", "", "write an engine CPU profile (pprof) to this file")
		memprofile = fs.String("memprofile", "", "write an engine heap profile (pprof) to this file")
		progress   = fs.Bool("progress", false, "print a live tasks-done/ETA ticker to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	var benchList []string
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}
	args := fs.Args()
	switch args[0] {
	case "list":
		listWorkloads(stdout)
		return 0
	case "profile":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: prefetchlab profile <bench> <out.json>")
			return 2
		}
		if err := profileCmd(stdout, args[1], args[2], *scale, *period, *seed); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		return 0
	case "disasm":
		if len(args) != 2 {
			fmt.Fprintln(stderr, "usage: prefetchlab disasm <bench>")
			return 2
		}
		spec, err := workloads.ByName(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		if err := isa.Disasm(stdout, spec.Build(workloads.Input{ID: 0, Scale: *scale})); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		return 0
	case "analyze":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: prefetchlab analyze <profile.json> <amd|intel>")
			return 2
		}
		if err := analyzeCmd(stdout, args[1], args[2], *scale); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			return 1
		}
		return 0
	}
	if len(args) == 1 && args[0] == "all" {
		args = allExperiments
	}

	// Observability is assembled only when asked for; a nil *obs.Obs keeps
	// every hook in the engine inert, so default runs are untouched.
	var o *obs.Obs
	if *statsJSON != "" || *traceOut != "" || *progress {
		o = &obs.Obs{}
		if *statsJSON != "" {
			o.Stats = obs.NewStats()
		}
		if *traceOut != "" {
			o.Trace = obs.NewTracer()
		}
		if *progress {
			o.Progress = obs.NewProgress(stderr)
		}
	}
	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
		return 1
	}
	s := experiments.NewSession(experiments.Options{
		Scale: *scale, Mixes: *mixes, Seed: *seed, SamplerPeriod: *period,
		Workers: *workers, Benches: benchList, Out: stdout, Verbose: *verbose,
		Obs: o,
	})

	code := 0
	for _, name := range args {
		t0 := time.Now()
		done := o.Span("experiment", name, nil)
		err := run(s, name)
		done()
		if err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %s: %v\n", name, err)
			code = 1
			break
		}
		if *verbose {
			fmt.Fprintf(stdout, "# %s done in %s\n", name, time.Since(t0).Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}

	// Flush observability outputs even when an experiment failed: a partial
	// stats file or trace is exactly what debugging that failure needs.
	o.StopProgress()
	if err := stopProf(); err != nil {
		fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
		code = 1
	}
	if o != nil && o.Stats != nil {
		if err := writeObsFile(*statsJSON, o.Stats.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			code = 1
		} else if *verbose {
			fmt.Fprintf(stdout, "# wrote %d stats snapshots to %s\n", o.Stats.Len(), *statsJSON)
		}
	}
	if o != nil && o.Trace != nil {
		if err := writeObsFile(*traceOut, o.Trace.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "prefetchlab: %v\n", err)
			code = 1
		} else if *verbose {
			fmt.Fprintf(stdout, "# wrote %d trace events to %s\n", o.Trace.Len(), *traceOut)
		}
	}
	return code
}

// writeObsFile writes one observability export to path.
func writeObsFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run dispatches one experiment by name.
func run(s *experiments.Session, name string) error {
	switch name {
	case "table1":
		r, err := s.Table1()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig3":
		r, err := s.Fig3()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig4", "fig5", "fig6":
		r, err := s.Fig456()
		if err != nil {
			return err
		}
		switch name {
		case "fig4":
			r.PrintFig4(s)
		case "fig5":
			r.PrintFig5(s)
		case "fig6":
			r.PrintFig6(s)
		}
	case "fig7":
		r, err := s.Fig7()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig8":
		r, err := s.Fig8()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig9":
		r, err := s.Fig9()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig10":
		r, err := s.Fig10()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig11":
		r, err := s.Fig11()
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig12":
		r, err := s.Fig12()
		if err != nil {
			return err
		}
		r.Print(s)
	case "statcov":
		r, err := s.StatCoverage()
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-combined":
		r, err := s.AblationCombined()
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-l2":
		r, err := s.AblationL2()
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-throttle":
		r, err := s.AblationThrottle()
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-window":
		r, err := s.AblationWindow()
		if err != nil {
			return err
		}
		r.Print(s)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// listWorkloads prints the benchmark registry.
func listWorkloads(w io.Writer) {
	fmt.Fprintln(w, "Table I benchmarks:")
	for _, name := range workloads.Names() {
		spec, _ := workloads.ByName(name)
		fmt.Fprintf(w, "  %-12s %s\n", spec.Name, spec.Desc)
	}
	fmt.Fprintln(w, "Parallel workloads (fig12):")
	for _, spec := range workloads.Parallel() {
		mark := " "
		if spec.HighBandwidth {
			mark = "*"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", spec.Name, mark, spec.Desc)
	}
}

// profileCmd samples a benchmark and writes the profile to a JSON file.
func profileCmd(w io.Writer, bench, out string, scale float64, period, seed int64) error {
	spec, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	prog := spec.Build(workloads.Input{ID: 0, Scale: scale})
	c, err := isa.Compile(prog)
	if err != nil {
		return err
	}
	s := sampler.New(sampler.Config{Period: period, Seed: seed})
	refs := isa.Trace(c, s)
	samples := s.Finish()
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pipeline.WriteProfile(f, bench, samples); err != nil {
		return err
	}
	fmt.Fprintf(w, "profiled %s: %d refs, %d reuse + %d stride + %d cold samples → %s\n",
		bench, refs, len(samples.Reuse), len(samples.Strides), len(samples.Cold), out)
	return nil
}

// analyzeCmd loads a profile and prints the prefetch plan for a machine.
func analyzeCmd(w io.Writer, in, machName string, scale float64) error {
	var mach machine.Machine
	switch machName {
	case "amd":
		mach = machine.AMDPhenomII()
	case "intel":
		mach = machine.IntelSandyBridge()
	default:
		return fmt.Errorf("unknown machine %q (want amd or intel)", machName)
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	bench, samples, model, err := pipeline.ReadProfile(f)
	if err != nil {
		return err
	}
	spec, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	c, err := isa.Compile(spec.Build(workloads.Input{ID: 0, Scale: scale}))
	if err != nil {
		return err
	}
	params := core.DefaultParams(mach.L1.Size, mach.L2.Size, mach.LLC.Size,
		mach.L2Lat, mach.LLCLat, mach.DRAM.ServiceLat+mach.LLCLat+14)
	plan := core.Analyze(c, model, samples, params)
	fmt.Fprintf(w, "%s on %s: %s\n", bench, mach.Name, plan)
	core.SortLoadsByMisses(plan.Loads)
	for _, li := range plan.Loads {
		fmt.Fprintf(w, "  pc=%-4d mr(L1)=%.3f mr(LLC)=%.3f stride=%-6d dist=%-6d nta=%-5v %s\n",
			li.PC, li.MRL1, li.MRLLC, li.Stride, li.Distance, li.NTA, li.Decision)
	}
	return nil
}
