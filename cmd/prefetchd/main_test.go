package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe buffer: appMain writes from its own
// goroutines while the test polls for the announced address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// waitForAddr polls stderr for the announced listen address.
func waitForAddr(t *testing.T, stderr *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRe.FindStringSubmatch(stderr.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; stderr:\n%s", stderr.String())
	return ""
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// TestServeQueryAndGracefulShutdown boots the daemon in-process on an
// ephemeral port, queries health and a figure, then delivers SIGTERM and
// asserts a clean drain (exit 0) with the stats file flushed atomically,
// carrying the server metrics section.
func TestServeQueryAndGracefulShutdown(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var stderr syncBuffer
	var stdout bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- appMain([]string{
			"-listen", "127.0.0.1:0",
			"-benches", "libquantum",
			"-scale", "0.02",
			"-period", "512",
			"-workers", "2",
			"-stats-json", statsPath,
		}, &stdout, &stderr)
	}()
	addr := waitForAddr(t, &stderr)
	baseURL := "http://" + addr

	if code, body := httpGet(t, baseURL+"/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthz = %d body %s", code, body)
	}
	if code, _ := httpGet(t, baseURL+"/readyz"); code != 200 {
		t.Fatalf("readyz = %d, want 200", code)
	}
	code, figure := httpGet(t, baseURL+"/api/v1/figures/table1")
	if code != 200 || !strings.Contains(figure, "libquantum") {
		t.Fatalf("figure = %d body %s", code, figure)
	}
	if code, body := httpGet(t, baseURL+"/api/v1/metrics"); code != 200 || !strings.Contains(body, `"ok": 1`) {
		t.Fatalf("metrics = %d body %s", code, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case exit := <-done:
		if exit != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", exit, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("drain never completed; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("stderr missing clean-drain line:\n%s", stderr.String())
	}

	// The flushed stats file must be complete JSON with the server section.
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("stats file: %v", err)
	}
	var stats struct {
		Server struct {
			Requests int64 `json:"requests"`
			OK       int64 `json:"ok"`
			Breaker  struct {
				State string `json:"state"`
			} `json:"breaker"`
		} `json:"server"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats file not valid JSON: %v", err)
	}
	if stats.Server.Requests == 0 || stats.Server.OK == 0 || stats.Server.Breaker.State != "closed" {
		t.Fatalf("stats server section = %+v", stats.Server)
	}
	// No temp litter from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(statsPath))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("atomic write left temp file %s", e.Name())
		}
	}
}

// TestDrainingShedsNewRequests delivers SIGTERM while a latency-wedged
// request is in flight and asserts new requests shed 503 during the drain
// window.
func TestDrainingShedsNewRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test skipped in -short")
	}
	var stderr syncBuffer
	var stdout bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- appMain([]string{
			"-listen", "127.0.0.1:0",
			"-benches", "libquantum",
			"-scale", "0.02",
			"-period", "512",
			"-faults", "latency=1,latms=2000,seed=1",
			"-request-timeout", "1m",
			"-drain-timeout", "1m",
			"-breaker-threshold", "-1",
		}, &stdout, &stderr)
	}()
	addr := waitForAddr(t, &stderr)
	baseURL := "http://" + addr

	slow := make(chan int, 1)
	go func() {
		resp, err := http.Get(baseURL + "/api/v1/figures/table1")
		if err != nil {
			slow <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slow <- resp.StatusCode
	}()
	// Wait until the slow request is inflight.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, body := httpGet(t, baseURL+"/api/v1/metrics")
		if strings.Contains(body, `"inflight": 1`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// While draining, new work is shed one of two ways: an established
	// keep-alive connection gets a typed 503, and a fresh connection is
	// refused outright (Shutdown closes the listener first). Either way no
	// new request may reach the engine.
	sawShed := false
	for i := 0; i < 100 && !sawShed; i++ {
		resp, err := http.Get(baseURL + "/api/v1/figures/table1")
		if err != nil {
			sawShed = true // listener closed: new connections rejected
			break
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawShed = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := <-slow; got != 200 {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	select {
	case exit := <-done:
		if exit != 0 {
			t.Fatalf("exit code = %d, want 0; stderr:\n%s", exit, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("drain never completed; stderr:\n%s", stderr.String())
	}
	if !sawShed {
		t.Fatalf("never observed a 503 shed during drain; stderr:\n%s", stderr.String())
	}
}

// TestHelperProcess re-executes the daemon inside the test binary for the
// force-exit test. Not a real test.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("PREFETCHD_HELPER") != "1" {
		t.Skip("helper process")
	}
	args := strings.Split(os.Getenv("PREFETCHD_ARGS"), "\x1f")
	os.Exit(appMain(args, os.Stdout, os.Stderr))
}

// TestSecondSignalForcesExit starts the daemon as a subprocess, wedges it
// with a latency-injected request, and delivers two SIGTERMs: the first
// starts a drain that cannot finish, the second must force immediate exit
// with the distinct ForcedExitCode.
func TestSecondSignalForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	args := []string{
		"-listen", "127.0.0.1:0",
		"-benches", "libquantum",
		"-scale", "0.02",
		"-period", "512",
		"-faults", "latency=1,latms=120000,seed=1",
		"-request-timeout", "10m",
		"-drain-timeout", "10m",
		"-breaker-threshold", "-1",
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperProcess$")
	cmd.Env = append(os.Environ(),
		"PREFETCHD_HELPER=1",
		"PREFETCHD_ARGS="+strings.Join(args, "\x1f"))
	var stderr syncBuffer
	cmd.Stderr = &stderr
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addr := waitForAddr(t, &stderr)
	// Wedge one request on the injected 120s task latency.
	go func() {
		resp, err := http.Get("http://" + addr + "/api/v1/figures/table1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	wedged := false
	for time.Now().Before(deadline) && !wedged {
		resp, err := http.Get("http://" + addr + "/api/v1/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			wedged = strings.Contains(string(body), `"inflight": 1`)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !wedged {
		t.Fatalf("request never wedged; stderr:\n%s", stderr.String())
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(stderr.String(), "draining") {
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Fatalf("first SIGTERM did not start a drain; stderr:\n%s", stderr.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- cmd.Wait() }()
	select {
	case err := <-errCh:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("process exit: %v (want exit error with code %d)", err, ForcedExitCode)
		}
		if got := ee.ExitCode(); got != ForcedExitCode {
			t.Fatalf("exit code = %d, want %d; stderr:\n%s", got, ForcedExitCode, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("second SIGTERM did not force exit; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "forcing exit") {
		t.Fatalf("stderr missing forcing-exit line:\n%s", stderr.String())
	}
}

// TestTenantsAndResultCacheFlags boots the daemon with a tenants file and a
// result cache, exercises keyed auth (valid key, bad key 401) and the
// cache hit path end to end, then checks the shutdown summary lines.
func TestTenantsAndResultCacheFlags(t *testing.T) {
	dir := t.TempDir()
	tenantsPath := filepath.Join(dir, "tenants.conf")
	conf := "# test tenants\nacme sk-acme weight=3 rate=100 burst=50\nbeta sk-beta\n"
	if err := os.WriteFile(tenantsPath, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	var stdout bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- appMain([]string{
			"-listen", "127.0.0.1:0",
			"-benches", "libquantum",
			"-scale", "0.02",
			"-period", "512",
			"-workers", "2",
			"-tenants", tenantsPath,
			"-result-cache", filepath.Join(dir, "cache"),
		}, &stdout, &stderr)
	}()
	addr := waitForAddr(t, &stderr)
	baseURL := "http://" + addr

	keyed := func(key string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, baseURL+"/api/v1/figures/table1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	if resp, body := keyed("sk-bogus"); resp.StatusCode != 401 || !strings.Contains(body, "unauthorized") {
		t.Fatalf("bad key = %d body %s, want typed 401", resp.StatusCode, body)
	}
	resp, first := keyed("sk-acme")
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first keyed figure = %d X-Cache %q, want 200 miss", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, second := keyed("sk-beta")
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second keyed figure = %d X-Cache %q, want 200 hit (shared content address)", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if first != second {
		t.Fatal("cache hit body differs from the miss rendering")
	}
	if code, body := httpGet(t, baseURL+"/healthz"); code != 200 || !strings.Contains(body, `"tenants_keyed": 2`) {
		t.Fatalf("healthz = %d body %s, want tenants_keyed 2", code, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case exit := <-done:
		if exit != 0 {
			t.Fatalf("exit code = %d; stderr:\n%s", exit, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("drain never completed; stderr:\n%s", stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "loaded 2 keyed tenant(s)") {
		t.Fatalf("stderr missing tenant load line:\n%s", out)
	}
	if !strings.Contains(out, "# result cache: 1 hit(s), 1 miss(es), 0 corrupt, 0 quarantined") {
		t.Fatalf("stderr missing result cache summary:\n%s", out)
	}
}

// TestBadTenantsFileRejected: a malformed tenants file is a usage error
// before the listener opens.
func TestBadTenantsFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.conf")
	if err := os.WriteFile(path, []byte("acme\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer
	var stdout bytes.Buffer
	if code := appMain([]string{"-listen", "127.0.0.1:0", "-tenants", path}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, stderr.String())
	}
}
