// Command prefetchd serves the prefetchlab experiment engine as a hardened
// long-running HTTP service: figures, MRC/StatStack queries and mix
// simulations over HTTP, with admission control, per-request deadlines, a
// circuit breaker around the engine, and graceful drain on SIGTERM.
//
// Usage:
//
//	prefetchd [flags]
//
// Endpoints (see EXPERIMENTS.md for the full table):
//
//	GET /healthz                   liveness + breaker/drain state
//	GET /readyz                    readiness (503 while draining or breaker open)
//	GET /metrics                   Prometheus text exposition
//	GET /api/v1/figures            experiment catalog + default config
//	GET /api/v1/figures/{name}     run one experiment (CLI-identical bytes)
//	GET /api/v1/mrc                StatStack miss-ratio curve of one benchmark
//	GET /api/v1/mix                one co-run mix under selected policies
//	GET /api/v1/shards/run         execute a cluster sweep shard (-join only)
//	GET /api/v1/stats              stats registry with live server section
//	GET /api/v1/metrics            serving-layer counters
//
// The first SIGINT/SIGTERM drains: readiness fails, new heavy requests
// shed with 503, in-flight requests finish, then stats/trace files are
// flushed atomically and the checkpoint is closed so a restarted server
// resumes long sweeps. A second signal while draining forces immediate
// exit with a distinct exit code.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prefetchlab/internal/atomicio"
	"prefetchlab/internal/ckpt"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/faultinject"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/serve"
	"prefetchlab/internal/tenant"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// ForcedExitCode is the distinct exit code for a second SIGINT/SIGTERM
// delivered while the first drain is still in progress: the server is
// abandoned immediately instead of waiting on a stuck request.
const ForcedExitCode = 3

// forceExit is os.Exit behind a seam so the force-exit path is visible to
// tests (which exercise it through a helper subprocess).
var forceExit = os.Exit

// buildLogger assembles the structured logger from the -log-format and
// -log-level flags. Logs go to stderr alongside the daemon's lifecycle
// lines.
func buildLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// appMain is the whole daemon behind an injectable argv and output
// streams, so tests can drive it end to end; it returns the process exit
// code. The bound address is announced on stderr as "listening on <addr>"
// (so -listen 127.0.0.1:0 is testable).
func appMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefetchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen           = fs.String("listen", "127.0.0.1:8437", "address to serve the HTTP API on (host:port; port 0 picks a free port)")
		maxInflight      = fs.Int("max-inflight", 0, "concurrently executing engine-backed requests (0 = engine worker count)")
		queueDepth       = fs.Int("queue-depth", 0, "admitted requests allowed to wait for a slot; beyond this requests shed with 429 (0 = 2x max-inflight, -1 = no queue)")
		requestTimeout   = fs.Duration("request-timeout", 2*time.Minute, "default per-request deadline, propagated through the engine; expiry returns 504 (0 = none)")
		maxReqTimeout    = fs.Duration("max-request-timeout", 10*time.Minute, "upper bound on a client's ?timeout= override")
		breakerThreshold = fs.Int("breaker-threshold", 5, "consecutive engine failures/timeouts that open the circuit breaker (-1 disables)")
		breakerCooldown  = fs.Duration("breaker-cooldown", 10*time.Second, "open interval before the breaker admits a half-open probe")
		retryAfter       = fs.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
		drainTimeout     = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight requests before aborting them")
		tenantsFile      = fs.String("tenants", "", "multi-tenant config file: one `name key [weight=N] [rate=R] [burst=N] [max-inflight=N]` per line; requests authenticate with Authorization: Bearer or X-API-Key (empty = single anonymous tenant)")

		cacheDir       = fs.String("result-cache", "", "serve repeated heavy requests from a content-addressed result cache persisted in this directory (empty = memory-only when -result-cache-entries is set, else disabled)")
		cacheEntries   = fs.Int("result-cache-entries", 0, "in-memory result cache entries (0 with -result-cache selects 256; 0 without it disables caching)")
		cacheDiskBytes = fs.Int64("result-cache-disk-bytes", 0, "disk budget for the result cache directory before oldest entries are evicted (0 = unbounded)")

		scale   = fs.Float64("scale", 1.0, "workload iteration scale (1.0 = default run lengths)")
		mixes   = fs.Int("mixes", 45, "number of random 4-app mixes for fig7-fig11 (paper: 180)")
		seed    = fs.Int64("seed", 42, "random seed for mixes and inputs")
		period  = fs.Int64("period", 4096, "mean references between profile samples")
		workers = fs.Int("workers", 0, "experiment engine workers (0 = all CPUs; results are identical at any setting)")
		benches = fs.String("benches", "", "comma-separated benchmark subset for the single-thread studies (default: all)")
		tier    = fs.String("tier", "sim", "default prediction tier: sim, analytic or static (clients may override per request with ?tier=)")
		join    = fs.Bool("join", false, "serve GET /api/v1/shards/run so a prefetchlab -cluster coordinator can dispatch sweep shards to this worker")

		logFormat   = fs.String("log-format", "text", "structured log format: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowRequest = fs.Duration("slow-request", 30*time.Second, "promote access-log lines of requests at or above this duration to warning (0 disables)")

		statsJSON  = fs.String("stats-json", "", "write stats snapshots plus the server metrics section to this JSON file at shutdown (atomic replace)")
		traceOut   = fs.String("trace", "", "write a Chrome trace_event JSON of engine tasks and HTTP spans to this file at shutdown (atomic replace)")
		checkpoint = fs.String("checkpoint", "", "persist completed default-config task results here and replay them on restart; resumed sweeps are byte-identical")
		faults     = fs.String("faults", "", "inject deterministic task faults for chaos testing, e.g. panic=0.05,error=0.05,latency=0.01,seed=1")
		retries    = fs.Int("retries", 0, "extra attempts per failing engine task")
		budget     = fs.Int("failure-budget", 0, "failed cells absorbed per batch as explicit skips (-1 = unlimited, 0 = fail fast; defaults to -1 when -faults is set)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "prefetchd: unexpected arguments %q (the daemon takes only flags)\n", fs.Args())
		return 2
	}
	budgetSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "failure-budget" {
			budgetSet = true
		}
	})
	var benchList []string
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}
	if !experiments.ValidTier(*tier) {
		fmt.Fprintf(stderr, "prefetchd: unknown tier %q (want %s)\n",
			*tier, strings.Join(experiments.Tiers(), " or "))
		return 2
	}

	var fault sched.FaultHook
	var inj *faultinject.Injector
	if *faults != "" {
		spec, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintf(stderr, "prefetchd: %v\n", err)
			return 2
		}
		inj = faultinject.New(spec)
		fault = inj
		if !budgetSet {
			*budget = -1
		}
	}

	logger, err := buildLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "prefetchd: %v\n", err)
		return 2
	}

	// The Obs bundle always exists so /metrics exports live scheduler and
	// cache tallies; the stats registry and tracer inside it stay opt-in,
	// matching the CLI (a checkpoint always carries the stats registry so
	// replayed tasks restore their snapshots).
	o := &obs.Obs{}
	if *statsJSON != "" || *checkpoint != "" {
		o.Stats = obs.NewStats()
	}
	if *traceOut != "" {
		o.Trace = obs.NewTracer()
	}

	base := experiments.Options{
		Scale: *scale, Mixes: *mixes, Seed: *seed, SamplerPeriod: *period,
		Workers: *workers, Benches: benchList, Tier: *tier,
		Retries: *retries, FailureBudget: *budget, Fault: fault,
	}.Normalized()

	// The checkpoint fingerprint matches the CLI's scheme, so a sweep
	// started with `prefetchlab -checkpoint` can be resumed behind the
	// server (and vice versa) under the same configuration.
	var cp *ckpt.File
	if *checkpoint != "" {
		var err error
		cp, err = ckpt.Open(*checkpoint, serve.Fingerprint(base))
		if err != nil {
			fmt.Fprintf(stderr, "prefetchd: checkpoint: %v\n", err)
			return 1
		}
		cp.Each("stat", func(key string, index int, data []byte) {
			if snap, err := obs.DecodeSnapshot(data); err == nil {
				o.Stats.Record(key, snap)
			}
		})
		o.Stats.Persist = func(key string, data []byte) {
			cp.Append("stat", key, 0, data)
		}
	}

	// Tenant registry: API keys, per-tenant rate limits and fair-share
	// weights. Without -tenants every request is the unlimited anonymous
	// tenant — exactly the single-tenant behavior of earlier releases.
	var tenants *tenant.Registry
	if *tenantsFile != "" {
		var err error
		tenants, err = tenant.Load(*tenantsFile)
		if err != nil {
			fmt.Fprintf(stderr, "prefetchd: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "prefetchd: loaded %d keyed tenant(s) from %s\n", tenants.Keyed(), *tenantsFile)
	}

	// Result cache: -result-cache names the disk tier; -result-cache-entries
	// sizes the memory tier (defaulted when a directory is given).
	var cache *resultcache.Cache
	if *cacheDir != "" && *cacheEntries == 0 {
		*cacheEntries = 256
	}
	if *cacheEntries > 0 {
		var err error
		cache, err = resultcache.New(resultcache.Config{
			MaxEntries:   *cacheEntries,
			Dir:          *cacheDir,
			MaxDiskBytes: *cacheDiskBytes,
			Obs:          o,
		})
		if err != nil {
			fmt.Fprintf(stderr, "prefetchd: result cache: %v\n", err)
			return 1
		}
	}

	srv := serve.New(serve.Config{
		Base:              base,
		Obs:               o,
		Checkpoint:        cp,
		Tenants:           tenants,
		Cache:             cache,
		MaxInflight:       *maxInflight,
		QueueDepth:        *queueDepth,
		RequestTimeout:    *requestTimeout,
		MaxRequestTimeout: *maxReqTimeout,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		RetryAfter:        *retryAfter,
		Log:               stderr,
		Logger:            logger,
		SlowRequest:       *slowRequest,
		Worker:            *join,
	})

	// Request contexts derive from baseCtx: when a drain times out, the
	// cancel propagates through sched and in-flight engine work stops at
	// the next task boundary instead of running unattended.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "prefetchd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "prefetchd: listening on %s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	runDone := make(chan struct{})
	defer close(runDone)

	code := 0
	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(stderr, "prefetchd: %v\n", err)
			code = 1
		}
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "prefetchd: %v: draining (in-flight requests finish, new requests shed)\n", sig)
		srv.SetDraining(true)
		// A second signal while draining forces immediate exit with a
		// distinct code, so a wedged request can never hold shutdown
		// hostage.
		go func() {
			select {
			case <-sigCh:
				fmt.Fprintln(stderr, "prefetchd: second signal while draining: forcing exit")
				forceExit(ForcedExitCode)
			case <-runDone:
			}
		}()
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := hs.Shutdown(dctx)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "prefetchd: drain timeout after %s: aborting in-flight requests\n", *drainTimeout)
			cancelBase()
			hs.Close()
			code = 1
		}
	}
	cancelBase()

	// Flush observability artifacts atomically and close the checkpoint —
	// the restart path depends on these being complete or absent, never
	// truncated.
	srv.PublishMetrics()
	o.PublishFaults()
	if o.Stats != nil && *statsJSON != "" {
		if err := atomicio.WriteFile(*statsJSON, o.Stats.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "prefetchd: %v\n", err)
			code = 1
		}
	}
	if o.Trace != nil && *traceOut != "" {
		if err := atomicio.WriteFile(*traceOut, o.Trace.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "prefetchd: %v\n", err)
			code = 1
		}
	}
	if inj != nil {
		fmt.Fprintf(stderr, "# faults: %s\n", inj)
	}
	if sum := o.FaultSummary(); sum != "" {
		fmt.Fprintf(stderr, "# engine: %s\n", sum)
	}
	if cp != nil {
		fmt.Fprintf(stderr, "# checkpoint: replayed %d record(s), appended %d to %s\n",
			cp.Replayed(), cp.Appended(), *checkpoint)
		if err := cp.Close(); err != nil {
			fmt.Fprintf(stderr, "prefetchd: checkpoint: %v\n", err)
			code = 1
		}
	}
	if cache.Enabled() {
		cs := cache.Stats()
		fmt.Fprintf(stderr, "# result cache: %d hit(s), %d miss(es), %d corrupt, %d quarantined\n",
			cs.Hits, cs.Misses, cs.Corrupt, cs.Quarantined)
	}
	snap := srv.MetricsSnapshot()
	fmt.Fprintf(stderr, "prefetchd: served %d request(s): %d ok, %d shed, %d timeout, %d error; breaker %s\n",
		snap.Requests, snap.OK, snap.Shed429+snap.Shed503, snap.Timeout504, snap.Errors500, snap.Breaker.State)
	if code == 0 {
		fmt.Fprintln(stderr, "prefetchd: drained cleanly")
	}
	return code
}
