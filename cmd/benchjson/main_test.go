package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: prefetchlab
cpu: Test CPU @ 2.00GHz
BenchmarkFig8DetailMix-8   	       2	 512345678 ns/op	 1234567 B/op	    4321 allocs/op
BenchmarkTable1Coverage-8  	       1	1987654321 ns/op
BenchmarkFig4Speedup-8     	       1	 800000000 ns/op	        12.50 amd-swnt-ws-%	         9.75 amd-hw-ws-%	  777216 B/op	    2048 allocs/op
PASS
ok  	prefetchlab	3.210s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "prefetchlab" {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	// Sorted by name: Fig4 before Fig8 before Table1.
	b0, b1, b2 := doc.Benchmarks[0], doc.Benchmarks[1], doc.Benchmarks[2]
	if b0.Name != "BenchmarkFig4Speedup" || b1.Name != "BenchmarkFig8DetailMix" || b2.Name != "BenchmarkTable1Coverage" {
		t.Errorf("order = %q, %q, %q", b0.Name, b1.Name, b2.Name)
	}
	if b1.Iterations != 2 || b1.NsPerOp != 512345678 || b1.BytesPerOp != 1234567 || b1.AllocsPerOp != 4321 {
		t.Errorf("fig8 = %+v", b1)
	}
	if b2.BytesPerOp != 0 || b2.AllocsPerOp != 0 {
		t.Errorf("table1 should have no memstats: %+v", b2)
	}
	// Custom units from b.ReportMetric land in Metrics; memstats still parse.
	if b0.Metrics["amd-swnt-ws-%"] != 12.50 || b0.Metrics["amd-hw-ws-%"] != 9.75 {
		t.Errorf("fig4 metrics = %+v", b0.Metrics)
	}
	if b0.BytesPerOp != 777216 || b0.AllocsPerOp != 2048 {
		t.Errorf("fig4 memstats = %+v", b0)
	}
}

func TestParseRerunsSupersede(t *testing.T) {
	in := "BenchmarkX-4 1 100 ns/op\nBenchmarkX-4 1 200 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].NsPerOp != 200 {
		t.Errorf("benchmarks = %+v", doc.Benchmarks)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("random text\n--- PASS: TestFoo\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v", doc.Benchmarks)
	}
	if doc.Benchmarks == nil {
		t.Error("benchmarks must marshal as [], not null")
	}
}

func TestMissingRequiredBenchmarks(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// All present: no complaints, whitespace and empty items tolerated.
	if m := missing(doc, " BenchmarkFig8DetailMix , BenchmarkTable1Coverage ,"); m != nil {
		t.Errorf("missing = %v, want none", m)
	}
	// A dropped benchmark is reported by name, in list order.
	m := missing(doc, "BenchmarkTable1Coverage,BenchmarkGone,BenchmarkAlsoGone")
	if len(m) != 2 || m[0] != "BenchmarkGone" || m[1] != "BenchmarkAlsoGone" {
		t.Errorf("missing = %v, want [BenchmarkGone BenchmarkAlsoGone]", m)
	}
	// No require list means no check.
	if m := missing(doc, ""); m != nil {
		t.Errorf("missing with empty list = %v", m)
	}
}
