// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so CI can archive benchmark results as a
// machine-readable artifact (BENCH_PR2.json) and diff them across runs.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_PR6.json
//
// Benchmarks are keyed by name with the -N CPU suffix stripped and sorted,
// so the output is diff-friendly: reordering or interleaving in the bench
// run does not change the document.
//
// The -require flag takes a comma-separated list of benchmark names that
// must appear in the input; any missing name is a fatal error. CI passes
// the tier-1 benchmark set here, so a renamed or silently dropped
// benchmark fails the nightly job instead of shrinking the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics carries any custom units reported
// via b.ReportMetric (the experiment benchmarks report figure headline
// numbers this way, e.g. "amd-swnt-ws-%").
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the exported JSON shape.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// parseBenchLine parses one "BenchmarkName[-N] iters v1 unit1 v2 unit2 …"
// line: the iteration count followed by (value, unit) pairs, as the testing
// package prints them (ns/op, then any b.ReportMetric units in sorted
// order, then -benchmem's B/op and allocs/op).
func parseBenchLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields)%2 != 0 {
		return Result{}, false, nil
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -N GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // e.g. "--- BENCH:" context lines
	}
	res := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchjson: bad value in %q: %w", line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, true, nil
}

// parse reads go-test bench output and builds the document. Later results
// for the same benchmark name overwrite earlier ones (re-runs supersede).
func parse(r io.Reader) (Document, error) {
	doc := Document{Benchmarks: []Result{}}
	byName := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		res, ok, err := parseBenchLine(line)
		if err != nil {
			return doc, err
		}
		if ok {
			byName[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		doc.Benchmarks = append(doc.Benchmarks, byName[n])
	}
	return doc, nil
}

// missing returns the names from the comma-separated require list that are
// absent from the parsed document, in list order.
func missing(doc Document, require string) []string {
	present := make(map[string]bool, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		present[b.Name] = true
	}
	var out []string
	for _, n := range strings.Split(require, ",") {
		if n = strings.TrimSpace(n); n != "" && !present[n] {
			out = append(out, n)
		}
	}
	return out
}

func main() {
	require := flag.String("require", "",
		"comma-separated benchmark names that must appear in the input; any missing name is a fatal error")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Validate after emitting: the artifact is still written for forensics,
	// the job still fails.
	if miss := missing(doc, *require); len(miss) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required benchmark(s) missing from input: %s\n",
			strings.Join(miss, ", "))
		os.Exit(1)
	}
}
