// Command prefetchlint is the repo's invariant gate: a multichecker that
// runs the five internal/lint analyzers — detrand, ctxflow, nopanic,
// obssafe, errwrap — over the packages matching its argument patterns and
// exits nonzero if any violation survives `// lint:allow` suppression. CI
// runs `prefetchlint ./...` as a merge gate next to go vet.
//
// Usage:
//
//	prefetchlint [-list] [-only name,name] [packages]
//
// With no patterns it checks ./....
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefetchlab/internal/lint"
	"prefetchlab/internal/lint/ctxflow"
	"prefetchlab/internal/lint/detrand"
	"prefetchlab/internal/lint/errwrap"
	"prefetchlab/internal/lint/nopanic"
	"prefetchlab/internal/lint/obssafe"
)

var analyzers = []*lint.Analyzer{
	ctxflow.Analyzer,
	detrand.Analyzer,
	errwrap.Analyzer,
	nopanic.Analyzer,
	obssafe.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("prefetchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and their invariants, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-8s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "prefetchlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "prefetchlint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(stderr, "prefetchlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "prefetchlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
