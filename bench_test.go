package prefetchlab

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its artifact end to end at a reduced scale (the shapes are
// scale-stable because working-set:cache ratios are fixed) and reports the
// headline quantities as custom metrics. Run everything with
//
//	go test -bench=. -benchmem
//
// and use cmd/prefetchlab for full-scale runs.

import (
	"bytes"
	"context"
	"testing"

	"prefetchlab/internal/analytic"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/staticprof"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/stridecentric"
)

// benchSession builds a session sized for benchmarking.
func benchSession(b *testing.B, benches ...string) *experiments.Session {
	b.Helper()
	return experiments.NewSession(experiments.Options{
		Scale:         0.1,
		Mixes:         2,
		Seed:          17,
		SamplerPeriod: 2048,
		Out:           &bytes.Buffer{},
		Benches:       benches,
	})
}

// fastSet is a representative benchmark subset keeping bench runtime sane:
// a streamer, a mixed strided/irregular code, a pointer chaser and the
// prefetcher-hostile genetic algorithm.
var fastSet = []string{"libquantum", "mcf", "omnetpp", "cigar"}

// BenchmarkTable1Coverage regenerates Table I (prefetch coverage and
// overhead, MDDLI-filtered vs stride-centric).
func BenchmarkTable1Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, fastSet...)
		r, err := s.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgMDDLICov*100, "mddli-cov-%")
		b.ReportMetric(r.AvgStrideCov*100, "stride-cov-%")
		b.ReportMetric(r.PrefReduction*100, "pref-reduction-%")
	}
}

// BenchmarkFig3MRC regenerates Figure 3 (StatStack miss-ratio curves for
// mcf, application average and one load).
func BenchmarkFig3MRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Average[0]*100, "mr-8k-%")
		b.ReportMetric(r.Average[len(r.Average)-1]*100, "mr-8M-%")
	}
}

// BenchmarkFig4Speedup regenerates Figure 4 (single-thread speedups of the
// four policies on both machines).
func BenchmarkFig4Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, fastSet...)
		r, err := s.Fig456(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		amd := r.Machines[0]
		b.ReportMetric(amd.AvgSpeedup[pipeline.HWPref]*100, "amd-hw-%")
		b.ReportMetric(amd.AvgSpeedup[pipeline.SWPrefNT]*100, "amd-swnt-%")
	}
}

// BenchmarkFig5Traffic regenerates Figure 5 (off-chip traffic increase).
func BenchmarkFig5Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, fastSet...)
		r, err := s.Fig456(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		amd := r.Machines[0]
		b.ReportMetric(amd.AvgTraffic[pipeline.HWPref]*100, "amd-hw-traffic-%")
		b.ReportMetric(amd.AvgTraffic[pipeline.SWPrefNT]*100, "amd-swnt-traffic-%")
		b.ReportMetric(r.HWTrafficReductionNT(0)*100, "nt-vs-hw-reduction-%")
	}
}

// BenchmarkFig6Bandwidth regenerates Figure 6 (average off-chip bandwidth).
func BenchmarkFig6Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, fastSet...)
		r, err := s.Fig456(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Machines[0].AvgBaseBW, "amd-base-GB/s")
		b.ReportMetric(r.Machines[0].AvgBW[pipeline.HWPref], "amd-hw-GB/s")
	}
}

// BenchmarkFig7Mixes regenerates Figure 7 (weighted-speedup and traffic
// distributions across random 4-app mixes on both machines).
func BenchmarkFig7Mixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		amd := r.Studies[0]
		b.ReportMetric(amd.WSDist(pipeline.SWPrefNT).Mean()*100, "amd-swnt-ws-%")
		b.ReportMetric(amd.WSDist(pipeline.HWPref).Mean()*100, "amd-hw-ws-%")
		b.ReportMetric(amd.TrafficDist(pipeline.SWPrefNT).Mean()*100, "amd-swnt-traffic-%")
	}
}

// BenchmarkFig8DetailMix regenerates Figure 8 (the cigar/gcc/lbm/libquantum
// mix on Intel).
func BenchmarkFig8DetailMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SWNTAvg*100, "swnt-ws-%")
		b.ReportMetric(r.HWAvg*100, "hw-ws-%")
		b.ReportMetric(r.SWNTBandwidth, "swnt-GB/s")
	}
}

// BenchmarkFig9DiffInputs regenerates Figure 9 (mixes run with inputs other
// than the profiled one).
func BenchmarkFig9DiffInputs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		amd := r.Studies[0]
		b.ReportMetric(amd.WSDist(pipeline.SWPrefNT).Mean()*100, "amd-swnt-ws-%")
	}
}

// BenchmarkFig10FairSpeedup regenerates Figure 10 (fair speedup averages).
func BenchmarkFig10FairSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SWNT[0], "amd-swnt-fs")
		b.ReportMetric(r.HW[0], "amd-hw-fs")
	}
}

// BenchmarkFig11QoS regenerates Figure 11 (QoS degradation averages).
func BenchmarkFig11QoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig11(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SWNT[0]*100, "amd-swnt-qos-%")
		b.ReportMetric(r.HW[0]*100, "amd-hw-qos-%")
	}
}

// BenchmarkFig12Parallel regenerates Figure 12 (parallel workloads at 1, 2
// and 4 threads on Intel).
func BenchmarkFig12Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.Fig12(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSWNT4, "swnt-4t-speedup")
		b.ReportMetric(r.AvgHW4, "hw-4t-speedup")
	}
}

// BenchmarkStatStackCoverage regenerates the §IV model-validation numbers
// (miss coverage vs functional simulation at 64 kB and 512 kB).
func BenchmarkStatStackCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, fastSet...)
		r, err := s.StatCoverage(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Avg64k*100, "cov-64k-%")
		b.ReportMetric(r.Avg512*100, "cov-512k-%")
	}
}

// BenchmarkAblationCombined regenerates the §VIII-B2 observation that
// combining software and hardware prefetching can hurt.
func BenchmarkAblationCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b, "libquantum", "cigar")
		r, err := s.AblationCombined(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.WorseCount), "combination-worse-cases")
	}
}

// BenchmarkAblationL2 regenerates the §VII-A "prefetches from L2 alone"
// observation.
func BenchmarkAblationL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.AblationL2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Speedup*100, "libquantum-l2-%")
	}
}

// BenchmarkPipelineOverhead measures the analysis pipeline itself — the
// paper's point that profiling + modeling is fast (StatStack models a
// benchmark in under a minute; here it is milliseconds).
func BenchmarkPipelineOverhead(b *testing.B) {
	prog, err := Workload("mcf", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	mach := AMDPhenomII()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := NewProfile(prog, DefaultProfileConfig())
		if err != nil {
			b.Fatal(err)
		}
		plan, err := prof.Analyze(mach, AnalyzeOptions{EnableNT: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Apply(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in memory
// references per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := Workload("libquantum", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	mach := AMDPhenomII()
	b.ResetTimer()
	var refs int64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(prog, mach, SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		refs += res.MemRefs
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkAblationThrottle regenerates the hardware-prefetch throttling
// ablation (§I's observation that throttling still wastes traffic).
func BenchmarkAblationThrottle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.AblationThrottle(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TrafficThrottled*100, "throttled-traffic-%")
		b.ReportMetric(r.TrafficUnthrottled*100, "unthrottled-traffic-%")
	}
}

// BenchmarkAblationWindow regenerates the reorder-window (MLP) sensitivity
// sweep of the timing model.
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(b)
		r, err := s.AblationWindow(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SWNT[0]*100, "swnt-at-win32-%")
		b.ReportMetric(r.SWNT[len(r.SWNT)-1]*100, "swnt-at-win512-%")
	}
}

// BenchmarkAnalyticMRC measures one warm analytic-tier solo prediction:
// the shared-LLC fixed point from a cached StatStack model, the unit of
// work behind `-tier=analytic` once a benchmark is profiled. Compare
// ns/op against BenchmarkSimulatorThroughput's full timing simulation of
// the same benchmark — the measured gap is the tier's speedup headline.
func BenchmarkAnalyticMRC(b *testing.B) {
	s := benchSession(b)
	core, err := s.AnalyticCore(context.Background(), "libquantum")
	if err != nil {
		b.Fatal(err)
	}
	mach := AMDPhenomII()
	b.ResetTimer()
	var cpi float64
	for i := 0; i < b.N; i++ {
		pred := analytic.Predict(mach, []analytic.Core{core})
		if len(pred.Cores) != 1 {
			b.Fatal("no prediction")
		}
		cpi = pred.Cores[0].CPI
	}
	b.ReportMetric(cpi, "pred-cpi")
}

// BenchmarkStaticProfile measures one cold zero-execution static analysis
// of libquantum — the unit of work behind `-tier=static` and `?tier=static`:
// abstract interpretation of the compiled IR plus the closed-form reuse
// model, with no execution or sampling. Compare ns/op against
// BenchmarkPipelineOverhead's sampled profiling — the gap is the static
// tier's speedup headline.
func BenchmarkStaticProfile(b *testing.B) {
	prog, err := Workload("libquantum", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := isa.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	sizes := statstack.StandardSizes()
	b.ResetTimer()
	var mr float64
	for i := 0; i < b.N; i++ {
		prof, err := staticprof.Analyze(c, stridecentric.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		mrc := prof.MRC(sizes)
		mr = mrc[0]
	}
	b.ReportMetric(mr*100, "static-mr-at-8K-%")
}

// BenchmarkAnalyticMix measures a warm four-application mix prediction:
// the contended shared-LLC/bandwidth fixed point across the fastSet,
// which replaces a four-core co-run timing simulation under
// `-tier=analytic`.
func BenchmarkAnalyticMix(b *testing.B) {
	s := benchSession(b)
	cores := make([]analytic.Core, len(fastSet))
	for i, name := range fastSet {
		c, err := s.AnalyticCore(context.Background(), name)
		if err != nil {
			b.Fatal(err)
		}
		cores[i] = c
	}
	mach := AMDPhenomII()
	b.ResetTimer()
	var sd float64
	for i := 0; i < b.N; i++ {
		pred := analytic.Predict(mach, cores)
		if len(pred.Cores) != len(fastSet) {
			b.Fatal("short prediction")
		}
		sd = 0
		for _, c := range pred.Cores {
			sd += c.Slowdown
		}
	}
	b.ReportMetric(sd/float64(len(fastSet)), "mean-slowdown")
}
