// Package core implements the paper's primary contribution: the analysis
// pipeline that turns sampling output and StatStack miss-ratio curves into
// a resource-efficient software prefetching plan.
//
// The passes mirror Figure 1 of the paper:
//
//  1. model-driven delinquent load identification (MDDLI, §V) — a
//     cost/benefit filter selecting loads whose L1 miss ratio is high enough
//     that prefetching pays for its own instruction overhead;
//  2. stride analysis (§VI) — line-granular grouping of per-instruction
//     stride samples with a 70 % dominance rule;
//  3. prefetch-distance computation (§VI-A) — scheduling the prefetch far
//     enough ahead to hide the average memory latency;
//  4. cache-bypass analysis (§VI-B, after Sandberg et al. SC'10) — marking
//     prefetches non-temporal when none of the load's data-reusing
//     instructions re-use data out of the L2/LLC;
//  5. prefetch insertion (§VI-C) — `prefetch[nta] distance(base)` placed
//     directly after the load (performed by isa.InsertPrefetches).
package core

import (
	"fmt"
	"sort"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
)

// Params configures the analysis for a target machine.
type Params struct {
	// Alpha is the cost of executing one prefetch instruction, in cycles.
	// The paper measured 1 cycle using ineffective prefetches (§V).
	Alpha float64

	// Cache sizes of the target machine (bytes). The analysis is
	// architecture-independent: one sampling profile serves any target.
	L1Size, L2Size, LLCSize int64

	// Hit/memory latencies of the target (cycles), used to estimate the
	// average latency per L1 miss from the modelled MRCs when no measured
	// value is available.
	L2Lat, LLCLat, MemLat int64

	// MissLat is the measured average latency per L1 miss (performance
	// counters on the target, §V). If zero, it is estimated per load from
	// the MRC and the latency parameters above.
	MissLat float64

	// Delta is the measured average cycles per memory operation (§VI-A).
	// If zero, DefaultDelta is used.
	Delta float64

	// DominantFrac is the fraction of stride samples that must fall in one
	// line-granular stride group for the load to count as regular (0.70).
	DominantFrac float64

	// MinStrideSamples is the minimum number of stride samples required
	// before the stride analysis trusts a load.
	MinStrideSamples int

	// BypassEps is the absolute MRC drop between the L1 and LLC points
	// below which a data-reusing load is considered to not re-use data from
	// L2/LLC (§VI-B: "the miss ratio curve will not drop between L1$ and
	// LLC").
	BypassEps float64

	// EnableNT enables the cache-bypass analysis ("Soft. Pref.+NT"); when
	// false every insertion uses a normal prefetch ("Software Pref.").
	EnableNT bool
}

// DefaultDelta is the fallback average cycles per memory operation.
const DefaultDelta = 2.0

// DefaultParams returns the paper's analysis constants for a target with
// the given cache sizes and latencies.
func DefaultParams(l1, l2, llc int64, l2Lat, llcLat, memLat int64) Params {
	return Params{
		Alpha:            1,
		L1Size:           l1,
		L2Size:           l2,
		LLCSize:          llc,
		L2Lat:            l2Lat,
		LLCLat:           llcLat,
		MemLat:           memLat,
		DominantFrac:     0.70,
		MinStrideSamples: 4,
		BypassEps:        0.02,
		EnableNT:         true,
	}
}

// Decision explains why a load was or was not selected.
type Decision string

// Decision values, in pipeline order.
const (
	DecisionNoSamples    Decision = "no-reuse-samples"
	DecisionNotDelinq    Decision = "fails-cost-benefit"
	DecisionFewStrides   Decision = "too-few-stride-samples"
	DecisionIrregular    Decision = "no-dominant-stride"
	DecisionZeroStride   Decision = "dominant-stride-zero"
	DecisionTinyLoop     Decision = "loop-too-short"
	DecisionInsertNormal Decision = "insert"
	DecisionInsertNTA    Decision = "insert-nta"
)

// LoadInfo records the analysis outcome for one load instruction.
type LoadInfo struct {
	PC       ref.PC
	MRL1     float64
	MRL2     float64
	MRLLC    float64
	MissLat  float64 // latency per L1 miss used in the cost/benefit test
	Samples  int64   // reuse samples backing the MRC
	Strides  int     // stride samples observed
	Stride   int64   // selected stride (0 if none)
	Distance int64   // prefetch distance in bytes (signed)
	NTA      bool
	Decision Decision
}

// Inserted reports whether the analysis scheduled a prefetch for the load.
func (li LoadInfo) Inserted() bool {
	return li.Decision == DecisionInsertNormal || li.Decision == DecisionInsertNTA
}

// Plan is the analysis output: the prefetches to insert plus a per-load
// audit trail.
type Plan struct {
	Insertions []isa.Insertion
	Loads      []LoadInfo
}

// Apply rewrites the program with the plan's insertions.
func (p *Plan) Apply(prog *isa.Program) (*isa.Program, error) {
	return isa.InsertPrefetches(prog, p.Insertions)
}

// InsertedCount returns the number of prefetches the plan schedules.
func (p *Plan) InsertedCount() int { return len(p.Insertions) }

// String summarizes the plan.
func (p *Plan) String() string {
	nta := 0
	for _, i := range p.Insertions {
		if i.NTA {
			nta++
		}
	}
	return fmt.Sprintf("plan: %d prefetches (%d non-temporal) over %d analyzed loads",
		len(p.Insertions), nta, len(p.Loads))
}

// Analyze runs the full pipeline over one program's profile for one target
// machine and returns the prefetching plan.
//
// c is the compiled program (for per-PC metadata: base registers, loop trip
// counts); model is the fitted StatStack model; samples is the sampling
// pass output (stride samples and reuse edges).
func Analyze(c *isa.Compiled, model *statstack.Model, samples *sampler.Samples, p Params) *Plan {
	if p.Alpha <= 0 {
		p.Alpha = 1
	}
	if p.DominantFrac <= 0 {
		p.DominantFrac = 0.70
	}
	if p.MinStrideSamples <= 0 {
		p.MinStrideSamples = 4
	}
	delta := p.Delta
	if delta <= 0 {
		delta = DefaultDelta
	}

	stridesByPC := samples.StridesByPC()
	edges := samples.ReuseEdges()
	plan := &Plan{}

	for pc := ref.PC(0); int(pc) < c.NumDemandPCs; pc++ {
		info := c.PCs[pc]
		if info.Op != isa.OpLoad {
			continue // the paper prefetches for loads
		}
		li := LoadInfo{PC: pc, Samples: model.PCSampleCount(pc)}

		mr1, ok := model.PCMissRatio(pc, p.L1Size)
		if !ok {
			li.Decision = DecisionNoSamples
			plan.Loads = append(plan.Loads, li)
			continue
		}
		mr2, _ := model.PCMissRatio(pc, p.L2Size)
		mrl, _ := model.PCMissRatio(pc, p.LLCSize)
		li.MRL1, li.MRL2, li.MRLLC = mr1, mr2, mrl

		// --- MDDLI cost/benefit (§V): MR_A(D$) > α / latency.
		lat := p.MissLat
		if lat <= 0 {
			lat = estimateMissLat(mr1, mr2, mrl, p)
		}
		li.MissLat = lat
		if lat <= 0 || mr1 <= p.Alpha/lat {
			li.Decision = DecisionNotDelinq
			plan.Loads = append(plan.Loads, li)
			continue
		}

		// --- Stride analysis (§VI).
		ss := stridesByPC[pc]
		li.Strides = len(ss)
		if len(ss) < p.MinStrideSamples {
			li.Decision = DecisionFewStrides
			plan.Loads = append(plan.Loads, li)
			continue
		}
		stride, recurrence, ok := DominantStride(ss, p.DominantFrac)
		if !ok {
			li.Decision = DecisionIrregular
			plan.Loads = append(plan.Loads, li)
			continue
		}
		if stride == 0 {
			li.Decision = DecisionZeroStride
			plan.Loads = append(plan.Loads, li)
			continue
		}
		li.Stride = stride

		// --- Prefetch distance (§VI-A).
		dist, ok := Distance(stride, recurrence, delta, lat, info.LoopCount)
		if !ok {
			li.Decision = DecisionTinyLoop
			plan.Loads = append(plan.Loads, li)
			continue
		}
		li.Distance = dist

		// --- Cache bypassing (§VI-B).
		nta := false
		if p.EnableNT {
			nta = Bypassable(pc, edges, model, p)
		}
		li.NTA = nta
		if nta {
			li.Decision = DecisionInsertNTA
		} else {
			li.Decision = DecisionInsertNormal
		}
		plan.Loads = append(plan.Loads, li)
		plan.Insertions = append(plan.Insertions, isa.Insertion{PC: pc, Distance: dist, NTA: nta})
	}
	return plan
}

// estimateMissLat derives the average latency per L1 miss of a load from
// its modelled MRC: misses served by L2, LLC and DRAM in proportion to the
// MRC drops between the level sizes.
func estimateMissLat(mr1, mr2, mrl float64, p Params) float64 {
	if mr1 <= 0 {
		return 0
	}
	// Clamp for modelling noise: MRCs are monotone in theory.
	if mr2 > mr1 {
		mr2 = mr1
	}
	if mrl > mr2 {
		mrl = mr2
	}
	l2Frac := (mr1 - mr2) / mr1
	llcFrac := (mr2 - mrl) / mr1
	memFrac := mrl / mr1
	return l2Frac*float64(p.L2Lat) + llcFrac*float64(p.LLCLat) + memFrac*float64(p.MemLat)
}

// SortLoadsByMisses orders load infos by modelled L1 miss contribution
// (MRL1 × sample count), descending — a readable report order.
func SortLoadsByMisses(loads []LoadInfo) {
	sort.Slice(loads, func(i, j int) bool {
		wi := loads[i].MRL1 * float64(loads[i].Samples)
		wj := loads[j].MRL1 * float64(loads[j].Samples)
		if wi != wj {
			return wi > wj
		}
		return loads[i].PC < loads[j].PC
	})
}
