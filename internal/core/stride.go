package core

import "prefetchlab/internal/sampler"

// lineBucket maps a byte stride to its cache-line-granular stride group
// (floor division, so descending strides group separately from ascending
// ones). Strides "of similar size that are likely to fall in the same cache
// line" share a bucket (§VI).
func lineBucket(stride int64) int64 {
	if stride >= 0 {
		return stride / 64
	}
	return -((-stride + 63) / 64)
}

// DominantStride implements the paper's stride analysis (§VI): group the
// load's stride samples at cache-line granularity; if more than
// dominantFrac of the samples fall in one group, the load has a regular
// stride and the most frequent exact stride in the dominant group is
// selected. The mean recurrence (intervening references between successive
// executions) over the dominant group's samples is returned alongside.
func DominantStride(ss []sampler.StrideSample, dominantFrac float64) (stride int64, recurrence float64, ok bool) {
	if len(ss) == 0 {
		return 0, 0, false
	}
	groups := make(map[int64]int)
	for _, s := range ss {
		groups[lineBucket(s.Stride)]++
	}
	var bestBucket int64
	best := 0
	for b, n := range groups {
		if n > best || (n == best && b < bestBucket) {
			best = n
			bestBucket = b
		}
	}
	if float64(best) <= dominantFrac*float64(len(ss)) {
		return 0, 0, false
	}
	// Most frequent exact stride within the dominant group, and the mean
	// recurrence over that group.
	exact := make(map[int64]int)
	var recSum float64
	var recN int
	for _, s := range ss {
		if lineBucket(s.Stride) != bestBucket {
			continue
		}
		exact[s.Stride]++
		recSum += float64(s.Recurrence)
		recN++
	}
	bestN := 0
	for v, n := range exact {
		if n > bestN || (n == bestN && v < stride) {
			bestN = n
			stride = v
		}
	}
	if recN == 0 {
		return 0, 0, false
	}
	return stride, recSum / float64(recN), true
}
