package core

import (
	"prefetchlab/internal/ref"
	"prefetchlab/internal/statstack"
)

// Bypassable implements the cache-bypass analysis of §VI-B (after Sandberg
// et al., SC 2010). For a prefetchable load A it inspects the data-reusing
// instructions — those that the reuse samples show touching A's cache lines
// directly after A — and asks whether any of them re-uses data out of the
// L2 or LLC. A load re-uses from those levels iff its miss-ratio curve
// drops between the L1 and LLC size points (Figure 3). If no data-reusing
// load does, A's prefetch can be marked non-temporal: the data would not
// have been served from L2/LLC anyway, so bypassing them keeps other useful
// data cached longer and avoids LLC pollution.
//
// Loads with no reuse-edge information are conservatively kept temporal.
func Bypassable(pc ref.PC, edges map[ref.PC]map[ref.PC]int, model *statstack.Model, p Params) bool {
	reusers := edges[pc]
	if len(reusers) == 0 {
		return false
	}
	for b := range reusers {
		mr1, ok := model.PCMissRatio(b, p.L1Size)
		if !ok {
			// A reuser we cannot model: be conservative and keep the data
			// in the hierarchy.
			return false
		}
		mrl, _ := model.PCMissRatio(b, p.LLCSize)
		if mr1-mrl > p.BypassEps {
			return false // b re-uses data from L2/LLC
		}
	}
	return true
}
