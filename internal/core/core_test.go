package core

import (
	"testing"
	"testing/quick"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
)

func TestLineBucket(t *testing.T) {
	cases := map[int64]int64{
		0: 0, 8: 0, 63: 0, 64: 1, 96: 1, 128: 2,
		-1: -1, -64: -1, -65: -2, -8: -1,
	}
	for stride, want := range cases {
		if got := lineBucket(stride); got != want {
			t.Errorf("lineBucket(%d) = %d, want %d", stride, got, want)
		}
	}
}

func strideSamples(stride int64, rec int64, n int) []sampler.StrideSample {
	out := make([]sampler.StrideSample, n)
	for i := range out {
		out[i] = sampler.StrideSample{PC: 1, Stride: stride, Recurrence: rec}
	}
	return out
}

func TestDominantStride(t *testing.T) {
	// 80 % at stride 64, 20 % random: dominant.
	ss := strideSamples(64, 3, 8)
	ss = append(ss, sampler.StrideSample{PC: 1, Stride: 1000, Recurrence: 3})
	ss = append(ss, sampler.StrideSample{PC: 1, Stride: -7000, Recurrence: 3})
	stride, rec, ok := DominantStride(ss, 0.70)
	if !ok || stride != 64 {
		t.Fatalf("stride = %d (ok=%v), want 64", stride, ok)
	}
	if rec != 3 {
		t.Fatalf("recurrence = %g, want 3", rec)
	}
}

func TestDominantStrideSeventyPercentRule(t *testing.T) {
	// Exactly 70 % must NOT pass (the paper requires more than 70 %).
	ss := strideSamples(64, 1, 7)
	for i := 0; i < 3; i++ {
		ss = append(ss, sampler.StrideSample{PC: 1, Stride: int64(10000 * (i + 1))})
	}
	if _, _, ok := DominantStride(ss, 0.70); ok {
		t.Fatal("70 % exactly should not count as dominant")
	}
	ss = append(ss, strideSamples(64, 1, 1)...) // now 8/11 ≈ 73 %
	if _, _, ok := DominantStride(ss, 0.70); !ok {
		t.Fatal("73 % should be dominant")
	}
}

func TestDominantStrideGroupsSubLine(t *testing.T) {
	// Strides 8, 16, 24 all fall in line-bucket 0; most frequent exact
	// stride must be selected.
	var ss []sampler.StrideSample
	for i := 0; i < 5; i++ {
		ss = append(ss, sampler.StrideSample{PC: 1, Stride: 8, Recurrence: 2})
	}
	for i := 0; i < 3; i++ {
		ss = append(ss, sampler.StrideSample{PC: 1, Stride: 16, Recurrence: 2})
	}
	stride, _, ok := DominantStride(ss, 0.70)
	if !ok || stride != 8 {
		t.Fatalf("stride = %d (ok=%v), want 8", stride, ok)
	}
}

func TestDominantStrideEmpty(t *testing.T) {
	if _, _, ok := DominantStride(nil, 0.7); ok {
		t.Fatal("empty sample set cannot be dominant")
	}
}

func TestDistanceLargeStride(t *testing.T) {
	// stride 128 B, recurrence 4 refs, Δ=2 → d=8 cycles; l=200 →
	// ceil(200/8)=25 strides = 3200 B.
	d, ok := Distance(128, 4, 2, 200, 1<<20)
	if !ok || d != 25*128 {
		t.Fatalf("distance = %d (ok=%v), want %d", d, ok, 25*128)
	}
}

func TestDistanceSubLineStride(t *testing.T) {
	// stride 8: i = 64/8 = 8 line-reuses; l=200, d=2·1=2 → ceil(200/16)=13
	// lines = 832 B.
	d, ok := Distance(8, 1, 2, 200, 1<<20)
	if !ok || d != 13*64 {
		t.Fatalf("distance = %d (ok=%v), want %d", d, ok, 13*64)
	}
}

func TestDistanceNegativeStride(t *testing.T) {
	d, ok := Distance(-64, 2, 2, 100, 1<<20)
	if !ok || d >= 0 {
		t.Fatalf("descending stride distance = %d (ok=%v), want negative", d, ok)
	}
	if -d < 64 {
		t.Fatalf("distance magnitude %d below one line", -d)
	}
}

func TestDistanceLoopCap(t *testing.T) {
	// Huge latency would want hundreds of iterations ahead, but the loop
	// only runs 16: cap at 8 iterations (R/2).
	d, ok := Distance(64, 1, 1, 100000, 16)
	if !ok {
		t.Fatal("capped distance should still insert")
	}
	if d != 8*64 {
		t.Fatalf("capped distance = %d, want %d", d, 8*64)
	}
	// A 1-iteration loop cannot reach the next line in time.
	if _, ok := Distance(8, 1, 1, 100000, 2); ok {
		t.Fatal("tiny loop should be rejected")
	}
}

func TestDistanceZeroStride(t *testing.T) {
	if _, ok := Distance(0, 1, 1, 100, 10); ok {
		t.Fatal("zero stride must be rejected")
	}
}

func TestDistanceProperties(t *testing.T) {
	// The distance always points in the stride direction and is at least
	// one cache line.
	f := func(strideRaw int16, recRaw, latRaw uint8) bool {
		stride := int64(strideRaw)
		if stride == 0 {
			return true
		}
		rec := float64(recRaw%50) + 1
		lat := float64(latRaw) + 1
		d, ok := Distance(stride, rec, 2, lat, 1<<20)
		if !ok {
			return true
		}
		if stride > 0 && d < 64 {
			return false
		}
		if stride < 0 && d > -64 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// buildModel creates a model where PC 2 hits in small caches and PC 3
// misses everywhere.
func buildModel() *statstack.Model {
	s := &sampler.Samples{}
	for i := 0; i < 50; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 2, Dist: 4})
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 3, Dist: 1 << 22})
	}
	return statstack.Build(s)
}

func TestBypassable(t *testing.T) {
	model := buildModel()
	p := DefaultParams(64<<10, 512<<10, 6<<20, 15, 40, 260)
	// Reuser PC 3 is flat (misses at L1 and LLC alike) → bypassable.
	edges := map[ref.PC]map[ref.PC]int{10: {3: 5}}
	if !Bypassable(10, edges, model, p) {
		t.Error("flat-MRC reuser should allow bypassing")
	}
	// Reuser PC 2 hits in small caches (drop between L1 and LLC is 0
	// because it already hits at L1)… mr1=0: drop=0 → bypassable too.
	// A mixed reuser set with a dropping load must NOT bypass: construct a
	// PC whose mr drops between L1 and LLC.
	s := &sampler.Samples{}
	for i := 0; i < 50; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 4, Dist: 40000}) // ~2.5MB
	}
	model2 := statstack.Build(s)
	edges2 := map[ref.PC]map[ref.PC]int{10: {4: 5}}
	if Bypassable(10, edges2, model2, p) {
		t.Error("reuser served from LLC must block bypassing")
	}
	// No reuse information: conservative, no bypass.
	if Bypassable(10, map[ref.PC]map[ref.PC]int{}, model, p) {
		t.Error("no reuse edges must block bypassing")
	}
	// Unmodelled reuser: conservative.
	edges3 := map[ref.PC]map[ref.PC]int{10: {99: 1}}
	if Bypassable(10, edges3, model, p) {
		t.Error("unmodelled reuser must block bypassing")
	}
}

// buildStreamProgram is a strided loop whose load misses everywhere.
func buildStreamProgram(t *testing.T) *isa.Compiled {
	t.Helper()
	b := isa.NewBuilder("stream")
	r, v := b.Reg(), b.Reg()
	arena := b.Arena(16 << 20) // well beyond any modelled cache
	// Two passes so every line has a (long) backward reuse the sampler can
	// attribute to the load; a single pass has only compulsory misses.
	b.Loop(2, func() {
		b.MovI(r, int64(arena))
		b.Loop(16<<20/64, func() {
			b.Load(v, r, 0)
			b.AddI(r, 64)
			b.Compute(4)
		})
	})
	c, err := isa.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAnalyzeEndToEnd(t *testing.T) {
	c := buildStreamProgram(t)
	s := sampler.New(sampler.Config{Period: 64, Seed: 1})
	isa.Trace(c, s)
	samples := s.Finish()
	model := statstack.Build(samples)
	p := DefaultParams(64<<10, 512<<10, 6<<20, 15, 40, 260)
	p.Delta = 2
	p.MissLat = 260
	plan := Analyze(c, model, samples, p)
	if len(plan.Insertions) != 1 {
		t.Fatalf("insertions = %d, want 1: %+v", len(plan.Insertions), plan.Loads)
	}
	ins := plan.Insertions[0]
	if ins.PC != 0 || ins.Distance < 64 {
		t.Fatalf("insertion = %+v", ins)
	}
	if !ins.NTA {
		t.Error("pure streaming load should be marked non-temporal")
	}
	// The plan applies cleanly and the rewritten program compiles.
	rw, err := plan.Apply(c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := isa.Compile(rw)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumPCs() != c.NumPCs()+1 {
		t.Fatalf("rewritten PCs = %d, want %d", c2.NumPCs(), c.NumPCs()+1)
	}
}

func TestCostBenefitFiltersCheapLoads(t *testing.T) {
	// A load hitting 90 % in L1 with 5-cycle L2 latency fails the paper's
	// §V example: MR (0.1) ≤ α/latency (1/5 = 0.2).
	s := &sampler.Samples{}
	for i := 0; i < 90; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 0, ReusePC: 0, Dist: 4})
	}
	for i := 0; i < 10; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 0, ReusePC: 0, Dist: 3000})
	}
	b := isa.NewBuilder("cheap")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 1<<30)
	b.Loop(10, func() { b.Load(v, r, 0) })
	c, err := isa.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	model := statstack.Build(s)
	p := DefaultParams(64<<10, 512<<10, 6<<20, 15, 40, 260)
	p.MissLat = 5 // the paper's example: L2 at 5 cycles
	plan := Analyze(c, model, s, p)
	if len(plan.Insertions) != 0 {
		t.Fatalf("cheap load was selected: %+v", plan.Insertions)
	}
	if plan.Loads[0].Decision != DecisionNotDelinq {
		t.Fatalf("decision = %s, want %s", plan.Loads[0].Decision, DecisionNotDelinq)
	}
}

func TestEstimateMissLat(t *testing.T) {
	p := Params{L2Lat: 10, LLCLat: 40, MemLat: 200}
	// All misses served by L2.
	if got := estimateMissLat(0.5, 0, 0, p); got != 10 {
		t.Errorf("L2-only = %g, want 10", got)
	}
	// All misses to DRAM.
	if got := estimateMissLat(0.5, 0.5, 0.5, p); got != 200 {
		t.Errorf("DRAM-only = %g, want 200", got)
	}
	// Even split L2/DRAM.
	if got := estimateMissLat(0.4, 0.2, 0.2, p); got != 0.5*10+0.5*200 {
		t.Errorf("mixed = %g, want 105", got)
	}
}

func TestSortLoadsByMisses(t *testing.T) {
	loads := []LoadInfo{
		{PC: 1, MRL1: 0.1, Samples: 10},
		{PC: 2, MRL1: 1.0, Samples: 100},
		{PC: 3, MRL1: 0.5, Samples: 10},
	}
	SortLoadsByMisses(loads)
	if loads[0].PC != 2 {
		t.Fatalf("order = %v", []ref.PC{loads[0].PC, loads[1].PC, loads[2].PC})
	}
}
