package core

import (
	"math"

	"prefetchlab/internal/ref"
)

// Distance computes the prefetch distance in bytes for a load with the
// given dominant stride (§VI-A).
//
// The loop iteration time is approximated as d = r·Δ where r is the mean
// recurrence (memory references between successive executions of the load)
// and Δ the average cycles per memory operation. With average memory
// latency l:
//
//	|stride| ≥ C:  P = ceil(l / d) × stride
//	|stride| <  C:  P = ceil(l / (d·i)) × C,  i = C/|stride|
//
// (a sub-line stride re-uses each line i times, so the distance shrinks
// proportionally and is issued at line granularity). The distance is capped
// so the loop prefetches at most half of its own trip count ahead
// (P ≤ ceil(R/2) iterations, §VI-A); loops too short to hide any latency
// return ok=false.
func Distance(stride int64, recurrence, delta, latency float64, loopCount int64) (bytes int64, ok bool) {
	if stride == 0 || latency <= 0 {
		return 0, false
	}
	if recurrence < 1 {
		recurrence = 1
	}
	if delta <= 0 {
		delta = DefaultDelta
	}
	d := recurrence * delta // cycles per loop iteration
	abs := stride
	sign := int64(1)
	if abs < 0 {
		abs = -abs
		sign = -1
	}

	var p int64 // distance in bytes, positive
	if abs >= ref.LineSize {
		p = int64(math.Ceil(latency/d)) * abs
	} else {
		i := float64(ref.LineSize) / float64(abs)
		p = int64(math.Ceil(latency/(d*i))) * ref.LineSize
	}
	if p < ref.LineSize {
		p = ref.LineSize
	}

	// Cap at half the loop's iterations: the first P/stride references of
	// each loop entry are uncovered misses, so keep that prefix ≤ R/2.
	if loopCount > 0 {
		aheadIters := (p + abs - 1) / abs
		maxIters := (loopCount + 1) / 2
		if maxIters < 1 {
			return 0, false
		}
		if aheadIters > maxIters {
			aheadIters = maxIters
			p = aheadIters * abs
			if p < ref.LineSize {
				return 0, false // cannot even reach the next line in time
			}
		}
	}
	return sign * p, true
}
