package hwpref

import (
	"testing"

	"prefetchlab/internal/ref"
)

// mustStride builds a stride prefetcher from a config the test knows is valid.
func mustStride(t *testing.T, cfg StrideConfig) *Stride {
	t.Helper()
	s, err := NewStride(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustStream builds a stream prefetcher from a config the test knows is valid.
func mustStream(t *testing.T, cfg StreamConfig) *Stream {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustGHB builds a GHB prefetcher from a config the test knows is valid.
func mustGHB(t *testing.T, cfg GHBConfig) *GHB {
	t.Helper()
	g, err := NewGHB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConstructorsRejectBadConfigs(t *testing.T) {
	if _, err := NewStride(StrideConfig{TableSize: 3}); err == nil {
		t.Error("NewStride accepted a non-power-of-two table")
	}
	if _, err := NewStride(StrideConfig{}); err == nil {
		t.Error("NewStride accepted a zero table")
	}
	if _, err := NewStream(StreamConfig{Streams: 0}); err == nil {
		t.Error("NewStream accepted zero streams")
	}
	if _, err := NewGHB(GHBConfig{HistorySize: 0, IndexSize: 16}); err == nil {
		t.Error("NewGHB accepted an empty history")
	}
	if _, err := NewGHB(GHBConfig{HistorySize: 16, IndexSize: 5}); err == nil {
		t.Error("NewGHB accepted a non-power-of-two index")
	}
}

func TestStrideTrainsAndIssues(t *testing.T) {
	s := mustStride(t, StrideConfig{TableSize: 16, Threshold: 2, MaxConf: 4, Degree: 2, Distance: 4})
	pc := ref.PC(3)
	var out []uint64
	// Accesses at a constant 64 B stride: lines 0,1,2,...
	for i := 0; i < 5; i++ {
		out = s.Observe(0, pc, uint64(i), true, nil)
	}
	if len(out) == 0 {
		t.Fatal("trained stride prefetcher issued nothing")
	}
	// Distance 4 strides of 64 B from line 4 → line 8, degree 2 → 8,9.
	if out[0] != 8 || out[len(out)-1] != 9 {
		t.Fatalf("prefetch targets = %v, want [8 9]", out)
	}
}

func TestStrideResetsOnIrregular(t *testing.T) {
	s := mustStride(t, DefaultStrideConfig())
	pc := ref.PC(1)
	for i := 0; i < 8; i++ {
		s.Observe(0, pc, uint64(i), true, nil)
	}
	// A random jump must reset confidence: the next access issues nothing.
	out := s.Observe(0, pc, 1000, true, nil)
	if len(out) != 0 {
		t.Fatalf("issued %v immediately after a stride break", out)
	}
	// And one further access with a new stride is still below threshold.
	out = s.Observe(0, pc, 1001, true, nil)
	if len(out) != 0 {
		t.Fatalf("issued %v with confidence 1 < threshold", out)
	}
}

func TestStrideMistrainOnShortBursts(t *testing.T) {
	// Short strided bursts at random bases — the cigar pattern — must leave
	// the prefetcher issuing lines past every burst end.
	s := mustStride(t, StrideConfig{TableSize: 16, Threshold: 2, MaxConf: 4, Degree: 2, Distance: 4})
	pc := ref.PC(9)
	useless := 0
	for burst := 0; burst < 10; burst++ {
		base := uint64(burst * 1000000)
		burstLines := map[uint64]bool{}
		for i := uint64(0); i < 8; i++ {
			burstLines[base+i] = true
		}
		for i := uint64(0); i < 8; i++ {
			for _, line := range s.Observe(0, pc, base+i, true, nil) {
				if !burstLines[line] {
					useless++
				}
			}
		}
	}
	if useless == 0 {
		t.Fatal("expected overshoot past burst ends")
	}
}

func TestStreamDetectsAndPrefetchesAhead(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, TrainHits: 2, MaxAhead: 4})
	var out []uint64
	for i := 0; i < 6; i++ {
		out = s.Observe(int64(i), 0, uint64(i), true, nil)
	}
	if len(out) == 0 {
		t.Fatal("trained streamer issued nothing")
	}
	for _, l := range out {
		if l <= 5 {
			t.Fatalf("streamer prefetched behind the stream: %v", out)
		}
	}
}

func TestStreamDescending(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, TrainHits: 2, MaxAhead: 2})
	start := uint64(100)
	var out []uint64
	for i := uint64(0); i < 5; i++ {
		out = s.Observe(int64(i), 0, start-i, true, nil)
	}
	if len(out) == 0 {
		t.Fatal("descending stream not detected")
	}
	for _, l := range out {
		if l >= start-4 {
			t.Fatalf("descending prefetch went the wrong way: %v", out)
		}
	}
}

func TestStreamIgnoresHitsForAllocation(t *testing.T) {
	s := mustStream(t, DefaultStreamConfig())
	if out := s.Observe(0, 0, 5, false, nil); len(out) != 0 {
		t.Fatal("hit allocated a stream")
	}
}

func TestAdjacentBuddy(t *testing.T) {
	a := NewAdjacent()
	if out := a.Observe(0, 0, 6, true, nil); len(out) != 1 || out[0] != 7 {
		t.Fatalf("buddy of 6 = %v, want [7]", out)
	}
	if out := a.Observe(0, 0, 7, true, nil); len(out) != 1 || out[0] != 6 {
		t.Fatalf("buddy of 7 = %v, want [6]", out)
	}
	if out := a.Observe(0, 0, 8, false, nil); len(out) != 0 {
		t.Fatal("adjacent issued on a hit")
	}
}

func TestEngineReset(t *testing.T) {
	s := mustStride(t, DefaultStrideConfig())
	pc := ref.PC(2)
	for i := 0; i < 6; i++ {
		s.Observe(0, pc, uint64(i), true, nil)
	}
	s.Reset()
	if out := s.Observe(0, pc, 6, true, nil); len(out) != 0 {
		t.Fatalf("reset did not clear training: %v", out)
	}
}

func TestGHBLearnsRepeatingSequence(t *testing.T) {
	g := mustGHB(t, GHBConfig{HistorySize: 64, IndexSize: 64, Degree: 2})
	seq := []uint64{10, 500, 3, 77, 1234}
	// First pass: record only.
	for _, l := range seq {
		if out := g.Observe(0, 0, l, true, nil); len(out) != 0 {
			t.Fatalf("cold pass issued %v", out)
		}
	}
	// Second pass: each miss must prefetch its recorded successors.
	for i, l := range seq {
		out := g.Observe(0, 0, l, true, nil)
		if i+1 < len(seq) {
			if len(out) == 0 || out[0] != seq[i+1] {
				t.Fatalf("at %d (line %d): prefetched %v, want successor %d", i, l, out, seq[i+1])
			}
		}
	}
}

func TestGHBIgnoresHits(t *testing.T) {
	g := mustGHB(t, DefaultGHBConfig())
	if out := g.Observe(0, 0, 5, false, nil); len(out) != 0 {
		t.Fatal("GHB trained on a hit")
	}
}

func TestGHBReset(t *testing.T) {
	g := mustGHB(t, GHBConfig{HistorySize: 16, IndexSize: 16, Degree: 1})
	for _, l := range []uint64{1, 2, 3, 1, 2} {
		g.Observe(0, 0, l, true, nil)
	}
	g.Reset()
	if out := g.Observe(0, 0, 1, true, nil); len(out) != 0 {
		t.Fatalf("reset did not clear history: %v", out)
	}
}

func TestGHBWithChaseEndToEnd(t *testing.T) {
	// A repeating pointer-chase order is invisible to stride/stream engines
	// but learnable by the GHB: after one full cycle it should prefetch
	// most chase successors.
	g := mustGHB(t, GHBConfig{HistorySize: 512, IndexSize: 512, Degree: 1})
	order := make([]uint64, 200)
	for i := range order {
		order[i] = uint64((i*7919 + 13) % 997) // fixed pseudo-random cycle
	}
	for pass := 0; pass < 3; pass++ {
		hits := 0
		for i, l := range order {
			out := g.Observe(0, 0, l, true, nil)
			if pass > 0 && len(out) > 0 && out[0] == order[(i+1)%len(order)] {
				hits++
			}
		}
		if pass > 0 && hits < len(order)/2 {
			t.Fatalf("pass %d: only %d/%d successors predicted", pass, hits, len(order))
		}
	}
}
