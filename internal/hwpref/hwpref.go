// Package hwpref models the hardware prefetch engines of the two evaluated
// processors. The paper's argument rests on the *failure modes* of these
// engines — speculative overfetch past stream ends, mistraining on short
// strided bursts, and adjacent-line pairing — so the models reproduce those
// behaviours rather than any particular microarchitecture's tables.
//
// Engines observe demand accesses at the cache level they are attached to
// and emit candidate line addresses to prefetch; the memory system applies
// duplicate filtering, optional contention throttling, and issues the fills.
package hwpref

import (
	"fmt"

	"prefetchlab/internal/ref"
)

// Engine is a hardware prefetcher attached to one cache level.
type Engine interface {
	// Name identifies the engine in statistics.
	Name() string
	// Observe is called for every demand access seen by the level (miss
	// reports whether it missed). It appends candidate line addresses to
	// buf and returns the extended slice.
	Observe(now int64, pc ref.PC, line uint64, miss bool, buf []uint64) []uint64
	// Reset clears training state.
	Reset()
}

// ---------------------------------------------------------------------------
// Per-PC stride prefetcher (AMD Phenom II L1-style).

// StrideConfig parameterizes a per-PC stride prefetcher.
type StrideConfig struct {
	TableSize int // entries (power of two); PCs are direct-mapped
	Threshold int // confidence needed before issuing
	MaxConf   int // confidence saturation
	Degree    int // prefetches issued per trained access
	Distance  int // how many strides ahead the first prefetch lands
}

// DefaultStrideConfig matches an aggressive commodity L1 stride prefetcher.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{TableSize: 256, Threshold: 2, MaxConf: 4, Degree: 2, Distance: 4}
}

type strideEntry struct {
	pc       ref.PC
	lastAddr uint64
	stride   int64
	conf     int
	valid    bool
}

// Stride is a per-PC stride prefetcher. It trains on the byte-address
// deltas of each static instruction and, once confident, prefetches
// Degree lines starting Distance strides ahead. Short strided bursts train
// it and then leave it issuing useless prefetches past the burst end — the
// cigar pathology on AMD (§VII-A).
type Stride struct {
	cfg   StrideConfig
	table []strideEntry
}

// NewStride creates a stride prefetcher.
func NewStride(cfg StrideConfig) (*Stride, error) {
	if cfg.TableSize <= 0 || cfg.TableSize&(cfg.TableSize-1) != 0 {
		return nil, fmt.Errorf("hwpref: stride table size %d must be a positive power of two", cfg.TableSize)
	}
	return &Stride{cfg: cfg, table: make([]strideEntry, cfg.TableSize)}, nil
}

// Name implements Engine.
func (s *Stride) Name() string { return "stride" }

// Reset implements Engine.
func (s *Stride) Reset() {
	for i := range s.table {
		s.table[i] = strideEntry{}
	}
}

// Observe implements Engine. It trains on every demand access.
func (s *Stride) Observe(now int64, pc ref.PC, line uint64, miss bool, buf []uint64) []uint64 {
	if pc == ref.InvalidPC {
		return buf
	}
	addr := line << ref.LineBits
	e := &s.table[int(pc)&(s.cfg.TableSize-1)]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return buf
	}
	delta := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if delta == 0 {
		return buf
	}
	if delta == e.stride {
		if e.conf < s.cfg.MaxConf {
			e.conf++
		}
	} else {
		e.stride = delta
		e.conf = 0
		return buf
	}
	if e.conf < s.cfg.Threshold {
		return buf
	}
	base := int64(addr) + e.stride*int64(s.cfg.Distance)
	prev := line
	for k := 0; k < s.cfg.Degree; k++ {
		target := base + e.stride*int64(k)
		if target < 0 {
			break
		}
		tl := ref.LineAddr(uint64(target))
		if tl != prev {
			buf = append(buf, tl)
			prev = tl
		}
	}
	return buf
}

// ---------------------------------------------------------------------------
// Stream prefetcher (Intel Sandy Bridge L2 "streamer"-style).

// StreamConfig parameterizes a page-based stream prefetcher.
type StreamConfig struct {
	Streams   int // concurrently tracked 4 KiB pages
	TrainHits int // monotonic accesses needed before issuing
	MaxAhead  int // maximum lines prefetched ahead once fully confident
}

// DefaultStreamConfig matches an aggressive commodity L2 streamer.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Streams: 32, TrainHits: 2, MaxAhead: 8}
}

type streamEntry struct {
	page     uint64
	lastLine uint64
	dir      int64 // +1 or -1
	count    int
	lastUse  int64
	valid    bool
}

// Stream detects sequential line streams within 4 KiB pages and prefetches
// ahead with a degree that ramps with confidence. Because it keeps fetching
// ahead of the demand stream it overruns stream ends and pollutes the cache
// with lines the program never touches.
type Stream struct {
	cfg   StreamConfig
	table []streamEntry
}

// NewStream creates a stream prefetcher.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("hwpref: stream count %d must be positive", cfg.Streams)
	}
	return &Stream{cfg: cfg, table: make([]streamEntry, cfg.Streams)}, nil
}

// Name implements Engine.
func (s *Stream) Name() string { return "stream" }

// Reset implements Engine.
func (s *Stream) Reset() {
	for i := range s.table {
		s.table[i] = streamEntry{}
	}
}

const pageLineBits = 12 - ref.LineBits // 64 lines per 4 KiB page

// Observe implements Engine.
func (s *Stream) Observe(now int64, pc ref.PC, line uint64, miss bool, buf []uint64) []uint64 {
	page := line >> pageLineBits
	var e *streamEntry
	victim := 0
	oldest := int64(1<<63 - 1)
	for i := range s.table {
		t := &s.table[i]
		if t.valid && t.page == page {
			e = t
			break
		}
		if t.lastUse < oldest {
			oldest = t.lastUse
			victim = i
		}
	}
	if e == nil {
		if !miss {
			return buf // only allocate streams on misses
		}
		s.table[victim] = streamEntry{page: page, lastLine: line, lastUse: now, valid: true}
		return buf
	}
	e.lastUse = now
	if line == e.lastLine {
		return buf
	}
	dir := int64(1)
	if line < e.lastLine {
		dir = -1
	}
	if e.count == 0 || dir == e.dir {
		e.dir = dir
		e.count++
	} else {
		e.dir = dir
		e.count = 1
	}
	e.lastLine = line
	if e.count < s.cfg.TrainHits {
		return buf
	}
	ahead := e.count - s.cfg.TrainHits + 1
	if ahead > s.cfg.MaxAhead {
		ahead = s.cfg.MaxAhead
	}
	for k := 1; k <= ahead; k++ {
		t := int64(line) + e.dir*int64(k)
		if t < 0 {
			break
		}
		// Streams are page-bounded in real hardware, but commodity
		// streamers re-arm on the next page; crossing here approximates the
		// next-page prefetch without a separate mechanism.
		buf = append(buf, uint64(t))
	}
	return buf
}

// ---------------------------------------------------------------------------
// Adjacent-line prefetcher (Intel "spatial" pair-line).

// Adjacent fetches the buddy line of every missing line, completing the
// aligned 128 B pair. It doubles miss traffic for data with no spatial
// locality — the cigar +628 % traffic pathology on Intel (§VII-B).
type Adjacent struct{}

// NewAdjacent creates an adjacent-line prefetcher.
func NewAdjacent() *Adjacent { return &Adjacent{} }

// Name implements Engine.
func (a *Adjacent) Name() string { return "adjacent" }

// Reset implements Engine.
func (a *Adjacent) Reset() {}

// Observe implements Engine.
func (a *Adjacent) Observe(now int64, pc ref.PC, line uint64, miss bool, buf []uint64) []uint64 {
	if !miss {
		return buf
	}
	return append(buf, line^1)
}
