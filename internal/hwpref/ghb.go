package hwpref

import (
	"fmt"

	"prefetchlab/internal/ref"
)

// GHBConfig parameterizes a global-history-buffer correlation prefetcher.
type GHBConfig struct {
	// HistorySize is the number of miss addresses the circular global
	// history buffer retains.
	HistorySize int
	// IndexSize is the number of entries in the index table mapping a line
	// address to its most recent history position (power of two).
	IndexSize int
	// Degree is how many successors are prefetched per trigger.
	Degree int
}

// DefaultGHBConfig returns a modest configuration.
func DefaultGHBConfig() GHBConfig {
	return GHBConfig{HistorySize: 256, IndexSize: 256, Degree: 2}
}

type ghbEntry struct {
	line uint64
	prev int32 // previous occurrence of the same line in the buffer, -1 none
	used bool
}

type ghbIndex struct {
	line  uint64
	pos   int32
	valid bool
}

// GHB is a global-history-buffer (address-correlating / Markov) prefetcher:
// it records the miss-address stream in a circular buffer, links repeated
// occurrences of the same line, and on a miss prefetches the lines that
// followed it last time. Unlike the stride and stream engines it can learn
// *repeating irregular* sequences — e.g. a pointer chase that traverses the
// same list order every pass — which is exactly the access class the
// paper's software method declines (§VI). It is provided as an extra engine
// for experimentation; neither evaluated machine ships it by default.
type GHB struct {
	cfg   GHBConfig
	buf   []ghbEntry
	head  int32
	count int
	index []ghbIndex
}

// NewGHB creates a GHB prefetcher.
func NewGHB(cfg GHBConfig) (*GHB, error) {
	if cfg.HistorySize <= 0 {
		return nil, fmt.Errorf("hwpref: GHB history %d must be positive", cfg.HistorySize)
	}
	if cfg.IndexSize <= 0 || cfg.IndexSize&(cfg.IndexSize-1) != 0 {
		return nil, fmt.Errorf("hwpref: GHB index size %d must be a positive power of two", cfg.IndexSize)
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	return &GHB{
		cfg:   cfg,
		buf:   make([]ghbEntry, cfg.HistorySize),
		index: make([]ghbIndex, cfg.IndexSize),
	}, nil
}

// Name implements Engine.
func (g *GHB) Name() string { return "ghb" }

// Reset implements Engine.
func (g *GHB) Reset() {
	for i := range g.buf {
		g.buf[i] = ghbEntry{}
	}
	for i := range g.index {
		g.index[i] = ghbIndex{}
	}
	g.head = 0
	g.count = 0
}

// slot hashes a line address into the index table.
func (g *GHB) slot(line uint64) *ghbIndex {
	h := line * 0x9e3779b97f4a7c15 >> 32
	return &g.index[int(h)&(g.cfg.IndexSize-1)]
}

// Observe implements Engine: it records misses in the history buffer and,
// when the missing line has occurred before, prefetches the lines that
// followed its previous occurrence.
func (g *GHB) Observe(now int64, pc ref.PC, line uint64, miss bool, buf []uint64) []uint64 {
	if !miss {
		return buf
	}
	idx := g.slot(line)
	var prev int32 = -1
	if idx.valid && idx.line == line && g.buf[idx.pos].used && g.buf[idx.pos].line == line {
		prev = idx.pos
	}
	// Prefetch the successors of the previous occurrence.
	if prev >= 0 {
		p := prev
		for k := 0; k < g.cfg.Degree; k++ {
			p = (p + 1) % int32(len(g.buf))
			if p == g.head { // ran into the write frontier
				break
			}
			e := g.buf[p]
			if !e.used || e.line == line {
				break
			}
			buf = append(buf, e.line)
		}
	}
	// Record this miss.
	pos := g.head
	g.buf[pos] = ghbEntry{line: line, prev: prev, used: true}
	g.head = (g.head + 1) % int32(len(g.buf))
	if g.count < len(g.buf) {
		g.count++
	}
	*idx = ghbIndex{line: line, pos: pos, valid: true}
	return buf
}
