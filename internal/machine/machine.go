// Package machine defines the two evaluation platforms of the paper's
// Table II — AMD Phenom II and Intel i7-2600K (Sandy Bridge) — as simulated
// socket configurations: cache geometry, latencies, off-chip bandwidth and
// the hardware prefetch engines each vendor ships.
package machine

import (
	"prefetchlab/internal/cache"
	"prefetchlab/internal/dram"
	"prefetchlab/internal/hwpref"
	"prefetchlab/internal/memsys"
)

// Machine is one evaluation platform.
type Machine struct {
	Name    string
	FreqGHz float64
	Cores   int

	L1  cache.Config
	L2  cache.Config
	LLC cache.Config

	// Load-to-use hit latencies (cycles).
	L1Lat, L2Lat, LLCLat int64

	DRAM dram.Config

	// Hardware prefetch engines (constructors; nil = absent).
	NewL1Pref  func() (hwpref.Engine, error)
	NewL2Pref  func() (hwpref.Engine, error)
	NewL2PrefB func() (hwpref.Engine, error)

	// ThrottleBacklog: channel backlog (cycles) beyond which hardware
	// prefetches are dropped — the contention throttling §I describes.
	ThrottleBacklog int64

	// Window is the core reorder-window size in instructions (bounds
	// memory-level parallelism; Sandy Bridge's window is substantially
	// larger than Phenom II's).
	Window int64
}

// MemConfig instantiates a memory-system configuration for the given number
// of active cores with hardware prefetching on or off.
func (m Machine) MemConfig(cores int, hwPref bool) memsys.Config {
	if cores <= 0 || cores > m.Cores {
		cores = m.Cores
	}
	return memsys.Config{
		Cores:           cores,
		L1:              m.L1,
		L2:              m.L2,
		LLC:             m.LLC,
		L1Lat:           m.L1Lat,
		L2Lat:           m.L2Lat,
		LLCLat:          m.LLCLat,
		DRAM:            m.DRAM,
		NewL1Pref:       m.NewL1Pref,
		NewL2Pref:       m.NewL2Pref,
		NewL2PrefB:      m.NewL2PrefB,
		HWPrefEnabled:   hwPref,
		ThrottleBacklog: m.ThrottleBacklog,
		OOOWindow:       m.Window,
	}
}

// GBps converts bytes/cycle on this machine to gigabytes per second.
func (m Machine) GBps(bytesPerCycle float64) float64 {
	return bytesPerCycle * m.FreqGHz // bytes/cycle × 1e9 cycle/s / 1e9 B/GB
}

// BytesPerCycle converts a GB/s figure to bytes per core cycle.
func (m Machine) BytesPerCycle(gbps float64) float64 { return gbps / m.FreqGHz }

// AMDPhenomII models the paper's AMD platform (Table II): 64 kB 2-way L1,
// 512 kB L2, 6 MB shared LLC, 2.8 GHz, four cores, ~12.8 GB/s of off-chip
// bandwidth, with an aggressive per-PC stride prefetcher at the L1 and a
// stream prefetcher at the L2.
func AMDPhenomII() Machine {
	m := Machine{
		Name:    "AMD Phenom II",
		FreqGHz: 2.8,
		Cores:   4,
		L1:      cache.Config{Name: "L1", Size: 64 << 10, Assoc: 2},
		L2:      cache.Config{Name: "L2", Size: 512 << 10, Assoc: 16},
		LLC:     cache.Config{Name: "LLC", Size: 6 << 20, Assoc: 48},
		L1Lat:   3,
		L2Lat:   15,
		LLCLat:  40,
		NewL1Pref: func() (hwpref.Engine, error) {
			return hwpref.NewStride(hwpref.StrideConfig{
				TableSize: 256, Threshold: 2, MaxConf: 4, Degree: 6, Distance: 8,
			})
		},
		NewL2Pref: func() (hwpref.Engine, error) {
			return hwpref.NewStream(hwpref.StreamConfig{Streams: 16, TrainHits: 2, MaxAhead: 10})
		},
		ThrottleBacklog: 600,
		Window:          128,
	}
	m.DRAM = dram.Config{ServiceLat: 210, BytesPerCycle: m.BytesPerCycle(12.8)}
	return m
}

// IntelSandyBridge models the paper's Intel platform (Table II): 32 kB 8-way
// L1, 256 kB L2, 8 MB shared LLC, 3.4 GHz, four cores, ~16 GB/s of off-chip
// bandwidth (streams measured 15.6 GB/s, §VII-E), with a conservative L1 IP
// prefetcher and an aggressive L2 streamer paired with the adjacent-line
// prefetcher.
func IntelSandyBridge() Machine {
	m := Machine{
		Name:    "Intel Sandy Bridge",
		FreqGHz: 3.4,
		Cores:   4,
		L1:      cache.Config{Name: "L1", Size: 32 << 10, Assoc: 8},
		L2:      cache.Config{Name: "L2", Size: 256 << 10, Assoc: 8},
		LLC:     cache.Config{Name: "LLC", Size: 8 << 20, Assoc: 16},
		L1Lat:   4,
		L2Lat:   12,
		LLCLat:  30,
		NewL1Pref: func() (hwpref.Engine, error) {
			return hwpref.NewStride(hwpref.StrideConfig{
				TableSize: 256, Threshold: 3, MaxConf: 4, Degree: 1, Distance: 2,
			})
		},
		NewL2Pref: func() (hwpref.Engine, error) {
			return hwpref.NewStream(hwpref.StreamConfig{Streams: 32, TrainHits: 2, MaxAhead: 8})
		},
		NewL2PrefB:      func() (hwpref.Engine, error) { return hwpref.NewAdjacent(), nil },
		ThrottleBacklog: 700,
		Window:          160,
	}
	m.DRAM = dram.Config{ServiceLat: 170, BytesPerCycle: m.BytesPerCycle(16.0)}
	return m
}

// Both returns the two evaluation machines in paper order.
func Both() []Machine { return []Machine{AMDPhenomII(), IntelSandyBridge()} }
