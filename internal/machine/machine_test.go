package machine

import (
	"testing"

	"prefetchlab/internal/memsys"
)

func TestMachinesBuild(t *testing.T) {
	for _, m := range Both() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			for _, hw := range []bool{false, true} {
				h, err := memsys.New(m.MemConfig(4, hw))
				if err != nil {
					t.Fatalf("hierarchy: %v", err)
				}
				if h.Config().Cores != 4 {
					t.Error("core count")
				}
				if h.Config().HWPrefEnabled != hw {
					t.Error("hw flag lost")
				}
			}
		})
	}
}

func TestTableIIGeometry(t *testing.T) {
	amd := AMDPhenomII()
	if amd.L1.Size != 64<<10 || amd.L2.Size != 512<<10 || amd.LLC.Size != 6<<20 {
		t.Errorf("AMD cache sizes wrong: %+v", amd)
	}
	if amd.FreqGHz != 2.8 || amd.Cores != 4 {
		t.Errorf("AMD freq/cores wrong")
	}
	intel := IntelSandyBridge()
	if intel.L1.Size != 32<<10 || intel.L2.Size != 256<<10 || intel.LLC.Size != 8<<20 {
		t.Errorf("Intel cache sizes wrong: %+v", intel)
	}
	if intel.FreqGHz != 3.4 {
		t.Errorf("Intel freq wrong")
	}
	// Latencies must be ordered L1 < L2 < LLC < DRAM.
	for _, m := range Both() {
		if !(m.L1Lat < m.L2Lat && m.L2Lat < m.LLCLat && m.LLCLat < m.DRAM.ServiceLat) {
			t.Errorf("%s: latency ordering broken", m.Name)
		}
	}
}

func TestPrefetcherWiring(t *testing.T) {
	amd := AMDPhenomII()
	if amd.NewL1Pref == nil || amd.NewL2Pref == nil {
		t.Error("AMD prefetchers missing")
	}
	if amd.NewL2PrefB != nil {
		t.Error("AMD has no adjacent-line prefetcher")
	}
	intel := IntelSandyBridge()
	if intel.NewL2PrefB == nil {
		t.Error("Intel adjacent-line prefetcher missing")
	}
	// Constructors must produce distinct instances (per-core state).
	a, err := amd.NewL1Pref()
	if err != nil {
		t.Fatal(err)
	}
	b, err := amd.NewL1Pref()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("prefetcher constructor returned a shared instance")
	}
}

func TestBandwidthConversions(t *testing.T) {
	m := AMDPhenomII()
	gb := 12.8
	if got := m.GBps(m.BytesPerCycle(gb)); got < gb-1e-9 || got > gb+1e-9 {
		t.Errorf("round-trip GBps = %g", got)
	}
}

func TestMemConfigClampsCores(t *testing.T) {
	m := AMDPhenomII()
	if got := m.MemConfig(0, false).Cores; got != 4 {
		t.Errorf("0 cores → %d, want 4", got)
	}
	if got := m.MemConfig(99, false).Cores; got != 4 {
		t.Errorf("99 cores → %d, want 4", got)
	}
	if got := m.MemConfig(2, false).Cores; got != 2 {
		t.Errorf("2 cores → %d", got)
	}
}
