// Package sched is the deterministic worker-pool scheduler behind the
// parallel experiment engine. Every figure/table study decomposes into
// independent (workload × machine × policy × thread-count) simulation
// tasks; sched fans them out across workers and merges the results in
// task-index order, so a study's output is bit-identical at any worker
// count.
//
// Two invariants make that guarantee hold:
//
//   - Tasks are self-contained: each builds its own machine, memory
//     hierarchy, sampler and RNG stream (seeded from the task key, never
//     from shared mutable state), so no task observes another's progress.
//   - Results and errors are merged by task index, not completion order:
//     Map returns results[i] = fn(i), and on failure reports the error of
//     the lowest-indexed failing task regardless of which worker hit an
//     error first.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// TaskObserver receives batch and task lifecycle events from a Pool. It is
// the hook the observability layer (internal/obs) uses for span tracing and
// progress reporting; implementations must be safe for concurrent calls
// from every worker. Observers see wall-clock timing only — they must not
// influence task execution, so simulation results stay bit-identical
// whether or not an observer is attached.
type TaskObserver interface {
	// BatchStart reports that a Map/ForEach batch of n tasks is about to
	// run.
	BatchStart(batch string, n int)
	// TaskDone reports one finished task: its index, the worker that ran
	// it, when the batch was enqueued, when the task started and ended,
	// and its error (nil on success). queued ≤ start ≤ end.
	TaskDone(batch string, task, worker int, queued, start, end time.Time, err error)
}

// CacheObserver receives one event per OnceMap.Do call: whether the key was
// already present (hit — possibly waiting on an in-flight computation) or
// computed by this call (miss), and how long the call blocked.
type CacheObserver interface {
	CacheDone(cache, key string, hit bool, start, end time.Time)
}

// Pool fans independent tasks out across a bounded number of workers.
// The zero value uses runtime.NumCPU() workers.
type Pool struct {
	// Workers caps concurrent tasks. <= 0 selects runtime.NumCPU();
	// 1 runs tasks serially in index order (useful for determinism
	// diffing and debugging).
	Workers int
	// Name labels this pool's batches in observer events.
	Name string
	// Obs, when non-nil, receives batch and task lifecycle events.
	Obs TaskObserver
}

// Named returns a copy of the pool whose batches are labelled name in
// observer events.
func (p Pool) Named(name string) Pool { p.Name = name; return p }

// Serial is the one-worker pool: tasks run in index order on the calling
// goroutine's schedule, with no concurrency.
var Serial = Pool{Workers: 1}

// workers resolves the effective worker count for n tasks.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map evaluates fn(0) … fn(n-1) across the pool's workers and returns the
// results in index order. fn must be safe for concurrent invocation and
// must not depend on the invocation order of other indices. If any task
// fails, Map returns a nil slice and the error of the lowest-indexed
// failing task; tasks not yet started when a failure is observed are
// skipped (their results would be discarded anyway).
func Map[T any](p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	w := p.workers(n)
	var queued time.Time
	if p.Obs != nil {
		p.Obs.BatchStart(p.Name, n)
		queued = time.Now()
	}
	// task runs fn(i) on the given worker, reporting it to the observer.
	task := func(i, worker int) error {
		if p.Obs == nil {
			var err error
			results[i], err = fn(i)
			return err
		}
		start := time.Now()
		v, err := fn(i)
		p.Obs.TaskDone(p.Name, i, worker, queued, start, time.Now(), err)
		results[i] = v
		return err
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := task(i, 0); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() != 0 {
					return
				}
				if err := task(i, worker); err != nil {
					errs[i] = err
					failed.Store(1)
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEach evaluates fn(0) … fn(n-1) across the pool's workers, discarding
// results. Error semantics match Map.
func ForEach(p Pool, n int, fn func(i int) error) error {
	_, err := Map(p, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// OnceMap is a concurrent single-flight memoization map: the first caller
// of Do for a key computes the value while concurrent callers of the same
// key block and share the one result. It replaces check-then-insert cache
// patterns that, under a worker pool, would compute the same expensive
// profile or plan on several workers at once.
type OnceMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*onceEntry[V]
	// Name labels this cache in observer events. Set before concurrent use.
	Name string
	// Obs, when non-nil, receives one CacheDone event per Do call. Set
	// before concurrent use.
	Obs CacheObserver
}

type onceEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized value for key, computing it on first use. The
// computation's error is memoized too: every caller of a failed key
// observes the same error.
func (om *OnceMap[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	om.mu.Lock()
	if om.m == nil {
		om.m = make(map[K]*onceEntry[V])
	}
	e := om.m[key]
	hit := e != nil
	if e == nil {
		e = &onceEntry[V]{}
		om.m[key] = e
	}
	om.mu.Unlock()
	if om.Obs == nil {
		e.once.Do(func() { e.val, e.err = compute() })
		return e.val, e.err
	}
	start := time.Now()
	e.once.Do(func() { e.val, e.err = compute() })
	om.Obs.CacheDone(om.Name, fmt.Sprint(key), hit, start, time.Now())
	return e.val, e.err
}

// Len returns the number of keys ever computed (or in flight).
func (om *OnceMap[K, V]) Len() int {
	om.mu.Lock()
	defer om.mu.Unlock()
	return len(om.m)
}
