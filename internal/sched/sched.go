// Package sched is the deterministic worker-pool scheduler behind the
// parallel experiment engine. Every figure/table study decomposes into
// independent (workload × machine × policy × thread-count) simulation
// tasks; sched fans them out across workers and merges the results in
// task-index order, so a study's output is bit-identical at any worker
// count.
//
// Two invariants make that guarantee hold:
//
//   - Tasks are self-contained: each builds its own machine, memory
//     hierarchy, sampler and RNG stream (seeded from the task key, never
//     from shared mutable state), so no task observes another's progress.
//   - Results and errors are merged by task index, not completion order:
//     Map returns results[i] = fn(i), and on failure reports the error of
//     the lowest-indexed failing task regardless of which worker hit an
//     error first.
//
// On top of the deterministic merge the pool provides fault tolerance:
// context cancellation drains workers and returns the completed prefix
// plus ErrCanceled, a panicking task is recovered into a typed TaskError,
// failed tasks are retried deterministically up to MaxAttempts, MapOutcomes
// degrades gracefully under a per-batch failure budget (failed cells become
// explicit Skipped outcomes), and a Saver can persist/replay completed task
// values so an interrupted batch resumes without re-executing them.
package sched

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCanceled marks batch errors caused by context cancellation. The batch
// result accompanying it is the deterministic prefix of completed tasks.
var ErrCanceled = errors.New("sched: batch canceled")

// ErrBudgetExhausted marks batch errors caused by more final task failures
// than the pool's FailureBudget allows.
var ErrBudgetExhausted = errors.New("sched: failure budget exhausted")

// CanceledError reports a batch stopped by context cancellation. It wraps
// both ErrCanceled and the context's cause, so errors.Is works with either.
type CanceledError struct {
	Batch string
	// Done is the length of the completed prefix returned with the error.
	Done  int
	Total int
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sched: batch %q canceled after %d/%d tasks: %v",
		e.Batch, e.Done, e.Total, e.Cause)
}

func (e *CanceledError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrCanceled}
	}
	return []error{ErrCanceled, e.Cause}
}

// BudgetError reports a batch that failed after exceeding its failure
// budget. It wraps ErrBudgetExhausted and the lowest-indexed final failure.
type BudgetError struct {
	Batch  string
	Budget int
	// Index and First identify the lowest-indexed task whose final failure
	// is known; earlier tasks may not have run when the batch stopped.
	Index int
	First error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sched: batch %q exceeded its failure budget (%d): task %d: %v",
		e.Batch, e.Budget, e.Index, e.First)
}

func (e *BudgetError) Unwrap() []error { return []error{ErrBudgetExhausted, e.First} }

// TaskError is a recovered task panic converted into an error: the batch
// and index identify the task, Panic and Stack capture the recovered value
// and the goroutine stack at the panic site.
type TaskError struct {
	Batch    string
	Index    int
	Attempts int
	Err      error
	Panic    any
	Stack    []byte
}

func (e *TaskError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("sched: cache %q compute panicked: %v", e.Batch, e.Panic)
	}
	return fmt.Sprintf("sched: task %s[%d] failed after %d attempt(s): %v",
		e.Batch, e.Index, e.Attempts, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// TaskObserver receives batch and task lifecycle events from a Pool. It is
// the hook the observability layer (internal/obs) uses for span tracing and
// progress reporting; implementations must be safe for concurrent calls
// from every worker. Observers see wall-clock timing only — they must not
// influence task execution, so simulation results stay bit-identical
// whether or not an observer is attached.
type TaskObserver interface {
	// BatchStart reports that a Map/ForEach batch of n tasks is about to
	// run.
	BatchStart(batch string, n int)
	// TaskDone reports one finished task: its index, the worker that ran
	// it, when the batch was enqueued, when the task's final attempt
	// started and ended, and its final error (nil on success).
	// queued ≤ start ≤ end.
	TaskDone(batch string, task, worker int, queued, start, end time.Time, err error)
}

// FaultObserver is an optional extension of TaskObserver (discovered by
// type assertion on Pool.Obs) for fault-tolerance events: retries, skipped
// cells, checkpoint replays and batch cancellation.
type FaultObserver interface {
	// TaskRetry reports that attempt-1 of a task failed with err and the
	// task is about to run attempt (1-based count of completed attempts).
	TaskRetry(batch string, index, attempt int, err error)
	// TaskSkipped reports a task whose final failure was absorbed by the
	// batch's failure budget; its cell is reported as Skipped.
	TaskSkipped(batch string, index int, err error)
	// TaskReplayed reports a task whose value was restored from a Saver
	// checkpoint instead of executing.
	TaskReplayed(batch string, index int)
	// BatchCanceled reports a batch stopped by cancellation after done of
	// total tasks completed.
	BatchCanceled(batch string, done, total int)
}

// WorkObserver is an optional extension of TaskObserver (discovered by
// type assertion on Pool.Obs) for live worker occupancy: TaskStarted fires
// when a worker begins executing a task and TaskFinished when the worker is
// done with it (success, final failure or cancellation) — always paired, so
// started-minus-finished is the number of busy workers at any instant.
// Checkpoint replays execute nothing and emit neither event.
type WorkObserver interface {
	TaskStarted(batch string, index, worker int)
	TaskFinished(batch string, index, worker int)
}

// CacheObserver receives one event per OnceMap.Do call: whether the key was
// already present (hit — possibly waiting on an in-flight computation) or
// computed by this call (miss), and how long the call blocked.
type CacheObserver interface {
	CacheDone(cache, key string, hit bool, start, end time.Time)
}

// FaultHook injects deterministic faults into task attempts; it is called
// at the start of every attempt, inside the panic-recovery scope, so it may
// return an error, panic, or sleep. Decisions must be keyed only on
// (batch, index, attempt) so they are independent of worker count and
// schedule.
type FaultHook interface {
	Inject(batch string, index, attempt int) error
}

// FaultFunc adapts a plain function to the FaultHook interface.
type FaultFunc func(batch string, index, attempt int) error

// Inject implements FaultHook.
func (f FaultFunc) Inject(batch string, index, attempt int) error {
	return f(batch, index, attempt)
}

// BatchRunner computes task values for a batch somewhere other than the
// local pool — the cluster coordinator implements it by sharding the batch
// across remote workers. RunBatch receives the batch name, the total task
// count n and the indices that still need values (tasks already replayable
// from the pool's Saver are excluded), and returns gob-encoded values for
// any subset of them: the encoding must match what the pool itself would
// persist (gobEncode of the task value), so remote and local results are
// interchangeable. Indices missing from the returned map — and entries
// that fail to decode — simply execute locally, which is what makes
// degraded fleets safe: an empty map means a plain single-process run.
// RunBatch must honor ctx and must not panic.
type BatchRunner interface {
	RunBatch(ctx context.Context, batch string, n int, indices []int) map[int][]byte
}

// RemoteObserver is an optional extension of TaskObserver (discovered by
// type assertion on Pool.Obs) reporting tasks whose values came from a
// BatchRunner instead of local execution.
type RemoteObserver interface {
	TaskRemote(batch string, index int)
}

// Saver persists completed task values and replays them on resume. Lookup
// returns the stored bytes for a task (gob-encoded by the pool); Save
// stores them. Both must be safe for concurrent use. Values that cannot be
// gob-encoded (funcs, no exported fields) are silently not persisted, and
// records that fail to decode are re-executed.
type Saver interface {
	Lookup(batch string, index int) ([]byte, bool)
	Save(batch string, index int, data []byte)
}

// Outcome is one cell of a MapOutcomes batch: either a value (possibly
// replayed from a checkpoint) or a final error whose cell was skipped under
// the failure budget.
type Outcome[T any] struct {
	Value T
	// Err is the final error of a skipped cell (nil on success).
	Err error
	// Skipped marks a cell whose task failed all attempts and was absorbed
	// by the failure budget; Value is the zero value.
	Skipped bool
	// Replayed marks a value restored from a Saver checkpoint.
	Replayed bool
	// Remote marks a value computed by the pool's BatchRunner (a cluster
	// worker) instead of locally.
	Remote bool
	// Attempts is the number of attempts executed (0 for replayed and
	// remote cells).
	Attempts int
}

// Pool fans independent tasks out across a bounded number of workers.
// The zero value uses runtime.NumCPU() workers, runs each task once, and
// fails batches on the first task error.
type Pool struct {
	// Workers caps concurrent tasks. <= 0 selects runtime.NumCPU();
	// 1 runs tasks serially in index order (useful for determinism
	// diffing and debugging).
	Workers int
	// Name labels this pool's batches in observer events.
	Name string
	// Obs, when non-nil, receives batch and task lifecycle events. If it
	// also implements FaultObserver it receives retry/skip/replay events.
	Obs TaskObserver
	// MaxAttempts caps how many times a failing (or panicking) task is
	// executed before its failure is final. <= 1 runs each task once.
	// Retries are deterministic: the same task retries the same way at any
	// worker count.
	MaxAttempts int
	// BackoffBase spaces retries: attempt k sleeps BackoffBase<<(k-1) plus
	// a deterministic task-keyed jitter. 0 retries immediately.
	BackoffBase time.Duration
	// FailureBudget governs MapOutcomes' graceful degradation: 0 fails the
	// batch on the first final task failure (Map's strict semantics), a
	// positive value absorbs up to that many failed tasks as Skipped cells,
	// and a negative value absorbs any number.
	FailureBudget int
	// Fault, when non-nil, injects faults into every task attempt.
	Fault FaultHook
	// Save, when non-nil, persists completed task values and replays them
	// on resume instead of re-executing.
	Save Saver
	// Remote, when non-nil, is offered every batch before local fan-out;
	// indices it returns values for skip local execution (and are persisted
	// to Save like locally computed ones). Indices it does not cover run
	// locally, so a degraded or empty fleet degrades to a plain local run.
	Remote BatchRunner
}

// Named returns a copy of the pool whose batches are labelled name in
// observer events.
func (p Pool) Named(name string) Pool { p.Name = name; return p }

// Serial is the one-worker pool: tasks run in index order on the calling
// goroutine's schedule, with no concurrency.
var Serial = Pool{Workers: 1}

// workers resolves the effective worker count for n tasks.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map evaluates fn(0) … fn(n-1) across the pool's workers and returns the
// results in index order. fn must be safe for concurrent invocation and
// must not depend on the invocation order of other indices. If any task
// fails all its attempts, Map returns a nil slice and the error of the
// lowest-indexed failing task (a *TaskError if it panicked); tasks not yet
// started when a failure is observed are skipped. If ctx is canceled, Map
// returns the deterministic prefix of completed results and a
// *CanceledError wrapping ErrCanceled.
func Map[T any](ctx context.Context, p Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	outs, err := runBatch(ctx, p, n, fn, true)
	if outs == nil {
		return nil, err
	}
	vals := make([]T, len(outs))
	for i, o := range outs {
		vals[i] = o.Value
	}
	return vals, err
}

// ForEach evaluates fn(0) … fn(n-1) across the pool's workers, discarding
// results. Error semantics match Map.
func ForEach(ctx context.Context, p Pool, n int, fn func(i int) error) error {
	p.Save = nil   // no values to persist; side-effecting tasks must re-run on resume
	p.Remote = nil // side effects are local by definition; remote values are meaningless
	_, err := Map(ctx, p, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// MapOutcomes evaluates fn(0) … fn(n-1) like Map but degrades gracefully:
// a task whose final failure fits the pool's FailureBudget becomes an
// explicit Skipped outcome instead of failing the batch, preserving
// index-ordered determinism. Cancellation returns the completed prefix and
// a *CanceledError; exceeding the budget returns a *BudgetError.
func MapOutcomes[T any](ctx context.Context, p Pool, n int, fn func(i int) (T, error)) ([]Outcome[T], error) {
	return runBatch(ctx, p, n, fn, false)
}

// runBatch is the shared engine behind Map and MapOutcomes. strict forces
// a zero failure budget and unwrapped first-failure errors (Map's
// contract); otherwise the pool's FailureBudget applies.
func runBatch[T any](ctx context.Context, p Pool, n int, fn func(i int) (T, error), strict bool) ([]Outcome[T], error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		// lint:allow ctxflow (compatibility default for direct library callers that pass nil; every engine entry point above threads a real ctx)
		ctx = context.Background()
	}
	budget := p.FailureBudget
	if strict {
		budget = 0
	}
	fo, _ := p.Obs.(FaultObserver)
	wo, _ := p.Obs.(WorkObserver)
	ro, _ := p.Obs.(RemoteObserver)
	outs := make([]Outcome[T], n)
	done := make([]atomic.Bool, n)
	w := p.workers(n)
	var queued time.Time
	if p.Obs != nil {
		p.Obs.BatchStart(p.Name, n)
		queued = time.Now()
	}
	remote := fetchRemote(ctx, p, n)
	var skips, failed atomic.Int64
	// handle records a finished task; it returns false when the task's
	// failure exceeds the budget and the batch must stop.
	handle := func(i int, o Outcome[T]) bool {
		if o.Err == nil {
			outs[i] = o
			done[i].Store(true)
			return true
		}
		if budget < 0 || skips.Add(1) <= int64(budget) {
			o.Skipped = true
			outs[i] = o
			done[i].Store(true)
			if fo != nil {
				fo.TaskSkipped(p.Name, i, o.Err)
			}
			return true
		}
		outs[i] = o
		failed.Store(1)
		return false
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			o := runTask(ctx, p, fo, wo, ro, remote, i, 0, queued, fn)
			if o.Err != nil && ctx.Err() != nil {
				break // canceled mid-task: not a task failure
			}
			if !handle(i, o) {
				return nil, batchError(p, budget, i, o.Err, strict)
			}
		}
		return finishBatch(ctx, p, fo, outs, done, n)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil || failed.Load() != 0 {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				o := runTask(ctx, p, fo, wo, ro, remote, i, worker, queued, fn)
				if o.Err != nil && ctx.Err() != nil {
					return // canceled mid-task: not a task failure
				}
				if !handle(i, o) {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ctx.Err() == nil && failed.Load() != 0 {
		for i := range outs {
			if outs[i].Err != nil && !outs[i].Skipped {
				return nil, batchError(p, budget, i, outs[i].Err, strict)
			}
		}
	}
	return finishBatch(ctx, p, fo, outs, done, n)
}

// finishBatch resolves the batch result after workers drain: a full result
// set, or on cancellation the completed prefix plus a *CanceledError.
func finishBatch[T any](ctx context.Context, p Pool, fo FaultObserver, outs []Outcome[T], done []atomic.Bool, n int) ([]Outcome[T], error) {
	err := ctx.Err()
	if err == nil {
		return outs, nil
	}
	k := 0
	for k < n && done[k].Load() {
		k++
	}
	if k == n {
		return outs, nil // every task finished before the cancel landed
	}
	if fo != nil {
		fo.BatchCanceled(p.Name, k, n)
	}
	return outs[:k], &CanceledError{Batch: p.Name, Done: k, Total: n, Cause: err}
}

// batchError builds the error for a batch stopped by task failure: the raw
// lowest-indexed failure in strict mode, a *BudgetError otherwise.
func batchError(p Pool, budget, index int, err error, strict bool) error {
	if strict {
		return err
	}
	return &BudgetError{Batch: p.Name, Budget: budget, Index: index, First: err}
}

// fetchRemote offers the batch to the pool's BatchRunner (if any) and
// returns its partial result map. Indices already replayable from the
// Saver are excluded from the request; a batch fully covered by the
// checkpoint never leaves the process.
func fetchRemote(ctx context.Context, p Pool, n int) map[int][]byte {
	if p.Remote == nil {
		return nil
	}
	need := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if p.Save != nil {
			if _, ok := p.Save.Lookup(p.Name, i); ok {
				continue
			}
		}
		need = append(need, i)
	}
	if len(need) == 0 {
		return nil
	}
	return p.Remote.RunBatch(ctx, p.Name, n, need)
}

// runTask executes one task: checkpoint replay if available, then a remote
// (BatchRunner) value if one arrived, otherwise up to MaxAttempts local
// executions with panic recovery, fault injection and deterministic
// backoff. The observer sees one TaskDone event per task (the final
// attempt); intermediate failures surface as TaskRetry events.
func runTask[T any](ctx context.Context, p Pool, fo FaultObserver, wo WorkObserver, ro RemoteObserver, remote map[int][]byte, i, worker int, queued time.Time, fn func(i int) (T, error)) Outcome[T] {
	if p.Save != nil {
		if data, ok := p.Save.Lookup(p.Name, i); ok {
			var v T
			if err := gobDecode(data, &v); err == nil {
				if fo != nil {
					fo.TaskReplayed(p.Name, i)
				}
				if p.Obs != nil {
					now := time.Now()
					p.Obs.TaskDone(p.Name, i, worker, queued, now, now, nil)
				}
				return Outcome[T]{Value: v, Replayed: true}
			}
			// Undecodable record (e.g. the task type changed): re-execute.
		}
	}
	if data, ok := remote[i]; ok {
		var v T
		if err := gobDecode(data, &v); err == nil {
			if ro != nil {
				ro.TaskRemote(p.Name, i)
			}
			if p.Obs != nil {
				now := time.Now()
				p.Obs.TaskDone(p.Name, i, worker, queued, now, now, nil)
			}
			if p.Save != nil {
				p.Save.Save(p.Name, i, data)
			}
			return Outcome[T]{Value: v, Remote: true}
		}
		// Corrupt or mistyped remote bytes: fall through to local execution.
	}
	if wo != nil {
		wo.TaskStarted(p.Name, i, worker)
		defer wo.TaskFinished(p.Name, i, worker)
	}
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	var lastErr error
	attempts := 0
	for attempt := 0; attempt < max; attempt++ {
		if attempt > 0 {
			if fo != nil {
				fo.TaskRetry(p.Name, i, attempt, lastErr)
			}
			if !backoffSleep(ctx, p, i, attempt) {
				break // canceled while backing off
			}
		}
		start := time.Now()
		v, err := runAttempt(p, i, attempt, fn)
		attempts = attempt + 1
		if err == nil {
			if p.Obs != nil {
				p.Obs.TaskDone(p.Name, i, worker, queued, start, time.Now(), nil)
			}
			if p.Save != nil {
				if data, gerr := gobEncode(v); gerr == nil {
					p.Save.Save(p.Name, i, data)
				}
			}
			return Outcome[T]{Value: v, Attempts: attempts}
		}
		lastErr = err
		if attempt == max-1 || ctx.Err() != nil {
			if p.Obs != nil {
				p.Obs.TaskDone(p.Name, i, worker, queued, start, time.Now(), err)
			}
			break
		}
	}
	return Outcome[T]{Err: lastErr, Attempts: attempts}
}

// runAttempt executes one attempt of fn(i) with panic recovery; a panic
// becomes a *TaskError carrying the recovered value and stack. The fault
// hook runs inside the recovery scope so injected panics are isolated too.
func runAttempt[T any](p Pool, i, attempt int, fn func(i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &TaskError{
				Batch: p.Name, Index: i, Attempts: attempt + 1,
				Err: fmt.Errorf("panic: %v", r), Panic: r, Stack: debug.Stack(),
			}
		}
	}()
	if p.Fault != nil {
		if ferr := p.Fault.Inject(p.Name, i, attempt); ferr != nil {
			return v, ferr
		}
	}
	return fn(i)
}

// backoffSleep sleeps before retry attempt (1-based) of task index with a
// deterministic task-keyed jitter; it returns false if ctx was canceled
// before the sleep finished.
func backoffSleep(ctx context.Context, p Pool, index, attempt int) bool {
	if p.BackoffBase <= 0 {
		return ctx.Err() == nil
	}
	d := p.BackoffBase << (attempt - 1)
	if half := uint64(d / 2); half > 0 {
		d += time.Duration(taskHash(p.Name, index, attempt) % (half + 1))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// taskHash is a deterministic 64-bit key for (batch, index, attempt), used
// to seed backoff jitter independently of schedule and worker count.
func taskHash(batch string, index, attempt int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(batch))
	var b [16]byte
	for k := 0; k < 8; k++ {
		b[k] = byte(index >> (8 * k))
		b[8+k] = byte(attempt >> (8 * k))
	}
	h.Write(b[:])
	return h.Sum64()
}

// gobEncode serializes a task value for checkpointing.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// gobDecode restores a checkpointed task value.
func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// isCancellation reports whether err stems from context cancellation (of
// either flavour) rather than a genuine task failure.
func isCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// OnceMap is a concurrent single-flight memoization map: the first caller
// of Do for a key computes the value while concurrent callers of the same
// key block and share the one result. It replaces check-then-insert cache
// patterns that, under a worker pool, would compute the same expensive
// profile or plan on several workers at once.
type OnceMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*onceEntry[V]
	// Name labels this cache in observer events. Set before concurrent use.
	Name string
	// Obs, when non-nil, receives one CacheDone event per Do call. Set
	// before concurrent use.
	Obs CacheObserver
}

type onceEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized value for key, computing it on first use. The
// computation's error is memoized too: every caller of a failed key
// observes the same error — except cancellation errors, whose entries are
// evicted so a resumed run retries the computation instead of observing a
// poisoned cache. A panicking compute is recovered into a *TaskError
// rather than marking the once done with a zero value.
func (om *OnceMap[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	om.mu.Lock()
	if om.m == nil {
		om.m = make(map[K]*onceEntry[V])
	}
	e := om.m[key]
	hit := e != nil
	if e == nil {
		e = &onceEntry[V]{}
		om.m[key] = e
	}
	om.mu.Unlock()
	run := func() {
		e.once.Do(func() {
			defer func() {
				if r := recover(); r != nil {
					e.err = &TaskError{
						Batch: om.Name, Index: -1, Attempts: 1,
						Err: fmt.Errorf("panic: %v", r), Panic: r, Stack: debug.Stack(),
					}
				}
			}()
			e.val, e.err = compute()
		})
	}
	if om.Obs == nil {
		run()
	} else {
		start := time.Now()
		run()
		om.Obs.CacheDone(om.Name, fmt.Sprint(key), hit, start, time.Now())
	}
	if e.err != nil && isCancellation(e.err) {
		om.mu.Lock()
		if om.m[key] == e {
			delete(om.m, key)
		}
		om.mu.Unlock()
	}
	return e.val, e.err
}

// Len returns the number of keys ever computed (or in flight).
func (om *OnceMap[K, V]) Len() int {
	om.mu.Lock()
	defer om.mu.Unlock()
	return len(om.m)
}
