package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// recorder collects observer events under a lock.
type recorder struct {
	mu      sync.Mutex
	batches []string
	totals  []int
	tasks   []taskEvent
	caches  []cacheEvent
}

type taskEvent struct {
	batch        string
	task, worker int
	queued       time.Time
	start, end   time.Time
	err          error
}

type cacheEvent struct {
	cache, key string
	hit        bool
}

func (r *recorder) BatchStart(batch string, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, batch)
	r.totals = append(r.totals, n)
}

func (r *recorder) TaskDone(batch string, task, worker int, queued, start, end time.Time, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tasks = append(r.tasks, taskEvent{batch, task, worker, queued, start, end, err})
}

func (r *recorder) CacheDone(cache, key string, hit bool, start, end time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.caches = append(r.caches, cacheEvent{cache, key, hit})
}

func TestMapObserverEvents(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := &recorder{}
		p := Pool{Workers: workers, Obs: rec}.Named("batch-x")
		out, err := Map(context.Background(), p, 5, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 5 {
			t.Fatalf("workers=%d: results = %v", workers, out)
		}
		if len(rec.batches) != 1 || rec.batches[0] != "batch-x" || rec.totals[0] != 5 {
			t.Errorf("workers=%d: BatchStart = %v/%v", workers, rec.batches, rec.totals)
		}
		if len(rec.tasks) != 5 {
			t.Fatalf("workers=%d: task events = %d, want 5", workers, len(rec.tasks))
		}
		seen := map[int]bool{}
		for _, ev := range rec.tasks {
			if ev.batch != "batch-x" || ev.err != nil {
				t.Errorf("workers=%d: event = %+v", workers, ev)
			}
			if ev.worker < 0 || ev.worker >= workers {
				t.Errorf("workers=%d: worker id %d out of range", workers, ev.worker)
			}
			if ev.start.Before(ev.queued) || ev.end.Before(ev.start) {
				t.Errorf("workers=%d: queued/start/end not ordered: %+v", workers, ev)
			}
			seen[ev.task] = true
		}
		if len(seen) != 5 {
			t.Errorf("workers=%d: task indices seen = %v", workers, seen)
		}
	}
}

func TestMapObserverSeesErrors(t *testing.T) {
	rec := &recorder{}
	boom := errors.New("boom")
	_, err := Map(context.Background(), Pool{Workers: 1, Obs: rec}, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Serial execution stops at the failing task; its event carries the error.
	if len(rec.tasks) != 2 || rec.tasks[1].err == nil {
		t.Errorf("task events = %+v", rec.tasks)
	}
}

// TestObserverDoesNotChangeResults: attaching an observer must leave Map's
// output bit-identical.
func TestObserverDoesNotChangeResults(t *testing.T) {
	fn := func(i int) (int, error) { return 7 * i, nil }
	plain, err := Map(context.Background(), Pool{Workers: 3}, 10, fn)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Map(context.Background(), Pool{Workers: 3, Obs: &recorder{}}, 10, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("results differ at %d: %d vs %d", i, plain[i], observed[i])
		}
	}
}

func TestOnceMapObserver(t *testing.T) {
	rec := &recorder{}
	om := OnceMap[string, int]{Name: "profile", Obs: rec}
	if _, err := om.Do("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := om.Do("k", func() (int, error) { t.Fatal("recompute"); return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if len(rec.caches) != 2 {
		t.Fatalf("cache events = %+v", rec.caches)
	}
	if rec.caches[0].hit || !rec.caches[1].hit {
		t.Errorf("hit flags = %v, %v; want miss then hit", rec.caches[0].hit, rec.caches[1].hit)
	}
	for _, ev := range rec.caches {
		if ev.cache != "profile" || ev.key != "k" {
			t.Errorf("event = %+v", ev)
		}
	}
}
