package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		p := Pool{Workers: workers}
		got, err := Map(context.Background(), p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), Pool{}, 0, func(i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), Pool{Workers: workers}, 50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errA
			case 31:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: got %v, want %v (lowest-indexed failure)", workers, err, errA)
		}
	}
}

func TestMapRunsEveryTaskExactlyOnce(t *testing.T) {
	var calls [200]int32
	_, err := Map(context.Background(), Pool{Workers: 4}, len(calls), func(i int) (struct{}, error) {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if calls[i] != 1 {
			t.Errorf("task %d ran %d times", i, calls[i])
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	if err := ForEach(context.Background(), Pool{Workers: 3}, 10, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Errorf("sum = %d, want 45", sum)
	}
	want := errors.New("boom")
	if err := ForEach(context.Background(), Serial, 3, func(i int) error {
		if i == 1 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Errorf("got %v, want %v", err, want)
	}
}

func TestPoolWorkerClamping(t *testing.T) {
	cases := []struct{ pool, tasks, want int }{
		{0, 100, 0}, // 0 means NumCPU; just check it is ≥1 below
		{1, 100, 1},
		{5, 3, 3}, // never more workers than tasks
		{-2, 100, 0},
	}
	for _, c := range cases {
		got := Pool{Workers: c.pool}.workers(c.tasks)
		if c.want == 0 {
			if got < 1 || got > c.tasks {
				t.Errorf("Pool{%d}.workers(%d) = %d, want in [1,%d]", c.pool, c.tasks, got, c.tasks)
			}
		} else if got != c.want {
			t.Errorf("Pool{%d}.workers(%d) = %d, want %d", c.pool, c.tasks, got, c.want)
		}
	}
}

func TestOnceMapSingleFlight(t *testing.T) {
	var om OnceMap[string, int]
	var computes int32
	var wg sync.WaitGroup
	const goroutines = 16
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := om.Do("k", func() (int, error) {
				atomic.AddInt32(&computes, 1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	for g, v := range results {
		if v != 42 {
			t.Errorf("goroutine %d got %d, want 42", g, v)
		}
	}
	if om.Len() != 1 {
		t.Errorf("Len = %d, want 1", om.Len())
	}
}

func TestOnceMapCachesErrors(t *testing.T) {
	var om OnceMap[int, string]
	var computes int
	want := errors.New("nope")
	for i := 0; i < 3; i++ {
		_, err := om.Do(1, func() (string, error) {
			computes++
			return "", want
		})
		if !errors.Is(err, want) {
			t.Fatalf("call %d: got %v, want %v", i, err, want)
		}
	}
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1 (errors are cached)", computes)
	}
}

func TestOnceMapDistinctKeys(t *testing.T) {
	var om OnceMap[int, int]
	for i := 0; i < 10; i++ {
		v, err := om.Do(i, func() (int, error) { return i * 2, nil })
		if err != nil || v != i*2 {
			t.Fatalf("Do(%d) = %d, %v", i, v, err)
		}
	}
	if om.Len() != 10 {
		t.Errorf("Len = %d, want 10", om.Len())
	}
}

func TestMapConcurrencyMatchesPool(t *testing.T) {
	var cur, peak int32
	_, err := Map(context.Background(), Pool{Workers: 3}, 64, func(i int) (int, error) {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		defer atomic.AddInt32(&cur, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Errorf("observed %d concurrent tasks, pool allows 3", peak)
	}
}

func ExampleMap() {
	squares, _ := Map(context.Background(), Serial, 4, func(i int) (int, error) { return i * i, nil })
	fmt.Println(squares)
	// Output: [0 1 4 9]
}
