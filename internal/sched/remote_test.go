package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRunner serves precomputed gob values for a chosen set of indices and
// records what it was asked for.
type fakeRunner struct {
	mu      sync.Mutex
	serve   map[int]any // index -> value to return (gob-encoded lazily)
	raw     map[int][]byte
	batches []string
	asked   [][]int
}

func (f *fakeRunner) RunBatch(ctx context.Context, batch string, n int, indices []int) map[int][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches = append(f.batches, batch)
	f.asked = append(f.asked, append([]int(nil), indices...))
	out := make(map[int][]byte)
	for _, i := range indices {
		if data, ok := f.raw[i]; ok {
			out[i] = data
			continue
		}
		if v, ok := f.serve[i]; ok {
			data, err := gobEncode(v)
			if err != nil {
				panic(err)
			}
			out[i] = data
		}
	}
	return out
}

// remoteTally counts TaskRemote events; it satisfies TaskObserver +
// RemoteObserver so the pool discovers it by type assertion.
type remoteTally struct {
	remote atomic.Int64
}

func (r *remoteTally) BatchStart(string, int) {}
func (r *remoteTally) TaskDone(string, int, int, time.Time, time.Time, time.Time, error) {
}
func (r *remoteTally) TaskRemote(batch string, index int) { r.remote.Add(1) }

func TestRemoteBatchRunnerFillsValues(t *testing.T) {
	runner := &fakeRunner{serve: map[int]any{0: 100, 1: 101, 2: 102, 3: 103}}
	var executed atomic.Int64
	tally := &remoteTally{}
	p := Pool{Workers: 4, Name: "remote-batch", Obs: tally, Remote: runner}
	got, err := Map(context.Background(), p, 4, func(i int) (int, error) {
		executed.Add(1)
		return -1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 100+i {
			t.Fatalf("got[%d] = %d, want %d (remote value)", i, v, 100+i)
		}
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("executed %d tasks locally, want 0", n)
	}
	if n := tally.remote.Load(); n != 4 {
		t.Fatalf("RemoteObserver saw %d tasks, want 4", n)
	}
	if len(runner.asked) != 1 || len(runner.asked[0]) != 4 {
		t.Fatalf("runner asked = %v, want one request for all 4 indices", runner.asked)
	}
}

func TestRemotePartialCoverageFallsBackLocally(t *testing.T) {
	runner := &fakeRunner{serve: map[int]any{1: 11, 3: 33}}
	var executed atomic.Int64
	p := Pool{Workers: 2, Name: "remote-partial", Remote: runner}
	outs, err := MapOutcomes(context.Background(), p, 4, func(i int) (int, error) {
		executed.Add(1)
		return i * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 11, 20, 33}
	for i, o := range outs {
		if o.Value != want[i] {
			t.Fatalf("outs[%d].Value = %d, want %d", i, o.Value, want[i])
		}
		wantRemote := i == 1 || i == 3
		if o.Remote != wantRemote {
			t.Fatalf("outs[%d].Remote = %v, want %v", i, o.Remote, wantRemote)
		}
	}
	if n := executed.Load(); n != 2 {
		t.Fatalf("executed %d tasks locally, want 2", n)
	}
}

func TestRemoteUndecodableBytesRunLocally(t *testing.T) {
	runner := &fakeRunner{raw: map[int][]byte{0: []byte("not a gob stream")}}
	var executed atomic.Int64
	p := Pool{Workers: 1, Name: "remote-corrupt", Remote: runner}
	got, err := Map(context.Background(), p, 1, func(i int) (int, error) {
		executed.Add(1)
		return 7, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || executed.Load() != 1 {
		t.Fatalf("corrupt remote bytes: got %v (executed=%d), want local value 7 (executed=1)", got, executed.Load())
	}
}

func TestRemoteSkipsCheckpointedIndices(t *testing.T) {
	save := &memSaver{}
	enc, err := gobEncode(41)
	if err != nil {
		t.Fatal(err)
	}
	save.Save("remote-ckpt", 1, enc)
	runner := &fakeRunner{serve: map[int]any{0: 40, 2: 42}}
	p := Pool{Workers: 1, Name: "remote-ckpt", Save: save, Remote: runner}
	got, err := Map(context.Background(), p, 3, func(i int) (int, error) {
		t.Fatalf("task %d executed locally", i)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 40 || got[1] != 41 || got[2] != 42 {
		t.Fatalf("got %v, want [40 41 42]", got)
	}
	if len(runner.asked) != 1 || len(runner.asked[0]) != 2 {
		t.Fatalf("runner asked = %v, want one request for the 2 non-checkpointed indices", runner.asked)
	}
	// Remote values are persisted like local ones, so a resumed run never
	// re-dispatches them.
	if _, ok := save.Lookup("remote-ckpt", 0); !ok {
		t.Fatal("remote value for index 0 was not persisted to the Saver")
	}
}

func TestRemoteFullCheckpointNeverDispatches(t *testing.T) {
	save := &memSaver{}
	for i := 0; i < 3; i++ {
		enc, err := gobEncode(i)
		if err != nil {
			t.Fatal(err)
		}
		save.Save("remote-full", i, enc)
	}
	runner := &fakeRunner{}
	p := Pool{Workers: 2, Name: "remote-full", Save: save, Remote: runner}
	if _, err := Map(context.Background(), p, 3, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if len(runner.batches) != 0 {
		t.Fatalf("runner dispatched %v, want nothing (batch fully checkpointed)", runner.batches)
	}
}

func TestForEachIgnoresRemote(t *testing.T) {
	runner := &fakeRunner{serve: map[int]any{0: 1, 1: 1}}
	var executed atomic.Int64
	p := Pool{Workers: 2, Name: "remote-foreach", Remote: runner}
	if err := ForEach(context.Background(), p, 2, func(i int) error {
		executed.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 2 {
		t.Fatalf("ForEach executed %d tasks, want 2 (side effects must run locally)", executed.Load())
	}
	if len(runner.batches) != 0 {
		t.Fatalf("ForEach dispatched remotely: %v", runner.batches)
	}
}
