package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faultRecorder extends recorder with the FaultObserver events.
type faultRecorder struct {
	recorder
	mu       sync.Mutex
	retries  []int
	skipped  []int
	replayed []int
	canceled []string
}

func (r *faultRecorder) TaskRetry(batch string, index, attempt int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries = append(r.retries, index)
}

func (r *faultRecorder) TaskSkipped(batch string, index int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.skipped = append(r.skipped, index)
}

func (r *faultRecorder) TaskReplayed(batch string, index int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replayed = append(r.replayed, index)
}

func (r *faultRecorder) BatchCanceled(batch string, done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.canceled = append(r.canceled, fmt.Sprintf("%s:%d/%d", batch, done, total))
}

// memSaver is an in-memory Saver for checkpoint tests.
type memSaver struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (s *memSaver) key(batch string, index int) string { return fmt.Sprintf("%s\x00%d", batch, index) }

func (s *memSaver) Lookup(batch string, index int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[s.key(batch, index)]
	return data, ok
}

func (s *memSaver) Save(batch string, index int, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string][]byte)
	}
	s.m[s.key(batch, index)] = data
}

func (s *memSaver) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func TestMapCancelReturnsCompletedPrefix(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		got, err := Map(ctx, Pool{Workers: workers, Name: "cancel-batch"}, 100, func(i int) (int, error) {
			if i == 10 {
				cancel()
			}
			return i * i, nil
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err does not wrap context.Canceled: %v", workers, err)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %T, want *CanceledError", workers, err)
		}
		if ce.Batch != "cancel-batch" || ce.Total != 100 {
			t.Errorf("workers=%d: canceled error = %+v", workers, ce)
		}
		if ce.Done != len(got) {
			t.Fatalf("workers=%d: Done = %d but prefix has %d results", workers, ce.Done, len(got))
		}
		if ce.Done >= 100 {
			t.Fatalf("workers=%d: cancel did not stop the batch (done=%d)", workers, ce.Done)
		}
		// The prefix must be the deterministic values of tasks 0..Done-1.
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: prefix[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Map(ctx, Serial, 10, func(i int) (int, error) {
		t.Error("task ran under a canceled context")
		return 0, nil
	})
	if !errors.Is(err, ErrCanceled) || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty prefix and ErrCanceled", got, err)
	}
}

func TestMapPanicYieldsTaskError(t *testing.T) {
	for _, workers := range []int{1, 3} {
		_, err := Map(context.Background(), Pool{Workers: workers, Name: "panics"}, 8, func(i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: err = %T %v, want *TaskError", workers, err, err)
		}
		if te.Batch != "panics" || te.Index != 3 || te.Panic != "kaboom" {
			t.Errorf("workers=%d: task error = %+v", workers, te)
		}
		if len(te.Stack) == 0 || !strings.Contains(string(te.Stack), "runAttempt") {
			t.Errorf("workers=%d: stack not captured at the panic site", workers)
		}
		if !strings.Contains(te.Error(), "kaboom") {
			t.Errorf("workers=%d: message %q lacks the panic value", workers, te.Error())
		}
	}
}

func TestRetryRecoversFlakyTask(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls [20]int32
		rec := &faultRecorder{}
		p := Pool{Workers: workers, Name: "flaky", MaxAttempts: 3, Obs: rec}
		got, err := Map(context.Background(), p, len(calls), func(i int) (int, error) {
			n := atomic.AddInt32(&calls[i], 1)
			if i == 7 && n < 3 {
				panic("transient")
			}
			if i == 12 && n < 2 {
				return 0, errors.New("transient")
			}
			return i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i {
				t.Errorf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
		if calls[7] != 3 || calls[12] != 2 {
			t.Errorf("workers=%d: attempts = %d/%d, want 3/2", workers, calls[7], calls[12])
		}
		if len(rec.retries) != 3 {
			t.Errorf("workers=%d: retry events = %v, want 3", workers, rec.retries)
		}
		// One TaskDone per task, not per attempt.
		if len(rec.tasks) != len(calls) {
			t.Errorf("workers=%d: task events = %d, want %d", workers, len(rec.tasks), len(calls))
		}
	}
}

func TestMapOutcomesSkipsExhaustedRetries(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		rec := &faultRecorder{}
		p := Pool{Workers: workers, Name: "skips", MaxAttempts: 2, FailureBudget: -1, Obs: rec}
		outs, err := MapOutcomes(context.Background(), p, 10, func(i int) (int, error) {
			switch i {
			case 2:
				return 0, boom
			case 6:
				panic("always")
			}
			return i * 10, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(outs) != 10 {
			t.Fatalf("workers=%d: outcomes = %d", workers, len(outs))
		}
		for i, o := range outs {
			switch i {
			case 2:
				if !o.Skipped || !errors.Is(o.Err, boom) || o.Attempts != 2 {
					t.Errorf("workers=%d: outs[2] = %+v", workers, o)
				}
			case 6:
				var te *TaskError
				if !o.Skipped || !errors.As(o.Err, &te) || te.Panic != "always" {
					t.Errorf("workers=%d: outs[6] = %+v", workers, o)
				}
			default:
				if o.Skipped || o.Err != nil || o.Value != i*10 {
					t.Errorf("workers=%d: outs[%d] = %+v", workers, i, o)
				}
			}
		}
		if len(rec.skipped) != 2 {
			t.Errorf("workers=%d: skip events = %v", workers, rec.skipped)
		}
	}
}

func TestMapOutcomesBudgetExhausted(t *testing.T) {
	p := Pool{Workers: 1, Name: "budget", FailureBudget: 1}
	outs, err := MapOutcomes(context.Background(), p, 10, func(i int) (int, error) {
		if i == 2 || i == 5 {
			return 0, errors.New("bad cell")
		}
		return i, nil
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Batch != "budget" || be.Budget != 1 || be.Index != 5 {
		t.Errorf("budget error = %+v", be)
	}
	if outs != nil {
		t.Errorf("failed batch returned outcomes: %v", outs)
	}
}

func TestMapOutcomesZeroBudgetFailsFast(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapOutcomes(context.Background(), Serial.Named("strictish"), 5, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want budget error wrapping the task error", err)
	}
}

func TestSaverReplaysCompletedTasks(t *testing.T) {
	saver := &memSaver{}
	var execs atomic.Int32
	fn := func(i int) (int, error) {
		execs.Add(1)
		return i * 3, nil
	}
	p := Pool{Workers: 2, Name: "ckpt", Save: saver}
	first, err := Map(context.Background(), p, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 16 || saver.len() != 16 {
		t.Fatalf("first run: %d execs, %d records", execs.Load(), saver.len())
	}
	rec := &faultRecorder{}
	p.Obs = rec
	second, err := Map(context.Background(), p, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 16 {
		t.Errorf("resume re-executed tasks: %d execs", execs.Load())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed value differs at %d: %d vs %d", i, first[i], second[i])
		}
	}
	if len(rec.replayed) != 16 {
		t.Errorf("replay events = %d, want 16", len(rec.replayed))
	}
}

// TestSaverResumeMatchesUninterrupted is the engine-level resume golden: a
// batch canceled mid-run and resumed from its checkpoint produces results
// identical to an uninterrupted batch, at a different worker count.
func TestSaverResumeMatchesUninterrupted(t *testing.T) {
	fn := func(i int) (int, error) { return i*i + 1, nil }
	want, err := Map(context.Background(), Pool{Workers: 4, Name: "golden"}, 50, fn)
	if err != nil {
		t.Fatal(err)
	}

	saver := &memSaver{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prefix, err := Map(ctx, Pool{Workers: 1, Name: "golden", Save: saver}, 50, func(i int) (int, error) {
		if i == 20 {
			cancel()
		}
		return fn(i)
	})
	if !errors.Is(err, ErrCanceled) || len(prefix) >= 50 {
		t.Fatalf("interrupted run: %d results, err = %v", len(prefix), err)
	}

	var reexec atomic.Int32
	resumed, err := Map(context.Background(), Pool{Workers: 8, Name: "golden", Save: saver}, 50, func(i int) (int, error) {
		reexec.Add(1)
		return fn(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(reexec.Load()) != 50-len(prefix)-1 && int(reexec.Load()) >= 50 {
		// At least the completed prefix must have been replayed, not re-run.
		t.Errorf("resume re-executed %d of 50 tasks (prefix was %d)", reexec.Load(), len(prefix))
	}
	for i := range want {
		if resumed[i] != want[i] {
			t.Fatalf("resumed[%d] = %d, want %d", i, resumed[i], want[i])
		}
	}
}

func TestForEachValuesNotPersisted(t *testing.T) {
	saver := &memSaver{}
	if err := ForEach(context.Background(), Pool{Name: "fe", Save: saver}, 4, func(i int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// struct{} has no exported fields, so nothing can (or needs to) be
	// checkpointed; the batch must still succeed.
	if saver.len() != 0 {
		t.Errorf("persisted %d empty records", saver.len())
	}
}

func TestOnceMapEvictsCanceledComputes(t *testing.T) {
	var om OnceMap[string, int]
	var computes int
	compute := func() (int, error) {
		computes++
		if computes == 1 {
			return 0, fmt.Errorf("wrapped: %w", context.Canceled)
		}
		return 42, nil
	}
	if _, err := om.Do("k", compute); !errors.Is(err, context.Canceled) {
		t.Fatalf("first call err = %v", err)
	}
	v, err := om.Do("k", compute)
	if err != nil || v != 42 {
		t.Fatalf("retry after cancellation: %d, %v", v, err)
	}
	if computes != 2 {
		t.Errorf("computes = %d, want 2 (canceled entry evicted)", computes)
	}
}

func TestOnceMapRecoversPanickingCompute(t *testing.T) {
	om := OnceMap[string, int]{Name: "profiles"}
	_, err := om.Do("k", func() (int, error) { panic("compute exploded") })
	var te *TaskError
	if !errors.As(err, &te) || te.Panic != "compute exploded" {
		t.Fatalf("err = %v, want *TaskError with the panic value", err)
	}
	// The failure is memoized like any other compute error.
	_, err2 := om.Do("k", func() (int, error) { t.Fatal("recompute"); return 0, nil })
	if !errors.As(err2, &te) {
		t.Fatalf("second call err = %v", err2)
	}
}

func TestBackoffIsCancelable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Pool{Workers: 1, Name: "backoff", MaxAttempts: 10, BackoffBase: time.Hour}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, p, 1, func(i int) (int, error) { return 0, errors.New("always") })
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not interrupt the backoff sleep")
	}
}
