package staticprof

import (
	"fmt"
	"math"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
)

// The abstract interpreter walks the loop-nest tree once, tracking for each
// register an abstract value (aval) that captures exactly the address
// structure the reuse model needs: a constant, an affine function of loop
// counters, a masked pseudo-random (hashed) value, a pointer circulating in
// a backed region, or nothing (varying).
//
// Each loop body is first summarized syntactically — per register: untouched,
// advanced by a constant per iteration, or rewritten — so that on loop entry
// additive registers get a per-depth stride tag and rewritten registers are
// widened to their loop-carried fixpoint (a constant address inside a backed
// region widens to a pointer into it; everything else structured collapses).
// One pass over the body then reaches the steady state and records one fact
// per static memory instruction.

// kind discriminates the abstract value forms.
type kind uint8

const (
	kConst   kind = iota // known integer
	kAffine              // base + Σ stride[d]·iter[d], optionally masked
	kHashed              // anchored pseudo-random over vals·gran bytes
	kPointer             // circulates inside one backed region
	kVarying             // no structure
)

// stride is one per-loop-depth address increment.
type stride struct {
	depth int
	delta int64
}

// aval is an abstract register value. The strides slice is sorted by depth
// and treated as immutable (copy on write), so facts can share it safely.
type aval struct {
	k       kind
	base    int64
	strides []stride
	foot    int64 // masked wrap window in bytes (kAffine), 0 = none
	vals    int64 // number of distinct anchor values (kHashed)
	gran    int64 // spacing between anchor values in bytes (kHashed)
	vary    int   // loop depth whose iterations redraw the value (kHashed)
	rst     int   // shallowest depth at which the value's sequence restarts
	region  *isa.Region
}

// fact is the analysis result at one static memory instruction.
type fact struct {
	pc    ref.PC
	op    isa.Opcode
	base  isa.Reg
	off   int64
	v     aval
	inner *isa.Node // innermost enclosing loop node
}

// effect summarizes what one loop iteration does to a register.
type effect struct {
	set   bool // rewritten (non-additively)
	add   bool // advanced by delta
	delta int64
}

type analyzer struct {
	c     *isa.Compiled
	meta  *isa.Meta
	mem   *isa.Memory
	env   [isa.NumRegs]aval
	path  []*isa.Node
	steps int
	sums  map[*isa.Node]map[isa.Reg]effect
	pcs   map[*isa.Node][]ref.PC
	facts []fact
}

func (a *analyzer) execNode(n *isa.Node) error {
	if n.IsLeaf() {
		return a.execLeaf(n)
	}
	return a.execLoop(n)
}

func (a *analyzer) execLoop(n *isa.Node) error {
	if len(a.path) >= maxDepth {
		return fmt.Errorf("nesting depth %d: %w", len(a.path)+1, ErrTooDeep)
	}
	sum := a.summarize(n)
	depth := len(a.path)
	saved := a.env
	for r := 0; r < isa.NumRegs; r++ {
		e, ok := sum[isa.Reg(r)]
		if !ok {
			continue
		}
		if e.set {
			a.env[r] = a.widen(a.env[r])
		} else if e.add && e.delta != 0 {
			a.env[r] = withStride(a.env[r], depth, e.delta)
		}
	}
	a.path = append(a.path, n)
	for _, ch := range n.Body {
		if err := a.execNode(ch); err != nil {
			return err
		}
	}
	a.path = a.path[:len(a.path)-1]
	if n.Count == 0 {
		// The body never runs; its facts carry zero weight, and the machine
		// state is untouched.
		a.env = saved
		return nil
	}
	for r := 0; r < isa.NumRegs; r++ {
		e, ok := sum[isa.Reg(r)]
		if !ok || e.set {
			continue // untouched, or keep the body's steady-state value
		}
		if e.add {
			v := saved[r]
			total, ok2 := satMul(e.delta, n.Count)
			var nb int64
			ok3 := false
			if ok2 {
				nb, ok3 = satAdd(v.base, total)
			}
			if !ok3 {
				a.env[r] = aval{k: kVarying, rst: v.rst}
				continue
			}
			v.base = nb
			a.env[r] = v
		}
	}
	return nil
}

func (a *analyzer) execLeaf(n *isa.Node) error {
	memIdx := 0
	for _, in := range n.Code {
		a.steps++
		if a.steps > maxSteps {
			return fmt.Errorf("%d abstract steps: %w", a.steps, ErrTooComplex)
		}
		var pc ref.PC
		if in.Op.IsMem() {
			pc = a.pcs[n][memIdx]
			memIdx++
		}
		switch in.Op {
		case isa.OpMovI:
			a.env[in.Dst] = aval{k: kConst, base: in.Imm, rst: a.hereDepth()}
		case isa.OpAddI:
			a.addImm(in.Dst, in.Imm)
		case isa.OpMovR:
			a.env[in.Dst] = a.env[in.Base]
		case isa.OpAddR:
			a.env[in.Dst] = combine(a.env[in.Dst], a.env[in.Base])
		case isa.OpMulI:
			a.mulImm(in.Dst, in.Imm)
		case isa.OpAndI:
			a.andImm(in.Dst, in.Imm)
		case isa.OpShrI:
			a.shrImm(in.Dst, in.Imm)
		case isa.OpLoad:
			a.record(pc, in)
			a.env[in.Dst] = a.loadValue(in)
		case isa.OpStore:
			a.record(pc, in)
		case isa.OpPrefetch, isa.OpPrefetchNTA, isa.OpCompute:
			// no register effect; prefetches carry no reuse weight
		}
	}
	return nil
}

// hereDepth is the depth index of the innermost active loop (the slot a
// value set here repeats at).
func (a *analyzer) hereDepth() int {
	if len(a.path) == 0 {
		return 0
	}
	return len(a.path) - 1
}

func (a *analyzer) record(pc ref.PC, in isa.Instr) {
	var inner *isa.Node
	if len(a.path) > 0 {
		inner = a.path[len(a.path)-1]
	}
	a.facts = append(a.facts, fact{
		pc: pc, op: in.Op, base: in.Base, off: in.Imm,
		v: a.env[in.Base], inner: inner,
	})
}

// summarize computes the per-register effect of ONE iteration of loop n's
// body, memoized per node.
func (a *analyzer) summarize(n *isa.Node) map[isa.Reg]effect {
	if s, ok := a.sums[n]; ok {
		return s
	}
	acc := make(map[isa.Reg]effect)
	for _, ch := range n.Body {
		a.accumulate(acc, ch)
	}
	a.sums[n] = acc
	return acc
}

func (a *analyzer) accumulate(acc map[isa.Reg]effect, n *isa.Node) {
	if n.IsLeaf() {
		for _, in := range n.Code {
			instrEffect(acc, in)
		}
		return
	}
	inner := make(map[isa.Reg]effect)
	for _, ch := range n.Body {
		a.accumulate(inner, ch)
	}
	// One iteration of the child loop's parent sees the child body n.Count
	// times. Composition is per-register and order-insensitive: set
	// dominates, additive deltas sum.
	// lint:allow detrand (per-key pure composition into another map; visit order cannot reach the result)
	for r, e := range inner {
		if e.set {
			acc[r] = effect{set: true}
			continue
		}
		cur := acc[r]
		if cur.set {
			continue
		}
		total, ok := satMul(e.delta, n.Count)
		if !ok {
			acc[r] = effect{set: true}
			continue
		}
		nd, ok := satAdd(cur.delta, total)
		if !ok {
			acc[r] = effect{set: true}
			continue
		}
		acc[r] = effect{add: true, delta: nd}
	}
}

func instrEffect(acc map[isa.Reg]effect, in isa.Instr) {
	switch in.Op {
	case isa.OpAddI:
		cur := acc[in.Dst]
		if cur.set {
			return
		}
		nd, ok := satAdd(cur.delta, in.Imm)
		if !ok {
			acc[in.Dst] = effect{set: true}
			return
		}
		acc[in.Dst] = effect{add: true, delta: nd}
	case isa.OpMovI, isa.OpMovR, isa.OpAddR, isa.OpMulI, isa.OpAndI, isa.OpShrI, isa.OpLoad:
		acc[in.Dst] = effect{set: true}
	}
}

// widen computes the loop-carried fixpoint of a rewritten register: a
// constant address inside a backed region becomes a pointer circulating in
// it (the chase idiom); hashed and pointer values are already stable;
// everything else loses structure.
func (a *analyzer) widen(v aval) aval {
	switch v.k {
	case kConst:
		if r := a.mem.FindRegion(uint64(v.base)); r != nil {
			return aval{k: kPointer, region: r, rst: v.rst}
		}
		return aval{k: kVarying, rst: v.rst}
	case kAffine:
		return aval{k: kVarying, rst: v.rst}
	default:
		return v
	}
}

// withStride tags an additive register with its per-iteration delta at the
// given loop depth. The strides slice is copied, never mutated.
func withStride(v aval, depth int, delta int64) aval {
	switch v.k {
	case kConst:
		return aval{k: kAffine, base: v.base, strides: []stride{{depth, delta}}, rst: v.rst}
	case kAffine, kHashed:
		ns := make([]stride, 0, len(v.strides)+1)
		ns = append(ns, v.strides...)
		ns = append(ns, stride{depth, delta})
		v.strides = ns
		return v
	default:
		return v
	}
}

func (a *analyzer) addImm(dst isa.Reg, imm int64) {
	v := a.env[dst]
	switch v.k {
	case kConst, kAffine, kHashed, kPointer:
		nb, ok := satAdd(v.base, imm)
		if !ok {
			a.env[dst] = aval{k: kVarying, rst: v.rst}
			return
		}
		v.base = nb
		a.env[dst] = v
	}
}

// combine models AddR: dst += src.
func combine(x, y aval) aval {
	rst := minInt(x.rst, y.rst)
	if x.k == kVarying || y.k == kVarying || x.k == kPointer || y.k == kPointer {
		return aval{k: kVarying, rst: rst}
	}
	nb, ok := satAdd(x.base, y.base)
	if !ok {
		return aval{k: kVarying, rst: rst}
	}
	switch {
	case x.k == kConst && y.k == kConst:
		return aval{k: kConst, base: nb, rst: rst}
	case x.k == kHashed && y.k == kHashed:
		return aval{k: kVarying, rst: rst}
	case x.k == kHashed || y.k == kHashed:
		h, o := x, y
		if y.k == kHashed {
			h, o = y, x
		}
		h.base = nb
		h.rst = rst
		h.strides = mergeStrides(h.strides, o.strides)
		return h
	default: // affine + affine/const
		out := aval{k: kAffine, base: nb, rst: rst,
			strides: mergeStrides(x.strides, y.strides)}
		out.foot = x.foot
		if out.foot == 0 {
			out.foot = y.foot
		}
		if len(out.strides) == 0 && out.foot == 0 {
			out.k = kConst
		}
		return out
	}
}

// mergeStrides sums two sorted stride vectors into a fresh one.
func mergeStrides(x, y []stride) []stride {
	if len(y) == 0 {
		return x
	}
	if len(x) == 0 {
		return y
	}
	out := make([]stride, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i].depth < y[j].depth:
			out = append(out, x[i])
			i++
		case x[i].depth > y[j].depth:
			out = append(out, y[j])
			j++
		default:
			d, ok := satAdd(x[i].delta, y[j].delta)
			if !ok {
				d = math.MaxInt64
			}
			if d != 0 {
				out = append(out, stride{x[i].depth, d})
			}
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

func (a *analyzer) mulImm(dst isa.Reg, imm int64) {
	v := a.env[dst]
	if imm == 0 {
		a.env[dst] = aval{k: kConst, rst: v.rst}
		return
	}
	scale := func(x int64) (int64, bool) { return satMul(x, imm) }
	switch v.k {
	case kConst:
		if nb, ok := scale(v.base); ok {
			a.env[dst] = aval{k: kConst, base: nb, rst: v.rst}
			return
		}
	case kAffine, kHashed:
		nb, ok1 := scale(v.base)
		nf, ok2 := scale(v.foot)
		ng, ok3 := scale(v.gran)
		ns := make([]stride, len(v.strides))
		okS := true
		for i, s := range v.strides {
			nd, ok := scale(s.delta)
			if !ok {
				okS = false
				break
			}
			ns[i] = stride{s.depth, nd}
		}
		if ok1 && ok2 && ok3 && okS {
			v.base, v.foot, v.gran, v.strides = nb, nf, ng, ns
			a.env[dst] = v
			return
		}
	}
	a.env[dst] = aval{k: kVarying, rst: v.rst}
}

func (a *analyzer) andImm(dst isa.Reg, imm int64) {
	v := a.env[dst]
	switch {
	case imm == 0:
		a.env[dst] = aval{k: kConst, rst: v.rst}
		return
	case imm == -1:
		return // identity mask
	case imm < 0 || imm == math.MaxInt64:
		a.env[dst] = aval{k: kVarying, rst: v.rst}
		return
	}
	fp := imm + 1 // window size for a contiguous low-bit mask
	hashed := aval{k: kHashed, vals: fp, gran: 1, vary: a.hereDepth(), rst: v.rst}
	switch v.k {
	case kConst:
		a.env[dst] = aval{k: kConst, base: v.base & imm, rst: v.rst}
	case kAffine:
		if len(v.strides) == 0 {
			a.env[dst] = aval{k: kConst, base: v.base & imm, rst: v.rst}
			return
		}
		// A power-of-two mask commensurate with a single stride turns the
		// affine value into a bounded wrap-around window (the hot-stack
		// idiom); anything less regular degrades to a hashed window.
		if d := v.strides[len(v.strides)-1].delta; len(v.strides) == 1 &&
			fp&(fp-1) == 0 && d != 0 && fp >= abs64(d) && fp%abs64(d) == 0 {
			a.env[dst] = aval{k: kAffine, base: v.base & imm, strides: v.strides,
				foot: fp, rst: v.rst}
			return
		}
		a.env[dst] = hashed
	case kHashed, kVarying:
		a.env[dst] = hashed
	case kPointer:
		a.env[dst] = aval{k: kVarying, rst: v.rst}
	}
}

func (a *analyzer) shrImm(dst isa.Reg, imm int64) {
	v := a.env[dst]
	if v.k == kConst {
		if imm < 0 || imm > 63 {
			a.env[dst] = aval{k: kConst, rst: v.rst}
			return
		}
		a.env[dst] = aval{k: kConst, base: int64(uint64(v.base) >> uint(imm)), rst: v.rst}
		return
	}
	if v.k != kVarying {
		a.env[dst] = aval{k: kVarying, rst: v.rst}
	}
}

// loadValue abstracts the value a load produces. Loads from unbacked arenas
// read zero; loads from backed regions are content-sniffed for the chase
// idiom.
func (a *analyzer) loadValue(in isa.Instr) aval {
	base := a.env[in.Base]
	switch base.k {
	case kConst:
		addr, ok := satAdd(base.base, in.Imm)
		if !ok {
			return aval{k: kVarying, rst: base.rst}
		}
		r := a.mem.FindRegion(uint64(addr))
		if r == nil {
			return aval{k: kConst, rst: base.rst}
		}
		return a.sniff(r, base.rst)
	case kPointer:
		return a.sniff(base.region, base.rst)
	case kAffine, kHashed:
		addr, ok := satAdd(base.base, in.Imm)
		if !ok {
			return aval{k: kVarying, rst: base.rst}
		}
		if a.mem.FindRegion(uint64(addr)) == nil {
			return aval{k: kConst, rst: base.rst}
		}
		return aval{k: kVarying, rst: base.rst}
	default:
		return aval{k: kVarying, rst: base.rst}
	}
}

// sniff samples a backed region's line-start words. If most non-zero words
// are addresses inside one backed region, values loaded from here are
// pointers into that region (the chase idiom); all-zero content reads as
// constant zero.
func (a *analyzer) sniff(r *isa.Region, rst int) aval {
	lines := r.Size() / 64
	if lines == 0 {
		return aval{k: kVarying, rst: rst}
	}
	n := lines
	if n > 8 {
		n = 8
	}
	step := lines / n
	type cand struct {
		reg *isa.Region
		cnt int
	}
	var cands []cand
	nonzero := 0
	for i := uint64(0); i < n; i++ {
		w := i * step * 8
		if w >= r.Words() {
			break
		}
		v := r.Word(w)
		if v == 0 {
			continue
		}
		nonzero++
		tr := a.mem.FindRegion(uint64(v))
		if tr == nil {
			continue
		}
		found := false
		for j := range cands {
			if cands[j].reg == tr {
				cands[j].cnt++
				found = true
				break
			}
		}
		if !found {
			cands = append(cands, cand{tr, 1})
		}
	}
	if nonzero == 0 {
		return aval{k: kConst, rst: rst}
	}
	best := cand{}
	for _, c := range cands {
		if c.cnt > best.cnt {
			best = c
		}
	}
	if best.cnt*4 >= nonzero*3 {
		return aval{k: kPointer, region: best.reg, rst: rst}
	}
	return aval{k: kVarying, rst: rst}
}

// deepestStride returns the innermost-tagged stride of a value.
func deepestStride(v aval) (depth int, delta int64, ok bool) {
	if len(v.strides) == 0 {
		return 0, 0, false
	}
	s := v.strides[len(v.strides)-1]
	return s.depth, s.delta, true
}

// strideAt returns the stride tagged at exactly the given depth.
func strideAt(v aval, depth int) int64 {
	for _, s := range v.strides {
		if s.depth == depth {
			return s.delta
		}
	}
	return 0
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		return 0, false
	}
	return p, true
}

func abs64(x int64) int64 {
	if x == math.MinInt64 {
		return math.MaxInt64
	}
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
