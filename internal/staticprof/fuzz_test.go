package staticprof

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/stridecentric"
)

// fz decodes a fuzz byte stream into an IR program: an exhausted stream
// reads as zero, so every input decodes to *some* program.
type fz struct {
	data []byte
	pos  int
}

func (z *fz) next() byte {
	if z.pos >= len(z.data) {
		return 0
	}
	b := z.data[z.pos]
	z.pos++
	return b
}

func (z *fz) done() bool { return z.pos >= len(z.data) }

// Degenerate trip counts the analyzer must survive: empty, tiny, huge and
// saturating.
var fuzzCounts = []int64{0, 1, 2, 3, 5, 8, 1000, 1 << 40, math.MaxInt64}

// buildFuzzTree emits a random instruction stream with nested loops.
func (z *fz) buildFuzzTree(b *isa.Builder, regs []isa.Reg, imms []int64, depth int, budget *int) {
	for !z.done() && *budget > 0 {
		*budget--
		op := z.next()
		r := regs[int(z.next())%len(regs)]
		s := regs[int(z.next())%len(regs)]
		imm := imms[int(z.next())%len(imms)]
		switch op % 13 {
		case 0:
			b.MovI(r, imm)
		case 1:
			b.AddI(r, imm)
		case 2:
			b.MovR(r, s)
		case 3:
			b.AddR(r, s)
		case 4:
			b.MulI(r, imm)
		case 5:
			b.AndI(r, imm)
		case 6:
			b.ShrI(r, int64(z.next()%70))
		case 7:
			b.Load(r, s, imm%8192)
		case 8:
			b.Store(r, s, imm%8192)
		case 9:
			b.Compute(int64(z.next() % 32))
		case 10:
			if depth > maxDepth+4 {
				continue // the analyzer's error path is covered; stay finite
			}
			count := fuzzCounts[int(z.next())%len(fuzzCounts)]
			b.Loop(count, func() {
				z.buildFuzzTree(b, regs, imms, depth+1, budget)
			})
		case 11:
			b.Prefetch(s, imm%8192)
		default:
			return // close the current nesting level
		}
	}
}

// buildFuzzProgram decodes one fuzz input into a compiled program, or nil
// when the decoded program is rejected by the builder/compiler (their
// validation errors are out of scope here).
func buildFuzzProgram(data []byte) *isa.Compiled {
	z := &fz{data: data}
	b := isa.NewBuilder("fuzz")
	nregs := 2 + int(z.next()%6)
	regs := make([]isa.Reg, nregs)
	for i := range regs {
		regs[i] = b.Reg()
	}
	arena := b.Arena(uint64(z.next()) * 4096) // possibly zero-size
	sizes := []uint64{0, 64, 128, 4096, 64 * 64}
	ring := b.Backed("ring", sizes[int(z.next())%len(sizes)])
	if n := ring.Size() / 64; n > 0 && z.next()%2 == 0 {
		for i := uint64(0); i < n; i++ {
			ring.SetWord(i*8, int64(ring.Base+((i+1)%n)*64))
		}
	} // else: the region keeps arbitrary (zero) words — a broken chase image
	imms := []int64{0, 1, 8, 64, 96, 4096, -64, int64(arena), int64(ring.Base),
		6364136223846793005, math.MaxInt64, math.MinInt64, 63, 511, -1}
	budget := 256
	z.buildFuzzTree(b, regs, imms, 0, &budget)
	prog, err := b.Program()
	if err != nil {
		return nil
	}
	c, err := isa.Compile(prog)
	if err != nil {
		return nil
	}
	return c
}

// FuzzStaticProfile feeds arbitrary program shapes through Analyze: however
// degenerate the loop nest (zero or MaxInt64 trip counts, zero-size arenas,
// broken chase images, deep nesting), the analyzer must never panic and must
// report failures only through its typed errors. Successful profiles must be
// sane (miss ratios in [0,1], monotone in cache size, no NaNs) and
// deterministic.
func FuzzStaticProfile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 1, 0, 7, 1, 2, 3})
	// A stream loop: MovI; loop{Load; AddI}.
	f.Add([]byte{2, 2, 0, 0, 0, 7, 10, 0, 6, 7, 0, 1, 0, 1, 0, 0, 3})
	// Deep nesting: repeated loop openings.
	deep := []byte{1, 1, 1}
	for i := 0; i < 80; i++ {
		deep = append(deep, 10, 0, 0, 0, 4)
	}
	f.Add(deep)
	// Saturating trip counts.
	f.Add([]byte{1, 4, 1, 10, 0, 0, 0, 8, 10, 0, 0, 0, 8, 7, 0, 0, 0})

	sizes := statstack.StandardSizes()
	f.Fuzz(func(t *testing.T, data []byte) {
		c := buildFuzzProgram(data)
		if c == nil {
			return
		}
		prof, err := Analyze(c, stridecentric.Params{})
		if err != nil {
			if !errors.Is(err, ErrTooDeep) && !errors.Is(err, ErrTooComplex) && !errors.Is(err, ErrOverflow) {
				t.Fatalf("untyped analysis error: %v", err)
			}
			return
		}
		mrc := prof.MRC(sizes)
		for i, mr := range mrc {
			if math.IsNaN(mr) || mr < 0 || mr > 1 {
				t.Fatalf("MRC[%d] = %v out of [0,1]", i, mr)
			}
			if i > 0 && mr > mrc[i-1]+1e-12 {
				t.Fatalf("MRC not monotone: %v", mrc)
			}
		}
		for _, ld := range prof.Loads {
			if _, ok := prof.LoadByPC(ld.PC); !ok {
				t.Fatalf("load %+v not addressable by PC", ld)
			}
		}
		again, err := Analyze(c, stridecentric.Params{})
		if err != nil {
			t.Fatalf("second analysis failed: %v", err)
		}
		if !reflect.DeepEqual(prof.Loads, again.Loads) || !reflect.DeepEqual(mrc, again.MRC(sizes)) {
			t.Fatal("analysis is nondeterministic")
		}
	})
}
