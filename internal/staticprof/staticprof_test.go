package staticprof

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/stridecentric"
)

func compile(t *testing.T, b *isa.Builder) *isa.Compiled {
	t.Helper()
	c, err := isa.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func analyze(t *testing.T, b *isa.Builder) *Profile {
	t.Helper()
	prof, err := Analyze(compile(t, b), stridecentric.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func load0(t *testing.T, prof *Profile) Load {
	t.Helper()
	ld, ok := prof.LoadByPC(0)
	if !ok {
		t.Fatal("PC 0 missing from profile")
	}
	return ld
}

func TestStreamSingleSweep(t *testing.T) {
	b := isa.NewBuilder("stream")
	r, v := b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.MovI(r, int64(base))
	b.Loop(1000, func() {
		b.Load(v, r, 0)
		b.AddI(r, 64)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Class != ClassStream || ld.Stride != 64 {
		t.Fatalf("load = %+v, want stream stride 64", ld)
	}
	if ld.Decision != core.DecisionInsertNormal {
		t.Fatalf("decision = %s, want insert", ld.Decision)
	}
	dp := stridecentric.Params{}.WithDefaults()
	wantDist, ok := core.Distance(64, 0, dp.Delta, dp.Latency, 1000)
	if !ok || ld.Distance != wantDist {
		t.Errorf("distance = %d, want %d (defaults)", ld.Distance, wantDist)
	}
	// One pass over 1000 fresh lines: every access is cold at every size.
	for _, size := range []int64{8 << 10, 8 << 20} {
		if mr := prof.MissRatio(size); math.Abs(mr-1) > 1e-9 {
			t.Errorf("MissRatio(%d) = %f, want 1", size, mr)
		}
	}
}

func TestStreamCrossPassReuse(t *testing.T) {
	b := isa.NewBuilder("repass")
	r, v := b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.Loop(4, func() {
		b.MovI(r, int64(base))
		b.Loop(256, func() {
			b.Load(v, r, 0)
			b.AddI(r, 64)
		})
	})
	prof := analyze(t, b)
	// 256 lines, re-swept 4 times: 256 cold misses out of 1024 accesses once
	// the 16 KiB footprint fits; everything misses below it.
	if mr := prof.MissRatio(8 << 10); mr < 0.99 {
		t.Errorf("MissRatio(8K) = %f, want ~1 (footprint exceeds cache)", mr)
	}
	if mr := prof.MissRatio(1 << 20); math.Abs(mr-0.25) > 1e-9 {
		t.Errorf("MissRatio(1M) = %f, want 0.25 (cold sweep only)", mr)
	}
}

func TestSubLineStride(t *testing.T) {
	b := isa.NewBuilder("subline")
	r, v := b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.MovI(r, int64(base))
	b.Loop(512, func() {
		b.Load(v, r, 0)
		b.AddI(r, 8)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Class != ClassStream || ld.Stride != 8 {
		t.Fatalf("load = %+v, want stream stride 8", ld)
	}
	if ld.Decision != core.DecisionInsertNormal {
		t.Fatalf("decision = %s, want insert", ld.Decision)
	}
	// 8 touches per 64 B line: 64 cold lines, 448 immediate same-line hits.
	if mr := prof.MissRatio(8 << 10); math.Abs(mr-0.125) > 1e-9 {
		t.Errorf("MissRatio(8K) = %f, want 0.125", mr)
	}
}

func TestFollowerGrouping(t *testing.T) {
	b := isa.NewBuilder("stencil")
	r := b.Reg()
	v0, v1, v2 := b.Reg(), b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.MovI(r, int64(base))
	b.Loop(1000, func() {
		b.Load(v0, r, 0)
		b.Load(v1, r, 64)
		b.Load(v2, r, 128)
		b.AddI(r, 64)
	})
	prof := analyze(t, b)
	// The off-128 read leads; the off-64 and off-0 reads re-touch its lines
	// one and two iterations later. Only the leader's stream is cold.
	lead, _ := prof.LoadByPC(2)
	if mr, ok := prof.PCMissRatio(2, 8<<10); !ok || mr < 0.99 {
		t.Errorf("leader PCMissRatio = %f/%v, want ~1", mr, ok)
	}
	for _, pc := range []ref.PC{0, 1} {
		if mr, ok := prof.PCMissRatio(pc, 8<<10); !ok || mr > 1e-9 {
			t.Errorf("follower pc=%d PCMissRatio = %f/%v, want 0", pc, mr, ok)
		}
	}
	if mr := prof.MissRatio(8 << 10); math.Abs(mr-1.0/3) > 1e-9 {
		t.Errorf("MissRatio = %f, want 1/3 (leader cold only)", mr)
	}
	if lead.Decision != core.DecisionInsertNormal {
		t.Errorf("leader decision = %s, want insert", lead.Decision)
	}
}

func TestPointerChase(t *testing.T) {
	b := isa.NewBuilder("chase")
	ptr := b.Reg()
	reg := b.Backed("ring", 64*64) // 64 line-sized nodes
	n := reg.Size() / 64
	for i := uint64(0); i < n; i++ {
		reg.SetWord(i*8, int64(reg.Base+((i+1)%n)*64))
	}
	b.MovI(ptr, int64(reg.Base))
	b.Loop(1000, func() {
		b.Load(ptr, ptr, 0)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Class != ClassChase || ld.Footprint != 64*64 {
		t.Fatalf("load = %+v, want chase over 4096 B", ld)
	}
	if ld.Decision != core.DecisionIrregular {
		t.Fatalf("decision = %s, want no-dominant-stride", ld.Decision)
	}
	// A 64-node ring revisits each node every 64 steps: misses when the ring
	// exceeds the cache, 64 cold misses once it fits.
	if mr := prof.MissRatio(2 << 10); mr < 0.99 {
		t.Errorf("MissRatio(2K) = %f, want ~1", mr)
	}
	if mr := prof.MissRatio(8 << 10); math.Abs(mr-0.064) > 1e-9 {
		t.Errorf("MissRatio(8K) = %f, want 0.064", mr)
	}
}

func TestGatherLCG(t *testing.T) {
	b := isa.NewBuilder("gather")
	state, tmp, addr, av, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	base := b.Arena(64 * 64)
	b.MovI(state, 12345)
	b.MovI(av, int64(base))
	b.Loop(10000, func() {
		b.MulI(state, 6364136223846793005)
		b.AddI(state, 1442695040888963407)
		b.MovR(tmp, state)
		b.ShrI(tmp, 17)
		b.AndI(tmp, 63)
		b.MulI(tmp, 64)
		b.MovR(addr, av)
		b.AddR(addr, tmp)
		b.Load(v, addr, 0)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Class != ClassGather || ld.Footprint != 64*64 {
		t.Fatalf("load = %+v, want gather over 4096 B", ld)
	}
	if ld.Decision != core.DecisionIrregular {
		t.Fatalf("decision = %s, want no-dominant-stride", ld.Decision)
	}
	// Uniform draws over 64 lines: ~64 cold misses in 10000 accesses once
	// the footprint fits; near-certain misses in a 16-line cache.
	if mr := prof.MissRatio(8 << 10); mr > 0.02 {
		t.Errorf("MissRatio(8K) = %f, want < 0.02", mr)
	}
	if mr := prof.MissRatio(1 << 10); mr < 0.5 {
		t.Errorf("MissRatio(1K) = %f, want > 0.5", mr)
	}
}

func TestMaskedWindowStream(t *testing.T) {
	b := isa.NewBuilder("masked")
	idx, eff, bs, v := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.MovI(idx, 0)
	b.MovI(bs, int64(base))
	b.Loop(1000, func() {
		b.MovR(eff, idx)
		b.AndI(eff, 4095)
		b.AddR(eff, bs)
		b.Load(v, eff, 0)
		b.AddI(idx, 64)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Class != ClassStream || ld.Stride != 64 || ld.Footprint != 4096 {
		t.Fatalf("load = %+v, want stream stride 64 wrapping in 4096 B", ld)
	}
	if ld.Decision != core.DecisionInsertNormal {
		t.Fatalf("decision = %s, want insert (wrap is 1/64 of steps)", ld.Decision)
	}
	// The cursor wraps every 64 steps: 64 cold lines, the rest reuse at
	// distance 63 — hits once the 4 KiB window fits.
	if mr := prof.MissRatio(8 << 10); math.Abs(mr-0.064) > 1e-9 {
		t.Errorf("MissRatio(8K) = %f, want 0.064", mr)
	}
	if mr := prof.MissRatio(1 << 10); mr < 0.99 {
		t.Errorf("MissRatio(1K) = %f, want ~1", mr)
	}
}

func TestInvariantLoad(t *testing.T) {
	b := isa.NewBuilder("inv")
	r, v := b.Reg(), b.Reg()
	base := b.Arena(1 << 12)
	b.MovI(r, int64(base))
	b.Loop(100, func() {
		b.Load(v, r, 0)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Class != ClassInvariant {
		t.Fatalf("class = %s, want invariant", ld.Class)
	}
	if ld.Decision != core.DecisionIrregular {
		t.Fatalf("decision = %s, want no-dominant-stride (stride 0)", ld.Decision)
	}
	if mr := prof.MissRatio(8 << 10); math.Abs(mr-0.01) > 1e-9 {
		t.Errorf("MissRatio = %f, want 0.01 (one cold line)", mr)
	}
}

func TestFewExecutions(t *testing.T) {
	b := isa.NewBuilder("few")
	r, v := b.Reg(), b.Reg()
	base := b.Arena(1 << 12)
	b.MovI(r, int64(base))
	b.Loop(3, func() {
		b.Load(v, r, 0)
		b.AddI(r, 64)
	})
	prof := analyze(t, b)
	if ld := load0(t, prof); ld.Decision != core.DecisionFewStrides {
		t.Fatalf("decision = %s, want too-few-stride-samples (2 pairs)", ld.Decision)
	}
}

func TestZeroTripLoop(t *testing.T) {
	b := isa.NewBuilder("zero")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 0)
	b.Loop(0, func() {
		b.Load(v, r, 0)
	})
	prof := analyze(t, b)
	ld := load0(t, prof)
	if ld.Execs != 0 || ld.Decision != core.DecisionFewStrides {
		t.Fatalf("load = %+v, want 0 execs, too-few-stride-samples", ld)
	}
	if _, ok := prof.PCMissRatio(0, 8<<10); ok {
		t.Error("PCMissRatio ok for a never-executed PC")
	}
	if mr := prof.MissRatio(8 << 10); mr != 0 {
		t.Errorf("MissRatio = %f, want 0 (no references)", mr)
	}
}

func TestErrTooDeep(t *testing.T) {
	b := isa.NewBuilder("deep")
	r, v := b.Reg(), b.Reg()
	var nest func(d int)
	nest = func(d int) {
		if d == 0 {
			b.Load(v, r, 0)
			return
		}
		b.Loop(1, func() { nest(d - 1) })
	}
	nest(maxDepth + 1)
	_, err := Analyze(compile(t, b), stridecentric.Params{})
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
}

func TestErrOverflow(t *testing.T) {
	b := isa.NewBuilder("sat")
	r, v := b.Reg(), b.Reg()
	b.Loop(math.MaxInt64, func() {
		b.Loop(math.MaxInt64, func() {
			b.Load(v, r, 0)
		})
	})
	_, err := Analyze(compile(t, b), stridecentric.Params{})
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestNilProgram(t *testing.T) {
	if _, err := Analyze(nil, stridecentric.Params{}); !errors.Is(err, ErrTooComplex) {
		t.Fatalf("err = %v, want ErrTooComplex", err)
	}
}

func TestPlanMatchesLoads(t *testing.T) {
	b := isa.NewBuilder("plan")
	r1, r2, v := b.Reg(), b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.MovI(r1, int64(base))
	b.MovI(r2, int64(base))
	b.Loop(1000, func() {
		b.Load(v, r1, 0)
		b.AddI(r1, 64)
		b.Load(v, r2, 0) // invariant-per-iteration companion
	})
	prof := analyze(t, b)
	plan := prof.Plan()
	if len(plan.Loads) != len(prof.Loads) {
		t.Fatalf("plan has %d loads, profile %d", len(plan.Loads), len(prof.Loads))
	}
	var wantIns int
	for i, ld := range prof.Loads {
		li := plan.Loads[i]
		if li.PC != ld.PC || li.Decision != ld.Decision {
			t.Errorf("plan load %d = %+v, profile %+v", i, li, ld)
		}
		if ld.Decision == core.DecisionInsertNormal {
			wantIns++
		}
	}
	if len(plan.Insertions) != wantIns {
		t.Errorf("plan insertions = %d, want %d", len(plan.Insertions), wantIns)
	}
	for _, ins := range plan.Insertions {
		ld, ok := prof.LoadByPC(ins.PC)
		if !ok || ins.Distance != ld.Distance {
			t.Errorf("insertion %+v disagrees with load %+v", ins, ld)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Profile {
		b := isa.NewBuilder("det")
		r1, r2, v := b.Reg(), b.Reg(), b.Reg()
		base := b.Arena(1 << 20)
		ring := b.Backed("ring", 64*64)
		n := ring.Size() / 64
		for i := uint64(0); i < n; i++ {
			ring.SetWord(i*8, int64(ring.Base+((i+1)%n)*64))
		}
		b.MovI(r1, int64(base))
		b.MovI(r2, int64(ring.Base))
		b.Loop(500, func() {
			b.Load(v, r1, 0)
			b.Load(v, r1, 64)
			b.AddI(r1, 64)
			b.Load(r2, r2, 0)
		})
		prof, err := Analyze(compile(t, b), stridecentric.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Loads, b.Loads) {
		t.Errorf("Loads differ across runs:\n%+v\n%+v", a.Loads, b.Loads)
	}
	sizes := []int64{1 << 10, 8 << 10, 64 << 10, 1 << 20, 8 << 20}
	if !reflect.DeepEqual(a.MRC(sizes), b.MRC(sizes)) {
		t.Error("MRC differs across runs")
	}
	if !reflect.DeepEqual(a.Plan(), b.Plan()) {
		t.Error("plans differ across runs")
	}
}
