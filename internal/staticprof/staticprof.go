// Package staticprof derives reuse profiles and stride classifications for
// ISA programs without executing a single instruction.
//
// The sampled pipeline (internal/pipeline) learns a workload's miss-ratio
// curve and per-load stride behaviour by running the program under a
// watchpoint sampler. That costs a full functional simulation per profile.
// This package recovers the same two artifacts statically, in microseconds,
// from the program *text* alone:
//
//   - a per-load stride classification compatible with the MDDLI /
//     stride-centric decision pipeline (constant stride, pointer chase,
//     hashed gather, loop-invariant, unknown), obtained by abstract
//     interpretation of the register dataflow over the loop-nest tree; and
//
//   - an analytic reuse-distance histogram composed in closed form from
//     loop trip counts, arena footprints and the classification, which a
//     weighted StatStack estimator turns into a StatStack-compatible MRC
//     (Eklöv & Hagersten, ISPASS 2010 — the same math internal/statstack
//     applies to sampled reuse pairs).
//
// The approach follows the static reuse-profile line of work (Razzak et
// al., arXiv 2411.13854; PPT-Multicore, arXiv 2104.05102): for loop nests
// with analyzable address expressions the reuse distribution is a function
// of the loop structure, so no trace is needed. Pointer chases and hash
// gathers — which those frameworks give up on — are recovered here by
// sniffing the program's initial memory image: a register loaded from a
// backed region whose words point back into a region is a chase, and a
// masked linear-congruential value is a bounded uniform gather.
//
// Prefetch decisions replay stridecentric.Decide on the statically derived
// evidence, so the static and sampled tiers share one policy and can only
// disagree about the evidence itself. The experiments driver
// `static-validate` pins that disagreement per workload.
//
// Analyze is deterministic: identical inputs produce byte-identical
// profiles at any concurrency level.
package staticprof

import (
	"errors"
	"fmt"

	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/stridecentric"
)

// Typed failure modes. Analyze never panics: degenerate programs (absurd
// trip counts, zero-size arenas, pathological nesting) map to one of these.
var (
	// ErrTooDeep rejects loop nests deeper than maxDepth levels.
	ErrTooDeep = errors.New("staticprof: loop nesting too deep")
	// ErrTooComplex rejects programs whose abstract interpretation exceeds
	// the step budget.
	ErrTooComplex = errors.New("staticprof: abstract interpretation budget exceeded")
	// ErrOverflow rejects programs whose dynamic reference counts overflow
	// 64-bit (saturated) arithmetic; their reuse weights would be garbage.
	ErrOverflow = errors.New("staticprof: reference counts overflow 64 bits")
)

const (
	// maxDepth bounds the analyzable loop-nesting depth.
	maxDepth = 64
	// maxSteps bounds the abstract instructions interpreted per program.
	maxSteps = 1 << 20
)

// Class is the static access-pattern classification of one load.
type Class string

// Classes, from most to least prefetch-friendly.
const (
	// ClassStream: the address advances by a constant stride per iteration
	// of the innermost enclosing loop (possibly wrapping in a masked
	// window).
	ClassStream Class = "stream"
	// ClassChase: the address is loaded from a backed region whose contents
	// point back into a region — pointer chasing.
	ClassChase Class = "chase"
	// ClassGather: the address is a masked pseudo-random value over a
	// bounded footprint — uniform gathering.
	ClassGather Class = "gather"
	// ClassInvariant: the address does not change across innermost-loop
	// iterations.
	ClassInvariant Class = "invariant"
	// ClassUnknown: no structure was recovered; treated as never-reused.
	ClassUnknown Class = "unknown"
)

// Load is the static profile of one demand load.
type Load struct {
	PC        ref.PC
	Class     Class
	Stride    int64 // bytes per innermost iteration (ClassStream)
	Footprint int64 // wrap window / gather footprint / chased region, bytes
	Execs     uint64
	Decision  core.Decision
	Distance  int64 // prefetch distance in bytes when Decision is insert
}

// Profile is a complete static profile of one compiled program.
type Profile struct {
	Name string
	// Loads holds one entry per demand load, ascending PC.
	Loads []Load
	// TotalRefs is the program's total demand reference count.
	TotalRefs uint64

	plan   *core.Plan
	global *curve
	perPC  map[ref.PC]*curve
}

// Analyze statically profiles a compiled program. The params mirror the
// stride-centric heuristic's; zero values select the defaults.
func Analyze(c *isa.Compiled, p stridecentric.Params) (*Profile, error) {
	if c == nil || c.Prog == nil || c.Prog.Root == nil {
		return nil, fmt.Errorf("staticprof: nil or empty program: %w", ErrTooComplex)
	}
	p = p.WithDefaults()
	meta := c.Meta()
	if meta.Saturated() {
		return nil, fmt.Errorf("staticprof: %q: %w", c.Prog.Name, ErrOverflow)
	}
	a := &analyzer{
		c:    c,
		meta: meta,
		mem:  c.Prog.Mem,
		sums: make(map[*isa.Node]map[isa.Reg]effect),
		pcs:  buildPCMap(c),
	}
	if err := a.execNode(c.Prog.Root); err != nil {
		return nil, fmt.Errorf("staticprof: %q: %w", c.Prog.Name, err)
	}
	return a.profile(p), nil
}

// Plan returns the prefetch plan implied by the static classification,
// shaped exactly like the sampled analyzers' output so downstream rewriting
// and comparison code needs no changes.
func (p *Profile) Plan() *core.Plan { return p.plan }

// MissRatio models the whole program's miss ratio in a cache of sizeBytes
// (fully-associative LRU, 64 B lines), mirroring statstack.Model.MissRatio.
func (p *Profile) MissRatio(sizeBytes int64) float64 {
	crit := p.global.critical(float64(sizeBytes / ref.LineSize))
	return p.global.missRatioAt(crit)
}

// MRC evaluates the static miss-ratio curve at the given cache sizes.
func (p *Profile) MRC(sizes []int64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = p.MissRatio(s)
	}
	return out
}

// PCMissRatio models one instruction's miss ratio in a cache of sizeBytes
// using the program-wide critical reuse distance (the same construction as
// statstack.Model.PCMissRatio). ok is false if the PC carries no weight.
func (p *Profile) PCMissRatio(pc ref.PC, sizeBytes int64) (mr float64, ok bool) {
	cu := p.perPC[pc]
	if cu == nil || cu.n() == 0 {
		return 0, false
	}
	crit := p.global.critical(float64(sizeBytes / ref.LineSize))
	return cu.missRatioAt(crit), true
}

// PCMRC evaluates one instruction's miss-ratio curve at the given sizes.
func (p *Profile) PCMRC(pc ref.PC, sizes []int64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i], _ = p.PCMissRatio(pc, s)
	}
	return out
}

// LoadByPC returns the static profile of one load, if present.
func (p *Profile) LoadByPC(pc ref.PC) (Load, bool) {
	for _, ld := range p.Loads {
		if ld.PC == pc {
			return ld, true
		}
	}
	return Load{}, false
}

// buildPCMap assigns PCs to memory instructions per leaf in the exact order
// Compile does (demand accesses first, prefetches after), so analysis facts
// line up with Compiled.PCs.
func buildPCMap(c *isa.Compiled) map[*isa.Node][]ref.PC {
	m := make(map[*isa.Node][]ref.PC)
	nextDemand := ref.PC(0)
	nextPref := ref.PC(c.NumDemandPCs)
	var walk func(n *isa.Node)
	walk = func(n *isa.Node) {
		if n.IsLeaf() {
			for _, in := range n.Code {
				if !in.Op.IsMem() {
					continue
				}
				if in.Op.IsDemand() {
					m[n] = append(m[n], nextDemand)
					nextDemand++
				} else {
					m[n] = append(m[n], nextPref)
					nextPref++
				}
			}
			return
		}
		for _, ch := range n.Body {
			walk(ch)
		}
	}
	walk(c.Prog.Root)
	return m
}
