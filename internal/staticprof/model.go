package staticprof

import (
	"math"
	"sort"

	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/stridecentric"
)

// This file turns per-instruction facts into (a) a weighted reuse-distance
// histogram per PC and program-wide, and (b) replayed prefetch decisions.
//
// Reuse distances are measured like the sampler measures them — intervening
// demand references to any line — so the weighted StatStack estimator below
// is directly comparable with the sampled model. Each access class has a
// closed form over the loop metadata (isa.Meta):
//
//   - stream: E executions advance a line cursor; consecutive same-line
//     touches reuse at the iteration gap, each sweep's lines are reused one
//     reset-loop iteration later, the first sweep is cold. A masked stream
//     wraps inside its window instead of sweeping.
//   - chase: the pointer circulates a region of n lines shared by k chase
//     steps; a line returns after n/k own iterations.
//   - gather: draws are uniform over the anchor footprint; gaps between
//     touches of one line are geometric, discretized into quantile buckets.
//   - invariant: one line, reused every iteration.
//   - unknown: never reused (conservatively cold).
//
// Multiple instructions walking one line sequence (unrolled bursts, leading
// and trailing stencil reads) are grouped: the line-phase leader carries the
// stream model and followers reuse at their static offset lag — this is what
// makes trailing re-reads hit, as they do under simulation.

// maxRD caps reuse distances fed to the estimator (beyond any cache size).
const maxRD = int64(1) << 61

// gatherQuantiles discretizes geometric reuse-gap distributions.
const gatherQuantiles = 8

// histBuilder accumulates weighted reuse events.
type histBuilder struct {
	rds  []int64
	ws   []float64
	cold float64
}

func (h *histBuilder) add(rd float64, w float64) {
	if !(w > 0) {
		return
	}
	h.rds = append(h.rds, clampRD(rd))
	h.ws = append(h.ws, w)
}

func (h *histBuilder) addCold(w float64) {
	if w > 0 {
		h.cold += w
	}
}

func clampRD(x float64) int64 {
	if !(x > 0) {
		return 0
	}
	if x >= float64(maxRD) {
		return maxRD
	}
	return int64(x)
}

// curve is a finalized weighted reuse histogram with StatStack prefix sums:
// prefW[i] = Σ_{j<i} w_j and prefWD[i] = Σ_{j<i} w_j·(rd_j+1) over events
// sorted by reuse distance.
type curve struct {
	rds    []int64
	prefW  []float64
	prefWD []float64
	cold   float64
}

func (h *histBuilder) finalize() *curve {
	order := make([]int, len(h.rds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return h.rds[order[i]] < h.rds[order[j]] })
	cu := &curve{cold: h.cold,
		rds:    make([]int64, len(order)),
		prefW:  make([]float64, len(order)+1),
		prefWD: make([]float64, len(order)+1),
	}
	for i, o := range order {
		rd, w := h.rds[o], h.ws[o]
		cu.rds[i] = rd
		cu.prefW[i+1] = cu.prefW[i] + w
		cu.prefWD[i+1] = cu.prefWD[i] + w*(float64(rd)+1)
	}
	return cu
}

// n is the curve's total weight including cold accesses.
func (cu *curve) n() float64 { return cu.prefW[len(cu.rds)] + cu.cold }

// sd estimates the expected stack distance of a reuse at distance rd — the
// weighted form of statstack.Model.StackDist.
func (cu *curve) sd(rd int64) float64 {
	n := cu.n()
	if n == 0 || rd < 0 {
		return 0
	}
	idx := sort.Search(len(cu.rds), func(i int) bool { return cu.rds[i] >= rd })
	atLeast := cu.prefW[len(cu.rds)] - cu.prefW[idx] + cu.cold
	return (cu.prefWD[idx] + float64(rd)*atLeast) / n
}

// critical returns the smallest reuse distance that misses in a cache of
// the given line count, or MaxInt64 if no finite distance can.
func (cu *curve) critical(lines float64) int64 {
	if lines <= 0 {
		return 0
	}
	if cu.n() == 0 {
		return math.MaxInt64
	}
	lo, hi := int64(0), int64(1)
	for cu.sd(hi) < lines {
		if hi > 1<<60 {
			return math.MaxInt64
		}
		hi <<= 1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if cu.sd(mid) >= lines {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// missRatioAt is the weight fraction at or beyond the critical distance.
func (cu *curve) missRatioAt(crit int64) float64 {
	n := cu.n()
	if n == 0 {
		return 0
	}
	if crit == math.MaxInt64 {
		return cu.cold / n
	}
	idx := sort.Search(len(cu.rds), func(i int) bool { return cu.rds[i] >= crit })
	return (cu.prefW[len(cu.rds)] - cu.prefW[idx] + cu.cold) / n
}

// pcView bundles the loop metadata lookups the emitters need.
type pcView struct {
	pm isa.PCMeta
	m  int // innermost loop index, -1 if none
	e  float64
}

func (a *analyzer) view(pc ref.PC) pcView {
	pm, _ := a.meta.PC(pc)
	return pcView{pm: pm, m: len(pm.Loops) - 1, e: float64(pm.Execs)}
}

// refsAt is the demand references per iteration of the loop at depth d.
func (v pcView) refsAt(d int) float64 {
	d = clampDepth(d, v.m)
	if d < 0 {
		return 1
	}
	r := float64(v.pm.Loops[d].Refs)
	if r < 1 {
		return 1
	}
	return r
}

// execsUpTo is the total iteration count of the loop at depth d (sweeps).
func (v pcView) execsUpTo(d int) float64 {
	d = clampDepth(d, v.m)
	out := 1.0
	for i := 0; i <= d; i++ {
		out *= float64(v.pm.Loops[i].Count)
	}
	if out < 1 {
		return 1
	}
	return out
}

// below is the number of executions per iteration of the loop at depth d.
func (v pcView) below(d int) float64 {
	d = clampDepth(d, v.m)
	out := 1.0
	for i := d + 1; i <= v.m; i++ {
		out *= float64(v.pm.Loops[i].Count)
	}
	if out < 1 {
		return 1
	}
	return out
}

func clampDepth(d, m int) int {
	if d > m {
		d = m
	}
	if d < 0 {
		d = 0
	}
	if m < 0 {
		return -1
	}
	return d
}

// chainKey groups pointer accesses advancing one chain.
type chainKey struct {
	inner  *isa.Node
	base   isa.Reg
	region *isa.Region
}

// groupKey groups stream accesses sharing one line sequence.
type groupKey struct {
	inner *isa.Node
	base  isa.Reg
	sl    int
	delta int64
	phase int64
}

// streamGroup identifies grouped stream facts: same innermost loop, same
// base register, same stride, and a line phase that actually overlaps.
func streamGroup(f *fact) (groupKey, bool) {
	if f.v.foot != 0 || (f.v.k != kAffine && f.v.k != kHashed) {
		return groupKey{}, false
	}
	sl, d, ok := deepestStride(f.v)
	if !ok || d == 0 {
		return groupKey{}, false
	}
	ad := abs64(d)
	var phase int64
	if ad >= 64 {
		if d%64 != 0 {
			return groupKey{}, false // fractional line phase: never overlaps
		}
		phase = floorMod(floorDiv(f.off, 64), ad/64)
	}
	return groupKey{inner: f.inner, base: f.base, sl: sl, delta: d, phase: phase}, true
}

// advance orders group members by how early they touch a given line.
func advance(off, delta int64) int64 {
	if delta > 0 {
		return floorDiv(off, delta)
	}
	return floorDiv(-off, -delta)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// profile runs the post-pass over the recorded facts: histogram emission,
// decision replay and plan construction.
func (a *analyzer) profile(p stridecentric.Params) *Profile {
	prof := &Profile{
		Name:      a.c.Prog.Name,
		TotalRefs: a.meta.TotalDemandRefs(),
		plan:      &core.Plan{},
		perPC:     make(map[ref.PC]*curve, len(a.facts)),
	}

	chains := make(map[chainKey]int)
	for i := range a.facts {
		f := &a.facts[i]
		if f.v.k == kPointer && f.v.region != nil {
			chains[chainKey{f.inner, f.base, f.v.region}]++
		}
	}

	leaders := make(map[groupKey]int)
	for i := range a.facts {
		f := &a.facts[i]
		gk, ok := streamGroup(f)
		if !ok {
			continue
		}
		j, have := leaders[gk]
		if !have || a.leads(f, &a.facts[j]) {
			leaders[gk] = i
		}
	}

	global := &histBuilder{}
	for i := range a.facts {
		f := &a.facts[i]
		ph := &histBuilder{}
		a.emit(i, f, chains, leaders, ph)
		prof.perPC[f.pc] = ph.finalize()
		global.rds = append(global.rds, ph.rds...)
		global.ws = append(global.ws, ph.ws...)
		global.cold += ph.cold
	}
	prof.global = global.finalize()

	for i := range a.facts {
		f := &a.facts[i]
		if f.op != isa.OpLoad || int(f.pc) >= a.c.NumDemandPCs {
			continue
		}
		ld, li := a.decide(f, p)
		prof.Loads = append(prof.Loads, ld)
		prof.plan.Loads = append(prof.plan.Loads, li)
		if ld.Decision == core.DecisionInsertNormal {
			prof.plan.Insertions = append(prof.plan.Insertions,
				isa.Insertion{PC: ld.PC, Distance: ld.Distance})
		}
	}
	return prof
}

// leads reports whether f touches shared lines before g (larger static
// advance; ties broken by intra-iteration position).
func (a *analyzer) leads(f, g *fact) bool {
	_, d, _ := deepestStride(f.v)
	af, ag := advance(f.off, d), advance(g.off, d)
	if af != ag {
		return af > ag
	}
	fm, _ := a.meta.PC(f.pc)
	gm, _ := a.meta.PC(g.pc)
	return fm.Pos < gm.Pos
}

func (a *analyzer) emit(idx int, f *fact, chains map[chainKey]int, leaders map[groupKey]int, ph *histBuilder) {
	v := a.view(f.pc)
	if v.e == 0 {
		return
	}
	if v.m < 0 {
		ph.addCold(v.e)
		return
	}
	if gk, ok := streamGroup(f); ok {
		if li := leaders[gk]; li != idx {
			a.emitFollower(f, &a.facts[li], v, ph)
			return
		}
	}
	switch f.v.k {
	case kConst:
		a.emitInvariant(v, ph)
	case kAffine:
		if _, d, ok := deepestStride(f.v); ok && d != 0 {
			a.emitStream(f, v, ph)
		} else {
			a.emitInvariant(v, ph)
		}
	case kHashed:
		a.emitGather(f, v, ph)
	case kPointer:
		a.emitChase(f, v, chains, ph)
	default:
		ph.addCold(v.e)
	}
}

func (a *analyzer) emitInvariant(v pcView, ph *histBuilder) {
	ph.add(v.refsAt(v.m)-1, v.e-1)
	ph.addCold(1)
}

// emitFollower books all of a non-leader group member's accesses as reuses
// of the leader's line sequence at the static iteration lag.
func (a *analyzer) emitFollower(f, lead *fact, v pcView, ph *histBuilder) {
	sl, d, _ := deepestStride(f.v)
	lag := float64(advance(lead.off, d) - advance(f.off, d))
	fm, _ := a.meta.PC(f.pc)
	lm, _ := a.meta.PC(lead.pc)
	rd := lag*v.refsAt(sl) + float64(fm.Pos) - float64(lm.Pos) - 1
	ph.add(rd, v.e)
}

func (a *analyzer) emitStream(f *fact, v pcView, ph *histBuilder) {
	sl, d, _ := deepestStride(f.v)
	ad := float64(abs64(d))
	eBelow := v.below(sl)
	steps := v.e / eBelow
	k := 1.0
	if ad < 64 {
		k = 64 / ad
	}
	lines := steps / k
	if lines < 1 {
		lines = 1
	}
	rm := v.refsAt(v.m)
	rsl := v.refsAt(sl)
	// Touches below the stride level revisit the current line.
	ph.add(rm-1, v.e-steps)
	// Consecutive steps inside one line (sub-line strides).
	rdStep := rsl - (eBelow-1)*rm - 1
	if rdStep < 0 {
		rdStep = 0
	}
	ph.add(rdStep, steps-lines)
	j := clampDepth(f.v.rst, sl)
	s := v.execsUpTo(j)
	perSweep := lines / s
	rj := v.refsAt(j)
	if f.v.foot > 0 {
		// Masked wrap: the cursor revisits its window every P steps.
		fl := float64(f.v.foot) / 64
		if fl < 1 {
			fl = 1
		}
		pWrap := float64(f.v.foot) / ad
		if pWrap < 1 {
			pWrap = 1
		}
		distinct := math.Min(fl, perSweep)
		ph.add(pWrap*rsl-1, (perSweep-distinct)*s)
		ph.add(rj-1, distinct*(s-1))
		ph.addCold(distinct)
		return
	}
	ph.add(rj-1, perSweep*(s-1))
	ph.addCold(perSweep)
}

func (a *analyzer) emitChase(f *fact, v pcView, chains map[chainKey]int, ph *histBuilder) {
	if f.v.region == nil {
		ph.addCold(v.e)
		return
	}
	n := float64(f.v.region.Size() / 64)
	if n < 1 {
		ph.addCold(v.e)
		return
	}
	cs := float64(chains[chainKey{f.inner, f.base, f.v.region}])
	if cs < 1 {
		cs = 1
	}
	rm := v.refsAt(v.m)
	j := clampDepth(f.v.rst, v.m)
	s := v.execsUpTo(j)
	es := v.e / s
	own := n / cs // iterations until the chain returns to a line
	if own < 1 {
		own = 1
	}
	lines := math.Min(es, own)
	ph.add(own*rm-1, (es-lines)*s)
	ph.add(v.refsAt(j)-1, lines*(s-1))
	ph.addCold(lines)
}

// emitGather models hashed values: uniform draws over the anchor footprint,
// optionally carrying a short strided burst per draw (the random-restart
// stream idiom).
func (a *analyzer) emitGather(f *fact, v pcView, ph *histBuilder) {
	ad := clampDepth(f.v.vary, v.m)
	eSeg := v.below(ad)
	draws := v.e / eSeg
	if draws < 1 {
		draws = 1
	}
	vals := float64(f.v.vals)
	if vals < 1 {
		vals = 1
	}
	gran := float64(abs64(f.v.gran))
	if gran == 0 {
		gran = 1
	}
	if gran < 64 {
		// Sub-line spacing: distinct anchor lines are fewer than values.
		vals = math.Max(1, vals*gran/64)
	}
	segLines := 1.0
	if sl, d, ok := deepestStride(f.v); ok && d != 0 && sl > ad {
		stepsSeg := eSeg / v.below(sl)
		if a64 := float64(abs64(d)); a64 >= 64 {
			segLines = stepsSeg
		} else {
			segLines = math.Max(1, stepsSeg*a64/64)
		}
	}
	universe := vals * segLines
	touches := draws * segLines
	rm := v.refsAt(v.m)
	// Touches beyond one per line per segment revisit the segment's lines.
	ph.add(rm-1, v.e-touches)
	cold := universe * (1 - math.Exp(-draws/vals))
	if cold > touches {
		cold = touches
	}
	if cold < 1 {
		cold = math.Min(1, touches)
	}
	reuse := touches - cold
	if reuse > 0 {
		ra := v.refsAt(ad)
		for i := 0; i < gatherQuantiles; i++ {
			q := (float64(i) + 0.5) / gatherQuantiles
			rd := ra*(-math.Log(1-q))*vals - 1
			if rd < rm {
				rd = rm
			}
			ph.add(rd, reuse/gatherQuantiles)
		}
	}
	ph.addCold(cold)
}

// decide replays the shared stride-centric policy on the static evidence.
func (a *analyzer) decide(f *fact, p stridecentric.Params) (Load, core.LoadInfo) {
	v := a.view(f.pc)
	info := a.c.PCs[f.pc]
	ld := Load{PC: f.pc, Execs: v.pm.Execs}

	// Evidence: every consecutive execution pair is one stride observation.
	n := 0
	if v.pm.Execs > 0 {
		if pairs := v.pm.Execs - 1; pairs > math.MaxInt32 {
			n = math.MaxInt32
		} else {
			n = int(pairs)
		}
	}

	var delta int64
	dominant := false
	switch f.v.k {
	case kPointer:
		ld.Class = ClassChase
		if f.v.region != nil {
			ld.Footprint = int64(f.v.region.Size())
		}
	case kHashed:
		if sl, d, ok := deepestStride(f.v); ok && sl == v.m && d != 0 {
			ld.Class = ClassStream
			delta = d
		} else {
			ld.Class = ClassGather
			if fp, ok := satMul(f.v.vals, f.v.gran); ok {
				ld.Footprint = fp
			}
		}
	case kAffine:
		if d := strideAt(f.v, v.m); d != 0 {
			ld.Class = ClassStream
			delta = d
			ld.Footprint = f.v.foot
		} else {
			ld.Class = ClassInvariant
		}
	case kConst:
		ld.Class = ClassInvariant
	default:
		ld.Class = ClassUnknown
	}
	if delta != 0 {
		ld.Stride = delta
		// Regularity: one irregular observation per innermost-loop entry,
		// plus one per wrap of a masked window.
		nm := float64(info.LoopCount)
		if nm < 1 {
			nm = 1
		}
		frac := (nm - 1) / nm
		if f.v.foot > 0 {
			wrap := float64(f.v.foot) / float64(abs64(delta))
			if wrap < 1 {
				wrap = 1
			}
			frac = math.Min(frac, (wrap-1)/wrap)
		}
		dominant = frac > p.DominantFrac
	}
	rec := v.refsAt(v.m) - 1
	dec, dist := stridecentric.Decide(info.LoopCount, n, delta, rec, dominant, p)
	ld.Decision = dec
	ld.Distance = dist

	li := core.LoadInfo{PC: f.pc, Strides: n, Decision: dec}
	if dominant && delta != 0 {
		li.Stride = delta
	}
	if dec == core.DecisionInsertNormal {
		li.Distance = dist
	}
	return ld, li
}
