// Package atomicio writes files atomically: content lands in a temporary
// file in the destination directory, is flushed to stable storage, and is
// renamed over the target in one step. A crash, kill, or write error at any
// point leaves either the old file intact or the new file complete — never
// a truncated or interleaved artifact. The engine uses it for every
// "final" export (-stats-json, -trace, checkpoint headers) so operators can
// trust whatever is on disk after an unclean shutdown.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temporary file lives in path's directory (rename must not cross
// filesystems) and is removed on any failure. The final file is created
// with mode 0o644 (subject to umask adjustments via Chmod).
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// Sync before rename: otherwise a power loss shortly after the rename
	// could publish a file whose data blocks never reached the disk.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync: %w", err)
	}
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("atomicio: chmod: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: rename: %w", err)
	}
	return nil
}

// WriteFileBytes is WriteFile for a fully materialized payload.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
