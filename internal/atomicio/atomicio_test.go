package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new contents")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Errorf("content = %q, want %q", got, "new contents")
	}
	assertNoTempLitter(t, dir)
}

func TestWriteFileCreatesMissingTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.txt")
	if err := WriteFileBytes(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFileErrorLeavesOldContent pins the failure guarantee: a write
// callback that fails partway must leave the previous file byte-identical
// and clean up its temporary file.
func TestWriteFileErrorLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Errorf("target corrupted: %q", got)
	}
	assertNoTempLitter(t, dir)
}

// TestKillMidWriteLeavesOldContent is the satellite guarantee end to end: a
// process SIGKILLed in the middle of an atomic write leaves the previous
// artifact intact (a torn temp file may remain, but the target is never
// truncated).
func TestKillMidWriteLeavesOldContent(t *testing.T) {
	if os.Getenv("ATOMICIO_HELPER") == "1" {
		helperKillMidWrite()
		return
	}
	if testing.Short() {
		t.Skip("spawns a subprocess; skipped in -short")
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "out.json")
	const old = "golden artifact contents\n"
	if err := os.WriteFile(target, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	started := filepath.Join(dir, "started")

	cmd := exec.Command(os.Args[0], "-test.run", "TestKillMidWriteLeavesOldContent$")
	cmd.Env = append(os.Environ(), "ATOMICIO_HELPER=1",
		"ATOMICIO_TARGET="+target, "ATOMICIO_STARTED="+started)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the helper to be mid-write, then kill it dead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(started); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("helper never signalled start")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let it write a few chunks
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != old {
		t.Errorf("target changed after mid-write kill:\n got %q\nwant %q", got, old)
	}
}

// helperKillMidWrite runs in the subprocess: it starts an atomic write that
// streams chunks forever, so the parent can SIGKILL it mid-write.
func helperKillMidWrite() {
	target := os.Getenv("ATOMICIO_TARGET")
	started := os.Getenv("ATOMICIO_STARTED")
	WriteFile(target, func(w io.Writer) error {
		os.WriteFile(started, []byte("go"), 0o644)
		chunk := strings.Repeat("torn", 1024)
		for {
			if _, err := io.WriteString(w, chunk); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	})
	os.Exit(0)
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func ExampleWriteFile() {
	dir, _ := os.MkdirTemp("", "atomicio")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "report.txt")
	_ = WriteFile(path, func(w io.Writer) error {
		_, err := fmt.Fprintln(w, "all results accounted for")
		return err
	})
	data, _ := os.ReadFile(path)
	fmt.Print(string(data))
	// Output: all results accounted for
}
