// Package obs is the engine's zero-dependency observability layer: a
// hierarchical stats registry that snapshots the simulated machine after
// each task, a span tracer that exports Chrome trace_event JSON (loadable
// in Perfetto or chrome://tracing), a live progress ticker, and pprof
// self-profiling hooks.
//
// Everything here is off by default and nil-safe: a nil *Obs, *Stats,
// *Tracer or *Progress turns every method into a no-op, so the simulation
// paths carry instrumentation calls without branching at the call sites
// and produce byte-identical figure output whether or not observability
// is enabled.
//
// Determinism contract: the stats registry records simulation counters
// only — never wall-clock times — under deterministic keys, and exports
// them sorted by key. A study run at -workers 1 and -workers 8 therefore
// serializes to byte-identical stats JSON. The trace, by contrast, records
// real scheduling (wall time, worker ids, queue waits) and is expected to
// differ run to run.
package obs

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"prefetchlab/internal/cache"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/memsys"
)

// LevelStats is one cache level's counter snapshot (a flattened
// cache.Stats plus the derived demand miss ratio).
type LevelStats struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	MissRatio  float64 `json:"miss_ratio"`
	LateHits   int64   `json:"late_hits"`
	Fills      int64   `json:"fills"`
	Evictions  int64   `json:"evictions"`
	Writebacks int64   `json:"writebacks"`
	// UselessSW/UselessHW count evicted never-used prefetched lines — the
	// paper's useless-prefetch pollution, split by prefetch source.
	UselessSW int64 `json:"useless_sw_evicted"`
	UselessHW int64 `json:"useless_hw_evicted"`
}

// levelFrom flattens a cache.Stats.
func levelFrom(s cache.Stats) LevelStats {
	l := LevelStats{
		Hits: s.Hits, Misses: s.Misses, LateHits: s.LateHits,
		Fills: s.Fills, Evictions: s.Evictions, Writebacks: s.Writebacks,
		UselessSW: s.UselessSW, UselessHW: s.UselessHW,
	}
	if acc := s.Hits + s.Misses; acc > 0 {
		l.MissRatio = float64(s.Misses) / float64(acc)
	}
	return l
}

// PrefetchStats is the per-core prefetch usefulness breakdown: issued,
// useful (fetched a line that was off-chip), redundant (filtered because
// the line was already cached) and throttled counts for both prefetch
// sources. Late and useless-evicted prefetches are per cache level and
// live in LevelStats.
type PrefetchStats struct {
	SWIssued    int64 `json:"sw_issued"`
	SWUseful    int64 `json:"sw_useful"`
	SWRedundant int64 `json:"sw_redundant"`
	HWIssued    int64 `json:"hw_issued"`
	HWRedundant int64 `json:"hw_redundant"`
	HWDropped   int64 `json:"hw_dropped"`
}

// DemandStats is the per-core demand-path breakdown, including the
// pipeline-facing miss latency the paper's cost/benefit test consumes.
type DemandStats struct {
	Loads           int64 `json:"loads"`
	Stores          int64 `json:"stores"`
	L1Misses        int64 `json:"l1_misses"`
	L2Misses        int64 `json:"l2_misses"`
	LLCMisses       int64 `json:"llc_misses"`
	LoadStallCycles int64 `json:"load_stall_cycles"`
	// AvgMissLatency is MissLatencyCycles / LoadL1Misses — the average
	// load-to-use latency per L1 load miss in cycles.
	AvgMissLatency float64 `json:"avg_miss_latency_cycles"`
}

// TrafficStats is the off-chip traffic split by requester, in bytes.
type TrafficStats struct {
	DemandFetch int64 `json:"demand_fetch_bytes"`
	SWFetch     int64 `json:"sw_fetch_bytes"`
	HWFetch     int64 `json:"hw_fetch_bytes"`
	Writeback   int64 `json:"writeback_bytes"`
	Total       int64 `json:"total_bytes"`
}

// DRAMStats is the shared channel's snapshot.
type DRAMStats struct {
	Transfers        int64 `json:"transfers"`
	Bytes            int64 `json:"bytes"`
	QueueDelayCycles int64 `json:"queue_delay_cycles"`
	BusyCycles       int64 `json:"busy_cycles"`
}

// CoreSnapshot is one core's end-of-task state: execution summary, demand
// path, prefetch usefulness, traffic split, and the private L1/L2 levels.
type CoreSnapshot struct {
	Core         int           `json:"core"`
	Bench        string        `json:"bench,omitempty"`
	Cycles       int64         `json:"cycles"`
	Instructions int64         `json:"instructions"`
	MemRefs      int64         `json:"mem_refs"`
	Demand       DemandStats   `json:"demand"`
	Prefetch     PrefetchStats `json:"prefetch"`
	Traffic      TrafficStats  `json:"traffic"`
	L1           LevelStats    `json:"l1"`
	L2           LevelStats    `json:"l2"`
}

// MachineSnapshot is the hierarchical state of one simulated socket after
// a task: per-core private levels, the shared LLC, and the DRAM channel.
type MachineSnapshot struct {
	Machine string         `json:"machine"`
	Cores   []CoreSnapshot `json:"cores"`
	LLC     LevelStats     `json:"llc"`
	DRAM    DRAMStats      `json:"dram"`
}

// CaptureMachine walks a hierarchy after a task and builds its snapshot.
// apps aligns with cores 0..len(apps)-1 and contributes each core's
// execution summary (bench name, first-completion cycles); cache and
// traffic counters reflect the hierarchy's end-of-task state, which for
// restarting mix runs includes activity past each app's first completion.
func CaptureMachine(machineName string, h *memsys.Hierarchy, apps []cpu.Result) MachineSnapshot {
	snap := MachineSnapshot{Machine: machineName, LLC: levelFrom(h.LLC().Stats())}
	d := h.Channel().Stats()
	snap.DRAM = DRAMStats{Transfers: d.Transfers, Bytes: d.Bytes, QueueDelayCycles: d.QueueDelay, BusyCycles: d.BusyCycles}
	for c := 0; c < len(apps) && c < h.Config().Cores; c++ {
		cs := h.CoreStats(c)
		l1, l2 := h.CoreCacheStats(c)
		core := CoreSnapshot{
			Core:         c,
			Bench:        apps[c].Name,
			Cycles:       apps[c].Cycles,
			Instructions: apps[c].Instructions,
			MemRefs:      apps[c].MemRefs,
			Demand: DemandStats{
				Loads: cs.Loads, Stores: cs.Stores,
				L1Misses: cs.L1Misses, L2Misses: cs.L2Misses, LLCMisses: cs.LLCMisses,
				LoadStallCycles: cs.LoadStallCycles,
			},
			Prefetch: PrefetchStats{
				SWIssued: cs.SWPrefIssued, SWUseful: cs.SWPrefUseful, SWRedundant: cs.SWPrefRedundant,
				HWIssued: cs.HWPrefIssued, HWRedundant: cs.HWPrefRedundant, HWDropped: cs.HWPrefDropped,
			},
			Traffic: TrafficStats{
				DemandFetch: cs.DemandFetchBytes, SWFetch: cs.SWFetchBytes,
				HWFetch: cs.HWFetchBytes, Writeback: cs.WritebackBytes,
				Total: cs.TotalTraffic(),
			},
			L1: levelFrom(l1),
			L2: levelFrom(l2),
		}
		if cs.LoadL1Misses > 0 {
			core.Demand.AvgMissLatency = float64(cs.MissLatencyCycles) / float64(cs.LoadL1Misses)
		}
		snap.Cores = append(snap.Cores, core)
	}
	return snap
}

// Stats is the registry of machine snapshots, keyed by deterministic task
// keys (e.g. "solo/Intel Sandy Bridge/lbm/in0/Soft. Pref.+NT"). A nil
// *Stats is a no-op sink. Recording the same key twice keeps the last
// snapshot; with deterministic task keys both writes carry identical data.
//
// Cells the engine gave up on (retry budget exhausted under a failure
// budget) are recorded via RecordSkip and exported in a separate "skipped"
// section, so degraded studies state explicitly what is missing.
type Stats struct {
	mu      sync.Mutex
	snaps   map[string]MachineSnapshot
	skipped map[string]string // task key -> reason
	faults  any               // fault-handling tallies (set only when non-zero)
	server  any               // serving-layer snapshot (prefetchd only)
	cluster any               // shard-lifecycle tallies (cluster runs only)
	static  any               // static-vs-sampled agreement (static-validate only)

	// Persist, when non-nil, is invoked after every Record with the key and
	// encoded snapshot — the checkpoint hook. Called under the registry
	// lock; keep it quick. Encoding failures are ignored (snapshot types
	// are plain data and always encode).
	Persist func(key string, data []byte)
}

// NewStats creates an empty registry.
func NewStats() *Stats {
	return &Stats{snaps: make(map[string]MachineSnapshot), skipped: make(map[string]string)}
}

// Record stores a snapshot under key. No-op on a nil registry.
func (s *Stats) Record(key string, snap MachineSnapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.snaps[key] = snap
	delete(s.skipped, key) // a late success supersedes an earlier skip
	if s.Persist != nil {
		if data, err := EncodeSnapshot(snap); err == nil {
			s.Persist(key, data)
		}
	}
	s.mu.Unlock()
}

// RecordSkip marks a task key as skipped, with a short reason. A key that
// already has a recorded snapshot is not marked. No-op on nil.
func (s *Stats) RecordSkip(key, reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if _, ok := s.snaps[key]; !ok {
		if s.skipped == nil {
			s.skipped = make(map[string]string)
		}
		s.skipped[key] = reason
	}
	s.mu.Unlock()
}

// Skipped returns the number of skipped task keys (0 on nil).
func (s *Stats) Skipped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.skipped)
}

// SetServer attaches a serving-layer snapshot (admission, shed and breaker
// counters) exported under the "server" key. CLI runs never set it, so
// their stats JSON stays byte-identical to earlier releases. No-op on nil.
func (s *Stats) SetServer(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.server = v
	s.mu.Unlock()
}

// SetFaults attaches the fault-handling tallies (retries, skipped cells,
// replays, cancellations) exported under the "faults" key. Fault-free runs
// never set it, so their stats JSON stays byte-identical to earlier
// releases. No-op on nil.
func (s *Stats) SetFaults(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.faults = v
	s.mu.Unlock()
}

// SetCluster attaches the cluster shard-lifecycle tallies (dispatch, ack,
// requeue, quarantine counts) exported under the "cluster" key. Single-process
// runs never set it, so their stats JSON stays byte-identical to earlier
// releases. No-op on nil.
func (s *Stats) SetCluster(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cluster = v
	s.mu.Unlock()
}

// SetStatic attaches the static-analysis agreement summary (per-benchmark
// stride-classification agreement and MRC error vs the sampled tier)
// exported under the "static" key. Runs that never touch the static tier
// never set it, so their stats JSON stays byte-identical to earlier
// releases. No-op on nil.
func (s *Stats) SetStatic(v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.static = v
	s.mu.Unlock()
}

// Len returns the number of recorded snapshots (0 on nil).
func (s *Stats) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

// Get returns the snapshot recorded under key.
func (s *Stats) Get(key string) (MachineSnapshot, bool) {
	if s == nil {
		return MachineSnapshot{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.snaps[key]
	return snap, ok
}

// taskSnapshot is one exported registry entry.
type taskSnapshot struct {
	Task string `json:"task"`
	MachineSnapshot
}

// skippedTask is one exported skipped-cell entry.
type skippedTask struct {
	Task   string `json:"task"`
	Reason string `json:"reason"`
}

// WriteJSON serializes the registry sorted by task key, so the bytes are
// identical for identical simulation runs regardless of worker count or
// completion order. Skipped cells, if any, are exported in a trailing
// "skipped" section (omitted entirely for fault-free runs, keeping their
// output byte-identical to builds without failure handling).
func (s *Stats) WriteJSON(w io.Writer) error {
	var out struct {
		Tasks   []taskSnapshot `json:"tasks"`
		Skipped []skippedTask  `json:"skipped,omitempty"`
		Faults  any            `json:"faults,omitempty"`
		Server  any            `json:"server,omitempty"`
		Cluster any            `json:"cluster,omitempty"`
		Static  any            `json:"static,omitempty"`
	}
	out.Tasks = []taskSnapshot{} // export [] rather than null when empty
	if s != nil {
		s.mu.Lock()
		out.Faults = s.faults
		out.Server = s.server
		out.Cluster = s.cluster
		out.Static = s.static
		keys := make([]string, 0, len(s.snaps))
		for k := range s.snaps {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out.Tasks = append(out.Tasks, taskSnapshot{Task: k, MachineSnapshot: s.snaps[k]})
		}
		skeys := make([]string, 0, len(s.skipped))
		for k := range s.skipped {
			skeys = append(skeys, k)
		}
		sort.Strings(skeys)
		for _, k := range skeys {
			out.Skipped = append(out.Skipped, skippedTask{Task: k, Reason: s.skipped[k]})
		}
		s.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// LevelAgg is one cache level's counters summed across every recorded
// snapshot.
type LevelAgg struct {
	Hits      int64
	Misses    int64
	UselessSW int64
	UselessHW int64
}

func (a *LevelAgg) add(l LevelStats) {
	a.Hits += l.Hits
	a.Misses += l.Misses
	a.UselessSW += l.UselessSW
	a.UselessHW += l.UselessHW
}

// Aggregate is the registry-wide counter rollup exported on /metrics:
// cache hits/misses and useless-prefetch evictions per level, the prefetch
// usefulness breakdown per source, and off-chip DRAM traffic, summed over
// every recorded machine snapshot. It is a monitoring convenience, not a
// simulation result — per-task detail stays in the stats JSON.
type Aggregate struct {
	Snapshots    int64
	SkippedCells int64

	L1  LevelAgg
	L2  LevelAgg
	LLC LevelAgg

	DRAMTransfers int64
	DRAMBytes     int64

	SWIssued    int64
	SWUseful    int64
	SWRedundant int64
	HWIssued    int64
	HWRedundant int64
	HWDropped   int64
}

// Aggregate sums every recorded snapshot (zero on nil).
func (s *Stats) Aggregate() Aggregate {
	var a Aggregate
	if s == nil {
		return a
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a.Snapshots = int64(len(s.snaps))
	a.SkippedCells = int64(len(s.skipped))
	for _, snap := range s.snaps {
		a.LLC.add(snap.LLC)
		a.DRAMTransfers += snap.DRAM.Transfers
		a.DRAMBytes += snap.DRAM.Bytes
		for _, core := range snap.Cores {
			a.L1.add(core.L1)
			a.L2.add(core.L2)
			a.SWIssued += core.Prefetch.SWIssued
			a.SWUseful += core.Prefetch.SWUseful
			a.SWRedundant += core.Prefetch.SWRedundant
			a.HWIssued += core.Prefetch.HWIssued
			a.HWRedundant += core.Prefetch.HWRedundant
			a.HWDropped += core.Prefetch.HWDropped
		}
	}
	return a
}

// EncodeSnapshot gob-encodes a snapshot for checkpoint persistence.
func EncodeSnapshot(snap MachineSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reverses EncodeSnapshot.
func DecodeSnapshot(data []byte) (MachineSnapshot, error) {
	var snap MachineSnapshot
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap)
	return snap, err
}

// SoloKey builds the registry key of a solo (single-core) run.
func SoloKey(machine, bench string, inputID int, policy string) string {
	return fmt.Sprintf("solo/%s/%s/in%d/%s", machine, bench, inputID, policy)
}
