package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter serializes writes so the test buffer is race-free.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestProgress(t *testing.T) {
	var w syncWriter
	p := newProgress(&w, time.Hour) // no ticks; only the final render
	p.Add(4)
	p.Done(1)
	p.Done(2)
	p.Stop()
	p.Stop() // idempotent
	out := w.String()
	if !strings.Contains(out, "3/4 tasks") {
		t.Errorf("final line %q lacks 3/4 tasks", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final line %q not newline-terminated", out)
	}
}

func TestNilProgress(t *testing.T) {
	var p *Progress
	p.Add(1)
	p.Done(1)
	p.Stop()
}
