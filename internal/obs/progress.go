package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live stderr ticker for long experiment runs: tasks
// done/total, completion rate and ETA. Totals grow as the engine submits
// batches, so the ETA is with respect to the work discovered so far. A nil
// *Progress is a no-op.
type Progress struct {
	w        io.Writer
	interval time.Duration
	start    time.Time
	total    atomic.Int64
	done     atomic.Int64
	quit     chan struct{}
	finished sync.WaitGroup
	stopOnce sync.Once
	mu       sync.Mutex // serializes writes to w
}

// NewProgress starts a ticker that redraws on w (normally stderr) a few
// times a second until Stop.
func NewProgress(w io.Writer) *Progress { return newProgress(w, 500*time.Millisecond) }

// newProgress lets tests pick the redraw interval.
func newProgress(w io.Writer, interval time.Duration) *Progress {
	p := &Progress{w: w, interval: interval, start: time.Now(), quit: make(chan struct{})}
	p.finished.Add(1)
	go p.loop()
	return p
}

// Add grows the task total by n.
func (p *Progress) Add(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
}

// Done records n completed tasks.
func (p *Progress) Done(n int) {
	if p == nil {
		return
	}
	p.done.Add(int64(n))
}

// loop redraws until Stop.
func (p *Progress) loop() {
	defer p.finished.Done()
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-tick.C:
			p.render("\r")
		}
	}
}

// render draws one status line. prefix "\r" redraws in place; Stop uses it
// with a trailing newline for the final line.
func (p *Progress) render(prefix string) {
	done, total := p.done.Load(), p.total.Load()
	elapsed := time.Since(p.start)
	rate := float64(done) / elapsed.Seconds()
	eta := "—"
	if rate > 0 && total > done {
		eta = (time.Duration(float64(total-done)/rate) * time.Second).Round(time.Second).String()
	}
	p.mu.Lock()
	fmt.Fprintf(p.w, "%s%d/%d tasks, %.1f tasks/s, ETA %s   ", prefix, done, total, rate, eta)
	p.mu.Unlock()
}

// Stop halts the ticker and prints the final line. Idempotent and
// nil-safe.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.quit)
		p.finished.Wait()
		p.render("\r")
		p.mu.Lock()
		fmt.Fprintln(p.w)
		p.mu.Unlock()
	})
}
