package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/sched"
)

// Obs bundles the observability sinks threaded through the engine: the
// stats registry, the span tracer and the progress ticker — any subset may
// be nil. A nil *Obs disables everything; all methods are nil-safe, so the
// engine carries one optional pointer instead of per-sink plumbing.
//
// Obs implements sched.TaskObserver and sched.CacheObserver: attach it to
// a Pool (or OnceMap) and every engine task becomes a trace span carrying
// its worker id and queue wait, every single-flight cache computation a
// span, every cache hit an instant — while the progress ticker counts
// batch totals and completions.
// Obs also implements sched.FaultObserver, so retries, skipped cells,
// checkpoint replays and batch cancellations show up as trace instants and
// are tallied for the end-of-run fault summary, and sched.WorkObserver, so
// the serving layer can export live workers-busy gauges.
//
// ForRequest derives a per-request view whose trace events carry the
// request id while every tally still lands on the root Obs — the serving
// layer's correlation mechanism.
type Obs struct {
	Stats    *Stats
	Trace    *Tracer
	Progress *Progress

	// root, when non-nil, marks this Obs as a ForRequest child: counters
	// delegate there so /metrics sees one process-wide tally.
	root *Obs

	retries  atomic.Int64
	skips    atomic.Int64
	replays  atomic.Int64
	canceled atomic.Int64

	tasksAdded atomic.Int64
	tasksDone  atomic.Int64
	tasksBusy  atomic.Int64

	// cluster shard lifecycle (see cluster.go)
	shardsDispatched  atomic.Int64
	shardsAcked       atomic.Int64
	shardsRequeued    atomic.Int64
	shardsQuarantined atomic.Int64
	shardsLocal       atomic.Int64
	tasksRemote       atomic.Int64
	ledgerReplays     atomic.Int64
	workerDeaths      atomic.Int64
	workerRejoins     atomic.Int64

	cacheMu   sync.Mutex
	cacheHits map[string]int64
	cacheMiss map[string]int64
}

// counters resolves where tallies accumulate: the root Obs for ForRequest
// children, the receiver otherwise. Caller guarantees o != nil.
func (o *Obs) counters() *Obs {
	if o.root != nil {
		return o.root
	}
	return o
}

// ForRequest derives a request-scoped view of o: same stats registry,
// progress ticker and counter tallies, but a trace handle that stamps
// request_id onto every span and instant recorded through it — so engine
// task spans triggered by an HTTP request are correlatable with the
// access log and client retry logs. A nil o or empty id returns o.
func (o *Obs) ForRequest(id string) *Obs {
	if o == nil || id == "" {
		return o
	}
	return &Obs{
		Stats:    o.Stats,
		Trace:    o.Trace.WithArgs(map[string]any{"request_id": id}),
		Progress: o.Progress,
		root:     o.counters(),
	}
}

// SchedObserver returns o as a sched.TaskObserver, or nil for a nil o —
// use it when attaching to a Pool so a disabled Obs costs the pool
// nothing (a typed-nil interface would defeat the pool's nil check).
func (o *Obs) SchedObserver() sched.TaskObserver {
	if o == nil {
		return nil
	}
	return o
}

// CacheObserver returns o as a sched.CacheObserver, or nil for a nil o.
func (o *Obs) CacheObserver() sched.CacheObserver {
	if o == nil {
		return nil
	}
	return o
}

// BatchStart implements sched.TaskObserver.
func (o *Obs) BatchStart(batch string, n int) {
	if o == nil {
		return
	}
	o.counters().tasksAdded.Add(int64(n))
	o.Progress.Add(n)
}

// TaskDone implements sched.TaskObserver: one span per engine task, named
// after its batch, with the worker id and queue wait in args.
func (o *Obs) TaskDone(batch string, task, worker int, queued, start, end time.Time, err error) {
	if o == nil {
		return
	}
	o.counters().tasksDone.Add(1)
	name := fmt.Sprintf("%s[%d]", batch, task)
	if batch == "" {
		name = fmt.Sprintf("task[%d]", task)
	}
	args := map[string]any{
		"worker":        worker,
		"queue_wait_us": float64(start.Sub(queued)) / float64(time.Microsecond),
	}
	if err != nil {
		args["error"] = err.Error()
	}
	o.Trace.EmitSpan("task", name, start, end, args)
	o.Progress.Done(1)
}

// TaskStarted implements sched.WorkObserver: a worker began executing a
// task attempt.
func (o *Obs) TaskStarted(batch string, index, worker int) {
	if o == nil {
		return
	}
	o.counters().tasksBusy.Add(1)
}

// TaskFinished implements sched.WorkObserver: the worker is done with the
// task (success, final failure, or cancellation) — always paired with
// TaskStarted.
func (o *Obs) TaskFinished(batch string, index, worker int) {
	if o == nil {
		return
	}
	o.counters().tasksBusy.Add(-1)
}

// CacheDone implements sched.CacheObserver: single-flight cache misses
// (the expensive computations) become spans; hits become instants. Hits
// and misses are tallied per cache for the /metrics hit-ratio export.
func (o *Obs) CacheDone(cache, key string, hit bool, start, end time.Time) {
	if o == nil {
		return
	}
	c := o.counters()
	c.cacheMu.Lock()
	if c.cacheHits == nil {
		c.cacheHits = make(map[string]int64)
		c.cacheMiss = make(map[string]int64)
	}
	if hit {
		c.cacheHits[cache]++
	} else {
		c.cacheMiss[cache]++
	}
	c.cacheMu.Unlock()
	if hit {
		o.Trace.Instant("cache", fmt.Sprintf("%s hit %s", cache, key), map[string]any{
			"wait_us": float64(end.Sub(start)) / float64(time.Microsecond),
		})
		return
	}
	o.Trace.EmitSpan("cache", fmt.Sprintf("%s compute %s", cache, key), start, end, nil)
}

// CacheCounts returns per-cache hit/miss tallies, cache names sorted.
func (o *Obs) CacheCounts() []CacheCount {
	if o == nil {
		return nil
	}
	c := o.counters()
	c.cacheMu.Lock()
	names := make([]string, 0, len(c.cacheHits)+len(c.cacheMiss))
	seen := make(map[string]bool)
	for n := range c.cacheHits {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	for n := range c.cacheMiss {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	sort.Strings(names)
	out := make([]CacheCount, len(names))
	for i, n := range names {
		out[i] = CacheCount{Cache: n, Hits: c.cacheHits[n], Misses: c.cacheMiss[n]}
	}
	c.cacheMu.Unlock()
	return out
}

// CacheCount is one single-flight cache's cumulative hit/miss tally.
type CacheCount struct {
	Cache  string
	Hits   int64
	Misses int64
}

// TaskRetry implements sched.FaultObserver: a failed attempt that will be
// retried becomes a trace instant and bumps the retry tally.
func (o *Obs) TaskRetry(batch string, index, attempt int, err error) {
	if o == nil {
		return
	}
	o.counters().retries.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("retry %s[%d] attempt %d", batch, index, attempt), map[string]any{
		"error": err.Error(),
	})
}

// TaskSkipped implements sched.FaultObserver: a cell abandoned after its
// retry budget, absorbed by the batch's failure budget.
func (o *Obs) TaskSkipped(batch string, index int, err error) {
	if o == nil {
		return
	}
	o.counters().skips.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("skip %s[%d]", batch, index), map[string]any{
		"error": err.Error(),
	})
}

// TaskReplayed implements sched.FaultObserver: a task satisfied from the
// checkpoint instead of re-executing.
func (o *Obs) TaskReplayed(batch string, index int) {
	if o == nil {
		return
	}
	o.counters().replays.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("replay %s[%d]", batch, index), nil)
}

// BatchCanceled implements sched.FaultObserver.
func (o *Obs) BatchCanceled(batch string, done, total int) {
	if o == nil {
		return
	}
	o.counters().canceled.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("canceled %s at %d/%d", batch, done, total), nil)
}

// FaultCounts is the cumulative fault-handling tally, exported in
// -stats-json (via PublishFaults) and mirrored onto /metrics.
type FaultCounts struct {
	Retries         int64 `json:"retries"`
	SkippedCells    int64 `json:"skipped_cells"`
	ReplayedTasks   int64 `json:"replayed_tasks"`
	CanceledBatches int64 `json:"canceled_batches"`
}

// Any reports whether any counter is non-zero.
func (f FaultCounts) Any() bool {
	return f.Retries != 0 || f.SkippedCells != 0 || f.ReplayedTasks != 0 || f.CanceledBatches != 0
}

// FaultCounts returns the current fault tallies (zero on nil).
func (o *Obs) FaultCounts() FaultCounts {
	if o == nil {
		return FaultCounts{}
	}
	c := o.counters()
	return FaultCounts{
		Retries:         c.retries.Load(),
		SkippedCells:    c.skips.Load(),
		ReplayedTasks:   c.replays.Load(),
		CanceledBatches: c.canceled.Load(),
	}
}

// PublishFaults copies the fault tallies into the stats registry so the
// end-of-run -stats-json carries them alongside the trace instants. Runs
// without fault activity set nothing, keeping fault-free stats output
// byte-identical to earlier releases. Replayed-task counts are excluded:
// they tally checkpoint resumes, not faults, and a resumed run must emit
// the same stats file as an uninterrupted one (replays still show on the
// stderr fault summary and the /metrics gauge). No-op when o or the
// registry is nil.
func (o *Obs) PublishFaults() {
	if o == nil || o.Stats == nil {
		return
	}
	fc := o.FaultCounts()
	fc.ReplayedTasks = 0
	if fc.Any() {
		o.Stats.SetFaults(fc)
	}
}

// SchedCounts is the live scheduler tally for the /metrics gauges.
type SchedCounts struct {
	TasksAdded int64 // tasks enqueued across all batches
	TasksDone  int64 // tasks finished (including replays)
	TasksBusy  int64 // task attempts executing right now
}

// SchedCounts returns the current scheduler tallies (zero on nil).
func (o *Obs) SchedCounts() SchedCounts {
	if o == nil {
		return SchedCounts{}
	}
	c := o.counters()
	return SchedCounts{
		TasksAdded: c.tasksAdded.Load(),
		TasksDone:  c.tasksDone.Load(),
		TasksBusy:  c.tasksBusy.Load(),
	}
}

// FaultSummary describes fault-handling activity this run, or "" if none —
// suitable for a one-line stderr report.
func (o *Obs) FaultSummary() string {
	if o == nil {
		return ""
	}
	fc := o.FaultCounts()
	if !fc.Any() {
		return ""
	}
	return fmt.Sprintf("faults: %d retries, %d skipped cells, %d replayed tasks, %d canceled batches",
		fc.Retries, fc.SkippedCells, fc.ReplayedTasks, fc.CanceledBatches)
}

// Span opens a live trace span; the returned func (never nil) ends it.
func (o *Obs) Span(cat, name string, args map[string]any) func() {
	if o == nil {
		return func() {}
	}
	return o.Trace.Span(cat, name, args)
}

// RecordMachine snapshots a hierarchy into the stats registry under key.
// No-op when o or the registry is nil.
func (o *Obs) RecordMachine(key, machineName string, h *memsys.Hierarchy, apps []cpu.Result) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.Record(key, CaptureMachine(machineName, h, apps))
}

// RecordSnapshot stores an externally built snapshot — e.g. the analytic
// tier's synthesized machine state, which has no hierarchy to walk — in the
// stats registry under key. No-op when o or the registry is nil.
func (o *Obs) RecordSnapshot(key string, snap MachineSnapshot) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.Record(key, snap)
}

// RecordSkipped marks key as a skipped cell in the stats registry, with a
// short reason. No-op when o or the registry is nil.
func (o *Obs) RecordSkipped(key, reason string) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.RecordSkip(key, reason)
}

// RecordStatic attaches the static-vs-sampled agreement summary to the
// stats registry's "static" section. No-op when o or the registry is nil.
func (o *Obs) RecordStatic(v any) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.SetStatic(v)
}

// StopProgress stops the progress ticker, if any.
func (o *Obs) StopProgress() {
	if o == nil {
		return
	}
	o.Progress.Stop()
}
