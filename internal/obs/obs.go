package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/sched"
)

// Obs bundles the observability sinks threaded through the engine: the
// stats registry, the span tracer and the progress ticker — any subset may
// be nil. A nil *Obs disables everything; all methods are nil-safe, so the
// engine carries one optional pointer instead of per-sink plumbing.
//
// Obs implements sched.TaskObserver and sched.CacheObserver: attach it to
// a Pool (or OnceMap) and every engine task becomes a trace span carrying
// its worker id and queue wait, every single-flight cache computation a
// span, every cache hit an instant — while the progress ticker counts
// batch totals and completions.
// Obs also implements sched.FaultObserver, so retries, skipped cells,
// checkpoint replays and batch cancellations show up as trace instants and
// are tallied for the end-of-run fault summary.
type Obs struct {
	Stats    *Stats
	Trace    *Tracer
	Progress *Progress

	retries  atomic.Int64
	skips    atomic.Int64
	replays  atomic.Int64
	canceled atomic.Int64
}

// SchedObserver returns o as a sched.TaskObserver, or nil for a nil o —
// use it when attaching to a Pool so a disabled Obs costs the pool
// nothing (a typed-nil interface would defeat the pool's nil check).
func (o *Obs) SchedObserver() sched.TaskObserver {
	if o == nil {
		return nil
	}
	return o
}

// CacheObserver returns o as a sched.CacheObserver, or nil for a nil o.
func (o *Obs) CacheObserver() sched.CacheObserver {
	if o == nil {
		return nil
	}
	return o
}

// BatchStart implements sched.TaskObserver.
func (o *Obs) BatchStart(batch string, n int) {
	if o == nil {
		return
	}
	o.Progress.Add(n)
}

// TaskDone implements sched.TaskObserver: one span per engine task, named
// after its batch, with the worker id and queue wait in args.
func (o *Obs) TaskDone(batch string, task, worker int, queued, start, end time.Time, err error) {
	if o == nil {
		return
	}
	name := fmt.Sprintf("%s[%d]", batch, task)
	if batch == "" {
		name = fmt.Sprintf("task[%d]", task)
	}
	args := map[string]any{
		"worker":        worker,
		"queue_wait_us": float64(start.Sub(queued)) / float64(time.Microsecond),
	}
	if err != nil {
		args["error"] = err.Error()
	}
	o.Trace.EmitSpan("task", name, start, end, args)
	o.Progress.Done(1)
}

// CacheDone implements sched.CacheObserver: single-flight cache misses
// (the expensive computations) become spans; hits become instants.
func (o *Obs) CacheDone(cache, key string, hit bool, start, end time.Time) {
	if o == nil {
		return
	}
	if hit {
		o.Trace.Instant("cache", fmt.Sprintf("%s hit %s", cache, key), map[string]any{
			"wait_us": float64(end.Sub(start)) / float64(time.Microsecond),
		})
		return
	}
	o.Trace.EmitSpan("cache", fmt.Sprintf("%s compute %s", cache, key), start, end, nil)
}

// TaskRetry implements sched.FaultObserver: a failed attempt that will be
// retried becomes a trace instant and bumps the retry tally.
func (o *Obs) TaskRetry(batch string, index, attempt int, err error) {
	if o == nil {
		return
	}
	o.retries.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("retry %s[%d] attempt %d", batch, index, attempt), map[string]any{
		"error": err.Error(),
	})
}

// TaskSkipped implements sched.FaultObserver: a cell abandoned after its
// retry budget, absorbed by the batch's failure budget.
func (o *Obs) TaskSkipped(batch string, index int, err error) {
	if o == nil {
		return
	}
	o.skips.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("skip %s[%d]", batch, index), map[string]any{
		"error": err.Error(),
	})
}

// TaskReplayed implements sched.FaultObserver: a task satisfied from the
// checkpoint instead of re-executing.
func (o *Obs) TaskReplayed(batch string, index int) {
	if o == nil {
		return
	}
	o.replays.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("replay %s[%d]", batch, index), nil)
}

// BatchCanceled implements sched.FaultObserver.
func (o *Obs) BatchCanceled(batch string, done, total int) {
	if o == nil {
		return
	}
	o.canceled.Add(1)
	o.Trace.Instant("fault", fmt.Sprintf("canceled %s at %d/%d", batch, done, total), nil)
}

// FaultSummary describes fault-handling activity this run, or "" if none —
// suitable for a one-line stderr report.
func (o *Obs) FaultSummary() string {
	if o == nil {
		return ""
	}
	r, s, p, c := o.retries.Load(), o.skips.Load(), o.replays.Load(), o.canceled.Load()
	if r == 0 && s == 0 && p == 0 && c == 0 {
		return ""
	}
	return fmt.Sprintf("faults: %d retries, %d skipped cells, %d replayed tasks, %d canceled batches", r, s, p, c)
}

// Span opens a live trace span; the returned func (never nil) ends it.
func (o *Obs) Span(cat, name string, args map[string]any) func() {
	if o == nil {
		return func() {}
	}
	return o.Trace.Span(cat, name, args)
}

// RecordMachine snapshots a hierarchy into the stats registry under key.
// No-op when o or the registry is nil.
func (o *Obs) RecordMachine(key, machineName string, h *memsys.Hierarchy, apps []cpu.Result) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.Record(key, CaptureMachine(machineName, h, apps))
}

// RecordSnapshot stores an externally built snapshot — e.g. the analytic
// tier's synthesized machine state, which has no hierarchy to walk — in the
// stats registry under key. No-op when o or the registry is nil.
func (o *Obs) RecordSnapshot(key string, snap MachineSnapshot) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.Record(key, snap)
}

// RecordSkipped marks key as a skipped cell in the stats registry, with a
// short reason. No-op when o or the registry is nil.
func (o *Obs) RecordSkipped(key, reason string) {
	if o == nil || o.Stats == nil {
		return
	}
	o.Stats.RecordSkip(key, reason)
}

// StopProgress stops the progress ticker, if any.
func (o *Obs) StopProgress() {
	if o == nil {
		return
	}
	o.Progress.Stop()
}
