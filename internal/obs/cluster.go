package obs

import "fmt"

// Cluster shard-lifecycle tallies. The cluster coordinator reports every
// shard transition here — dispatched to a worker, acked (results applied),
// requeued after a worker failure, denied by an open per-worker breaker
// (quarantined), or abandoned to local execution — and the sched pool
// reports tasks whose values arrived from a remote worker via the
// RemoteObserver hook. Like every other Obs tally the methods are nil-safe
// and delegate to the root Obs for ForRequest children, so /metrics and
// -stats-json see one process-wide count.

// ShardDispatched tallies one shard handed to a remote worker.
func (o *Obs) ShardDispatched() {
	if o == nil {
		return
	}
	o.counters().shardsDispatched.Add(1)
}

// ShardAcked tallies one shard whose results were verified and applied.
func (o *Obs) ShardAcked() {
	if o == nil {
		return
	}
	o.counters().shardsAcked.Add(1)
}

// ShardRequeued tallies one shard taken back from a failed, corrupt or
// timed-out worker call for reassignment.
func (o *Obs) ShardRequeued(worker, reason string) {
	if o == nil {
		return
	}
	o.counters().shardsRequeued.Add(1)
	o.Trace.Instant("cluster", fmt.Sprintf("requeue from %s", worker), map[string]any{
		"reason": reason,
	})
}

// ShardQuarantined tallies one dispatch attempt denied because a worker's
// circuit breaker is open (or half-open with its probe in flight).
func (o *Obs) ShardQuarantined(worker string) {
	if o == nil {
		return
	}
	o.counters().shardsQuarantined.Add(1)
}

// ShardLocalFallback tallies one shard abandoned to local in-process
// execution after the reassignment budget or the fleet ran out.
func (o *Obs) ShardLocalFallback(tasks int) {
	if o == nil {
		return
	}
	o.counters().shardsLocal.Add(1)
}

// TaskRemote implements sched.RemoteObserver: a task whose value came from
// a cluster worker instead of local execution.
func (o *Obs) TaskRemote(batch string, index int) {
	if o == nil {
		return
	}
	o.counters().tasksRemote.Add(1)
}

// LedgerReplayed tallies tasks restored from the durable shard ledger on
// coordinator restart (resume from acked shards only).
func (o *Obs) LedgerReplayed(tasks int) {
	if o == nil {
		return
	}
	o.counters().ledgerReplays.Add(int64(tasks))
}

// WorkerDied tallies a worker declared dead after missing its liveness
// timeout; its in-flight shards are requeued.
func (o *Obs) WorkerDied(worker string) {
	if o == nil {
		return
	}
	o.counters().workerDeaths.Add(1)
	o.Trace.Instant("cluster", fmt.Sprintf("worker dead: %s", worker), nil)
}

// WorkerRejoined tallies a dead worker that resumed answering heartbeats.
func (o *Obs) WorkerRejoined(worker string) {
	if o == nil {
		return
	}
	o.counters().workerRejoins.Add(1)
	o.Trace.Instant("cluster", fmt.Sprintf("worker rejoined: %s", worker), nil)
}

// ClusterCounts is the cumulative shard-lifecycle tally, exported in
// -stats-json (via PublishCluster) and mirrored onto /metrics.
type ClusterCounts struct {
	ShardsDispatched  int64 `json:"shards_dispatched"`
	ShardsAcked       int64 `json:"shards_acked"`
	ShardsRequeued    int64 `json:"shards_requeued"`
	ShardsQuarantined int64 `json:"shards_quarantined"`
	ShardsLocal       int64 `json:"shards_local_fallback"`
	TasksRemote       int64 `json:"tasks_remote"`
	TasksLedger       int64 `json:"tasks_ledger_replayed"`
	WorkerDeaths      int64 `json:"worker_deaths"`
	WorkerRejoins     int64 `json:"worker_rejoins"`
}

// Any reports whether any counter is non-zero.
func (c ClusterCounts) Any() bool {
	return c != ClusterCounts{}
}

// ClusterCounts returns the current shard-lifecycle tallies (zero on nil).
func (o *Obs) ClusterCounts() ClusterCounts {
	if o == nil {
		return ClusterCounts{}
	}
	c := o.counters()
	return ClusterCounts{
		ShardsDispatched:  c.shardsDispatched.Load(),
		ShardsAcked:       c.shardsAcked.Load(),
		ShardsRequeued:    c.shardsRequeued.Load(),
		ShardsQuarantined: c.shardsQuarantined.Load(),
		ShardsLocal:       c.shardsLocal.Load(),
		TasksRemote:       c.tasksRemote.Load(),
		TasksLedger:       c.ledgerReplays.Load(),
		WorkerDeaths:      c.workerDeaths.Load(),
		WorkerRejoins:     c.workerRejoins.Load(),
	}
}

// PublishCluster copies the shard-lifecycle tallies into the stats
// registry under the "cluster" key. Non-cluster runs never tally anything,
// so their stats JSON stays byte-identical to earlier releases. Cluster
// counts are schedule-dependent by nature (which worker got which shard
// varies run to run) — figure output stays byte-identical, the lifecycle
// tallies do not claim to. No-op when o or the registry is nil.
func (o *Obs) PublishCluster() {
	if o == nil || o.Stats == nil {
		return
	}
	cc := o.ClusterCounts()
	if cc.Any() {
		o.Stats.SetCluster(cc)
	}
}

// ClusterSummary describes cluster activity this run, or "" if none —
// suitable for a one-line stderr report.
func (o *Obs) ClusterSummary() string {
	if o == nil {
		return ""
	}
	cc := o.ClusterCounts()
	if !cc.Any() {
		return ""
	}
	return fmt.Sprintf("cluster: %d shards dispatched, %d acked, %d requeued, %d quarantined, %d local fallbacks; %d remote tasks, %d ledger replays, %d worker deaths, %d rejoins",
		cc.ShardsDispatched, cc.ShardsAcked, cc.ShardsRequeued, cc.ShardsQuarantined, cc.ShardsLocal,
		cc.TasksRemote, cc.TasksLedger, cc.WorkerDeaths, cc.WorkerRejoins)
}
