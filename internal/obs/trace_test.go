package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestTraceSchema checks the invariants a Chrome-trace consumer relies on:
// timestamps are non-negative and monotonic in export order, and on every
// lane (tid) the events form perfectly matched, same-name B/E pairs — even
// when many goroutines emit overlapping spans concurrently.
func TestTraceSchema(t *testing.T) {
	tr := NewTracer()
	base := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				start := base.Add(time.Duration(g*20+i) * time.Millisecond)
				tr.EmitSpan("task", "work", start, start.Add(5*time.Millisecond),
					map[string]any{"worker": g})
			}
		}(g)
	}
	wg.Wait()
	tr.Instant("note", "done", nil)

	evs := tr.Events()
	if len(evs) != 8*20*2+1 {
		t.Fatalf("event count = %d, want %d", len(evs), 8*20*2+1)
	}
	prev := -1.0
	open := map[int][]string{} // tid → stack of open span names
	for _, e := range evs {
		if e.TS < 0 {
			t.Fatalf("negative ts: %+v", e)
		}
		if e.TS < prev {
			t.Fatalf("timestamps not monotonic: %g after %g", e.TS, prev)
		}
		prev = e.TS
		switch e.Ph {
		case "B":
			if len(open[e.TID]) != 0 {
				t.Fatalf("lane %d opens %q with %v still open (overlapping spans on one lane)",
					e.TID, e.Name, open[e.TID])
			}
			open[e.TID] = append(open[e.TID], e.Name)
		case "E":
			stack := open[e.TID]
			if len(stack) == 0 || stack[len(stack)-1] != e.Name {
				t.Fatalf("lane %d ends %q without matching B (open: %v)", e.TID, e.Name, stack)
			}
			open[e.TID] = stack[:len(stack)-1]
		case "i":
			if e.TID != 0 || e.S == "" {
				t.Fatalf("instant event malformed: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for tid, stack := range open {
		if len(stack) != 0 {
			t.Errorf("lane %d left spans open: %v", tid, stack)
		}
	}
}

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTracer()
	end := tr.Span("experiment", "fig8", map[string]any{"k": "v"})
	end()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, b, e int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "B":
			b++
		case "E":
			e++
		}
		if ev.PID != tracePID {
			t.Errorf("event pid = %d, want %d", ev.PID, tracePID)
		}
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Errorf("metadata events = %d, want >= 2", meta)
	}
	if b != 1 || e != 1 {
		t.Errorf("B/E counts = %d/%d, want 1/1", b, e)
	}
}

// TestTraceZeroLengthSpan: a span whose start equals its end must still
// export B before E so the pair matches.
func TestTraceZeroLengthSpan(t *testing.T) {
	tr := NewTracer()
	at := time.Now()
	tr.EmitSpan("task", "instantaneous", at, at, nil)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Ph != "B" || evs[1].Ph != "E" {
		t.Fatalf("zero-length span exported as %+v", evs)
	}
	if evs[0].TS != evs[1].TS {
		t.Errorf("zero-length span has ts %g != %g", evs[0].TS, evs[1].TS)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.EmitSpan("c", "n", time.Now(), time.Now(), nil)
	tr.Instant("c", "n", nil)
	tr.Span("c", "n", nil)() // returned func must be callable
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Errorf("nil tracer JSON = %s", buf.String())
	}
}
