package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins engine self-profiling: a CPU profile streamed to
// cpuPath and/or a heap profile written to memPath when the returned stop
// function runs. Empty paths disable the corresponding profile; with both
// empty, stop is a cheap no-op. The stop function is never nil and is safe
// to call exactly once.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
