package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record. The exporter emits duration
// begin/end pairs (ph "B"/"E"), instants (ph "i") and metadata (ph "M") —
// the subset both Perfetto and chrome://tracing load from JSON.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// tracePID is the single simulated process all events belong to.
const tracePID = 1

// Tracer records spans and instants and exports them as Chrome trace_event
// JSON. A nil *Tracer is a no-op.
//
// A Tracer is a lightweight handle onto a shared recording: WithArgs
// derives child handles that stamp every event with base args (e.g. the
// serving layer's request_id), all writing into the same event buffer and
// lane allocator. Explicit per-event args win over base args on key
// collision.
//
// Spans are laid out on lanes (exported as thread ids): each span occupies
// the lowest-numbered lane that is strictly free before its start time, so
// every lane carries a sequence of non-overlapping, perfectly matched B/E
// pairs no matter how the recording goroutines interleave. Lane occupancy
// therefore visualizes engine concurrency directly; the worker that ran a
// task is in the span's args.
type Tracer struct {
	st   *traceState
	args map[string]any // base args stamped onto every event
}

// traceState is the recording shared by a tracer and all WithArgs
// children.
type traceState struct {
	mu     sync.Mutex
	t0     time.Time
	lanes  []time.Time // per-lane end time of the last span
	events []TraceEvent
}

// NewTracer starts a tracer; timestamps are relative to this call.
func NewTracer() *Tracer { return &Tracer{st: &traceState{t0: time.Now()}} }

// WithArgs returns a child tracer recording into the same buffer whose
// every event carries args (merged under any per-event args). A nil
// tracer returns nil; empty args return the receiver.
func (t *Tracer) WithArgs(args map[string]any) *Tracer {
	if t == nil || t.st == nil {
		return nil
	}
	if len(args) == 0 {
		return t
	}
	merged := make(map[string]any, len(t.args)+len(args))
	for k, v := range t.args {
		merged[k] = v
	}
	for k, v := range args {
		merged[k] = v
	}
	return &Tracer{st: t.st, args: merged}
}

// mergeArgs overlays explicit event args onto the handle's base args;
// explicit keys win. Returns nil when both are empty.
func (t *Tracer) mergeArgs(args map[string]any) map[string]any {
	if len(t.args) == 0 {
		return args
	}
	merged := make(map[string]any, len(t.args)+len(args))
	for k, v := range t.args {
		merged[k] = v
	}
	for k, v := range args {
		merged[k] = v
	}
	return merged
}

// ts converts a wall-clock time to trace microseconds, clamped at 0.
// Caller holds st.mu.
func (st *traceState) ts(at time.Time) float64 {
	us := float64(at.Sub(st.t0)) / float64(time.Microsecond)
	if us < 0 {
		us = 0
	}
	return us
}

// lane returns the index of the lowest lane free strictly before start,
// extending the lane set if every existing lane is still busy.
// Caller holds st.mu.
func (st *traceState) lane(start, end time.Time) int {
	for i, busyUntil := range st.lanes {
		if busyUntil.Before(start) {
			st.lanes[i] = end
			return i
		}
	}
	st.lanes = append(st.lanes, end)
	return len(st.lanes) - 1
}

// EmitSpan records a completed [start, end] span as a B/E pair. Safe for
// concurrent use; no-op on a nil tracer.
func (t *Tracer) EmitSpan(cat, name string, start, end time.Time, args map[string]any) {
	if t == nil || t.st == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	args = t.mergeArgs(args)
	st := t.st
	st.mu.Lock()
	defer st.mu.Unlock()
	tid := st.lane(start, end) + 1 // tid 0 is the instant/metadata lane
	st.events = append(st.events,
		TraceEvent{Name: name, Cat: cat, Ph: "B", TS: st.ts(start), PID: tracePID, TID: tid, Args: args},
		TraceEvent{Name: name, Cat: cat, Ph: "E", TS: st.ts(end), PID: tracePID, TID: tid},
	)
}

// Span starts a live span and returns the function that ends it. The
// returned function is never nil, so callers need no nil checks:
//
//	end := tracer.Span("experiment", "fig8", nil)
//	defer end()
func (t *Tracer) Span(cat, name string, args map[string]any) func() {
	if t == nil || t.st == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.EmitSpan(cat, name, start, time.Now(), args) }
}

// Instant records a point event on the metadata lane (tid 0).
func (t *Tracer) Instant(cat, name string, args map[string]any) {
	if t == nil || t.st == nil {
		return
	}
	now := time.Now()
	args = t.mergeArgs(args)
	st := t.st
	st.mu.Lock()
	st.events = append(st.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i", TS: st.ts(now), PID: tracePID, TID: 0, S: "t", Args: args,
	})
	st.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil || t.st == nil {
		return 0
	}
	t.st.mu.Lock()
	defer t.st.mu.Unlock()
	return len(t.st.events)
}

// Events returns a copy of the recorded events in export order (sorted by
// timestamp). Mostly for tests.
func (t *Tracer) Events() []TraceEvent {
	if t == nil || t.st == nil {
		return nil
	}
	t.st.mu.Lock()
	evs := append([]TraceEvent(nil), t.st.events...)
	t.st.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// WriteJSON exports the trace in Chrome trace_event JSON object format:
// metadata naming the process and lanes, then all events sorted by
// timestamp. The stable sort keeps each lane's B before its same-timestamp
// E (zero-length spans), so B/E pairs always match.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var out struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = []TraceEvent{}
	if t != nil && t.st != nil {
		t.st.mu.Lock()
		nLanes := len(t.st.lanes)
		t.st.mu.Unlock()
		out.TraceEvents = append(out.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
			Args: map[string]any{"name": "prefetchlab"},
		})
		for i := 0; i <= nLanes; i++ {
			name := fmt.Sprintf("lane %d", i)
			if i == 0 {
				name = "events"
			}
			out.TraceEvents = append(out.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", PID: tracePID, TID: i,
				Args: map[string]any{"name": name},
			})
		}
		out.TraceEvents = append(out.TraceEvents, t.Events()...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
