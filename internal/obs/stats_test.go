package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sample builds a small registry with keys recorded out of order.
func sample() *Stats {
	s := NewStats()
	s.Record("solo/Test/beta/in0/Baseline", MachineSnapshot{
		Machine: "Test",
		Cores: []CoreSnapshot{{
			Core: 0, Bench: "beta", Cycles: 2000, Instructions: 900, MemRefs: 300,
			Demand:   DemandStats{Loads: 200, Stores: 100, L1Misses: 50, L2Misses: 20, LLCMisses: 10, AvgMissLatency: 81.5},
			Prefetch: PrefetchStats{SWIssued: 40, SWUseful: 30, SWRedundant: 5},
			Traffic:  TrafficStats{DemandFetch: 640, SWFetch: 1920, Writeback: 320, Total: 2880},
			L1:       LevelStats{Hits: 250, Misses: 50, MissRatio: 50.0 / 300, Fills: 50},
			L2:       LevelStats{Hits: 30, Misses: 20, MissRatio: 0.4, Fills: 20},
		}},
		LLC:  LevelStats{Hits: 10, Misses: 10, MissRatio: 0.5, Fills: 10, UselessSW: 1},
		DRAM: DRAMStats{Transfers: 10, Bytes: 640, QueueDelayCycles: 12, BusyCycles: 40},
	})
	s.Record("solo/Test/alpha/in0/Baseline", MachineSnapshot{
		Machine: "Test",
		Cores:   []CoreSnapshot{{Core: 0, Bench: "alpha", Cycles: 1000, Instructions: 400, MemRefs: 100}},
	})
	return s
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stats_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stats JSON differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWriteJSONOrderIndependent is the registry half of the determinism
// contract: the same snapshots recorded in any order export identically.
func TestWriteJSONOrderIndependent(t *testing.T) {
	a, b := NewStats(), NewStats()
	snaps := map[string]MachineSnapshot{
		"z/last":  {Machine: "M"},
		"a/first": {Machine: "M", Cores: []CoreSnapshot{{Core: 0, Cycles: 7}}},
		"m/mid":   {Machine: "M"},
	}
	order := []string{"z/last", "a/first", "m/mid"}
	for _, k := range order {
		a.Record(k, snaps[k])
	}
	for i := len(order) - 1; i >= 0; i-- {
		b.Record(order[i], snaps[order[i]])
	}
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("export depends on recording order")
	}
	var out struct {
		Tasks []struct {
			Task string `json:"task"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(ba.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 3 || out.Tasks[0].Task != "a/first" || out.Tasks[2].Task != "z/last" {
		t.Errorf("tasks not sorted by key: %+v", out.Tasks)
	}
}

func TestNilAndEmptyStats(t *testing.T) {
	var s *Stats
	s.Record("k", MachineSnapshot{}) // must not panic
	if s.Len() != 0 {
		t.Error("nil Len != 0")
	}
	if _, ok := s.Get("k"); ok {
		t.Error("nil Get found a snapshot")
	}
	for _, reg := range []*Stats{nil, NewStats()} {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var out struct {
			Tasks []json.RawMessage `json:"tasks"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Tasks == nil || len(out.Tasks) != 0 {
			t.Errorf("empty registry must export \"tasks\": [] — got %s", buf.String())
		}
	}
}

func TestCaptureMachine(t *testing.T) {
	mach := machine.AMDPhenomII()
	h, err := memsys.New(mach.MemConfig(2, false))
	if err != nil {
		t.Fatal(err)
	}
	apps := []cpu.Result{{Name: "a", Cycles: 11}, {Name: "b", Cycles: 22}}
	snap := CaptureMachine(mach.Name, h, apps)
	if snap.Machine != mach.Name {
		t.Errorf("machine = %q", snap.Machine)
	}
	if len(snap.Cores) != 2 {
		t.Fatalf("cores = %d, want 2", len(snap.Cores))
	}
	if snap.Cores[1].Bench != "b" || snap.Cores[1].Cycles != 22 || snap.Cores[1].Core != 1 {
		t.Errorf("core 1 snapshot = %+v", snap.Cores[1])
	}
}

func TestSoloKey(t *testing.T) {
	got := SoloKey("Intel", "lbm", 2, "Baseline")
	if got != "solo/Intel/lbm/in2/Baseline" {
		t.Errorf("SoloKey = %q", got)
	}
}

// TestWriteJSONServerSection pins the serving-layer hook: a snapshot set
// via SetServer appears under "server", and registries that never set one
// (every CLI run) emit output byte-identical to pre-server builds.
func TestWriteJSONServerSection(t *testing.T) {
	s := NewStats()
	var without bytes.Buffer
	if err := s.WriteJSON(&without); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(without.Bytes(), []byte(`"server"`)) {
		t.Error("server section leaked into a CLI-style registry")
	}

	s.SetServer(map[string]int64{"shed_429": 7, "inflight": 2})
	var with bytes.Buffer
	if err := s.WriteJSON(&with); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Server map[string]int64 `json:"server"`
	}
	if err := json.Unmarshal(with.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Server["shed_429"] != 7 || out.Server["inflight"] != 2 {
		t.Errorf("server section = %v", out.Server)
	}
	(*Stats)(nil).SetServer("ignored") // must not panic
}
