package promtext_test

import (
	"strings"
	"testing"

	"prefetchlab/internal/obs/prom"
	"prefetchlab/internal/obs/prom/promtext"
)

func TestParseValidExposition(t *testing.T) {
	in := `# HELP reqs_total requests
# TYPE reqs_total counter
reqs_total{endpoint="figures"} 3
reqs_total{endpoint="mrc"} 1
# HELP depth queue depth
# TYPE depth gauge
depth 2.5
# HELP lat latency
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="1"} 3
lat_bucket{le="+Inf"} 4
lat_sum 5.25
lat_count 4
`
	fams, err := promtext.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Name != "reqs_total" || fams[0].Type != "counter" || len(fams[0].Samples) != 2 {
		t.Fatalf("bad first family: %+v", fams[0])
	}
	if fams[0].Samples[0].Get("endpoint") != "figures" {
		t.Fatalf("bad label: %+v", fams[0].Samples[0])
	}
	if err := promtext.RequireFamilies(fams, "reqs_total", "depth", "lat"); err != nil {
		t.Fatal(err)
	}
	if err := promtext.RequireFamilies(fams, "reqs_total", "missing_one", "missing_two"); err == nil ||
		!strings.Contains(err.Error(), "missing_one") || !strings.Contains(err.Error(), "missing_two") {
		t.Fatalf("RequireFamilies err = %v, want both missing families named", err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "x_total 1\n",
		"unknown type":        "# TYPE x_total wat\nx_total 1\n",
		"bad metric name":     "# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# TYPE x counter\nx pizza\n",
		"duplicate series":    "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n",
		"duplicate TYPE":      "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"TYPE after samples":  "# HELP x h\n# TYPE x counter\nx 1\n# TYPE x counter\n",
		"unterminated labels": "# TYPE x counter\nx{a=\"1\" 1\n",
		"bad escape":          "# TYPE x counter\nx{a=\"\\q\"} 1\n",
		"unquoted label":      "# TYPE x counter\nx{a=1} 1\n",
		"help without type":   "# HELP x h\nx 1\n",
		"le not ascending":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"not cumulative":      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"missing sum":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 4\n",
		"foreign sample":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\nh_oops 1\n",
		"interleaved family":  "# TYPE a counter\n# TYPE b counter\na 1\n",
	}
	for name, in := range cases {
		if _, err := promtext.Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

func TestParseLabelEscapes(t *testing.T) {
	in := "# TYPE x counter\nx{a=\"va\\\"l\\\\ue\\n\"} 1\n"
	fams, err := promtext.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := fams[0].Samples[0].Get("a")
	if got != "va\"l\\ue\n" {
		t.Fatalf("unescaped label = %q", got)
	}
}

// TestRoundTripFromProm pins the contract between the renderer and the
// parser: everything internal/obs/prom writes parses strictly, and
// re-rendering the parsed families reproduces the bytes exactly.
func TestRoundTripFromProm(t *testing.T) {
	r := prom.NewRegistry()
	v := r.CounterVec("http_requests_total", "requests by endpoint", "endpoint")
	v.With("figures").Add(3)
	v.With("mrc").Inc()
	r.Gauge("queue_depth", "live queue depth").Set(4.25)
	bs := r.GaugeVec("breaker_state", "1 for the active state", "state")
	bs.With("closed").Set(1)
	bs.With("open").Set(0)
	h := r.HistogramVec("request_seconds", "latency", []float64{0.005, 0.1, 2.5}, "endpoint")
	h.With("mrc").Observe(0.05)
	h.With("mrc").Observe(7)
	h.With("figures").Observe(0.001)
	r.Counter("empty_total", "registered, never incremented")
	r.Histogram("plain_hist", "no labels", []float64{1, 2})

	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("renderer output did not parse: %v\n%s", err, out.String())
	}
	var rt strings.Builder
	for _, f := range fams {
		if _, err := f.WriteTo(&rt); err != nil {
			t.Fatal(err)
		}
	}
	if rt.String() != out.String() {
		t.Fatalf("round trip differs.\n--- rendered ---\n%s--- round-tripped ---\n%s", out.String(), rt.String())
	}
}
