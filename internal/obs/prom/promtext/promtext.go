// Package promtext is a strict parser for the Prometheus text exposition
// format (0.0.4), used to validate what internal/obs/prom (and therefore
// prefetchd's GET /metrics) renders. It is deliberately stricter than a
// scraping Prometheus server:
//
//   - every sample must belong to a family whose # TYPE line came first,
//   - metric and label names must match the spec grammar,
//   - no duplicate series within a family,
//   - histograms must carry ascending le bounds with cumulative counts,
//     a +Inf bucket, and a _count equal to the +Inf bucket.
//
// Parsed families retain the raw value strings, so Family.WriteTo
// re-renders the input byte-for-byte — the round-trip property the
// exposition tests pin.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed series sample: the full metric name (including
// any _bucket/_sum/_count suffix), its labels in source order, and the
// raw value text.
type Sample struct {
	Name   string
	Labels []Label
	Value  string
}

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Get returns the value of the named label, or "" when absent.
func (s Sample) Get(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one metric family: HELP/TYPE header plus its samples in
// source order.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Parse reads a full exposition, returning families in source order. Any
// grammar or consistency violation is an error naming the line.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var fams []*Family
	byName := make(map[string]*Family)
	var cur *Family
	seen := make(map[string]bool) // family name + rendered labels -> dup check
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
			}
			switch kind {
			case "HELP":
				if f, ok := byName[name]; ok {
					if f.Help != "" {
						return nil, fmt.Errorf("promtext: line %d: duplicate HELP for %s", lineNo, name)
					}
					f.Help = rest
					cur = f
					break
				}
				cur = &Family{Name: name, Help: rest}
				fams = append(fams, cur)
				byName[name] = cur
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("promtext: line %d: unknown type %q for %s", lineNo, rest, name)
				}
				f, ok := byName[name]
				if !ok {
					f = &Family{Name: name}
					fams = append(fams, f)
					byName[name] = f
				}
				if f.Type != "" {
					return nil, fmt.Errorf("promtext: line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("promtext: line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = rest
				cur = f
			default:
				// Plain comment: ignored.
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		fam := familyOf(byName, s.Name)
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("promtext: line %d: sample %s has no preceding # TYPE", lineNo, s.Name)
		}
		if fam != cur {
			return nil, fmt.Errorf("promtext: line %d: sample %s interleaved outside its family block", lineNo, s.Name)
		}
		key := s.Name + "\x1f" + renderLabels(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("promtext: line %d: duplicate series %s{%s}", lineNo, s.Name, renderLabels(s.Labels))
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: %w", err)
	}
	out := make([]Family, len(fams))
	for i, f := range fams {
		if err := validateFamily(f); err != nil {
			return nil, err
		}
		out[i] = *f
	}
	return out, nil
}

// familyOf resolves the family a sample belongs to: exact name, or the
// base name of a histogram _bucket/_sum/_count suffix.
func familyOf(byName map[string]*Family, sample string) *Family {
	if f, ok := byName[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := byName[base]; ok && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

// parseComment splits a # line into (HELP|TYPE|"", name, rest).
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimPrefix(body, " ")
	fields := strings.SplitN(body, " ", 3)
	if fields[0] != "HELP" && fields[0] != "TYPE" {
		return "", "", "", nil
	}
	if len(fields) < 3 {
		return "", "", "", fmt.Errorf("malformed %s comment %q", fields[0], line)
	}
	if !nameRe.MatchString(fields[1]) {
		return "", "", "", fmt.Errorf("bad metric name %q", fields[1])
	}
	return fields[0], fields[1], fields[2], nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	s.Value = rest[1:]
	if s.Value == "" || strings.ContainsAny(s.Value, " \t") {
		return s, fmt.Errorf("malformed value %q", s.Value)
	}
	if _, err := parseValue(s.Value); err != nil {
		return s, err
	}
	return s, nil
}

// parseValue accepts a float, +Inf, -Inf or NaN.
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "-Inf", "NaN":
		return strconv.ParseFloat(strings.TrimPrefix(v, "+"), 64)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", v)
	}
	return f, nil
}

// parseLabels parses a {k="v",...} block starting at text[0] == '{',
// returning the index just past the closing brace.
func parseLabels(text string) (int, []Label, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(text) {
			return 0, nil, fmt.Errorf("unterminated label block in %q", text)
		}
		if text[i] == '}' {
			return i + 1, labels, nil
		}
		j := strings.IndexByte(text[i:], '=')
		if j < 0 {
			return 0, nil, fmt.Errorf("malformed label block %q", text)
		}
		name := text[i : i+j]
		if !labelRe.MatchString(name) {
			return 0, nil, fmt.Errorf("bad label name %q", name)
		}
		i += j + 1
		if i >= len(text) || text[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", text)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", text)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, nil, fmt.Errorf("dangling escape in %q", text)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in %q", text[i+1], text)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

// validateFamily enforces per-type consistency; histograms get the full
// bucket treatment.
func validateFamily(f *Family) error {
	if f.Type == "" {
		return fmt.Errorf("promtext: family %s has HELP but no TYPE", f.Name)
	}
	if f.Type != "histogram" {
		for _, s := range f.Samples {
			if s.Name != f.Name {
				return fmt.Errorf("promtext: family %s contains foreign sample %s", f.Name, s.Name)
			}
		}
		return nil
	}
	return validateHistogram(f)
}

// histKey groups histogram samples by their non-le labels.
func histKey(s Sample) string {
	var parts []string
	for _, l := range s.Labels {
		if l.Name != "le" {
			parts = append(parts, l.Name+"="+l.Value)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// validateHistogram checks every series of a histogram family: ascending
// le bounds, cumulative counts, a +Inf bucket, and _count == +Inf bucket.
func validateHistogram(f *Family) error {
	type hist struct {
		lastLE    float64
		lastCount float64
		infCount  float64
		hasInf    bool
		count     float64
		hasCount  bool
		hasSum    bool
	}
	hs := make(map[string]*hist)
	get := func(s Sample) *hist {
		k := histKey(s)
		h, ok := hs[k]
		if !ok {
			h = &hist{lastLE: -1e308}
			hs[k] = h
		}
		return h
	}
	for _, s := range f.Samples {
		v, err := parseValue(s.Value)
		if err != nil {
			return fmt.Errorf("promtext: histogram %s: %w", f.Name, err)
		}
		switch s.Name {
		case f.Name + "_bucket":
			h := get(s)
			leStr := s.Get("le")
			if leStr == "" {
				return fmt.Errorf("promtext: histogram %s: bucket without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("promtext: histogram %s: bad le %q", f.Name, leStr)
			}
			if h.hasInf {
				return fmt.Errorf("promtext: histogram %s: bucket after +Inf", f.Name)
			}
			if le <= h.lastLE {
				return fmt.Errorf("promtext: histogram %s: le %q not ascending", f.Name, leStr)
			}
			if v < h.lastCount {
				return fmt.Errorf("promtext: histogram %s: bucket counts not cumulative at le=%q", f.Name, leStr)
			}
			h.lastLE, h.lastCount = le, v
			if leStr == "+Inf" {
				h.hasInf, h.infCount = true, v
			}
		case f.Name + "_sum":
			get(s).hasSum = true
		case f.Name + "_count":
			h := get(s)
			h.hasCount, h.count = true, v
		default:
			return fmt.Errorf("promtext: histogram %s contains foreign sample %s", f.Name, s.Name)
		}
	}
	for k, h := range hs {
		label := f.Name
		if k != "" {
			label += "{" + k + "}"
		}
		if !h.hasInf {
			return fmt.Errorf("promtext: histogram %s: missing +Inf bucket", label)
		}
		if !h.hasSum || !h.hasCount {
			return fmt.Errorf("promtext: histogram %s: missing _sum or _count", label)
		}
		if h.count != h.infCount {
			return fmt.Errorf("promtext: histogram %s: _count %v != +Inf bucket %v", label, h.count, h.infCount)
		}
	}
	return nil
}

// RequireFamilies returns an error naming every family in names that is
// absent from fams — the CI guard against silently dropped metrics.
func RequireFamilies(fams []Family, names ...string) error {
	have := make(map[string]bool, len(fams))
	for _, f := range fams {
		have[f.Name] = true
	}
	var missing []string
	for _, n := range names {
		if !have[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("promtext: missing required families: %s", strings.Join(missing, ", "))
	}
	return nil
}

// WriteTo re-renders the family in exposition format. For input produced
// by internal/obs/prom, Parse followed by WriteTo reproduces the bytes
// exactly (values are kept as raw strings).
func (f Family) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
	for _, s := range f.Samples {
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			b.WriteString("{" + renderLabels(s.Labels) + "}")
		}
		b.WriteString(" " + s.Value + "\n")
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// renderLabels renders labels in source order with exposition escaping.
func renderLabels(labels []Label) string {
	var parts []string
	for _, l := range labels {
		v := strings.ReplaceAll(l.Value, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		parts = append(parts, l.Name+`="`+v+`"`)
	}
	return strings.Join(parts, ",")
}
