package prom

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	r.OnScrape(func() { t.Fatal("hook on nil registry ran") })
	c := r.Counter("c", "h")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil-registry counter value = %d, want 0", c.Value())
	}
	g := r.Gauge("g", "h")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil-registry gauge value = %v, want 0", g.Value())
	}
	h := r.Histogram("h", "h", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Fatalf("nil-registry histogram count = %d, want 0", h.Count())
	}
	r.CounterVec("cv", "h", "l").With("x").Inc()
	r.GaugeVec("gv", "h", "l").With("x").Set(1)
	r.HistogramVec("hv", "h", []float64{1}, "l").With("x").Observe(1)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}

	var nc *Counter
	nc.Inc()
	nc.Add(1)
	nc.Set(1)
	var ng *Gauge
	ng.Set(1)
	ng.Add(1)
	var nh *Histogram
	nh.Observe(1)
	var ncv *CounterVec
	ncv.With("x").Inc()
	ncv.Each(func([]string, int64) { t.Fatal("Each on nil vec ran") })
	var ngv *GaugeVec
	ngv.With("x").Set(1)
	var nhv *HistogramVec
	nhv.With("x").Observe(1)
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-10) // negative deltas dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again.Value() != 5 {
		t.Fatalf("re-registration returned a fresh counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}
}

func TestTypeConflictReturnsDetachedHandle(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "as counter").Inc()
	g := r.Gauge("m", "as gauge") // conflicting type: detached, no panic
	g.Set(99)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "99") {
		t.Fatalf("detached gauge leaked into exposition:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "m 1\n") {
		t.Fatalf("original counter missing:\n%s", b.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	}
	for _, w := range want {
		if !strings.Contains(b.String(), w+"\n") {
			t.Fatalf("missing %q in:\n%s", w, b.String())
		}
	}
}

func TestVecLabelsAndDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("by_ep_total", "per endpoint", "endpoint")
	v.With("mrc").Add(2)
	v.With("figures").Inc()
	v.With("mrc").Inc()
	if v.With("bogus", "extra") == nil {
		t.Fatal("arity mismatch must return a detached handle, not nil")
	}
	var got []string
	v.Each(func(vals []string, n int64) {
		got = append(got, vals[0]+"="+string(rune('0'+n)))
	})
	if len(got) != 2 || got[0] != "figures=1" || got[1] != "mrc=3" {
		t.Fatalf("Each order/values = %v", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	iF := strings.Index(b.String(), `by_ep_total{endpoint="figures"} 1`)
	iM := strings.Index(b.String(), `by_ep_total{endpoint="mrc"} 3`)
	if iF < 0 || iM < 0 || iF > iM {
		t.Fatalf("series missing or out of order:\n%s", b.String())
	}
}

func TestFamiliesSortedAndHeadersAlwaysPresent(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "last")
	r.Gauge("aaa", "first")
	r.CounterVec("mmm_total", "middle, no series yet", "l")
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	iA := strings.Index(out, "# TYPE aaa gauge")
	iM := strings.Index(out, "# TYPE mmm_total counter")
	iZ := strings.Index(out, "# TYPE zzz_total counter")
	if iA < 0 || iM < 0 || iZ < 0 || !(iA < iM && iM < iZ) {
		t.Fatalf("families unordered or missing:\n%s", out)
	}
}

func TestOnScrapeHookRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "d")
	n := 0
	r.OnScrape(func() { n++; g.Set(float64(n)) })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "depth 1\n") {
		t.Fatalf("hook did not run before render:\n%s", b.String())
	}
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "depth 2\n") {
		t.Fatalf("hook did not run on second scrape:\n%s", b.String())
	}
}

func TestEscapingAndSanitization(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("bad name-total", `help with \ and
newline`, "bad label")
	c.With("va\"l\\ue\n").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP bad_name_total help with \\\\ and\\nnewline\n") {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `bad_name_total{bad_label="va\"l\\ue\n"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	v := r.CounterVec("labeled_total", "n", "w")
	h := r.Histogram("h", "h", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(float64(i % 4))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if v.With("a").Value() != 8000 {
		t.Fatalf("vec counter = %d, want 8000", v.With("a").Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
