// Package prom is a stdlib-only Prometheus text-exposition layer: a
// registry of counters, gauges and fixed-bucket histograms that renders
// the 0.0.4 text format deterministically — families sorted by name,
// series sorted by label values, fixed bucket sets — so two registries
// fed the same events expose byte-identical metric structure regardless
// of goroutine interleaving.
//
// The design follows the repo's observability contract (see internal/obs):
// every exported method is nil-receiver safe, so instrumentation call
// sites never branch — a nil *Registry hands out nil handles whose
// operations are no-ops, and a disabled build costs one predictable nil
// check per event. The obssafe analyzer enforces the leading nil guard on
// every exported pointer-receiver method in this package.
//
// Handles are registered once and cached: asking for the same family name
// again returns the existing handle, and a name registered under a
// conflicting type or label arity returns a detached handle (recorded but
// never exported) instead of panicking — the engine's no-panic invariant
// extends to metric registration.
package prom

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric family types, as exported in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// labelSep joins label values into a series key; it cannot appear in UTF-8
// label values ambiguously because it is a full byte reserved by the join.
const labelSep = "\x1f"

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is NOT ready; use NewRegistry. A nil
// *Registry returns nil (no-op) handles from every constructor.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// family is one named metric family with fixed labels.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	bounds  []float64 // histogram families only
	mu      sync.Mutex
	series  map[string]*series
	ordered []*series
}

// series is one label-value combination's data point.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers a hook run at the start of every WriteText call —
// the place to refresh gauges that mirror external state (queue depths,
// runtime stats, engine tallies). Hooks run in registration order.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// lookup returns the family under name, creating it on first use. A type
// or label-arity conflict returns nil (the caller hands out a detached
// handle).
func (r *Registry) lookup(name, help, typ string, labels []string, bounds []float64) *family {
	name = sanitizeName(name)
	clean := make([]string, len(labels))
	for i, l := range labels {
		clean[i] = sanitizeLabel(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(clean) {
			return nil
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, labels: clean,
		bounds: bounds, series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, typeCounter, nil, nil)
	if f == nil {
		return &Counter{}
	}
	return f.counterFor(nil)
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.lookup(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabeled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, typeGauge, nil, nil)
	if f == nil {
		return &Gauge{}
	}
	return f.gaugeFor(nil)
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.lookup(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or returns) an unlabeled fixed-bucket histogram
// family. Buckets are upper bounds in ascending order; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, typeHistogram, nil, cleanBounds(buckets))
	if f == nil {
		return newHistogram(nil)
	}
	return f.histogramFor(nil)
}

// HistogramVec registers (or returns) a labeled fixed-bucket histogram
// family; every series shares the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.lookup(name, help, typeHistogram, labels, cleanBounds(buckets))}
}

// WriteText renders the registry in Prometheus text exposition format
// 0.0.4: scrape hooks first, then every family sorted by name, each
// series sorted by label values. Families with no series still export
// their # HELP/# TYPE header, so the family set is deterministic from
// registration alone.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Counter is a monotonically increasing integer counter. Integer-valued
// by design: the serving layer mirrors counters into JSON snapshots that
// must stay integer-rendered. A nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are dropped — counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		return
	}
	c.v.Add(n)
}

// Set overwrites the counter's value — for scrape-time mirroring of an
// externally maintained monotonic tally (e.g. the engine's fault
// counters), not for general use.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued gauge. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound (cumulative at exposition), a sum and a total count. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts aligned with bounds, plus sum
// and count. Caller gets copies.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.count
}

// CounterVec hands out per-label-value counters of one family. A nil
// *CounterVec (or one with a conflicting registration) returns no-op
// handles.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values (one per registered
// label, in order). The series is created on first use; an arity mismatch
// returns a detached no-op handle.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.fam == nil || len(values) != len(v.fam.labels) {
		return &Counter{}
	}
	return v.fam.counterFor(values)
}

// Each calls fn for every existing series in deterministic (label-value)
// order.
func (v *CounterVec) Each(fn func(values []string, count int64)) {
	if v == nil || v.fam == nil || fn == nil {
		return
	}
	for _, s := range v.fam.sorted() {
		fn(s.values, s.c.Value())
	}
}

// GaugeVec hands out per-label-value gauges of one family.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.fam == nil || len(values) != len(v.fam.labels) {
		return &Gauge{}
	}
	return v.fam.gaugeFor(values)
}

// HistogramVec hands out per-label-value histograms of one family.
type HistogramVec struct {
	fam *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.fam == nil || len(values) != len(v.fam.labels) {
		return newHistogram(nil)
	}
	return v.fam.histogramFor(values)
}

// seriesFor returns the series under the given label values, creating it
// with mk on first use. Caller guarantees len(values) == len(f.labels).
func (f *family) seriesFor(values []string, mk func(s *series)) *series {
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	mk(s)
	f.series[key] = s
	f.ordered = append(f.ordered, s)
	return s
}

func (f *family) counterFor(values []string) *Counter {
	s := f.seriesFor(values, func(s *series) { s.c = &Counter{} })
	if s.c == nil {
		return &Counter{}
	}
	return s.c
}

func (f *family) gaugeFor(values []string) *Gauge {
	s := f.seriesFor(values, func(s *series) { s.g = &Gauge{} })
	if s.g == nil {
		return &Gauge{}
	}
	return s.g
}

func (f *family) histogramFor(values []string) *Histogram {
	s := f.seriesFor(values, func(s *series) { s.h = newHistogram(f.bounds) })
	if s.h == nil {
		return newHistogram(nil)
	}
	return s.h
}

// sorted returns the family's series sorted by joined label values.
func (f *family) sorted() []*series {
	f.mu.Lock()
	out := append([]*series(nil), f.ordered...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, labelSep) < strings.Join(out[j].values, labelSep)
	})
	return out
}

// write renders one family: HELP/TYPE header then every series.
func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range f.sorted() {
		switch {
		case s.c != nil:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.values, "", 0)
			fmt.Fprintf(b, " %d\n", s.c.Value())
		case s.g != nil:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.values, "", 0)
			fmt.Fprintf(b, " %s\n", formatFloat(s.g.Value()))
		case s.h != nil:
			cum, sum, count := s.h.snapshot()
			for i, ub := range f.bounds {
				b.WriteString(f.name + "_bucket")
				writeLabels(b, f.labels, s.values, "le", ub)
				fmt.Fprintf(b, " %d\n", cum[i])
			}
			b.WriteString(f.name + "_bucket")
			writeLabels(b, f.labels, s.values, "le", math.Inf(1))
			fmt.Fprintf(b, " %d\n", count)
			b.WriteString(f.name + "_sum")
			writeLabels(b, f.labels, s.values, "", 0)
			fmt.Fprintf(b, " %s\n", formatFloat(sum))
			b.WriteString(f.name + "_count")
			writeLabels(b, f.labels, s.values, "", 0)
			fmt.Fprintf(b, " %d\n", count)
		}
	}
}

// writeLabels renders a {k="v",...} block, appending an le label for
// histogram buckets when leName is non-empty. No block is emitted when
// there are no labels at all.
func writeLabels(b *strings.Builder, names, values []string, leName string, le float64) {
	if len(names) == 0 && leName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a float the Prometheus way: shortest representation
// that round-trips, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sanitizeName coerces s into a valid metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*), replacing invalid runes with '_'.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabel coerces s into a valid label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func sanitizeLabel(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// cleanBounds sorts, dedupes and strips non-finite histogram bounds
// (+Inf is implicit; NaN is meaningless).
func cleanBounds(bounds []float64) []float64 {
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}
