package obs

import (
	"testing"
	"time"
)

// TestNilObsIsInert: the engine calls these unconditionally, so every one
// must be a no-op on a nil bundle — and the interface helpers must return
// untyped nils so the pool's `Obs != nil` check stays false.
func TestNilObsIsInert(t *testing.T) {
	var o *Obs
	if o.SchedObserver() != nil {
		t.Error("SchedObserver of nil Obs must be untyped nil")
	}
	if o.CacheObserver() != nil {
		t.Error("CacheObserver of nil Obs must be untyped nil")
	}
	o.BatchStart("b", 3)
	o.TaskDone("b", 0, 0, time.Now(), time.Now(), time.Now(), nil)
	o.CacheDone("c", "k", true, time.Now(), time.Now())
	o.Span("cat", "n", nil)()
	o.RecordMachine("k", "m", nil, nil)
	o.StopProgress()
}

// TestPartialObs: a bundle with only some sinks set must not panic when the
// observer callbacks fan out to the missing ones.
func TestPartialObs(t *testing.T) {
	o := &Obs{Stats: NewStats()} // no Trace, no Progress
	if o.SchedObserver() == nil || o.CacheObserver() == nil {
		t.Fatal("non-nil Obs must expose observers")
	}
	o.BatchStart("b", 2)
	o.TaskDone("b", 1, 0, time.Now(), time.Now(), time.Now(), nil)
	o.CacheDone("c", "k", false, time.Now(), time.Now())
	o.CacheDone("c", "k", true, time.Now(), time.Now())
	o.Span("cat", "n", nil)()
	o.StopProgress()

	tr := &Obs{Trace: NewTracer()}
	tr.BatchStart("b", 1)
	tr.TaskDone("b", 0, 2, time.Now(), time.Now(), time.Now(), nil)
	if tr.Trace.Len() != 2 {
		t.Errorf("trace events = %d, want one B/E pair", tr.Trace.Len())
	}
}
