package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// ShedError reports a request rejected by admission control before any
// engine work ran: 429 when the bounded queue is full, 503 when the server
// is draining. RetryAfter is surfaced as a Retry-After header so
// well-behaved clients back off instead of hammering.
type ShedError struct {
	Status     int
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: request shed (%d): %s; retry after %s", e.Status, e.Reason, e.RetryAfter)
}

// limiter is the admission controller for the heavy (engine-backed)
// endpoints: at most cap(slots) requests execute concurrently, at most
// cap(queue) more wait their turn, and everything beyond that is shed
// immediately with 429 — bounded latency instead of an unbounded backlog.
type limiter struct {
	slots      chan struct{}
	queue      chan struct{}
	retryAfter time.Duration
}

// newLimiter sizes an admission controller. maxInflight < 1 is clamped to
// 1; queueDepth < 0 to 0.
func newLimiter(maxInflight, queueDepth int, retryAfter time.Duration) *limiter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &limiter{
		slots:      make(chan struct{}, maxInflight),
		queue:      make(chan struct{}, queueDepth),
		retryAfter: retryAfter,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if the
// server is saturated. It returns a release func on success; a *ShedError
// when the queue is full; or the context error if the caller gave up (or
// timed out) while queued.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, &ShedError{
			Status:     http.StatusTooManyRequests,
			Reason:     fmt.Sprintf("admission queue full (%d waiting, %d in flight)", len(l.queue), len(l.slots)),
			RetryAfter: l.retryAfter,
		}
	}
	defer func() { <-l.queue }()
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }

// inflight reports how many requests currently hold execution slots.
func (l *limiter) inflight() int { return len(l.slots) }

// queued reports how many admitted requests are waiting for a slot.
func (l *limiter) queued() int { return len(l.queue) }

// capacity reports (maxInflight, queueDepth).
func (l *limiter) capacity() (int, int) { return cap(l.slots), cap(l.queue) }
