package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"prefetchlab/internal/resultcache"
)

// cachedServer builds a server with a result cache attached; dir == ""
// selects a memory-only cache.
func cachedServer(t *testing.T, dir string) (*Server, string) {
	t.Helper()
	cache, err := resultcache.New(resultcache.Config{MaxEntries: 16, Dir: dir})
	if err != nil {
		t.Fatalf("resultcache.New: %v", err)
	}
	s, ts := testServer(t, Config{Base: testBase(), Cache: cache})
	return s, ts.URL
}

// TestResultCacheByteIdentity is the core cache invariant: a cache miss, a
// cache hit, and an uncached server must all render byte-identical bodies
// for the same configuration.
func TestResultCacheByteIdentity(t *testing.T) {
	_, uncachedTS := testServer(t, Config{Base: testBase()})
	resp, want := get(t, uncachedTS.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncached figure = %d", resp.StatusCode)
	}

	s, url := cachedServer(t, "")
	resp, miss := get(t, url+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first cached figure = %d X-Cache %q, want 200 miss", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, hit := get(t, url+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second cached figure = %d X-Cache %q, want 200 hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if miss != want {
		t.Fatalf("cache-miss rendering differs from uncached server:\nmiss:\n%s\nuncached:\n%s", miss, want)
	}
	if hit != want {
		t.Fatalf("cache-hit rendering differs from uncached server:\nhit:\n%s\nuncached:\n%s", hit, want)
	}

	cs := s.ResultCache().Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("cache stats = hits %d misses %d, want 1/1", cs.Hits, cs.Misses)
	}
	// A different configuration must not hit the same entry: the override
	// misses and lands in its own slot.
	resp, _ = get(t, url+"/api/v1/figures/table1?scale=0.04")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("override request = %d X-Cache %q, want 200 miss", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if cs := s.ResultCache().Stats(); cs.MemEntries != 2 {
		t.Fatalf("entries after override = %d, want 2 (distinct cache keys)", cs.MemEntries)
	}
}

// TestResultCachePersistsAcrossRestart verifies the disk tier: a rendering
// stored by one server instance is served as a hit — byte-identical — by a
// fresh instance pointed at the same directory.
func TestResultCachePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, url1 := cachedServer(t, dir)
	resp, want := get(t, url1+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first run = %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	s2, url2 := cachedServer(t, dir)
	resp, got := get(t, url2+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("restarted run = %d X-Cache %q, want 200 hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got != want {
		t.Fatalf("restarted cache hit differs from original rendering:\ngot:\n%s\nwant:\n%s", got, want)
	}
	cs := s2.ResultCache().Stats()
	if cs.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1 (stats %+v)", cs.DiskHits, cs)
	}
}

// TestResultCacheCorruptEntryRecomputed verifies the corruption invariant
// end to end: a flipped byte in the disk entry is detected on read, the
// entry is quarantined, and the request is recomputed — the client sees a
// correct 200 body, never the corrupt bytes.
func TestResultCacheCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	_, url1 := cachedServer(t, dir)
	resp, want := get(t, url1+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run = %d", resp.StatusCode)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.rc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("disk entries = %v (err %v), want exactly one", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh instance (empty memory tier) must detect the corruption.
	s2, url2 := cachedServer(t, dir)
	resp, got := get(t, url2+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("corrupt-entry request = %d X-Cache %q, want 200 miss (recompute)", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got != want {
		t.Fatalf("recomputed body differs from original:\ngot:\n%s\nwant:\n%s", got, want)
	}
	cs := s2.ResultCache().Stats()
	if cs.Corrupt != 1 || cs.Quarantined != 1 {
		t.Fatalf("corrupt/quarantined = %d/%d, want 1/1 (stats %+v)", cs.Corrupt, cs.Quarantined, cs)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*"+resultcache.QuarantineSuffix))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine files = %v (err %v), want exactly one", quarantined, err)
	}
	// The recompute repopulated the cache: the next request is a hit.
	resp, again := get(t, url2+"/api/v1/figures/table1")
	if resp.Header.Get("X-Cache") != "hit" || again != want {
		t.Fatalf("post-recompute request X-Cache %q, body identical %v", resp.Header.Get("X-Cache"), again == want)
	}
}
