package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	c := newFakeClock()
	b.SetClock(c.now)
	return b, c
}

func mustAllow(t *testing.T, b *Breaker) func(Outcome) {
	t.Helper()
	report, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow() = %v, want admit (state %s)", err, b.State())
	}
	return report
}

func mustDeny(t *testing.T, b *Breaker) *BreakerOpenError {
	t.Helper()
	_, err := b.Allow()
	if err == nil {
		t.Fatalf("Allow() admitted, want denial (state %s)", b.State())
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() error %v does not wrap ErrBreakerOpen", err)
	}
	var open *BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("Allow() error %T, want *BreakerOpenError", err)
	}
	return open
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(0, time.Second)
	for i := 0; i < 10; i++ {
		report := mustAllow(t, b)
		report(Failure)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("disabled breaker state = %s, want closed", got)
	}
	var nilB *Breaker
	if report, err := nilB.Allow(); err != nil {
		t.Fatalf("nil breaker Allow() = %v", err)
	} else {
		report(Failure) // must not panic
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := testBreaker(3, 10*time.Second)
	for i := 0; i < 2; i++ {
		mustAllow(t, b)(Failure)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2/3 failures state = %s, want closed", got)
	}
	mustAllow(t, b)(Failure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3/3 failures state = %s, want open", got)
	}
	open := mustDeny(t, b)
	if open.State != BreakerOpen {
		t.Fatalf("denial state = %s, want open", open.State)
	}
	if open.RetryAfter <= 0 || open.RetryAfter > 10*time.Second {
		t.Fatalf("denial RetryAfter = %s, want within (0, cooldown]", open.RetryAfter)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	mustAllow(t, b)(Failure)
	mustAllow(t, b)(Failure)
	mustAllow(t, b)(Success)
	mustAllow(t, b)(Failure)
	mustAllow(t, b)(Failure)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed (success resets consecutive failures)", got)
	}
	mustAllow(t, b)(Failure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %s, want open", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clock := testBreaker(1, 10*time.Second)
	mustAllow(t, b)(Failure) // opens
	mustDeny(t, b)
	clock.advance(11 * time.Second)

	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe Allow() after cooldown = %v, want admit", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", got)
	}
	// Only one probe at a time.
	open := mustDeny(t, b)
	if open.State != BreakerHalfOpen {
		t.Fatalf("second probe denial state = %s, want half-open", open.State)
	}
	probe(Success)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", got)
	}
	mustAllow(t, b)(Success)
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clock := testBreaker(2, 5*time.Second)
	mustAllow(t, b)(Failure)
	mustAllow(t, b)(Failure)
	clock.advance(6 * time.Second)
	probe := mustAllow(t, b)
	probe(Failure)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %s, want open", got)
	}
	mustDeny(t, b)
	// And the next cooldown yields a fresh probe.
	clock.advance(6 * time.Second)
	mustAllow(t, b)(Success)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after second probe success = %s, want closed", got)
	}
}

func TestBreakerCanceledLeavesStateAndFreesProbe(t *testing.T) {
	b, clock := testBreaker(1, time.Second)
	mustAllow(t, b)(Canceled)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after canceled = %s, want closed", got)
	}
	mustAllow(t, b)(Failure) // opens
	clock.advance(2 * time.Second)
	probe := mustAllow(t, b) // half-open probe
	probe(Canceled)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after canceled probe = %s, want half-open", got)
	}
	// The probe slot must be free again for the next request.
	next := mustAllow(t, b)
	next(Success)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed", got)
	}
}

func TestBreakerReportIdempotent(t *testing.T) {
	b, _ := testBreaker(2, time.Second)
	report := mustAllow(t, b)
	report(Failure)
	report(Failure) // second call must be a no-op
	report(Failure)
	if got := b.Snapshot().ConsecutiveFailures; got != 1 {
		t.Fatalf("consecutive failures = %d, want 1 (report is one-shot)", got)
	}
}

func TestBreakerSnapshotTransitions(t *testing.T) {
	b, clock := testBreaker(1, time.Second)
	mustAllow(t, b)(Failure)
	clock.advance(2 * time.Second)
	mustAllow(t, b)(Success)
	snap := b.Snapshot()
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(snap.Transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", snap.Transitions, want)
	}
	for i := range want {
		if snap.Transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", snap.Transitions, want)
		}
	}
	if snap.Opens != 1 || snap.HalfOpenProbes != 1 || snap.Successes != 1 || snap.Failures != 1 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
	if snap.State != "closed" {
		t.Fatalf("snapshot state = %q, want closed", snap.State)
	}
}
