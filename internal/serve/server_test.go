package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prefetchlab/internal/experiments"
	"prefetchlab/internal/faultinject"
	"prefetchlab/internal/obs"
)

// testBase returns experiment options small enough for unit tests.
func testBase() experiments.Options {
	return experiments.Options{
		Scale:         0.02,
		SamplerPeriod: 512,
		Benches:       []string{"libquantum"},
		Mixes:         2,
		Seed:          42,
		Workers:       2,
	}
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body of %s: %v", url, err)
	}
	return resp, string(body)
}

func TestHealthAndReadyRoutes(t *testing.T) {
	s, ts := testServer(t, Config{Base: testBase()})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, `"state": "closed"`) {
		t.Fatalf("healthz body missing status/breaker state:\n%s", body)
	}
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	s.SetDraining(true)
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, `"draining": true`) {
		t.Fatalf("draining readyz body:\n%s", body)
	}
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("draining healthz = %d, want 200 (liveness)", resp.StatusCode)
	}
	// Heavy endpoints shed with 503 while draining.
	resp, _ = get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining figure = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining figure response missing Retry-After")
	}
}

func TestFigureListAndValidation(t *testing.T) {
	_, ts := testServer(t, Config{Base: testBase()})
	resp, body := get(t, ts.URL+"/api/v1/figures")
	if resp.StatusCode != 200 {
		t.Fatalf("figures list = %d, want 200", resp.StatusCode)
	}
	for _, name := range experiments.Names() {
		if !strings.Contains(body, `"`+name+`"`) {
			t.Fatalf("figures list missing %q:\n%s", name, body)
		}
	}
	cases := []struct {
		path string
		want int
	}{
		{"/api/v1/figures/nosuch", 404},
		{"/api/v1/figures/table1?scale=bogus", 400},
		{"/api/v1/figures/table1?benches=nosuchbench", 400},
		{"/api/v1/figures/table1?timeout=banana", 400},
		{"/api/v1/mrc", 400},
		{"/api/v1/mrc?bench=nosuch", 400},
		{"/api/v1/mix", 400},
		{"/api/v1/mix?apps=libquantum&machine=vax", 400},
		{"/api/v1/mix?apps=libquantum&policies=warp", 400},
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+c.path)
		if resp.StatusCode != c.want {
			t.Errorf("GET %s = %d, want %d (body %s)", c.path, resp.StatusCode, c.want, body)
		}
		if !strings.Contains(body, `"kind"`) {
			t.Errorf("GET %s: error body not typed JSON:\n%s", c.path, body)
		}
	}
	// Parse/validation failures must never count as engine failures.
	s, _ := testServer(t, Config{Base: testBase()})
	_ = s
}

func TestFigureMatchesCLIByteForByte(t *testing.T) {
	base := testBase()
	_, ts := testServer(t, Config{Base: base})

	var want bytes.Buffer
	cli := base
	cli.Out = &want
	if err := experiments.Run(context.Background(), experiments.NewSession(cli), "table1"); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	resp, body := get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != 200 {
		t.Fatalf("figure = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	if body != want.String() {
		t.Fatalf("served figure differs from CLI output.\nserved:\n%s\nCLI:\n%s", body, want.String())
	}
	// A second request (cached profiles) must render identically too.
	_, body2 := get(t, ts.URL+"/api/v1/figures/table1")
	if body2 != body {
		t.Fatal("second served rendering differs from first")
	}
}

func TestMRCEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Base: testBase()})
	resp, body := get(t, ts.URL+"/api/v1/mrc?bench=libquantum&sizes=32768,1048576")
	if resp.StatusCode != 200 {
		t.Fatalf("mrc = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var got mrcBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("mrc body not JSON: %v\n%s", err, body)
	}
	if got.Bench != "libquantum" || len(got.Points) != 2 || got.Samples <= 0 {
		t.Fatalf("mrc body = %+v", got)
	}
	if got.Points[0].SizeBytes != 32768 || got.Points[1].SizeBytes != 1048576 {
		t.Fatalf("mrc sizes = %+v", got.Points)
	}
	for _, p := range got.Points {
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Fatalf("miss ratio out of range: %+v", p)
		}
	}
	// Larger caches never miss more.
	if got.Points[1].MissRatio > got.Points[0].MissRatio+1e-12 {
		t.Fatalf("MRC not monotone: %+v", got.Points)
	}
}

func TestMixEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Base: testBase()})
	resp, body := get(t, ts.URL+"/api/v1/mix?apps=libquantum,milc&policies=hw,swnt&machine=amd")
	if resp.StatusCode != 200 {
		t.Fatalf("mix = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var got mixBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("mix body not JSON: %v\n%s", err, body)
	}
	if len(got.Policies) != 2 {
		t.Fatalf("mix policies = %+v", got.Policies)
	}
	for _, p := range got.Policies {
		if p.WS <= 0 {
			t.Fatalf("weighted speedup not positive: %+v", p)
		}
	}
}

func TestDeterministicShedWhenSaturated(t *testing.T) {
	s, ts := testServer(t, Config{Base: testBase(), MaxInflight: 1, QueueDepth: -1})
	// Occupy the single execution slot; every heavy request must now shed
	// with 429 — deterministically, not timing-dependently.
	release, err := s.heavy.Acquire(context.Background(), s.tenants.Anonymous())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	for i := 0; i < 3; i++ {
		resp, body := get(t, ts.URL+"/api/v1/figures/table1")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated figure = %d, want 429 (body %s)", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 missing Retry-After")
		}
		if !strings.Contains(body, `"kind":"shed"`) {
			t.Fatalf("429 body not typed shed:\n%s", body)
		}
	}
	release()
	resp, _ := get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != 200 {
		t.Fatalf("figure after release = %d, want 200", resp.StatusCode)
	}
	snap := s.MetricsSnapshot()
	if snap.Shed429 != 3 {
		t.Fatalf("shed_429 = %d, want 3", snap.Shed429)
	}
	if snap.OK != 1 {
		t.Fatalf("ok = %d, want 1", snap.OK)
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	s, ts := testServer(t, Config{Base: testBase()})
	resp, body := get(t, ts.URL+"/api/v1/figures/table1?timeout=1ns")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out figure = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"kind":"timeout"`) {
		t.Fatalf("504 body not typed timeout:\n%s", body)
	}
	if got := s.MetricsSnapshot().Timeout504; got != 1 {
		t.Fatalf("timeout_504 = %d, want 1", got)
	}
}

func TestBreakerOpensOnFailureBurstAndProbes(t *testing.T) {
	fault, err := faultinject.Parse("panic=1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	base := testBase()
	base.Fault = faultinject.New(fault)
	s, ts := testServer(t, Config{
		Base:             base,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	// Every task panics and the failure budget is 0, so each figure run is
	// an engine failure (500) — two open the breaker.
	for i := 0; i < 2; i++ {
		resp, body := get(t, ts.URL+"/api/v1/figures/table1")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted figure = %d, want 500 (body %s)", resp.StatusCode, body)
		}
		if !strings.Contains(body, `"kind":"engine"`) {
			t.Fatalf("engine error body not typed:\n%s", body)
		}
	}
	if got := s.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker state = %s, want open", got)
	}
	resp, body := get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker figure = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"kind":"breaker_open"`) || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("open-breaker response not typed:\nheaders %v\n%s", resp.Header, body)
	}
	// An open breaker also fails readiness.
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker readyz = %d, want 503", resp.StatusCode)
	}
	// Flip the clock past the cooldown: the next request is the half-open
	// probe; it fails (faults persist) and the breaker re-opens.
	clock := newFakeClock()
	clock.t = time.Now().Add(2 * time.Hour)
	s.breaker.SetClock(clock.now)
	resp, _ = get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("probe figure = %d, want 500", resp.StatusCode)
	}
	if got := s.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %s, want open", got)
	}
	snap := s.MetricsSnapshot()
	if snap.Breaker.Opens != 2 || snap.Breaker.HalfOpenProbes != 1 {
		t.Fatalf("breaker counters = %+v", snap.Breaker)
	}
	if len(snap.Breaker.Transitions) == 0 {
		t.Fatal("breaker transitions not recorded")
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s, ts := testServer(t, Config{Base: testBase()})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	resp, body := get(t, ts.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking route = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body, `"kind":"panic"`) {
		t.Fatalf("panic body not typed:\n%s", body)
	}
	if got := s.MetricsSnapshot().Panics; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	// The server keeps serving.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after panic = %d, want 200", resp.StatusCode)
	}
}

func TestStatsEndpointEmbedsServerSection(t *testing.T) {
	o := &obs.Obs{Stats: obs.NewStats()}
	base := testBase()
	_, ts := testServer(t, Config{Base: base, Obs: o})
	resp, _ := get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != 200 {
		t.Fatalf("figure = %d, want 200", resp.StatusCode)
	}
	resp, body := get(t, ts.URL+"/api/v1/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, `"server"`) || !strings.Contains(body, `"breaker"`) {
		t.Fatalf("stats output missing server/breaker section:\n%s", body[:min(len(body), 800)])
	}
	// Without a registry, stats 404s but metrics still serves.
	_, ts2 := testServer(t, Config{Base: base})
	resp, _ = get(t, ts2.URL+"/api/v1/stats")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats without registry = %d, want 404", resp.StatusCode)
	}
	resp, body = get(t, ts2.URL+"/api/v1/metrics")
	if resp.StatusCode != 200 || !strings.Contains(body, `"shed_429"`) {
		t.Fatalf("metrics = %d body:\n%s", resp.StatusCode, body)
	}
}

func TestOptionsOverridesAndCheckpointGating(t *testing.T) {
	base := testBase()
	s := New(Config{Base: base})
	q := map[string][]string{}
	o, isDefault, err := s.options(q)
	if err != nil || !isDefault {
		t.Fatalf("default options: isDefault=%v err=%v", isDefault, err)
	}
	if o.Scale != base.Scale || o.SamplerPeriod != base.SamplerPeriod {
		t.Fatalf("options changed base: %+v", o)
	}
	o, isDefault, err = s.options(map[string][]string{"scale": {"0.5"}})
	if err != nil || isDefault {
		t.Fatalf("scale override: isDefault=%v err=%v", isDefault, err)
	}
	if o.Scale != 0.5 {
		t.Fatalf("scale = %g, want 0.5", o.Scale)
	}
	if o.Save != nil {
		t.Fatal("non-default options must not carry checkpoint saver")
	}
	// Workers changes scheduling only and keeps the default fingerprint.
	_, isDefault, err = s.options(map[string][]string{"workers": {"7"}})
	if err != nil || !isDefault {
		t.Fatalf("workers override: isDefault=%v err=%v", isDefault, err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
