package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prefetchlab/internal/ckpt"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/faultinject"
	"prefetchlab/internal/tenant"
)

// mustFault builds a fault injector from a spec string.
func mustFault(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	s, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return faultinject.New(s)
}

// TestChaosConcurrentLoadUnderFaults hammers a small-capacity server with
// concurrent requests while every engine task is subject to injected
// panics, errors and latency. The server must never crash, every response
// must be a complete 200 body or a typed JSON error from the known status
// set, and liveness must hold throughout.
func TestChaosConcurrentLoadUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load test skipped in -short")
	}
	base := testBase()
	base.Fault = mustFault(t, "panic=0.2,error=0.2,latency=0.2,seed=11")
	base.Retries = 1
	base.FailureBudget = -1
	s, ts := testServer(t, Config{
		Base:             base,
		MaxInflight:      2,
		QueueDepth:       2,
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
		RequestTimeout:   20 * time.Second,
	})

	paths := []string{
		"/api/v1/figures/table1",
		"/api/v1/figures/fig3",
		"/api/v1/mrc?bench=libquantum",
		"/api/v1/mix?apps=libquantum&policies=hw",
		"/api/v1/figures/table1?timeout=5ms",
		"/api/v1/figures/nosuch",
		"/api/v1/figures/table1?scale=bogus",
	}
	allowed := map[int]bool{200: true, 400: true, 404: true, 429: true, 500: true, 503: true, 504: true}

	var wg sync.WaitGroup
	errs := make(chan string, 1024)
	const clients = 8
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < len(paths); i++ {
				path := paths[(c+i)%len(paths)]
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- fmt.Sprintf("GET %s: transport error %v (server crashed?)", path, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					errs <- fmt.Sprintf("GET %s: body read error %v", path, rerr)
					return
				}
				if !allowed[resp.StatusCode] {
					errs <- fmt.Sprintf("GET %s: unexpected status %d", path, resp.StatusCode)
					return
				}
				if resp.StatusCode != 200 {
					var eb errorBody
					if err := json.Unmarshal(body, &eb); err != nil || eb.Kind == "" {
						errs <- fmt.Sprintf("GET %s: %d body is not a typed JSON error: %s", path, resp.StatusCode, body)
						return
					}
				}
			}
		}(c)
	}
	// Liveness must hold while the chaos load runs.
	livenessDone := make(chan struct{})
	go func() {
		defer close(livenessDone)
		for i := 0; i < 20; i++ {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				errs <- fmt.Sprintf("healthz during chaos: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Sprintf("healthz during chaos = %d", resp.StatusCode)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-livenessDone
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	snap := s.MetricsSnapshot()
	if snap.Requests == 0 || snap.Inflight != 0 || snap.Queued != 0 {
		t.Fatalf("post-chaos metrics: %+v", snap)
	}
	if got := snap.OK + snap.BadRequest400 + snap.NotFound404 + snap.Shed429 +
		snap.Shed503 + snap.Timeout504 + snap.Errors500 + snap.ClientGone; got == 0 {
		t.Fatalf("no classified responses recorded: %+v", snap)
	}
}

// TestChaosResumeByteIdentical interrupts a served sweep mid-flight (tight
// deadline) with a checkpoint attached, then restarts the server on the
// same checkpoint at a different worker count: the resumed figure must be
// byte-identical to an uninterrupted run.
func TestChaosResumeByteIdentical(t *testing.T) {
	base := testBase()
	norm := base.Normalized()

	// Uninterrupted reference rendering, no checkpoint.
	var want bytes.Buffer
	ref := base
	ref.Out = &want
	if err := experiments.Run(context.Background(), experiments.NewSession(ref), "table1"); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	path := filepath.Join(t.TempDir(), "serve.ckpt")
	fp := Fingerprint(norm)

	// Server A: interrupt a request with a tight deadline, then a full
	// request that populates the checkpoint.
	cpA, err := ckpt.Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	srvA := New(Config{Base: base, Checkpoint: cpA})
	tsA := httptest.NewServer(srvA.Handler())
	resp, err := http.Get(tsA.URL + "/api/v1/figures/table1?timeout=1ms")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("interrupted request = %d, want 504 (or 200 if it won the race)", resp.StatusCode)
	}
	resp, err = http.Get(tsA.URL + "/api/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	bodyA, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server A full request = %d: %s", resp.StatusCode, bodyA)
	}
	tsA.Close()
	if err := cpA.Close(); err != nil {
		t.Fatal(err)
	}

	// Server B: same configuration, different worker count, resumed
	// checkpoint — the rendering must replay to identical bytes.
	cpB, err := ckpt.Open(path, fp)
	if err != nil {
		t.Fatalf("reopen checkpoint: %v", err)
	}
	defer cpB.Close()
	baseB := base
	baseB.Workers = 7
	srvB := New(Config{Base: baseB, Checkpoint: cpB})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	resp, err = http.Get(tsB.URL + "/api/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	bodyB, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server B resumed request = %d: %s", resp.StatusCode, bodyB)
	}
	if string(bodyA) != want.String() {
		t.Fatalf("server A rendering differs from CLI reference.\nA:\n%s\nref:\n%s", bodyA, want.String())
	}
	if string(bodyB) != want.String() {
		t.Fatalf("resumed rendering differs from reference.\nB:\n%s\nref:\n%s", bodyB, want.String())
	}

	// A request that overrides result-affecting options on server B must
	// succeed without touching the shared checkpoint (gating), and still
	// leave default-config requests byte-identical afterwards.
	resp, err = http.Get(tsB.URL + "/api/v1/figures/table1?scale=0.03")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override request = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(tsB.URL + "/api/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	bodyB2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(bodyB2) != want.String() {
		t.Fatal("default-config rendering changed after an override request")
	}
}

// TestChaosDrainCompletesInflight verifies graceful degradation: flipping
// drain mode mid-request sheds new arrivals with 503 but lets the
// in-flight request complete with a full 200 body.
func TestChaosDrainCompletesInflight(t *testing.T) {
	base := testBase()
	base.Fault = mustFault(t, "latency=1,seed=5")
	s, ts := testServer(t, Config{Base: base, MaxInflight: 2})

	type result struct {
		status int
		body   string
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/api/v1/figures/table1")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode, body: string(body)}
	}()
	// Wait until the request holds a slot, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.heavy.Inflight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.heavy.Inflight() == 0 {
		t.Fatal("request never became inflight")
	}
	s.SetDraining(true)
	resp, body := get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("new request during drain = %d body %s, want 503 draining", resp.StatusCode, body)
	}
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK || !strings.Contains(r.body, "Benchmark") {
		t.Fatalf("in-flight request = %d body %q, want complete 200 rendering", r.status, r.body)
	}
}

// TestChaosTenantFloodIsolation verifies fair-share isolation over HTTP:
// with the single execution slot held, a flooding tenant fills its own
// queue and sheds 429 beyond it, while a polite tenant still queues and —
// once the slot frees — completes, having never been shed.
func TestChaosTenantFloodIsolation(t *testing.T) {
	reg, err := tenant.NewRegistry([]tenant.Spec{
		{Name: "flood", Key: "sk-flood"},
		{Name: "polite", Key: "sk-polite"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Config{Base: testBase(), Tenants: reg, MaxInflight: 1, QueueDepth: 1})

	// Hold the only slot so every request below queues or sheds.
	release, err := s.heavy.Acquire(context.Background(), s.TenantRegistry().Anonymous())
	if err != nil {
		t.Fatal(err)
	}

	do := func(key string, out chan<- int) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/figures/table1", nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			out <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		out <- resp.StatusCode
	}

	// Flood: three concurrent requests against a per-tenant queue of one —
	// exactly one queues, two shed 429.
	floodResults := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go do("sk-flood", floodResults)
	}
	deadline := time.Now().Add(5 * time.Second)
	sheds := func() int64 {
		for _, snap := range s.heavy.Snapshots() {
			if snap.Name == "flood" {
				return snap.ShedQueue
			}
		}
		return 0
	}
	for sheds() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sheds(); got != 2 {
		t.Fatalf("flood queue-full sheds = %d, want 2", got)
	}

	// The polite tenant queues in its own lane, untouched by the flood.
	politeResult := make(chan int, 1)
	go do("sk-polite", politeResult)
	for s.heavy.Queued() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.heavy.Queued(); got != 2 {
		t.Fatalf("queued = %d, want 2 (one flood + one polite)", got)
	}

	release()
	statuses := map[int]int{}
	statuses[<-politeResult]++
	for i := 0; i < 3; i++ {
		statuses[<-floodResults]++
	}
	if statuses[http.StatusOK] != 2 || statuses[http.StatusTooManyRequests] != 2 {
		t.Fatalf("statuses = %v, want two 200s (queued flood + polite) and two 429s", statuses)
	}
	for _, snap := range s.heavy.Snapshots() {
		if snap.Name == "polite" && (snap.ShedQueue != 0 || snap.ShedQuota != 0 || snap.ShedRate != 0) {
			t.Fatalf("polite tenant was shed: %+v", snap)
		}
	}
}
