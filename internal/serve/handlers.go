package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"prefetchlab/internal/analytic"
	"prefetchlab/internal/core"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/mix"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/tenant"
	"prefetchlab/internal/workloads"
)

// routes registers every endpoint on the server mux. Engine-backed
// endpoints go through serveHeavy (admission control, deadline, breaker);
// introspection endpoints answer directly so they stay responsive under
// overload and during drain.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleProm)
	s.mux.HandleFunc("GET /api/v1/figures", s.handleFigureList)
	s.mux.HandleFunc("GET /api/v1/figures/{name}", s.serveHeavy(EndpointFigure, s.prepareFigure))
	s.mux.HandleFunc("GET /api/v1/mrc", s.serveHeavy(EndpointMRC, s.prepareMRC))
	s.mux.HandleFunc("GET /api/v1/mix", s.serveHeavy(EndpointMix, s.prepareMix))
	s.mux.HandleFunc("GET /api/v1/shards/run", s.serveHeavy(EndpointShards, s.prepareShards))
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
}

// benchSpec validates one benchmark name against the Table I set.
func benchSpec(name string) (workloads.Spec, error) {
	return workloads.ByName(strings.TrimSpace(name))
}

// healthBody is the liveness/readiness envelope; the breaker state is
// typed into it so operators see open circuits without scraping metrics,
// and the tenant + result-cache state rides along for the same reason.
type healthBody struct {
	Status        string             `json:"status"`
	Draining      bool               `json:"draining"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Inflight      int                `json:"inflight"`
	Queued        int                `json:"queued"`
	Breaker       BreakerSnapshot    `json:"breaker"`
	TenantsKeyed  int                `json:"tenants_keyed"`
	Tenants       []tenant.Snapshot  `json:"tenants"`
	ResultCache   *resultcache.Stats `json:"result_cache,omitempty"`
	Fingerprint   string             `json:"fingerprint"`
}

func (s *Server) health() healthBody {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	h := healthBody{
		Status:        status,
		Draining:      s.Draining(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Inflight:      s.heavy.Inflight(),
		Queued:        s.heavy.Queued(),
		Breaker:       s.breaker.Snapshot(),
		TenantsKeyed:  s.tenants.Keyed(),
		Tenants:       s.heavy.Snapshots(),
		Fingerprint:   s.fingerprint,
	}
	if s.cache.Enabled() {
		cs := s.cache.Stats()
		h.ResultCache = &cs
	}
	return h
}

// handleHealthz is the liveness probe: 200 as long as the process serves,
// with the breaker/drain state in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.note(r, EndpointHealthz)
	s.noteWrite(writeJSON(w, s.health()))
}

// handleReadyz is the readiness probe: 503 while draining (or while the
// breaker is open, when no traffic should be routed here), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.note(r, EndpointReadyz)
	h := s.health()
	if h.Draining || h.Breaker.State == BreakerOpen.String() {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		s.noteWrite(writeJSONBody(w, h))
		return
	}
	s.noteWrite(writeJSON(w, h))
}

// writeJSONBody writes an already-headered JSON body, returning the write
// error for the caller's write_errors tally.
func writeJSONBody(w io.Writer, v any) error {
	return writeIndentedJSON(w, v)
}

// figureListBody advertises the runnable experiments and the server's
// default configuration.
type figureListBody struct {
	Experiments []string `json:"experiments"`
	Tiers       []string `json:"tiers"`
	Tier        string   `json:"tier"`
	Scale       float64  `json:"scale"`
	Mixes       int      `json:"mixes"`
	Seed        int64    `json:"seed"`
	Period      int64    `json:"period"`
	Benches     []string `json:"benches,omitempty"`
	Checkpoint  bool     `json:"checkpoint"`
}

func (s *Server) handleFigureList(w http.ResponseWriter, r *http.Request) {
	s.note(r, EndpointFigures)
	s.noteWrite(writeJSON(w, figureListBody{
		Experiments: experiments.Names(),
		Tiers:       experiments.Tiers(),
		Tier:        s.base.Tier,
		Scale:       s.base.Scale,
		Mixes:       s.base.Mixes,
		Seed:        s.base.Seed,
		Period:      s.base.SamplerPeriod,
		Benches:     s.base.Benches,
		Checkpoint:  s.cfg.Checkpoint != nil,
	}))
}

// prepareFigure validates GET /api/v1/figures/{name} and returns a run
// that renders the figure through the same driver the CLI uses — the
// response body is byte-identical to `prefetchlab <name>` under the same
// options.
func (s *Server) prepareFigure(r *http.Request) (prepared, error) {
	name := r.PathValue("name")
	if !experiments.Known(name) {
		return prepared{}, notFoundf("unknown experiment %q (see /api/v1/figures)", name)
	}
	o, _, err := s.options(r.URL.Query())
	if err != nil {
		return prepared{}, err
	}
	o = perRequest(r, o)
	return prepared{
		contentType: "text/plain; charset=utf-8",
		cacheKey:    "figure|" + name + "|" + Fingerprint(o),
		run: func(ctx context.Context, out io.Writer) error {
			o := o
			o.Out = out
			return experiments.Run(ctx, s.session(o), name)
		},
	}, nil
}

// mrcBody is the JSON shape of GET /api/v1/mrc: a StatStack miss-ratio
// curve of one benchmark at the requested cache sizes.
type mrcBody struct {
	Bench   string     `json:"bench"`
	Input   int        `json:"input"`
	Scale   float64    `json:"scale"`
	Period  int64      `json:"period"`
	Seed    int64      `json:"seed"`
	Samples int64      `json:"samples"`
	Points  []mrcPoint `json:"points"`
	// Tier marks non-default engine tiers ("static"); absent for the
	// default sampled pipeline, so default responses are byte-identical to
	// pre-tier servers.
	Tier string `json:"tier,omitempty"`
	// Analytic carries the MRC-only solo steady-state prediction per
	// machine when the request selects ?tier=analytic; absent otherwise,
	// so default responses are byte-identical to pre-tier servers.
	Analytic []analyticSoloBody `json:"analytic,omitempty"`
	// Static carries the per-load static classification when the request
	// selects ?tier=static (the curve itself lands in Points); absent
	// otherwise.
	Static []staticLoadBody `json:"static,omitempty"`
}

// staticLoadBody is one demand load's zero-execution classification.
type staticLoadBody struct {
	PC        uint32 `json:"pc"`
	Class     string `json:"class"`
	Stride    int64  `json:"stride,omitempty"`
	Footprint int64  `json:"footprint,omitempty"`
	Execs     uint64 `json:"execs"`
	Decision  string `json:"decision"`
	Distance  int64  `json:"distance,omitempty"`
}

type mrcPoint struct {
	SizeBytes int64   `json:"size_bytes"`
	MissRatio float64 `json:"miss_ratio"`
}

// analyticSoloBody is one machine's analytic solo prediction.
type analyticSoloBody struct {
	Machine       string  `json:"machine"`
	CPI           float64 `json:"cpi"`
	LLCMissRatio  float64 `json:"llc_miss_ratio"`
	OccupancyMB   float64 `json:"occupancy_mb"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	PrefetchGBps  float64 `json:"prefetch_gbps"`
}

// prepareMRC validates GET /api/v1/mrc (?bench= required, optional
// ?sizes=csv-bytes and ?input=) and returns a run that profiles the
// benchmark and evaluates its StatStack model.
func (s *Server) prepareMRC(r *http.Request) (prepared, error) {
	q := r.URL.Query()
	bench := q.Get("bench")
	if bench == "" {
		return prepared{}, badRequestf("missing required parameter bench (one of %s)",
			strings.Join(workloads.Names(), ", "))
	}
	spec, err := benchSpec(bench)
	if err != nil {
		return prepared{}, badRequestf("bad bench: %v", err)
	}
	sizes := statstack.StandardSizes()
	if v := q.Get("sizes"); v != "" {
		sizes = sizes[:0]
		for _, f := range strings.Split(v, ",") {
			n, perr := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if perr != nil || n < 64 || n > 1<<34 {
				return prepared{}, badRequestf("bad sizes entry %q (want bytes in [64, 2^34])", f)
			}
			sizes = append(sizes, n)
		}
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	}
	inputID := 0
	if v := q.Get("input"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 || n > 16 {
			return prepared{}, badRequestf("bad input %q (want 0..16)", v)
		}
		inputID = n
	}
	o, _, err := s.options(q)
	if err != nil {
		return prepared{}, err
	}
	o = perRequest(r, o)
	o.Save = nil // profiles are cached, not checkpointed
	sizeParts := make([]string, len(sizes))
	for i, n := range sizes {
		sizeParts[i] = strconv.FormatInt(n, 10)
	}
	cacheKey := fmt.Sprintf("mrc|%s|input=%d|sizes=%s|%s",
		spec.Name, inputID, strings.Join(sizeParts, ","), Fingerprint(o))
	if o.Tier == "static" {
		// The static tier never executes or samples the program: the curve
		// and the per-load classification come from the compiled text alone,
		// so the run costs microseconds and the body is byte-identical at
		// any worker count (Samples stays 0 — nothing was sampled).
		return prepared{
			contentType: "application/json",
			cacheKey:    cacheKey,
			run: func(ctx context.Context, out io.Writer) error {
				sp, err := experiments.StaticOnly(spec, workloads.Input{ID: inputID, Scale: o.Scale})
				if err != nil {
					return err
				}
				body := mrcBody{
					Bench:  spec.Name,
					Input:  inputID,
					Scale:  o.Scale,
					Period: o.SamplerPeriod,
					Seed:   o.Seed,
					Tier:   o.Tier,
				}
				for i, ratio := range sp.MRC(sizes) {
					body.Points = append(body.Points, mrcPoint{SizeBytes: sizes[i], MissRatio: ratio})
				}
				for _, ld := range sp.Loads {
					lb := staticLoadBody{
						PC:        uint32(ld.PC),
						Class:     string(ld.Class),
						Footprint: ld.Footprint,
						Execs:     ld.Execs,
						Decision:  string(ld.Decision),
					}
					if ld.Decision == core.DecisionInsertNormal || ld.Decision == core.DecisionInsertNTA {
						lb.Stride, lb.Distance = ld.Stride, ld.Distance
					}
					body.Static = append(body.Static, lb)
				}
				return writeIndentedJSON(out, body)
			},
		}, nil
	}
	return prepared{
		contentType: "application/json",
		cacheKey:    cacheKey,
		run: func(ctx context.Context, out io.Writer) error {
			sess := s.session(o)
			bp, err := sess.Prof.Get(ctx, spec, workloads.Input{ID: inputID, Scale: o.Scale})
			if err != nil {
				return err
			}
			body := mrcBody{
				Bench:   spec.Name,
				Input:   inputID,
				Scale:   o.Scale,
				Period:  o.SamplerPeriod,
				Seed:    o.Seed,
				Samples: bp.Model.Samples(),
			}
			for i, ratio := range bp.Model.MRC(sizes) {
				body.Points = append(body.Points, mrcPoint{SizeBytes: sizes[i], MissRatio: ratio})
			}
			if o.Tier == "analytic" {
				core := bp.AnalyticCore()
				for _, mach := range []machine.Machine{machine.AMDPhenomII(), machine.IntelSandyBridge()} {
					pred := analytic.Predict(mach, []analytic.Core{core})
					if len(pred.Cores) == 0 {
						continue
					}
					c := pred.Cores[0]
					body.Analytic = append(body.Analytic, analyticSoloBody{
						Machine:       mach.Name,
						CPI:           c.CPI,
						LLCMissRatio:  c.MRLLC,
						OccupancyMB:   float64(c.OccupancyBytes) / (1 << 20),
						BandwidthGBps: c.BandwidthGBps,
						PrefetchGBps:  c.PrefetchGBps,
					})
				}
			}
			return writeIndentedJSON(out, body)
		},
	}, nil
}

// policyNames maps URL-safe policy keys to pipeline policies ('+' would
// decode as a space in a query string, hence swnt_hw).
var policyNames = map[string]pipeline.Policy{
	"baseline": pipeline.Baseline,
	"hw":       pipeline.HWPref,
	"sw":       pipeline.SWPref,
	"swnt":     pipeline.SWPrefNT,
	"stride":   pipeline.StrideCentric,
	"swnt_hw":  pipeline.SWNTPlusHW,
	"swl2":     pipeline.SWPrefL2,
}

// policyKeys returns the accepted ?policies= keys, sorted.
func policyKeys() []string {
	keys := make([]string, 0, len(policyNames))
	for k := range policyNames {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parsePolicies resolves a comma-separated policy list.
func parsePolicies(v string) ([]pipeline.Policy, error) {
	if v == "" {
		v = "hw,swnt"
	}
	var out []pipeline.Policy
	for _, f := range strings.Split(v, ",") {
		key := strings.TrimSpace(f)
		p, ok := policyNames[key]
		if !ok {
			return nil, fmt.Errorf("unknown policy %q (want one of %s)", key, strings.Join(policyKeys(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// parseMachine resolves ?machine= to one of the paper's two platforms.
func parseMachine(v string) (machine.Machine, error) {
	switch v {
	case "", "amd":
		return machine.AMDPhenomII(), nil
	case "intel":
		return machine.IntelSandyBridge(), nil
	default:
		return machine.Machine{}, fmt.Errorf("unknown machine %q (want amd or intel)", v)
	}
}

// mixBody is the JSON shape of GET /api/v1/mix: one co-run mix evaluated
// against its no-prefetching baseline under the requested policies.
type mixBody struct {
	Apps     []string        `json:"apps"`
	Machine  string          `json:"machine"`
	MixID    int             `json:"mix_id"`
	Policies []mixPolicyBody `json:"policies"`
	Skipped  []string        `json:"skipped,omitempty"`
}

type mixPolicyBody struct {
	Policy       string  `json:"policy"`
	WS           float64 `json:"weighted_speedup"`
	FS           float64 `json:"fair_speedup"`
	QoS          float64 `json:"qos"`
	TrafficDelta float64 `json:"traffic_delta"`
}

// mixAnalyticBody is the JSON shape of GET /api/v1/mix?tier=analytic: the
// shared-LLC fixed point predicted from StatStack models alone, without
// running the timing simulator.
type mixAnalyticBody struct {
	Apps      []string          `json:"apps"`
	Machine   string            `json:"machine"`
	MixID     int               `json:"mix_id"`
	Tier      string            `json:"tier"`
	Cores     []mixAnalyticCore `json:"cores"`
	TotalGBps float64           `json:"total_bandwidth_gbps"`
}

type mixAnalyticCore struct {
	Bench         string  `json:"bench"`
	Slowdown      float64 `json:"slowdown"`
	CPI           float64 `json:"cpi"`
	LLCMissRatio  float64 `json:"llc_miss_ratio"`
	OccupancyMB   float64 `json:"occupancy_mb"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
}

// prepareMix validates GET /api/v1/mix (?apps= required csv of 1..8
// benchmarks, optional ?machine=, ?policies=, ?mixid=) and returns a run
// that simulates the mix baseline + policies on the scheduler pool.
func (s *Server) prepareMix(r *http.Request) (prepared, error) {
	q := r.URL.Query()
	apps := q.Get("apps")
	if apps == "" {
		return prepared{}, badRequestf("missing required parameter apps (csv of 1..8 of %s)",
			strings.Join(workloads.Names(), ", "))
	}
	names := strings.Split(apps, ",")
	if len(names) > 8 {
		return prepared{}, badRequestf("too many apps (%d, max 8)", len(names))
	}
	for i, n := range names {
		spec, err := benchSpec(n)
		if err != nil {
			return prepared{}, badRequestf("bad apps: %v", err)
		}
		names[i] = spec.Name
	}
	mach, err := parseMachine(q.Get("machine"))
	if err != nil {
		return prepared{}, badRequestf("%v", err)
	}
	policies, err := parsePolicies(q.Get("policies"))
	if err != nil {
		return prepared{}, badRequestf("%v", err)
	}
	mixID := 0
	if v := q.Get("mixid"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 || n > 100000 {
			return prepared{}, badRequestf("bad mixid %q (want 0..100000)", v)
		}
		mixID = n
	}
	o, _, err := s.options(q)
	if err != nil {
		return prepared{}, err
	}
	o = perRequest(r, o)
	// Ad-hoc mixes are not covered by the configuration fingerprint, so
	// they never touch the checkpoint.
	o.Save = nil
	polParts := make([]string, len(policies))
	for i, p := range policies {
		polParts[i] = p.String()
	}
	cacheKey := fmt.Sprintf("mix|%s|machine=%s|mixid=%d|policies=%s|%s",
		strings.Join(names, ","), mach.Name, mixID, strings.Join(polParts, ","), Fingerprint(o))
	if o.Tier == "static" {
		// The static tier models solo miss-ratio curves only: contention
		// needs either the analytic queue model or the timing simulator.
		return prepared{}, badRequestf("tier=static models solo MRCs only (see /api/v1/mrc?tier=static); use tier=analytic or tier=sim for mixes")
	}
	if o.Tier == "analytic" {
		// The analytic tier models the contended baseline only; prefetch
		// policies need the timing simulator.
		if v := q.Get("policies"); v != "" && v != "baseline" {
			return prepared{}, badRequestf("tier=analytic models the baseline mix only (got policies=%q); drop policies or use tier=sim", v)
		}
		return prepared{
			contentType: "application/json",
			cacheKey:    cacheKey,
			run: func(ctx context.Context, out io.Writer) error {
				sess := s.session(o)
				cores := make([]analytic.Core, len(names))
				for i, name := range names {
					core, err := sess.AnalyticCore(ctx, name)
					if err != nil {
						return err
					}
					cores[i] = core
				}
				pred := analytic.Predict(mach, cores)
				body := mixAnalyticBody{
					Apps: names, Machine: mach.Name, MixID: mixID,
					Tier: o.Tier, TotalGBps: pred.TotalBandwidthGBps,
				}
				for _, c := range pred.Cores {
					body.Cores = append(body.Cores, mixAnalyticCore{
						Bench:         c.Name,
						Slowdown:      c.Slowdown,
						CPI:           c.CPI,
						LLCMissRatio:  c.MRLLC,
						OccupancyMB:   float64(c.OccupancyBytes) / (1 << 20),
						BandwidthGBps: c.BandwidthGBps,
					})
				}
				return writeIndentedJSON(out, body)
			},
		}, nil
	}
	return prepared{
		contentType: "application/json",
		cacheKey:    cacheKey,
		run: func(ctx context.Context, out io.Writer) error {
			sess := s.session(o)
			runner := &mix.Runner{
				Prof:         sess.Prof,
				Mach:         mach,
				ProfileInput: sess.Input(),
				Pool:         poolFor(o),
				Obs:          o.Obs,
				Scope:        "serve/mix/" + mach.Name,
			}
			cmp, err := runner.RunOne(ctx, mixID, names, policies)
			if err != nil {
				return err
			}
			body := mixBody{Apps: names, Machine: mach.Name, MixID: mixID}
			for _, p := range policies {
				if _, ok := cmp.ByPolicy[p]; !ok {
					continue
				}
				body.Policies = append(body.Policies, mixPolicyBody{
					Policy:       p.String(),
					WS:           cmp.WS(p),
					FS:           cmp.FS(p),
					QoS:          cmp.QoS(p),
					TrafficDelta: cmp.TrafficDelta(p),
				})
			}
			for _, sk := range cmp.Skipped {
				body.Skipped = append(body.Skipped, fmt.Sprintf("%s: %s", sk.Policy, sk.Reason))
			}
			return writeIndentedJSON(out, body)
		},
	}, nil
}

// handleStats dumps the observability stats registry (machine snapshots,
// skip records) with the live serving metrics embedded under "server".
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.note(r, EndpointStats)
	if s.cfg.Obs == nil || s.cfg.Obs.Stats == nil {
		s.noteWrite(writeError(w, http.StatusNotFound, "bad_request", "stats registry not enabled", 0))
		return
	}
	s.PublishMetrics()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.noteWrite(s.cfg.Obs.Stats.WriteJSON(w))
}

// handleMetrics serves the live serving-layer counters as JSON. The body
// is read back out of the same Prometheus registry /metrics renders, so
// the two exports can never disagree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.note(r, EndpointMetrics)
	s.noteWrite(writeJSON(w, s.MetricsSnapshot()))
}

// handleProm serves the Prometheus text exposition: every serving family,
// the scheduler/cache/fault mirrors, the stats-registry aggregate and Go
// runtime stats, refreshed by the scrape hooks just before rendering.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	s.note(r, EndpointProm)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.noteWrite(s.reg.WriteText(w))
}
