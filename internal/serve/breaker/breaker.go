// Package breaker implements the circuit breaker that guards the
// experiment engine. It lives in its own package so both the serving
// layer (one breaker around the local engine) and the cluster
// coordinator (one breaker per remote worker) share a single
// implementation; package serve re-exports the historical names as
// aliases.
package breaker

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is the circuit breaker's typed state, exposed verbatim in
// health and metrics output.
type State int

// Breaker states, in the classic closed → open → half-open cycle.
const (
	// Closed passes every request through; consecutive engine
	// failures are counted.
	Closed State = iota
	// Open rejects every request until the cooldown elapses.
	Open
	// HalfOpen admits exactly one probe request; its outcome decides
	// whether the breaker closes again or re-opens.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrOpen marks requests rejected because the circuit breaker is
// open (or half-open with its probe already in flight).
var ErrOpen = errors.New("serve: circuit breaker open")

// OpenError carries the state and the caller's retry hint; it wraps
// ErrOpen so errors.Is works.
type OpenError struct {
	State      State
	RetryAfter time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker %s; retry after %s", e.State, e.RetryAfter)
}

func (e *OpenError) Unwrap() error { return ErrOpen }

// Outcome classifies how a breaker-guarded request ended.
type Outcome int

// Request outcomes reported back to the breaker.
const (
	// Success: the engine completed the request.
	Success Outcome = iota
	// Failure: the engine failed (TaskError burst, deadline expiry) — the
	// signal that trips the breaker.
	Failure
	// Canceled: the client went away; says nothing about engine health and
	// leaves the breaker state untouched (a canceled half-open probe frees
	// the probe slot so the next request can probe).
	Canceled
)

// Breaker is a circuit breaker around a fallible backend: Threshold
// consecutive failures open it, rejections flow fast for Cooldown, then a
// single half-open probe decides whether to close it again. All methods
// are safe for concurrent use. A Threshold <= 0 disables the breaker
// entirely (Allow always admits).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    State
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool

	opens, probes, successes, failures, denied int64
	probeSuccesses, probeFailures              int64
	transitions                                []string
}

// New builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. threshold <= 0 disables it.
func New(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's wall clock; tests use it to step
// through cooldowns deterministically.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// maxTransitionLog bounds the transition history kept for observability.
const maxTransitionLog = 32

// transition records a state change (caller holds b.mu).
func (b *Breaker) transition(to State) {
	if b.state == to {
		return
	}
	entry := fmt.Sprintf("%s->%s", b.state, to)
	if len(b.transitions) < maxTransitionLog {
		b.transitions = append(b.transitions, entry)
	}
	if to == Open {
		b.opens++
		b.openedAt = b.now()
	}
	b.state = to
}

// Allow asks to run one request against the protected backend. On admission
// it returns a report callback that MUST be called exactly once with the
// request's outcome; on rejection it returns a *OpenError with a
// retry hint.
func (b *Breaker) Allow() (report func(Outcome), err error) {
	if b == nil || b.threshold <= 0 {
		return func(Outcome) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		if wait := b.openedAt.Add(b.cooldown).Sub(b.now()); wait > 0 {
			b.denied++
			return nil, &OpenError{State: Open, RetryAfter: wait}
		}
		b.transition(HalfOpen)
	}
	if b.state == HalfOpen {
		if b.probing {
			b.denied++
			return nil, &OpenError{State: HalfOpen, RetryAfter: b.cooldown}
		}
		b.probing = true
		b.probes++
		return b.reportFunc(true), nil
	}
	return b.reportFunc(false), nil
}

// reportFunc builds the one-shot outcome callback for an admitted request.
func (b *Breaker) reportFunc(probe bool) func(Outcome) {
	var once sync.Once
	return func(out Outcome) {
		once.Do(func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if probe {
				b.probing = false
			}
			switch out {
			case Canceled:
				// Client cancellation is not an engine verdict.
			case Success:
				b.successes++
				if probe {
					b.probeSuccesses++
				}
				if probe && b.state == HalfOpen {
					b.transition(Closed)
				}
				if b.state == Closed {
					b.fails = 0
				}
			case Failure:
				b.failures++
				if probe {
					b.probeFailures++
				}
				if probe && b.state == HalfOpen {
					b.fails = b.threshold
					b.transition(Open)
					return
				}
				if b.state == Closed {
					b.fails++
					if b.fails >= b.threshold {
						b.transition(Open)
					}
				}
			}
		})
	}
}

// State returns the current state (re-evaluating an elapsed cooldown is
// left to the next Allow; State reports the stored value).
func (b *Breaker) State() State {
	if b == nil || b.threshold <= 0 {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot is the breaker's observable state for health and metrics
// output.
type Snapshot struct {
	State               string   `json:"state"`
	ConsecutiveFailures int      `json:"consecutive_failures"`
	Opens               int64    `json:"opens"`
	HalfOpenProbes      int64    `json:"half_open_probes"`
	ProbeSuccesses      int64    `json:"half_open_probe_successes"`
	ProbeFailures       int64    `json:"half_open_probe_failures"`
	Successes           int64    `json:"successes"`
	Failures            int64    `json:"failures"`
	Denied              int64    `json:"denied"`
	Transitions         []string `json:"transitions,omitempty"`
}

// Snapshot captures the breaker's counters and transition history.
func (b *Breaker) Snapshot() Snapshot {
	if b == nil || b.threshold <= 0 {
		return Snapshot{State: Closed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return Snapshot{
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		HalfOpenProbes:      b.probes,
		ProbeSuccesses:      b.probeSuccesses,
		ProbeFailures:       b.probeFailures,
		Successes:           b.successes,
		Failures:            b.failures,
		Denied:              b.denied,
		Transitions:         append([]string(nil), b.transitions...),
	}
}
