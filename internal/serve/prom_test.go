package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"prefetchlab/internal/obs"
	"prefetchlab/internal/obs/prom/promtext"
)

// scrapeProm fetches /metrics and parses it with the strict in-repo parser,
// so any exposition-format regression fails here before a real scraper
// sees it.
func scrapeProm(t *testing.T, baseURL string) []promtext.Family {
	t.Helper()
	resp, body := get(t, baseURL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("/metrics response missing X-Request-ID")
	}
	fams, err := promtext.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return fams
}

// driveTraffic issues a fixed request sequence covering the success, 404
// and 400 paths plus the JSON metrics endpoint, so the scrape afterwards
// sees a populated registry.
func driveTraffic(t *testing.T, baseURL string) {
	t.Helper()
	for _, path := range []string{
		"/healthz",
		"/api/v1/figures",
		"/api/v1/figures/table1",
		"/api/v1/figures/nosuch",
		"/api/v1/figures/table1?scale=bogus",
		"/api/v1/metrics",
	} {
		get(t, baseURL+path)
	}
}

func TestMetricsExpositionValidAndComplete(t *testing.T) {
	o := &obs.Obs{Stats: obs.NewStats()}
	_, ts := testServer(t, Config{Base: testBase(), Obs: o})
	driveTraffic(t, ts.URL)
	fams := scrapeProm(t, ts.URL)

	if err := promtext.RequireFamilies(fams,
		"prefetchd_http_requests_total",
		"prefetchd_http_responses_total",
		"prefetchd_http_request_duration_seconds",
		"prefetchd_http_queue_wait_seconds",
		"prefetchd_http_response_bytes_total",
		"prefetchd_http_inflight",
		"prefetchd_http_queued",
		"prefetchd_tenant_admitted_total",
		"prefetchd_tenant_shed_total",
		"prefetchd_tenant_inflight",
		"prefetchd_tenant_queued",
		"prefetchd_breaker_state",
		"prefetchd_uptime_seconds",
		"prefetchlab_sched_tasks_total",
		"prefetchlab_sched_tasks_completed_total",
		"prefetchlab_cache_requests_total",
		"prefetchlab_obs_cache_hits_total",
		"go_goroutines",
	); err != nil {
		t.Fatal(err)
	}

	series := map[string]string{} // "name{ep}" -> value
	for _, f := range fams {
		if f.Name != "prefetchd_http_requests_total" {
			continue
		}
		for _, s := range f.Samples {
			series[s.Get("endpoint")] = s.Value
		}
	}
	for ep, want := range map[string]string{
		string(EndpointHealthz): "1",
		string(EndpointFigures): "1",
		string(EndpointFigure):  "3", // 200 + 404 + 400 all land on the figure route
		string(EndpointMetrics): "1",
	} {
		if got := series[ep]; got != want {
			t.Errorf("requests_total{endpoint=%q} = %q, want %q (have %v)", ep, got, want, series)
		}
	}

	// The JSON snapshot and the exposition come from one registry: the
	// route counts must agree.
	_, jsonBody := get(t, ts.URL+"/api/v1/metrics")
	var snap struct {
		Routes map[string]int64 `json:"routes"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("JSON metrics unparseable: %v\n%s", err, jsonBody)
	}
	if snap.Routes[string(EndpointFigure)] != 3 {
		t.Errorf("JSON metrics disagrees with exposition: routes = %v", snap.Routes)
	}
}

// TestResultCacheExposition verifies a cache-attached server exports the
// result-cache families and joins prefetchlab_cache_requests_total under
// cache="result" — and that the per-tenant shed series carry the full
// pre-registered reason set.
func TestResultCacheExposition(t *testing.T) {
	_, url := cachedServer(t, "")
	get(t, url+"/api/v1/figures/table1") // miss
	get(t, url+"/api/v1/figures/table1") // hit
	fams := scrapeProm(t, url)

	if err := promtext.RequireFamilies(fams,
		"prefetchlab_result_cache_corrupt_total",
		"prefetchlab_result_cache_quarantined_total",
		"prefetchlab_result_cache_evictions_total",
		"prefetchlab_result_cache_entries",
		"prefetchlab_result_cache_bytes",
	); err != nil {
		t.Fatal(err)
	}
	results := map[string]string{}
	reasons := map[string]bool{}
	for _, f := range fams {
		switch f.Name {
		case "prefetchlab_cache_requests_total":
			for _, s := range f.Samples {
				if s.Get("cache") == "result" {
					results[s.Get("result")] = s.Value
				}
			}
		case "prefetchd_tenant_shed_total":
			for _, s := range f.Samples {
				reasons[s.Get("reason")] = true
			}
		}
	}
	if results["hit"] != "1" || results["miss"] != "1" {
		t.Fatalf(`cache_requests_total{cache="result"} = %v, want hit=1 miss=1`, results)
	}
	for _, reason := range []string{"rate_limit", "quota", "queue_full", "draining"} {
		if !reasons[reason] {
			t.Errorf("tenant shed series missing pre-registered reason %q (have %v)", reason, reasons)
		}
	}
}

// promStructure reduces an exposition to its shape: family name, type, and
// every series' name+label signature, dropping the monotonic sample values.
// Two servers that did the same work must expose the same shape.
func promStructure(fams []promtext.Family) []string {
	var lines []string
	for _, f := range fams {
		lines = append(lines, fmt.Sprintf("family %s type %s", f.Name, f.Type))
		for _, s := range f.Samples {
			var lb strings.Builder
			for _, l := range s.Labels {
				fmt.Fprintf(&lb, "%s=%s,", l.Name, l.Value)
			}
			lines = append(lines, fmt.Sprintf("  %s{%s}", s.Name, lb.String()))
		}
	}
	return lines
}

func TestMetricsStructureDeterministicAcrossWorkers(t *testing.T) {
	shape := func(workers int) []string {
		base := testBase()
		base.Workers = workers
		o := &obs.Obs{Stats: obs.NewStats()}
		_, ts := testServer(t, Config{Base: base, Obs: o})
		driveTraffic(t, ts.URL)
		return promStructure(scrapeProm(t, ts.URL))
	}
	one, eight := shape(1), shape(8)
	if len(one) != len(eight) {
		t.Fatalf("structure line counts differ: workers=1 has %d, workers=8 has %d\n--- 1 ---\n%s\n--- 8 ---\n%s",
			len(one), len(eight), strings.Join(one, "\n"), strings.Join(eight, "\n"))
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Errorf("structure line %d differs:\n  workers=1: %s\n  workers=8: %s", i, one[i], eight[i])
		}
	}
}

// syncBuffer makes a bytes.Buffer safe for the handler goroutines that
// write access-log lines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func TestRequestIDCorrelationEndToEnd(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	o := &obs.Obs{Trace: obs.NewTracer()}
	_, ts := testServer(t, Config{Base: testBase(), Obs: o, Logger: logger})

	const id = "corr-test-000042"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/figures/table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != id {
		t.Fatalf("response %s = %q, want the caller's id %q", RequestIDHeader, got, id)
	}
	if !strings.Contains(logBuf.String(), `"request_id":"`+id+`"`) {
		t.Fatalf("access log missing request id %q:\n%s", id, logBuf.String())
	}
	found := false
	for _, ev := range o.Trace.Events() {
		if ev.Args != nil && ev.Args["request_id"] == id {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no trace event carries request_id %q (have %d events)", id, o.Trace.Len())
	}

	// A request without the header gets a generated server id, echoed back.
	resp, _ = get(t, ts.URL+"/healthz")
	gen := resp.Header.Get(RequestIDHeader)
	if !strings.HasPrefix(gen, "pfd-") {
		t.Fatalf("generated id = %q, want pfd- prefix", gen)
	}

	// A malformed id (bad charset) is replaced, never echoed.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "bad id\twith spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got == "" || strings.Contains(got, " ") {
		t.Fatalf("malformed id echoed or dropped: %q", got)
	}
}
