// Package serve is prefetchlab's long-running service front end: an HTTP
// API that runs experiments, per-figure sweeps, MRC/StatStack queries and
// mix simulations on top of the existing scheduler pool, with production
// robustness baked in.
//
// The request path is hardened in layers:
//
//   - Admission control: heavy (engine-backed) endpoints pass a bounded
//     concurrency limit plus a bounded wait queue; anything beyond is shed
//     immediately with 429 + Retry-After, and a draining server sheds with
//     503, so latency stays bounded instead of the backlog growing.
//   - Per-request deadlines: the request context (default or ?timeout=)
//     propagates through sched; on expiry the engine drains in-flight
//     tasks (sched.CanceledError semantics) and the client gets 504.
//   - Circuit breaking: consecutive engine failures or timeouts open a
//     breaker around the engine; requests fail fast with 503 until a
//     half-open probe succeeds. The typed state is in /healthz, /readyz
//     and metrics.
//   - Panic safety: a recovery middleware plus a per-request recover turn
//     any handler panic into a 500 and a counter, never a crash.
//   - Observability: every request is a trace span; shed counts, breaker
//     transitions and queue depth are exported in metrics and embedded in
//     -stats-json under "server".
//
// Figure output is rendered through the same drivers as the CLI, so a
// served figure is byte-identical to `prefetchlab <figure>` under the same
// options — including runs resumed from a checkpoint.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"prefetchlab/internal/ckpt"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/obs/prom"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/tenant"
)

// Config assembles a Server.
type Config struct {
	// Base holds the default experiment options (scale, seed, mixes,
	// period, benches, workers, retries, failure budget, fault hook, obs).
	// Base.Out is ignored: every request renders into its own buffer.
	Base experiments.Options
	// Obs receives request spans and serving metrics; may be nil.
	Obs *obs.Obs
	// Checkpoint, when non-nil, persists completed engine tasks of
	// default-configuration requests so a restarted server resumes long
	// sweeps. Requests that override result-affecting options bypass it.
	Checkpoint *ckpt.File
	// Tenants is the multi-tenant registry (API keys, rate limits, quotas,
	// fair-share weights). Nil selects the single-tenant default: one
	// unlimited anonymous tenant, which reproduces the pre-tenant
	// admission behavior exactly.
	Tenants *tenant.Registry
	// Cache, when non-nil, serves repeated heavy requests from the
	// content-addressed result cache instead of recomputing them. It is
	// ignored (treated as nil) when Base.Fault is set, so chaos runs always
	// exercise the engine.
	Cache *resultcache.Cache
	// MaxInflight caps concurrently executing heavy requests. <= 0 sizes
	// it off the engine pool (Base.Workers, or 1 if unset).
	MaxInflight int
	// QueueDepth bounds how many admitted requests may wait for a slot
	// per tenant; beyond it the tenant's requests shed with 429. < 0
	// disables queueing entirely; 0 selects 2*MaxInflight.
	QueueDepth int
	// RequestTimeout is the default per-request deadline (0 = none).
	// Clients may lower/raise it per request with ?timeout=, capped at
	// MaxRequestTimeout.
	RequestTimeout time.Duration
	// MaxRequestTimeout caps ?timeout=; <= 0 selects 10 minutes.
	MaxRequestTimeout time.Duration
	// BreakerThreshold is the consecutive engine failures/timeouts that
	// open the circuit breaker. 0 selects 5; < 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open interval before a half-open probe;
	// <= 0 selects 10 seconds.
	BreakerCooldown time.Duration
	// RetryAfter is the hint attached to shed responses; <= 0 selects 1s.
	RetryAfter time.Duration
	// Log, when non-nil, receives the structured logs as text (one line per
	// request plus shed/error/panic events). Ignored when Logger is set.
	Log io.Writer
	// Logger, when non-nil, receives the structured logs (access log,
	// shed/breaker/panic/engine events) and takes precedence over Log.
	Logger *slog.Logger
	// SlowRequest promotes the access-log line of any request at or above
	// this duration to warning level; 0 disables the promotion.
	SlowRequest time.Duration
	// Worker enables GET /api/v1/shards/run, the cluster shard-execution
	// endpoint (prefetchd -join). Disabled servers answer it with 404, so
	// only fleets that opted in serve remote work.
	Worker bool
}

// Server is the hardened HTTP front end. Create with New, expose via
// Handler, and flip SetDraining(true) before http.Server.Shutdown so
// readiness probes fail fast while in-flight requests drain.
type Server struct {
	cfg         Config
	base        experiments.Options
	mux         *http.ServeMux
	tenants     *tenant.Registry
	heavy       *tenant.FairShare
	cache       *resultcache.Cache
	breaker     *Breaker
	reg         *prom.Registry
	metrics     *Metrics
	logger      *slog.Logger
	prof        *pipeline.Profiler
	fingerprint string
	idBase      string
	ids         atomic.Int64
	start       time.Time
	drain       atomic.Bool
}

// Fingerprint derives the checkpoint configuration fingerprint of a set of
// base options — the same scheme the CLI and the cluster shard ledger use,
// covering exactly the options that change task results (never
// workers/timeouts, which only change scheduling).
func Fingerprint(o experiments.Options) string { return o.Fingerprint() }

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	base := cfg.Base.Normalized()
	base.Obs = cfg.Obs
	if cfg.MaxInflight <= 0 {
		if base.Workers > 0 {
			cfg.MaxInflight = base.Workers
		} else {
			cfg.MaxInflight = 1
		}
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.MaxInflight
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.MaxRequestTimeout <= 0 {
		cfg.MaxRequestTimeout = 10 * time.Minute
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	reg := prom.NewRegistry()
	logger := cfg.Logger
	if logger == nil {
		if cfg.Log != nil {
			logger = slog.New(slog.NewTextHandler(cfg.Log, nil))
		} else {
			logger = slog.New(slog.NewTextHandler(io.Discard, nil))
		}
	}
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = tenant.Default()
	}
	cache := cfg.Cache
	if base.Fault != nil {
		// Fault-injected runs must hit the engine every time: a cached body
		// would mask the very failure modes chaos tests exist to exercise.
		cache = nil
	}
	s := &Server{
		cfg:         cfg,
		base:        base,
		mux:         http.NewServeMux(),
		tenants:     tenants,
		heavy:       tenant.NewFairShare(tenants, cfg.MaxInflight, cfg.QueueDepth, cfg.RetryAfter),
		cache:       cache,
		breaker:     NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		reg:         reg,
		metrics:     newMetrics(reg),
		logger:      logger,
		prof:        pipeline.NewProfiler(sampler.Config{Period: base.SamplerPeriod, Seed: base.Seed}),
		fingerprint: Fingerprint(base),
		idBase:      fmt.Sprintf("pfd-%08x", uint32(time.Now().UnixNano())),
		start:       time.Now(),
	}
	s.prof.SetObs(cfg.Obs)
	s.wireScrape()
	s.routes()
	return s
}

// Registry exposes the server's Prometheus registry (for tests and for
// embedding extra collectors).
func (s *Server) Registry() *prom.Registry { return s.reg }

// nextRequestID assigns a fresh correlation id: a per-process base token
// plus a monotonic sequence number.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.idBase, s.ids.Add(1))
}

// Handler returns the fully wrapped HTTP handler: the instrumentation
// middleware (request-ID assignment, latency histogram, access log) around
// routing, inside a panic recovery layer, so no request — however
// malformed — can crash the process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = s.nextRequestID()
		}
		ri := &reqInfo{id: id, endpoint: EndpointUnmatched}
		// Tenant identification happens here, before any routing or
		// shedding, so every response (including 401/429/503 short
		// circuits) is already correlated: the access-log line carries the
		// tenant label and the response carries X-Request-ID.
		if tn, err := s.tenants.Identify(r); err == nil {
			ri.tenant = tn.Name
			ri.tenantRef = tn
		} else {
			ri.tenant = "unknown"
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(withReqInfo(r.Context(), ri))
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				s.metrics.errors500.Add(1)
				s.logger.Error("panic serving request",
					"request_id", id, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				s.noteWrite(writeError(sw, http.StatusInternalServerError, "panic", "internal error", 0))
			}
			s.finishRequest(sw, r, ri, time.Since(start))
		}()
		s.mux.ServeHTTP(sw, r)
	})
}

// finishRequest closes out one request: the per-endpoint latency/size
// observation plus the structured access-log line, promoted to warning
// when the request ran past the slow-request threshold.
func (s *Server) finishRequest(sw *statusWriter, r *http.Request, ri *reqInfo, d time.Duration) {
	s.metrics.observe(ri.endpoint, d, sw.bytes)
	attrs := []any{
		"request_id", ri.id,
		"method", r.Method,
		"path", r.URL.Path,
		"endpoint", string(ri.endpoint),
		"tenant", ri.tenant,
		"status", sw.statusCode(),
		"bytes", sw.bytes,
		"duration_ms", float64(d) / float64(time.Millisecond),
	}
	if ri.tier != "" {
		attrs = append(attrs, "tier", ri.tier)
	}
	if ri.cache != "" {
		attrs = append(attrs, "cache", ri.cache)
	}
	if ri.heavy {
		attrs = append(attrs,
			"queue_wait_ms", ri.queueWait*1e3,
			"engine_ms", ri.engineTime*1e3)
	}
	if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
		s.logger.Warn("slow request", attrs...)
		return
	}
	s.logger.Info("request", attrs...)
}

// note records one arrival: the handler's endpoint label lands on the
// request record (for the access log and latency histogram) and on the
// per-endpoint request counter.
func (s *Server) note(r *http.Request, ep Endpoint) *reqInfo {
	ri := reqInfoFrom(r.Context())
	if ri == nil {
		ri = &reqInfo{} // direct handler invocation outside Handler()
	}
	ri.endpoint = ep
	s.metrics.request(ep)
	return ri
}

// SetDraining flips drain mode: /readyz starts failing and heavy endpoints
// shed with 503 while already-admitted requests run to completion.
func (s *Server) SetDraining(on bool) { s.drain.Store(on) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.drain.Load() }

// Breaker exposes the engine circuit breaker (for tests and health output).
func (s *Server) Breaker() *Breaker { return s.breaker }

// TenantRegistry exposes the tenant registry the server admits against.
func (s *Server) TenantRegistry() *tenant.Registry { return s.tenants }

// ResultCache exposes the result cache; nil when caching is disabled.
func (s *Server) ResultCache() *resultcache.Cache { return s.cache }

// MetricsSnapshot captures the serving-layer counters.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	return s.metrics.snapshot(s.heavy, s.breaker, s.Draining(), s.cache)
}

// PublishMetrics copies the current metrics snapshot into the stats
// registry's "server" section, so -stats-json written at shutdown carries
// shed counts, breaker transitions and queue depth.
func (s *Server) PublishMetrics() {
	if s.cfg.Obs != nil && s.cfg.Obs.Stats != nil {
		s.cfg.Obs.Stats.SetServer(s.MetricsSnapshot())
	}
}

// noteWrite tallies a failed response write. The only realistic cause is a
// peer that stopped reading mid-body, so the failure surfaces as a
// write_errors counter in /metrics instead of failing the request a second
// time (the status line is already on the wire).
func (s *Server) noteWrite(err error) {
	if err != nil {
		s.metrics.writeErrs.Add(1)
	}
}

// httpError is a parse/validation failure mapped straight to a status code
// before any engine work runs (so it never trips the breaker).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequestf(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) *httpError {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// panicError marks a handler-body panic recovered by runSafe.
type panicError struct {
	rec   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("serve: handler panicked: %v", e.rec)
}

// runFn is the engine-facing part of a heavy request: it renders the full
// response body into out, or fails as a unit.
type runFn func(ctx context.Context, out io.Writer) error

// prepared is a parsed heavy request, ready to execute. cacheKey, when
// non-empty, content-addresses the rendering in the result cache: it must
// cover every result-affecting input (the configuration fingerprint plus
// endpoint-specific parameters) and nothing scheduling-only, so a cache
// hit is byte-identical to the recompute at any worker count.
type prepared struct {
	run         runFn
	contentType string
	cacheKey    string
}

// prepareFn validates a request into a prepared run; validation failures
// are *httpError and cost no engine capacity.
type prepareFn func(r *http.Request) (prepared, error)

// runSafe executes one prepared run with panic recovery: a panicking
// handler body becomes a *panicError, never a crashed worker.
func runSafe(ctx context.Context, p prepared, out io.Writer) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &panicError{rec: rec, stack: debug.Stack()}
		}
	}()
	return p.run(ctx, out)
}

// serveHeavy wraps a prepared engine request in the full robustness chain:
// tenant authentication, drain shedding, parse validation, per-tenant rate
// limiting, result-cache lookup, per-request deadline, fair-share
// admission, circuit breaking, panic-safe execution, and typed error
// responses. The body is buffered so clients only ever see complete
// renderings; successful renderings with a cache key are stored for the
// next identical request.
func (s *Server) serveHeavy(ep Endpoint, prepare prepareFn) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ri := s.note(r, ep)
		ri.heavy = true
		tn := ri.tenantRef
		if tn == nil {
			// Identification ran in the middleware; a nil ref means the
			// request carried a key the registry does not know.
			s.metrics.unauthorized.Add(1)
			s.logger.Warn("unauthorized request",
				"request_id", ri.id, "endpoint", string(ep), "tenant", ri.tenant)
			s.noteWrite(writeError(w, http.StatusUnauthorized, "unauthorized", "unknown API key", 0))
			return
		}
		if s.Draining() {
			tn.NoteDrainShed()
			s.metrics.shed503.Add(1)
			w.Header().Set("Connection", "close")
			s.noteWrite(writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", s.cfg.RetryAfter))
			return
		}
		p, err := prepare(r)
		if err != nil {
			var he *httpError
			if errors.As(err, &he) {
				if he.status == http.StatusNotFound {
					s.metrics.notFound.Add(1)
				} else {
					s.metrics.badRequest.Add(1)
				}
				s.noteWrite(writeError(w, he.status, "bad_request", he.msg, 0))
				return
			}
			s.metrics.badRequest.Add(1)
			s.noteWrite(writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0))
			return
		}
		// The tier label was resolved during validation (perRequest); tally
		// it now so cache hits and sheds still count toward their tier.
		s.metrics.tierRequest(ri.tier)

		// Per-tenant rate limit: charged per request, cache hits included —
		// it bounds request rate, not engine time.
		if err := tn.TakeToken(); err != nil {
			var shed *tenant.ShedError
			if errors.As(err, &shed) {
				s.metrics.shed429.Add(1)
				s.logger.Warn("shed request",
					"request_id", ri.id, "endpoint", string(ep), "tenant", tn.Name,
					"reason", shed.Reason)
				s.noteWrite(writeError(w, shed.Status, "rate_limited", shed.Message, shed.RetryAfter))
				return
			}
			s.metrics.errors500.Add(1)
			s.noteWrite(writeError(w, http.StatusInternalServerError, "engine", err.Error(), 0))
			return
		}

		// Result cache: a hit serves the stored rendering without touching
		// the engine, the admission queue, or the breaker — the bytes were
		// produced by an identical computation.
		cacheable := s.cache.Enabled() && p.cacheKey != ""
		if cacheable {
			if e, ok := s.cache.Get(p.cacheKey); ok {
				ri.cache = "hit"
				s.metrics.ok.Add(1)
				w.Header().Set("X-Cache", "hit")
				w.Header().Set("Content-Type", e.ContentType)
				w.WriteHeader(http.StatusOK)
				_, werr := w.Write(e.Body)
				s.noteWrite(werr)
				return
			}
			ri.cache = "miss"
			w.Header().Set("X-Cache", "miss")
		}

		ctx := r.Context()
		timeout, err := s.requestTimeout(r)
		if err != nil {
			s.metrics.badRequest.Add(1)
			s.noteWrite(writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0))
			return
		}
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}

		// Fair-share admission: the deadline covers queue wait too, so a
		// queued request cannot outlive its own budget.
		qstart := time.Now()
		release, err := s.heavy.Acquire(ctx, tn)
		if err != nil {
			var shed *tenant.ShedError
			switch {
			case errors.As(err, &shed):
				s.metrics.shed429.Add(1)
				s.logger.Warn("shed request",
					"request_id", ri.id, "endpoint", string(ep), "tenant", tn.Name,
					"reason", shed.Reason)
				s.noteWrite(writeError(w, shed.Status, "shed", shed.Message, shed.RetryAfter))
			case errors.Is(err, context.DeadlineExceeded):
				s.metrics.timeout504.Add(1)
				s.noteWrite(writeError(w, http.StatusGatewayTimeout, "timeout", "deadline expired while queued", 0))
			default:
				s.metrics.clientGone.Add(1)
			}
			return
		}
		defer release()
		queueWait := time.Since(qstart)
		ri.queueWait = queueWait.Seconds()
		s.metrics.observeQueueWait(queueWait)

		report, err := s.breaker.Allow()
		if err != nil {
			var open *BreakerOpenError
			retry := s.cfg.RetryAfter
			if errors.As(err, &open) && open.RetryAfter > 0 {
				retry = open.RetryAfter
			}
			s.metrics.shed503.Add(1)
			s.logger.Warn("breaker rejected request",
				"request_id", ri.id, "endpoint", string(ep), "error", err.Error())
			s.noteWrite(writeError(w, http.StatusServiceUnavailable, "breaker_open", err.Error(), retry))
			return
		}

		var buf bytes.Buffer
		estart := time.Now()
		done := obsSpan(s.cfg.Obs.ForRequest(ri.id), ep)
		err = runSafe(ctx, p, &buf)
		done()
		ri.engineTime = time.Since(estart).Seconds()

		var pe *panicError
		switch {
		case err == nil:
			report(Success)
			s.metrics.ok.Add(1)
			if cacheable {
				s.cache.Put(resultcache.Entry{
					Key:         p.cacheKey,
					ContentType: p.contentType,
					Body:        append([]byte(nil), buf.Bytes()...),
				})
			}
			w.Header().Set("Content-Type", p.contentType)
			w.WriteHeader(http.StatusOK)
			_, werr := w.Write(buf.Bytes())
			s.noteWrite(werr)
		case errors.As(err, &pe):
			report(Failure)
			s.metrics.panics.Add(1)
			s.metrics.errors500.Add(1)
			s.logger.Error("panic in handler",
				"request_id", ri.id, "endpoint", string(ep),
				"panic", fmt.Sprint(pe.rec), "stack", string(pe.stack))
			s.noteWrite(writeError(w, http.StatusInternalServerError, "panic", "internal error: handler panicked", 0))
		case experiments.IsCancellation(err):
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				report(Failure) // timeout bursts open the breaker
				s.metrics.timeout504.Add(1)
				s.noteWrite(writeError(w, http.StatusGatewayTimeout, "timeout",
					fmt.Sprintf("request deadline exceeded: %v", err), 0))
				return
			}
			report(Canceled)
			s.metrics.clientGone.Add(1)
		default:
			report(Failure)
			s.metrics.errors500.Add(1)
			s.logger.Error("engine error",
				"request_id", ri.id, "endpoint", string(ep), "error", err.Error())
			s.noteWrite(writeError(w, http.StatusInternalServerError, "engine", err.Error(), 0))
		}
	}
}

// requestTimeout resolves the effective deadline for one request: the
// ?timeout= override (capped) or the configured default.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("timeout")
	if v == "" {
		return s.cfg.RequestTimeout, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 30s)", v)
	}
	if d > s.cfg.MaxRequestTimeout {
		d = s.cfg.MaxRequestTimeout
	}
	return d, nil
}

// obsSpan opens a request trace span (no-op without a tracer). o is the
// request-scoped Obs, so the span carries the request id.
func obsSpan(o *obs.Obs, ep Endpoint) func() {
	if o == nil {
		return func() {}
	}
	return o.Span("http", string(ep), nil)
}

// perRequest threads request correlation into the engine options: the
// request id lands on every trace span the run emits (via Obs.ForRequest)
// and the selected tier is noted for the access log.
func perRequest(r *http.Request, o experiments.Options) experiments.Options {
	ri := reqInfoFrom(r.Context())
	if ri == nil {
		return o
	}
	ri.tier = o.Tier
	o.Obs = o.Obs.ForRequest(ri.id)
	return o
}

// errorBody is the JSON error envelope every non-200 response uses.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// writeError emits a typed JSON error with an optional Retry-After hint,
// returning the body-write error for the caller's write_errors tally.
func writeError(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) error {
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(errorBody{Error: msg, Kind: kind})
}

// writeJSON emits a 200 JSON response, returning the body-write error for
// the caller's write_errors tally.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	return writeIndentedJSON(w, v)
}

// writeIndentedJSON renders v as indented JSON to any writer.
func writeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// options builds per-request experiment options from query overrides.
// isDefault reports whether every result-affecting option matches the
// server's base configuration — the precondition for checkpoint use.
func (s *Server) options(q map[string][]string) (o experiments.Options, isDefault bool, err error) {
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	o = s.base
	o.Verbose = false
	isDefault = true
	if v := get("scale"); v != "" {
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil || f <= 0 || f > 1000 {
			return o, false, badRequestf("bad scale %q (want a float in (0, 1000])", v)
		}
		if f != o.Scale {
			isDefault = false
		}
		o.Scale = f
	}
	if v := get("seed"); v != "" {
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return o, false, badRequestf("bad seed %q", v)
		}
		if n != o.Seed {
			isDefault = false
		}
		o.Seed = n
	}
	if v := get("mixes"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 || n > 100000 {
			return o, false, badRequestf("bad mixes %q (want 1..100000)", v)
		}
		if n != o.Mixes {
			isDefault = false
		}
		o.Mixes = n
	}
	if v := get("period"); v != "" {
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || n < 1 {
			return o, false, badRequestf("bad period %q (want a positive integer)", v)
		}
		if n != o.SamplerPeriod {
			isDefault = false
		}
		o.SamplerPeriod = n
	}
	if v := get("benches"); v != "" {
		names := strings.Split(v, ",")
		for _, n := range names {
			if _, werr := benchSpec(n); werr != nil {
				return o, false, badRequestf("bad benches: %v", werr)
			}
		}
		if strings.Join(names, ",") != strings.Join(o.Benches, ",") {
			isDefault = false
		}
		o.Benches = names
	}
	if v := get("tier"); v != "" {
		if !experiments.ValidTier(v) {
			return o, false, badRequestf("bad tier %q (want %s)", v, strings.Join(experiments.Tiers(), " or "))
		}
		if v != o.Tier {
			isDefault = false
		}
		o.Tier = v
	}
	if v := get("workers"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 || n > 4096 {
			return o, false, badRequestf("bad workers %q (want 0..4096)", v)
		}
		o.Workers = n // scheduling only: results are worker-count independent
	}
	if !isDefault || s.cfg.Checkpoint == nil {
		o.Save = nil
	} else {
		o.Save = s.cfg.Checkpoint.Tasks()
	}
	return o, isDefault, nil
}

// session builds a per-request experiment session. Sessions whose sampler
// configuration matches the server's base share the server-wide profiler,
// so repeated queries reuse profiles across requests.
func (s *Server) session(o experiments.Options) *experiments.Session {
	sess := experiments.NewSession(o)
	if o.SamplerPeriod == s.base.SamplerPeriod && o.Seed == s.base.Seed {
		sess.Prof = s.prof
	}
	return sess
}

// pool builds a scheduler pool mirroring the session options — used by
// endpoints (mix, mrc) that fan out without a figure driver.
func poolFor(o experiments.Options) sched.Pool {
	return sched.Pool{
		Workers:       o.Workers,
		Obs:           o.Obs.SchedObserver(),
		MaxAttempts:   o.Retries + 1,
		FailureBudget: o.FailureBudget,
		Fault:         o.Fault,
		Save:          o.Save,
	}
}
