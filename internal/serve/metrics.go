package serve

import (
	"sync"
	"sync/atomic"
)

// Metrics tallies serving-layer activity: totals per response class plus
// per-route request counts. Everything is monotonic counters, so a fixed
// request sequence produces fixed counts regardless of interleaving —
// load-shed behavior stays deterministic and observable.
type Metrics struct {
	requests   atomic.Int64
	ok         atomic.Int64
	badRequest atomic.Int64
	notFound   atomic.Int64
	shed429    atomic.Int64
	shed503    atomic.Int64
	timeout504 atomic.Int64
	errors500  atomic.Int64
	panics     atomic.Int64
	clientGone atomic.Int64
	writeErrs  atomic.Int64

	mu     sync.Mutex
	routes map[string]int64
}

func newMetrics() *Metrics {
	return &Metrics{routes: make(map[string]int64)}
}

// request records one arrival on a route.
func (m *Metrics) request(route string) {
	m.requests.Add(1)
	m.mu.Lock()
	m.routes[route]++
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape of the serving-layer counters; it is
// embedded in -stats-json output under "server" and served live at
// /api/v1/metrics.
type MetricsSnapshot struct {
	Requests      int64            `json:"requests"`
	OK            int64            `json:"ok"`
	BadRequest400 int64            `json:"bad_request_400"`
	NotFound404   int64            `json:"not_found_404"`
	Shed429       int64            `json:"shed_429"`
	Shed503       int64            `json:"shed_503"`
	Timeout504    int64            `json:"timeout_504"`
	Errors500     int64            `json:"errors_500"`
	Panics        int64            `json:"panics_recovered"`
	ClientGone    int64            `json:"client_canceled"`
	WriteErrors   int64            `json:"write_errors"`
	Inflight      int              `json:"inflight"`
	Queued        int              `json:"queued"`
	MaxInflight   int              `json:"max_inflight"`
	QueueDepth    int              `json:"queue_depth"`
	Draining      bool             `json:"draining"`
	Breaker       BreakerSnapshot  `json:"breaker"`
	Routes        map[string]int64 `json:"routes"`
}

// snapshot captures the counters plus live admission/breaker state.
func (m *Metrics) snapshot(l *limiter, b *Breaker, draining bool) MetricsSnapshot {
	maxInflight, queueDepth := l.capacity()
	snap := MetricsSnapshot{
		Requests:      m.requests.Load(),
		OK:            m.ok.Load(),
		BadRequest400: m.badRequest.Load(),
		NotFound404:   m.notFound.Load(),
		Shed429:       m.shed429.Load(),
		Shed503:       m.shed503.Load(),
		Timeout504:    m.timeout504.Load(),
		Errors500:     m.errors500.Load(),
		Panics:        m.panics.Load(),
		ClientGone:    m.clientGone.Load(),
		WriteErrors:   m.writeErrs.Load(),
		Inflight:      l.inflight(),
		Queued:        l.queued(),
		MaxInflight:   maxInflight,
		QueueDepth:    queueDepth,
		Draining:      draining,
		Breaker:       b.Snapshot(),
		Routes:        make(map[string]int64),
	}
	m.mu.Lock()
	for r, n := range m.routes {
		snap.Routes[r] = n
	}
	m.mu.Unlock()
	return snap
}
