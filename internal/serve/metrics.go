package serve

import (
	"time"

	"prefetchlab/internal/experiments"
	"prefetchlab/internal/obs/prom"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/tenant"
)

// Response classes — the class label values of
// prefetchd_http_responses_total. Every class is pre-registered at startup
// so the exposition always carries the full set (zeros included) and the
// family's series layout never depends on traffic history.
const (
	classOK           = "ok"
	classBadRequest   = "bad_request_400"
	classNotFound     = "not_found_404"
	classUnauthorized = "unauthorized_401"
	classShed429      = "shed_429"
	classShed503      = "shed_503"
	classTimeout504   = "timeout_504"
	classError500     = "error_500"
	classPanic        = "panic_recovered"
	classClientGone   = "client_canceled"
	classWriteError   = "write_error"
)

// requestBuckets are the request-duration histogram bounds in seconds.
// Engine-backed requests span 5 ms analytic-tier figures to multi-minute
// checkpointed sweeps, hence the wide log-ish spread.
var requestBuckets = []float64{0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30, 60, 120}

// queueWaitBuckets are the admission queue-wait histogram bounds in
// seconds: fine near zero (the healthy case), coarse toward the shed edge.
var queueWaitBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Metrics tallies serving-layer activity on the Prometheus registry: one
// request counter and latency histogram per endpoint, one counter per
// response class, queue-wait and response-size tallies. The registry is
// the single source of truth — the JSON /api/v1/metrics snapshot is read
// back out of the same counters, so the two exports can never disagree.
type Metrics struct {
	requests  *prom.CounterVec   // prefetchd_http_requests_total{endpoint}
	tiers     *prom.CounterVec   // prefetchd_http_requests_by_tier_total{tier}
	responses *prom.CounterVec   // prefetchd_http_responses_total{class}
	duration  *prom.HistogramVec // prefetchd_http_request_duration_seconds{endpoint}
	queueWait *prom.Histogram    // prefetchd_http_queue_wait_seconds
	bytesOut  *prom.CounterVec   // prefetchd_http_response_bytes_total{endpoint}

	// Per-class handles into responses, so call sites tally one class with
	// one method call and zero map lookups.
	ok           *prom.Counter
	badRequest   *prom.Counter
	notFound     *prom.Counter
	unauthorized *prom.Counter
	shed429      *prom.Counter
	shed503      *prom.Counter
	timeout504   *prom.Counter
	errors500    *prom.Counter
	panics       *prom.Counter
	clientGone   *prom.Counter
	writeErrs    *prom.Counter
}

// newMetrics registers the serving families on reg and returns the handle
// bundle. Per-endpoint series are created on first use (so the JSON
// "routes" map keeps listing only endpoints that saw traffic); per-class
// series are pre-registered in full.
func newMetrics(reg *prom.Registry) *Metrics {
	m := &Metrics{
		requests: reg.CounterVec("prefetchd_http_requests_total",
			"Requests received, by endpoint.", "endpoint"),
		tiers: reg.CounterVec("prefetchd_http_requests_by_tier_total",
			"Validated heavy requests, by selected engine tier (sim, analytic, static).", "tier"),
		responses: reg.CounterVec("prefetchd_http_responses_total",
			"Responses sent, by outcome class.", "class"),
		duration: reg.HistogramVec("prefetchd_http_request_duration_seconds",
			"End-to-end request latency in seconds, by endpoint.", requestBuckets, "endpoint"),
		queueWait: reg.Histogram("prefetchd_http_queue_wait_seconds",
			"Time heavy requests spent waiting for an execution slot, in seconds.", queueWaitBuckets),
		bytesOut: reg.CounterVec("prefetchd_http_response_bytes_total",
			"Response body bytes written, by endpoint.", "endpoint"),
	}
	m.ok = m.responses.With(classOK)
	m.badRequest = m.responses.With(classBadRequest)
	m.notFound = m.responses.With(classNotFound)
	m.unauthorized = m.responses.With(classUnauthorized)
	m.shed429 = m.responses.With(classShed429)
	m.shed503 = m.responses.With(classShed503)
	m.timeout504 = m.responses.With(classTimeout504)
	m.errors500 = m.responses.With(classError500)
	m.panics = m.responses.With(classPanic)
	m.clientGone = m.responses.With(classClientGone)
	m.writeErrs = m.responses.With(classWriteError)
	// Pre-register the full tier set so the series layout never depends on
	// which tiers a deployment's traffic happened to select.
	for _, tier := range experiments.Tiers() {
		m.tiers.With(tier)
	}
	return m
}

// tierRequest records one validated heavy request against its engine tier.
func (m *Metrics) tierRequest(tier string) {
	if tier != "" {
		m.tiers.With(tier).Inc()
	}
}

// request records one arrival on an endpoint.
func (m *Metrics) request(ep Endpoint) {
	m.requests.With(string(ep)).Inc()
}

// observe records one finished request: its latency and body size.
func (m *Metrics) observe(ep Endpoint, d time.Duration, bytes int64) {
	m.duration.With(string(ep)).Observe(d.Seconds())
	m.bytesOut.With(string(ep)).Add(bytes)
}

// observeQueueWait records how long an admitted heavy request queued.
func (m *Metrics) observeQueueWait(d time.Duration) {
	m.queueWait.Observe(d.Seconds())
}

// MetricsSnapshot is the JSON shape of the serving-layer counters; it is
// embedded in -stats-json output under "server" and served live at
// /api/v1/metrics.
type MetricsSnapshot struct {
	Requests        int64              `json:"requests"`
	OK              int64              `json:"ok"`
	BadRequest400   int64              `json:"bad_request_400"`
	NotFound404     int64              `json:"not_found_404"`
	Unauthorized401 int64              `json:"unauthorized_401"`
	Shed429         int64              `json:"shed_429"`
	Shed503         int64              `json:"shed_503"`
	Timeout504      int64              `json:"timeout_504"`
	Errors500       int64              `json:"errors_500"`
	Panics          int64              `json:"panics_recovered"`
	ClientGone      int64              `json:"client_canceled"`
	WriteErrors     int64              `json:"write_errors"`
	Inflight        int                `json:"inflight"`
	Queued          int                `json:"queued"`
	MaxInflight     int                `json:"max_inflight"`
	QueueDepth      int                `json:"queue_depth"`
	Draining        bool               `json:"draining"`
	Breaker         BreakerSnapshot    `json:"breaker"`
	Tenants         []tenant.Snapshot  `json:"tenants,omitempty"`
	ResultCache     *resultcache.Stats `json:"result_cache,omitempty"`
	Routes          map[string]int64   `json:"routes"`
	// Tiers counts validated heavy requests by engine tier; only tiers that
	// saw traffic appear, so pre-tier deployments keep their exact JSON.
	Tiers map[string]int64 `json:"tiers,omitempty"`
}

// snapshot reads the JSON view back out of the Prometheus counters plus
// live admission/breaker/tenant/cache state.
func (m *Metrics) snapshot(l *tenant.FairShare, b *Breaker, draining bool, cache *resultcache.Cache) MetricsSnapshot {
	maxInflight, queueDepth := l.Capacity()
	snap := MetricsSnapshot{
		OK:              m.ok.Value(),
		BadRequest400:   m.badRequest.Value(),
		NotFound404:     m.notFound.Value(),
		Unauthorized401: m.unauthorized.Value(),
		Shed429:         m.shed429.Value(),
		Shed503:         m.shed503.Value(),
		Timeout504:      m.timeout504.Value(),
		Errors500:       m.errors500.Value(),
		Panics:          m.panics.Value(),
		ClientGone:      m.clientGone.Value(),
		WriteErrors:     m.writeErrs.Value(),
		Inflight:        l.Inflight(),
		Queued:          l.Queued(),
		MaxInflight:     maxInflight,
		QueueDepth:      queueDepth,
		Draining:        draining,
		Breaker:         b.Snapshot(),
		Tenants:         l.Snapshots(),
		Routes:          make(map[string]int64),
	}
	if cache.Enabled() {
		cs := cache.Stats()
		snap.ResultCache = &cs
	}
	m.requests.Each(func(values []string, count int64) {
		if len(values) == 1 {
			snap.Routes[values[0]] = count
			snap.Requests += count
		}
	})
	m.tiers.Each(func(values []string, count int64) {
		if len(values) == 1 && count > 0 {
			if snap.Tiers == nil {
				snap.Tiers = make(map[string]int64)
			}
			snap.Tiers[values[0]] = count
		}
	})
	return snap
}
