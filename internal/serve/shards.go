package serve

import (
	"context"
	"io"
	"net/http"

	"prefetchlab/internal/cluster"
	"prefetchlab/internal/experiments"
)

// prepareShards validates GET /api/v1/shards/run — the cluster worker
// endpoint (enabled by Config.Worker / prefetchd -join). The request names
// an experiment, a scheduler batch and the task indices to compute;
// result-affecting options ride in the query so the worker computes under
// the coordinator's configuration. The response carries the gob-encoded
// task values plus this worker's configuration fingerprint, which the
// coordinator checks before applying anything.
func (s *Server) prepareShards(r *http.Request) (prepared, error) {
	if !s.cfg.Worker {
		return prepared{}, notFoundf("shard execution not enabled (start prefetchd with -join)")
	}
	q := r.URL.Query()
	exp := q.Get("exp")
	if exp == "" {
		return prepared{}, badRequestf("missing required parameter exp (see /api/v1/figures)")
	}
	if !experiments.Known(exp) {
		return prepared{}, notFoundf("unknown experiment %q (see /api/v1/figures)", exp)
	}
	batch := q.Get("batch")
	if batch == "" {
		return prepared{}, badRequestf("missing required parameter batch")
	}
	indices, err := cluster.ParseIndices(q.Get("indices"))
	if err != nil {
		return prepared{}, badRequestf("bad indices: %v", err)
	}
	o, _, err := s.options(q)
	if err != nil {
		return prepared{}, err
	}
	o = perRequest(r, o)
	// Shard runs never touch the worker's own checkpoint: the coordinator's
	// ledger is the durable store, and RunShard installs its own capture
	// saver anyway.
	o.Save = nil
	fp := Fingerprint(o.Normalized())
	return prepared{
		contentType: "application/json",
		run: func(ctx context.Context, out io.Writer) error {
			got, err := cluster.RunShard(ctx, s.session(o), exp, batch, indices)
			if err != nil {
				return err
			}
			resp := cluster.ShardResponse{Fingerprint: fp, Experiment: exp, Batch: batch}
			resp.Results = []cluster.ShardResult{} // export [] rather than null
			for _, i := range indices {
				if data, ok := got[i]; ok {
					resp.Results = append(resp.Results, cluster.ShardResult{
						Index: i, CRC: cluster.Checksum(data), Data: data,
					})
					continue
				}
				resp.Missing = append(resp.Missing, cluster.ShardMiss{
					Index: i, Reason: "task did not complete on this worker",
				})
			}
			return writeIndentedJSON(out, resp)
		},
	}, nil
}
