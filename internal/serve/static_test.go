package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"prefetchlab/internal/experiments"
)

// TestStaticTierValidation covers the static tier's request-validation
// paths — rejected before any engine work, so cheap enough for -short CI.
func TestStaticTierValidation(t *testing.T) {
	_, ts := testServer(t, Config{Base: testBase()})
	// The static tier models solo MRCs only; mixes are rejected up front.
	resp, body := get(t, ts.URL+"/api/v1/mix?apps=libquantum,milc&tier=static")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mix?tier=static = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "tier=static") {
		t.Errorf("rejection should point at the static tier: %s", body)
	}
	// The tier list advertised by /api/v1/figures includes static.
	_, body = get(t, ts.URL+"/api/v1/figures")
	if !strings.Contains(body, `"static"`) {
		t.Errorf("figure list missing the static tier: %s", body)
	}
}

// TestStaticTierMRCEndpoint pins the ?tier=static contract: a zero-execution
// response (samples stays 0) carrying the static MRC and per-load
// classification, byte-identical at any worker count, while default-tier
// responses stay byte-identical to pre-tier servers.
func TestStaticTierMRCEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a benchmark at two worker counts")
	}
	run := func(workers int) string {
		base := testBase()
		base.Workers = workers
		_, ts := testServer(t, Config{Base: base})
		resp, body := get(t, ts.URL+"/api/v1/mrc?bench=libquantum&tier=static")
		if resp.StatusCode != 200 {
			t.Fatalf("mrc?tier=static = %d, want 200 (body %s)", resp.StatusCode, body)
		}
		return body
	}
	body := run(1)
	if other := run(8); other != body {
		t.Errorf("static MRC body differs between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", body, other)
	}
	var got mrcBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, body)
	}
	if got.Tier != "static" {
		t.Errorf("tier = %q, want static", got.Tier)
	}
	if got.Samples != 0 {
		t.Errorf("samples = %d, want 0 — the static tier must never execute", got.Samples)
	}
	if len(got.Points) == 0 {
		t.Fatal("static response carries no MRC points")
	}
	for i, p := range got.Points {
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Errorf("point %d: miss ratio %v out of [0,1]", i, p.MissRatio)
		}
		if i > 0 && p.MissRatio > got.Points[i-1].MissRatio+1e-12 {
			t.Errorf("static MRC not monotone at point %d: %+v", i, got.Points)
		}
	}
	if len(got.Static) == 0 {
		t.Fatal("static response carries no per-load classification")
	}
	var inserts int
	for _, ld := range got.Static {
		if ld.Class == "" || ld.Decision == "" {
			t.Errorf("degenerate static load: %+v", ld)
		}
		if ld.Decision == "insert" {
			inserts++
			if ld.Stride == 0 || ld.Distance == 0 {
				t.Errorf("insert decision without stride/distance: %+v", ld)
			}
		}
	}
	if inserts == 0 {
		t.Error("static tier recommends no prefetches for libquantum (a streaming benchmark)")
	}
	// Default-tier responses must not carry the tier or static sections.
	_, srv := testServer(t, Config{Base: testBase()})
	_, plain := get(t, srv.URL+"/api/v1/mrc?bench=libquantum")
	var def mrcBody
	if err := json.Unmarshal([]byte(plain), &def); err != nil {
		t.Fatal(err)
	}
	if def.Tier != "" || len(def.Static) != 0 {
		t.Errorf("default-tier response carries static fields: tier=%q static=%+v", def.Tier, def.Static)
	}
}

// TestStaticTierPromLabel verifies /metrics carries the tier-labeled request
// family with the full pre-registered tier set, and that a static request
// lands on the static series.
func TestStaticTierPromLabel(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a benchmark")
	}
	s, srv := testServer(t, Config{Base: testBase()})
	if resp, body := get(t, srv.URL+"/api/v1/mrc?bench=libquantum&tier=static"); resp.StatusCode != 200 {
		t.Fatalf("mrc?tier=static = %d (body %s)", resp.StatusCode, body)
	}
	_, prom := get(t, srv.URL+"/metrics")
	for _, tier := range experiments.Tiers() {
		want := `prefetchd_http_requests_by_tier_total{tier="` + tier + `"}`
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing pre-registered series %s", want)
		}
	}
	if !strings.Contains(prom, `prefetchd_http_requests_by_tier_total{tier="static"} 1`) {
		t.Error("static request did not land on the static tier series")
	}
	snap := s.MetricsSnapshot()
	if snap.Tiers["static"] != 1 {
		t.Errorf("snapshot tiers = %+v, want static: 1", snap.Tiers)
	}
}
