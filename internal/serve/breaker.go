package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's typed state, exposed verbatim in
// health and metrics output.
type BreakerState int

// Breaker states, in the classic closed → open → half-open cycle.
const (
	// BreakerClosed passes every request through; consecutive engine
	// failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrBreakerOpen marks requests rejected because the circuit breaker is
// open (or half-open with its probe already in flight).
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// BreakerOpenError carries the state and the caller's retry hint; it wraps
// ErrBreakerOpen so errors.Is works.
type BreakerOpenError struct {
	State      BreakerState
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker %s; retry after %s", e.State, e.RetryAfter)
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// Outcome classifies how a breaker-guarded request ended.
type Outcome int

// Request outcomes reported back to the breaker.
const (
	// Success: the engine completed the request.
	Success Outcome = iota
	// Failure: the engine failed (TaskError burst, deadline expiry) — the
	// signal that trips the breaker.
	Failure
	// Canceled: the client went away; says nothing about engine health and
	// leaves the breaker state untouched (a canceled half-open probe frees
	// the probe slot so the next request can probe).
	Canceled
)

// Breaker is a circuit breaker around the experiment engine: Threshold
// consecutive failures open it, rejections flow fast for Cooldown, then a
// single half-open probe decides whether to close it again. All methods
// are safe for concurrent use. A Threshold <= 0 disables the breaker
// entirely (Allow always admits).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool

	opens, probes, successes, failures, denied int64
	transitions                                []string
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. threshold <= 0 disables it.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// maxTransitionLog bounds the transition history kept for observability.
const maxTransitionLog = 32

// transition records a state change (caller holds b.mu).
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	entry := fmt.Sprintf("%s->%s", b.state, to)
	if len(b.transitions) < maxTransitionLog {
		b.transitions = append(b.transitions, entry)
	}
	if to == BreakerOpen {
		b.opens++
		b.openedAt = b.now()
	}
	b.state = to
}

// Allow asks to run one request against the protected engine. On admission
// it returns a report callback that MUST be called exactly once with the
// request's outcome; on rejection it returns a *BreakerOpenError with a
// retry hint.
func (b *Breaker) Allow() (report func(Outcome), err error) {
	if b == nil || b.threshold <= 0 {
		return func(Outcome) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if wait := b.openedAt.Add(b.cooldown).Sub(b.now()); wait > 0 {
			b.denied++
			return nil, &BreakerOpenError{State: BreakerOpen, RetryAfter: wait}
		}
		b.transition(BreakerHalfOpen)
	}
	if b.state == BreakerHalfOpen {
		if b.probing {
			b.denied++
			return nil, &BreakerOpenError{State: BreakerHalfOpen, RetryAfter: b.cooldown}
		}
		b.probing = true
		b.probes++
		return b.reportFunc(true), nil
	}
	return b.reportFunc(false), nil
}

// reportFunc builds the one-shot outcome callback for an admitted request.
func (b *Breaker) reportFunc(probe bool) func(Outcome) {
	var once sync.Once
	return func(out Outcome) {
		once.Do(func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if probe {
				b.probing = false
			}
			switch out {
			case Canceled:
				// Client cancellation is not an engine verdict.
			case Success:
				b.successes++
				if probe && b.state == BreakerHalfOpen {
					b.transition(BreakerClosed)
				}
				if b.state == BreakerClosed {
					b.fails = 0
				}
			case Failure:
				b.failures++
				if probe && b.state == BreakerHalfOpen {
					b.fails = b.threshold
					b.transition(BreakerOpen)
					return
				}
				if b.state == BreakerClosed {
					b.fails++
					if b.fails >= b.threshold {
						b.transition(BreakerOpen)
					}
				}
			}
		})
	}
}

// State returns the current state (re-evaluating an elapsed cooldown is
// left to the next Allow; State reports the stored value).
func (b *Breaker) State() BreakerState {
	if b == nil || b.threshold <= 0 {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is the breaker's observable state for health and metrics
// output.
type BreakerSnapshot struct {
	State               string   `json:"state"`
	ConsecutiveFailures int      `json:"consecutive_failures"`
	Opens               int64    `json:"opens"`
	HalfOpenProbes      int64    `json:"half_open_probes"`
	Successes           int64    `json:"successes"`
	Failures            int64    `json:"failures"`
	Denied              int64    `json:"denied"`
	Transitions         []string `json:"transitions,omitempty"`
}

// Snapshot captures the breaker's counters and transition history.
func (b *Breaker) Snapshot() BreakerSnapshot {
	if b == nil || b.threshold <= 0 {
		return BreakerSnapshot{State: BreakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		HalfOpenProbes:      b.probes,
		Successes:           b.successes,
		Failures:            b.failures,
		Denied:              b.denied,
		Transitions:         append([]string(nil), b.transitions...),
	}
}
