package serve

import (
	"time"

	"prefetchlab/internal/serve/breaker"
)

// The circuit breaker implementation moved to internal/serve/breaker so
// the cluster coordinator can reuse it per remote worker; the historical
// serve-package names stay as aliases so existing callers (and the
// /healthz + /metrics wire formats) are unchanged.

// BreakerState is the circuit breaker's typed state, exposed verbatim in
// health and metrics output.
type BreakerState = breaker.State

// Breaker states, in the classic closed → open → half-open cycle.
const (
	// BreakerClosed passes every request through; consecutive engine
	// failures are counted.
	BreakerClosed = breaker.Closed
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen = breaker.Open
	// BreakerHalfOpen admits exactly one probe request; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen = breaker.HalfOpen
)

// ErrBreakerOpen marks requests rejected because the circuit breaker is
// open (or half-open with its probe already in flight).
var ErrBreakerOpen = breaker.ErrOpen

// BreakerOpenError carries the state and the caller's retry hint; it wraps
// ErrBreakerOpen so errors.Is works.
type BreakerOpenError = breaker.OpenError

// Outcome classifies how a breaker-guarded request ended.
type Outcome = breaker.Outcome

// Request outcomes reported back to the breaker.
const (
	// Success: the engine completed the request.
	Success = breaker.Success
	// Failure: the engine failed (TaskError burst, deadline expiry) — the
	// signal that trips the breaker.
	Failure = breaker.Failure
	// Canceled: the client went away; says nothing about engine health and
	// leaves the breaker state untouched.
	Canceled = breaker.Canceled
)

// Breaker is a circuit breaker around the experiment engine. See
// internal/serve/breaker for the implementation.
type Breaker = breaker.Breaker

// BreakerSnapshot is the breaker's observable state for health and metrics
// output.
type BreakerSnapshot = breaker.Snapshot

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. threshold <= 0 disables it.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return breaker.New(threshold, cooldown)
}
