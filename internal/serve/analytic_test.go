package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"prefetchlab/internal/experiments"
)

// analyticBase widens testBase to the benchmarks the analytic endpoint
// tests co-run.
func analyticBase() experiments.Options {
	o := testBase()
	o.Benches = []string{"libquantum", "milc", "omnetpp", "cigar"}
	return o
}

// TestAnalyticTierValidation covers the request-validation paths, which
// reject before any benchmark is profiled — cheap enough for the fast
// (-short, raced) CI tier.
func TestAnalyticTierValidation(t *testing.T) {
	_, ts := testServer(t, Config{Base: analyticBase()})
	// Unknown tiers are 400s.
	resp, body := get(t, ts.URL+"/api/v1/mrc?bench=libquantum&tier=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mrc?tier=bogus = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	// The analytic tier models the baseline mix only: prefetch policy
	// sweeps are rejected up front, not silently ignored.
	resp, body = get(t, ts.URL+"/api/v1/mix?apps=libquantum,milc&policies=hw&tier=analytic")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mix?policies=hw&tier=analytic = %d, want 400 (body %s)", resp.StatusCode, body)
	}
}

func TestAnalyticTierMRCEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles a benchmark; the nightly full suite covers the 200 path")
	}
	_, ts := testServer(t, Config{Base: analyticBase()})
	resp, body := get(t, ts.URL+"/api/v1/mrc?bench=libquantum&tier=analytic")
	if resp.StatusCode != 200 {
		t.Fatalf("mrc?tier=analytic = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var got mrcBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, body)
	}
	if len(got.Analytic) != 2 {
		t.Fatalf("analytic sections = %d, want one per machine (%+v)", len(got.Analytic), got.Analytic)
	}
	for _, a := range got.Analytic {
		if a.Machine == "" || a.CPI <= 0 || a.LLCMissRatio < 0 || a.LLCMissRatio > 1 {
			t.Errorf("degenerate analytic section: %+v", a)
		}
		if a.OccupancyMB <= 0 || a.BandwidthGBps < 0 {
			t.Errorf("degenerate occupancy/bandwidth: %+v", a)
		}
	}
	// Default tier responses must not carry the analytic section.
	_, plain := get(t, ts.URL+"/api/v1/mrc?bench=libquantum")
	var def mrcBody
	if err := json.Unmarshal([]byte(plain), &def); err != nil {
		t.Fatal(err)
	}
	if len(def.Analytic) != 0 {
		t.Fatalf("default-tier response carries analytic section: %+v", def.Analytic)
	}
}

func TestAnalyticTierMixEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles two benchmarks; the nightly full suite covers the 200 path")
	}
	_, ts := testServer(t, Config{Base: analyticBase()})
	resp, body := get(t, ts.URL+"/api/v1/mix?apps=libquantum,milc&machine=amd&tier=analytic")
	if resp.StatusCode != 200 {
		t.Fatalf("mix?tier=analytic = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var got mixAnalyticBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, body)
	}
	if got.Tier != "analytic" || len(got.Cores) != 2 {
		t.Fatalf("mix body = %+v", got)
	}
	for _, c := range got.Cores {
		if c.Slowdown < 1 || c.CPI <= 0 {
			t.Errorf("degenerate core prediction: %+v", c)
		}
	}
	if got.TotalGBps <= 0 {
		t.Errorf("total bandwidth = %g, want > 0", got.TotalGBps)
	}
	// An explicit baseline request is the same thing the tier models.
	resp, _ = get(t, ts.URL+"/api/v1/mix?apps=libquantum,milc&policies=baseline&tier=analytic")
	if resp.StatusCode != 200 {
		t.Fatalf("mix?policies=baseline&tier=analytic = %d, want 200", resp.StatusCode)
	}
}

// TestAnalyticTierConcurrentRequests exercises the shared profile cache —
// the server-wide pipeline.Profiler and each profile's AnalyticCore
// sync.Once — from many concurrent analytic-tier requests. Run under `go
// test -race`, it is the tier's data-race regression test; it also pins
// that concurrent responses are byte-identical, since they must come from
// one deterministic model.
func TestAnalyticTierConcurrentRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles four benchmarks under concurrent load")
	}
	_, ts := testServer(t, Config{Base: analyticBase(), MaxInflight: 8, QueueDepth: 64})
	urls := []string{
		ts.URL + "/api/v1/mrc?bench=libquantum&tier=analytic",
		ts.URL + "/api/v1/mrc?bench=omnetpp&tier=analytic",
		ts.URL + "/api/v1/mix?apps=libquantum,milc&machine=amd&tier=analytic",
		ts.URL + "/api/v1/mix?apps=omnetpp,cigar&machine=intel&tier=analytic",
	}
	const perURL = 4
	var wg sync.WaitGroup
	bodies := make([][]string, len(urls))
	errs := make(chan error, len(urls)*perURL)
	for i, u := range urls {
		bodies[i] = make([]string, perURL)
		for j := 0; j < perURL; j++ {
			wg.Add(1)
			go func(i, j int, u string) {
				defer wg.Done()
				resp, err := http.Get(u)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("GET %s: %d (%s)", u, resp.StatusCode, body)
					return
				}
				bodies[i][j] = string(body)
			}(i, j, u)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i := range bodies {
		for j := 1; j < perURL; j++ {
			if bodies[i][j] != bodies[i][0] {
				t.Errorf("concurrent responses to %s differ:\n%s\nvs\n%s", urls[i], bodies[i][0], bodies[i][j])
			}
		}
	}
}
