package serve

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"prefetchlab/internal/tenant"
)

// mustRegistry builds a tenant registry for tests.
func mustRegistry(t *testing.T, specs []tenant.Spec) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(specs)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return reg
}

// TestShedResponsesCarryCorrelation is the regression test for shed-path
// observability: a 429 (queue full) and a 503 (draining) must both carry
// the X-Request-ID response header and produce an access-log line with the
// tenant label, so a flooded tenant's rejections are attributable without
// any engine work having run.
func TestShedResponsesCarryCorrelation(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	s, ts := testServer(t, Config{
		Base:        testBase(),
		MaxInflight: 1,
		QueueDepth:  -1, // no queue: the second request sheds deterministically
		Logger:      logger,
	})

	// Occupy the only slot directly, so the HTTP request below must shed.
	release, err := s.heavy.Acquire(context.Background(), s.tenants.Anonymous())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	resp, body := get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated figure = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("429 response missing X-Request-ID")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if !strings.Contains(body, `"kind"`) {
		t.Fatalf("429 body not typed JSON:\n%s", body)
	}
	id429 := resp.Header.Get(RequestIDHeader)
	release()

	s.SetDraining(true)
	resp, body = get(t, ts.URL+"/api/v1/figures/table1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining figure = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("503 response missing X-Request-ID")
	}
	id503 := resp.Header.Get(RequestIDHeader)

	logs := logBuf.String()
	for _, id := range []string{id429, id503} {
		found := false
		for _, line := range strings.Split(logs, "\n") {
			if strings.Contains(line, `"request_id":"`+id+`"`) &&
				strings.Contains(line, `"tenant":"`+tenant.Anonymous+`"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no access-log line carries request_id %q with the tenant label:\n%s", id, logs)
		}
	}

	snap := s.MetricsSnapshot()
	if snap.Shed429 != 1 || snap.Shed503 != 1 {
		t.Fatalf("shed counters = (429: %d, 503: %d), want (1, 1)", snap.Shed429, snap.Shed503)
	}
}

// TestUnknownAPIKeyUnauthorized verifies a request with an unrecognized key
// is rejected with a typed 401 before any engine work, still carries the
// correlation header, and logs tenant="unknown" — while a valid key reaches
// the engine.
func TestUnknownAPIKeyUnauthorized(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	reg := mustRegistry(t, []tenant.Spec{{Name: "acme", Key: "sk-acme"}})
	s, ts := testServer(t, Config{Base: testBase(), Tenants: reg, Logger: logger})

	do := func(key string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/figures/table1", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp, sb.String()
	}

	resp, body := do("sk-wrong")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key = %d, want 401 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("401 response missing X-Request-ID")
	}
	if !strings.Contains(body, `"unauthorized"`) {
		t.Fatalf("401 body kind:\n%s", body)
	}
	if !strings.Contains(logBuf.String(), `"tenant":"unknown"`) {
		t.Fatalf("access log missing tenant=unknown for the 401:\n%s", logBuf.String())
	}

	resp, body = do("sk-acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(logBuf.String(), `"tenant":"acme"`) {
		t.Fatalf("access log missing tenant=acme:\n%s", logBuf.String())
	}

	snap := s.MetricsSnapshot()
	if snap.Unauthorized401 != 1 {
		t.Fatalf("Unauthorized401 = %d, want 1", snap.Unauthorized401)
	}
	// Light endpoints stay open: no key needed for health or metrics.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz without key = %d, want 200", resp.StatusCode)
	}
}

// TestTenantRateLimitOverHTTP verifies the per-tenant token bucket sheds
// with a typed 429 + Retry-After once the burst is spent, without touching
// other tenants.
func TestTenantRateLimitOverHTTP(t *testing.T) {
	reg := mustRegistry(t, []tenant.Spec{
		{Name: "slow", Key: "sk-slow", Limits: tenant.Limits{Rate: 0.001, Burst: 1}},
		{Name: "fast", Key: "sk-fast"},
	})
	s, ts := testServer(t, Config{Base: testBase(), Tenants: reg})

	do := func(key string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/figures/table1", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 0, 1024)
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if rerr != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, string(body)
	}

	if resp, body := do("sk-slow"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first slow request = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	resp, body := do("sk-slow")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second slow request = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"rate_limited"`) {
		t.Fatalf("rate-limit body kind:\n%s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit response missing Retry-After")
	}
	// The unthrottled tenant is unaffected.
	for i := 0; i < 3; i++ {
		if resp, body := do("sk-fast"); resp.StatusCode != http.StatusOK {
			t.Fatalf("fast request %d = %d, want 200 (body %s)", i, resp.StatusCode, body)
		}
	}

	snap := s.MetricsSnapshot()
	var slowSnap *tenant.Snapshot
	for i := range snap.Tenants {
		if snap.Tenants[i].Name == "slow" {
			slowSnap = &snap.Tenants[i]
		}
	}
	if slowSnap == nil || slowSnap.ShedRate != 1 {
		t.Fatalf("slow tenant snapshot = %+v, want ShedRate 1", slowSnap)
	}
}
