package serve

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestLimiterShedsWhenFull(t *testing.T) {
	l := newLimiter(1, 0, time.Second)
	release, err := l.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	_, err = l.acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("second acquire err = %v, want *ShedError", err)
	}
	if shed.Status != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", shed.Status)
	}
	if shed.RetryAfter != time.Second {
		t.Fatalf("shed RetryAfter = %s, want 1s", shed.RetryAfter)
	}
	release()
	release2, err := l.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()
}

func TestLimiterQueueAdmitsAfterRelease(t *testing.T) {
	l := newLimiter(1, 1, time.Second)
	release, err := l.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := l.acquire(context.Background())
		if err == nil {
			defer r2()
		}
		got <- err
	}()
	// Wait for the second request to take the queue slot, then a third
	// must shed deterministically.
	deadline := time.Now().Add(2 * time.Second)
	for l.queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.queued() != 1 {
		t.Fatalf("queued = %d, want 1", l.queued())
	}
	_, err = l.acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("third acquire err = %v, want *ShedError", err)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
}

func TestLimiterQueuedCancel(t *testing.T) {
	l := newLimiter(1, 1, time.Second)
	release, err := l.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := l.acquire(ctx)
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for l.queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire after cancel = %v, want context.Canceled", err)
	}
	// The abandoned queue slot must be returned.
	deadline = time.Now().Add(2 * time.Second)
	for l.queued() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.queued() != 0 {
		t.Fatalf("queued = %d after cancel, want 0", l.queued())
	}
}

func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := newLimiter(1, 1, time.Second)
	release, err := l.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = l.acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire = %v, want DeadlineExceeded", err)
	}
}

func TestLimiterClamps(t *testing.T) {
	l := newLimiter(0, -3, 0)
	maxInflight, queueDepth := l.capacity()
	if maxInflight != 1 || queueDepth != 0 {
		t.Fatalf("capacity = (%d, %d), want (1, 0)", maxInflight, queueDepth)
	}
	if l.retryAfter != time.Second {
		t.Fatalf("retryAfter = %s, want 1s default", l.retryAfter)
	}
}
