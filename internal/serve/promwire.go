package serve

import (
	"runtime"
	"time"

	"prefetchlab/internal/obs/prom"
	"prefetchlab/internal/tenant"
)

// wireScrape registers every scrape-time-sampled family on the server's
// Prometheus registry: admission and breaker gauges, scheduler occupancy,
// fault and cache mirrors from the Obs tallies, the stats-registry
// aggregate, and Go runtime stats. The families are registered once here
// (so the exposition's family set is fixed at startup) and their values
// refreshed by an OnScrape hook just before every render.
func (s *Server) wireScrape() {
	reg := s.reg

	inflight := reg.Gauge("prefetchd_http_inflight",
		"Heavy requests executing right now.")
	queued := reg.Gauge("prefetchd_http_queued",
		"Heavy requests waiting for an execution slot.")
	maxInflight := reg.Gauge("prefetchd_http_max_inflight",
		"Configured heavy-request concurrency cap.")
	queueDepth := reg.Gauge("prefetchd_http_queue_depth",
		"Configured admission queue capacity.")
	draining := reg.Gauge("prefetchd_draining",
		"1 while the server is draining, 0 otherwise.")
	uptime := reg.Gauge("prefetchd_uptime_seconds",
		"Seconds since the server started.")

	breaker := reg.GaugeVec("prefetchd_breaker_state",
		"1 for the circuit breaker's current state, 0 for the other two.", "state")
	breakerStates := map[string]*prom.Gauge{
		BreakerClosed.String():   breaker.With(BreakerClosed.String()),
		BreakerOpen.String():     breaker.With(BreakerOpen.String()),
		BreakerHalfOpen.String(): breaker.With(BreakerHalfOpen.String()),
	}
	probeOutcomes := reg.CounterVec("prefetchd_breaker_half_open_probes_total",
		"Half-open breaker probes, by outcome (success closes the breaker, failure reopens it).", "outcome")
	probeSuccess := probeOutcomes.With("success")
	probeFailure := probeOutcomes.With("failure")

	tasksTotal := reg.Counter("prefetchlab_sched_tasks_total",
		"Engine tasks enqueued across all batches.")
	tasksDone := reg.Counter("prefetchlab_sched_tasks_completed_total",
		"Engine tasks finished (including checkpoint replays).")
	tasksBusy := reg.Gauge("prefetchlab_sched_tasks_busy",
		"Engine task attempts executing right now.")
	tasksQueued := reg.Gauge("prefetchlab_sched_tasks_queued",
		"Engine tasks enqueued but neither executing nor finished.")
	retries := reg.Counter("prefetchlab_sched_retries_total",
		"Failed task attempts that were retried.")
	skippedCells := reg.Counter("prefetchlab_sched_skipped_cells_total",
		"Tasks abandoned after their retry budget and absorbed by a failure budget.")
	replayed := reg.Counter("prefetchlab_sched_replayed_tasks_total",
		"Tasks satisfied from a checkpoint instead of re-executing.")
	canceledBatches := reg.Counter("prefetchlab_sched_canceled_batches_total",
		"Batches stopped by context cancellation.")

	cacheReq := reg.CounterVec("prefetchlab_cache_requests_total",
		"Single-flight cache lookups, by cache and result (hit or miss).", "cache", "result")

	// Per-tenant admission families. Every configured tenant's series are
	// pre-registered (zeros included) so the exposition layout is fixed at
	// startup and never depends on which tenants happened to send traffic.
	tenantAdmitted := reg.CounterVec("prefetchd_tenant_admitted_total",
		"Heavy requests granted an execution slot, by tenant.", "tenant")
	tenantShed := reg.CounterVec("prefetchd_tenant_shed_total",
		"Heavy requests shed before execution, by tenant and reason (rate_limit, quota, queue_full, draining).",
		"tenant", "reason")
	tenantInflight := reg.GaugeVec("prefetchd_tenant_inflight",
		"Heavy requests executing right now, by tenant.", "tenant")
	tenantQueued := reg.GaugeVec("prefetchd_tenant_queued",
		"Heavy requests waiting in the fair-share queue, by tenant.", "tenant")
	for _, name := range s.tenants.Names() {
		tenantAdmitted.With(name)
		tenantInflight.With(name)
		tenantQueued.With(name)
		for _, reason := range tenant.ShedReasons() {
			tenantShed.With(name, reason)
		}
	}

	// Result-cache families: registered only when a cache is attached, so
	// cacheless deployments don't export misleading zeros (the obsAgg
	// pattern below). Hits/misses join prefetchlab_cache_requests_total
	// under cache="result".
	var resultCacheSample func()
	if s.cache.Enabled() {
		corrupt := reg.Counter("prefetchlab_result_cache_corrupt_total",
			"Disk cache entries that failed CRC/format verification and were quarantined instead of served.")
		quarantined := reg.Counter("prefetchlab_result_cache_quarantined_total",
			"Corrupt disk cache entries successfully moved aside for inspection.")
		evictions := reg.CounterVec("prefetchlab_result_cache_evictions_total",
			"Result cache evictions, by tier (mem LRU bound, disk GC).", "tier")
		evictMem := evictions.With("mem")
		evictDisk := evictions.With("disk")
		entries := reg.GaugeVec("prefetchlab_result_cache_entries",
			"Result cache entries resident right now, by tier.", "tier")
		entriesMem := entries.With("mem")
		entriesDisk := entries.With("disk")
		cacheBytes := reg.GaugeVec("prefetchlab_result_cache_bytes",
			"Result cache bytes resident right now, by tier.", "tier")
		bytesMem := cacheBytes.With("mem")
		bytesDisk := cacheBytes.With("disk")
		resultCacheSample = func() {
			cs := s.cache.Stats()
			corrupt.Set(cs.Corrupt)
			quarantined.Set(cs.Quarantined)
			evictMem.Set(cs.EvictMem)
			evictDisk.Set(cs.EvictDisk)
			entriesMem.Set(float64(cs.MemEntries))
			entriesDisk.Set(float64(cs.DiskEntries))
			bytesMem.Set(float64(cs.MemBytes))
			bytesDisk.Set(float64(cs.DiskBytes))
			// The result cache keeps its own authoritative hit/miss tally;
			// sampling it here (after the CacheCounts loop) guarantees the
			// family carries cache="result" even when no Obs is attached.
			cacheReq.With("result", "hit").Set(cs.Hits)
			cacheReq.With("result", "miss").Set(cs.Misses)
		}
	}

	shards := reg.CounterVec("prefetchlab_cluster_shards_total",
		"Cluster shard lifecycle events, by stage (dispatched, acked, requeued, quarantined, local_fallback).", "stage")
	shardsDispatched := shards.With("dispatched")
	shardsAcked := shards.With("acked")
	shardsRequeued := shards.With("requeued")
	shardsQuarantined := shards.With("quarantined")
	shardsLocal := shards.With("local_fallback")
	tasksRemote := reg.Counter("prefetchlab_cluster_tasks_remote_total",
		"Engine tasks whose values came from a cluster worker.")
	tasksLedger := reg.Counter("prefetchlab_cluster_tasks_ledger_replayed_total",
		"Engine tasks restored from the durable shard ledger on coordinator restart.")
	workerLiveness := reg.CounterVec("prefetchlab_cluster_worker_liveness_total",
		"Worker liveness transitions, by event (death or rejoin).", "event")
	workerDeaths := workerLiveness.With("death")
	workerRejoins := workerLiveness.With("rejoin")

	goroutines := reg.Gauge("go_goroutines", "Live goroutines.")
	heapAlloc := reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapObjects := reg.Gauge("go_heap_objects", "Number of allocated heap objects.")
	gcCycles := reg.Counter("go_gc_cycles_total", "Completed GC cycles.")
	gcPause := reg.Gauge("go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds (monotonic).")

	// The stats-registry aggregate is only meaningful when a registry is
	// attached (prefetchd -stats-json / -checkpoint); without one the
	// families are omitted rather than exporting misleading zeros.
	var obsAgg func()
	if o := s.cfg.Obs; o != nil && o.Stats != nil {
		stats := o.Stats
		hits := reg.CounterVec("prefetchlab_obs_cache_hits_total",
			"Simulated cache hits summed over recorded snapshots, by level.", "level")
		misses := reg.CounterVec("prefetchlab_obs_cache_misses_total",
			"Simulated cache misses summed over recorded snapshots, by level.", "level")
		useless := reg.CounterVec("prefetchlab_obs_useless_prefetch_evictions_total",
			"Prefetched lines evicted unused, by level and prefetch source.", "level", "source")
		issued := reg.CounterVec("prefetchlab_obs_prefetches_issued_total",
			"Prefetches issued, by source.", "source")
		useful := reg.Counter("prefetchlab_obs_sw_prefetches_useful_total",
			"Software prefetches that fetched an off-chip line.")
		redundant := reg.CounterVec("prefetchlab_obs_prefetches_redundant_total",
			"Prefetches filtered because the line was already cached, by source.", "source")
		hwDropped := reg.Counter("prefetchlab_obs_hw_prefetches_dropped_total",
			"Hardware prefetches dropped by throttling.")
		dramBytes := reg.Counter("prefetchlab_obs_dram_bytes_total",
			"Off-chip DRAM traffic in bytes summed over recorded snapshots.")
		dramTransfers := reg.Counter("prefetchlab_obs_dram_transfers_total",
			"Off-chip DRAM transfers summed over recorded snapshots.")
		snapshots := reg.Gauge("prefetchlab_obs_snapshots",
			"Machine snapshots currently in the stats registry.")
		skippedSnaps := reg.Gauge("prefetchlab_obs_skipped_cells",
			"Task cells currently marked skipped in the stats registry.")
		levelSet := func(vec *prom.CounterVec, l1, l2, llc int64) {
			vec.With("l1").Set(l1)
			vec.With("l2").Set(l2)
			vec.With("llc").Set(llc)
		}
		obsAgg = func() {
			a := stats.Aggregate()
			levelSet(hits, a.L1.Hits, a.L2.Hits, a.LLC.Hits)
			levelSet(misses, a.L1.Misses, a.L2.Misses, a.LLC.Misses)
			useless.With("l1", "sw").Set(a.L1.UselessSW)
			useless.With("l1", "hw").Set(a.L1.UselessHW)
			useless.With("l2", "sw").Set(a.L2.UselessSW)
			useless.With("l2", "hw").Set(a.L2.UselessHW)
			useless.With("llc", "sw").Set(a.LLC.UselessSW)
			useless.With("llc", "hw").Set(a.LLC.UselessHW)
			issued.With("sw").Set(a.SWIssued)
			issued.With("hw").Set(a.HWIssued)
			useful.Set(a.SWUseful)
			redundant.With("sw").Set(a.SWRedundant)
			redundant.With("hw").Set(a.HWRedundant)
			hwDropped.Set(a.HWDropped)
			dramBytes.Set(a.DRAMBytes)
			dramTransfers.Set(a.DRAMTransfers)
			snapshots.Set(float64(a.Snapshots))
			skippedSnaps.Set(float64(a.SkippedCells))
		}
	}

	reg.OnScrape(func() {
		curInflight := s.heavy.Inflight()
		curQueued := s.heavy.Queued()
		capInflight, capQueue := s.heavy.Capacity()
		inflight.Set(float64(curInflight))
		queued.Set(float64(curQueued))
		maxInflight.Set(float64(capInflight))
		queueDepth.Set(float64(capQueue))

		for _, ts := range s.heavy.Snapshots() {
			tenantAdmitted.With(ts.Name).Set(ts.Admitted)
			tenantShed.With(ts.Name, tenant.ShedRateLimit).Set(ts.ShedRate)
			tenantShed.With(ts.Name, tenant.ShedQuota).Set(ts.ShedQuota)
			tenantShed.With(ts.Name, tenant.ShedQueueFull).Set(ts.ShedQueue)
			tenantShed.With(ts.Name, tenant.ShedDraining).Set(ts.ShedDrain)
			tenantInflight.With(ts.Name).Set(float64(ts.Inflight))
			tenantQueued.With(ts.Name).Set(float64(ts.Queued))
		}
		if s.Draining() {
			draining.Set(1)
		} else {
			draining.Set(0)
		}
		uptime.Set(time.Since(s.start).Seconds())

		bs := s.breaker.Snapshot()
		for name, g := range breakerStates {
			if name == bs.State {
				g.Set(1)
			} else {
				g.Set(0)
			}
		}
		probeSuccess.Set(bs.ProbeSuccesses)
		probeFailure.Set(bs.ProbeFailures)

		sc := s.cfg.Obs.SchedCounts()
		tasksTotal.Set(sc.TasksAdded)
		tasksDone.Set(sc.TasksDone)
		tasksBusy.Set(float64(sc.TasksBusy))
		pending := sc.TasksAdded - sc.TasksDone - sc.TasksBusy
		if pending < 0 {
			pending = 0
		}
		tasksQueued.Set(float64(pending))
		fc := s.cfg.Obs.FaultCounts()
		retries.Set(fc.Retries)
		skippedCells.Set(fc.SkippedCells)
		replayed.Set(fc.ReplayedTasks)
		canceledBatches.Set(fc.CanceledBatches)

		for _, cc := range s.cfg.Obs.CacheCounts() {
			cacheReq.With(cc.Cache, "hit").Set(cc.Hits)
			cacheReq.With(cc.Cache, "miss").Set(cc.Misses)
		}

		cl := s.cfg.Obs.ClusterCounts()
		shardsDispatched.Set(cl.ShardsDispatched)
		shardsAcked.Set(cl.ShardsAcked)
		shardsRequeued.Set(cl.ShardsRequeued)
		shardsQuarantined.Set(cl.ShardsQuarantined)
		shardsLocal.Set(cl.ShardsLocal)
		tasksRemote.Set(cl.TasksRemote)
		tasksLedger.Set(cl.TasksLedger)
		workerDeaths.Set(cl.WorkerDeaths)
		workerRejoins.Set(cl.WorkerRejoins)

		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		gcCycles.Set(int64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)

		if obsAgg != nil {
			obsAgg()
		}
		if resultCacheSample != nil {
			resultCacheSample()
		}
	})
}
