package serve

import (
	"context"
	"net/http"

	"prefetchlab/internal/tenant"
)

// RequestIDHeader is the correlation header: prefetchd echoes a valid
// client-supplied value and assigns a fresh id otherwise, so every
// response carries exactly one X-Request-ID that also appears in the
// access log, in engine trace spans, and in client retry logs.
const RequestIDHeader = "X-Request-ID"

// reqInfo is the per-request record the middleware and handlers fill in
// cooperatively: the middleware owns id/tenant/status/duration, serveHeavy
// adds endpoint, queue wait, engine time, tier and cache outcome. One
// access-log line is emitted from it when the request finishes.
type reqInfo struct {
	id         string
	endpoint   Endpoint
	tenant     string         // tenant name, or "unknown" for a bad API key
	tenantRef  *tenant.Tenant // nil when the API key was not recognized
	tier       string
	cache      string  // "hit" / "miss" on cacheable heavy requests, else ""
	queueWait  float64 // seconds heavy requests waited for a slot
	engineTime float64 // seconds spent executing the engine run
	heavy      bool
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// reqInfoFrom returns the request record, or nil outside the middleware.
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// RequestIDFrom returns the request's correlation id, or "" outside the
// serving middleware.
func RequestIDFrom(ctx context.Context) string {
	if ri := reqInfoFrom(ctx); ri != nil {
		return ri.id
	}
	return ""
}

// validRequestID vets a client-supplied correlation id before echoing it:
// 1..64 characters of [A-Za-z0-9._-], so log lines and response headers
// cannot be polluted with control bytes or unbounded payloads.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// statusWriter records the status code and body bytes of a response for
// the access log and the per-endpoint size counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// statusCode returns the recorded status, defaulting to 200 for handlers
// that wrote a body without an explicit header.
func (w *statusWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
