package serve

// Endpoint is the canonical label of one served route. The same value is
// used everywhere a route is named — the per-route request counters in the
// JSON metrics snapshot, the endpoint label on every Prometheus series,
// the access log, and request trace spans — so dashboards, logs and traces
// join on one vocabulary instead of three near-identical spellings.
type Endpoint string

// The endpoint table. Values are the historical route labels of the JSON
// metrics "routes" map, so existing dashboards keep working.
const (
	EndpointHealthz   Endpoint = "healthz"
	EndpointReadyz    Endpoint = "readyz"
	EndpointFigures   Endpoint = "figures"
	EndpointFigure    Endpoint = "figures/{name}"
	EndpointMRC       Endpoint = "mrc"
	EndpointMix       Endpoint = "mix"
	EndpointShards    Endpoint = "shards/run"
	EndpointStats     Endpoint = "stats"
	EndpointMetrics   Endpoint = "metrics"      // GET /api/v1/metrics (JSON)
	EndpointProm      Endpoint = "metrics.prom" // GET /metrics (Prometheus text)
	EndpointUnmatched Endpoint = "other"        // fell through the mux
)

// Endpoints lists every routed endpoint label (excluding the "other"
// fall-through), in registration order — for docs and tests.
func Endpoints() []Endpoint {
	return []Endpoint{
		EndpointHealthz, EndpointReadyz, EndpointFigures, EndpointFigure,
		EndpointMRC, EndpointMix, EndpointShards, EndpointStats, EndpointMetrics, EndpointProm,
	}
}
