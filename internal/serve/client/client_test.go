package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prefetchlab/internal/serve"
)

// testClient builds a client against url with instant injectable sleep,
// recording every delay, and a pinned jitter draw.
func testClient(url string, randDraw float64) (*Client, *[]time.Duration) {
	var delays []time.Duration
	c := New(Config{
		BaseURL:     url,
		MaxRetries:  4,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		Rand:        func() float64 { return randDraw },
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return ctx.Err()
		},
	})
	return c, &delays
}

func TestRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"admission queue full","kind":"shed"}`)
			return
		}
		fmt.Fprint(w, "figure body")
	}))
	defer ts.Close()
	c, delays := testClient(ts.URL, 0.5)
	body, err := c.Get(context.Background(), "/api/v1/figures/table1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(body) != "figure body" {
		t.Fatalf("body = %q", body)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	// Retry-After (1s) exceeds both jittered backoffs, so it wins.
	if len(*delays) != 2 || (*delays)[0] != time.Second || (*delays)[1] != time.Second {
		t.Fatalf("delays = %v, want [1s 1s]", *delays)
	}
}

func TestNoRetryOnClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad scale","kind":"bad_request"}`)
	}))
	defer ts.Close()
	c, delays := testClient(ts.URL, 0.5)
	_, err := c.Get(context.Background(), "/api/v1/figures/table1?scale=bogus")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest || se.Kind != "bad_request" {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}
	if se.Temporary() {
		t.Fatal("400 must not be temporary")
	}
	if calls.Load() != 1 || len(*delays) != 0 {
		t.Fatalf("calls = %d delays = %v, want a single attempt", calls.Load(), *delays)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining","kind":"draining"}`)
	}))
	defer ts.Close()
	c, _ := testClient(ts.URL, 0.5)
	_, err := c.Get(context.Background(), "/healthz")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 StatusError", err)
	}
	if calls.Load() != 5 { // 1 initial + MaxRetries(4)
		t.Fatalf("calls = %d, want 5", calls.Load())
	}
}

func TestBackoffScheduleAndJitterBounds(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second})
	wantPre := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
		5 * time.Second, 5 * time.Second,
	}
	for i, want := range wantPre {
		if got := c.backoff(i); got != want {
			t.Fatalf("backoff(%d) = %s, want %s", i, got, want)
		}
	}
	// Jitter draws stay in [d/2, d] at the extremes of the rand range.
	for _, draw := range []float64{0, 0.25, 0.5, 0.9999} {
		cj := New(Config{BaseURL: "http://unused", Rand: func() float64 { return draw }})
		for _, d := range []time.Duration{100 * time.Millisecond, time.Second, 5 * time.Second} {
			j := cj.jitter(d, "jit-test", 0)
			if j < d/2 || j > d {
				t.Fatalf("jitter(%s) with draw %g = %s, outside [%s, %s]", d, draw, j, d/2, d)
			}
		}
	}
	if got := c.jitter(0, "jit-test", 0); got != 0 {
		t.Fatalf("jitter(0) = %s, want 0", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{" 7 ", 7 * time.Second},
		{"-3", 0},
		{"banana", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // past dates mean "now"
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", c.header, got, c.want)
		}
	}
}

func TestRetryAfterHTTPDateHonored(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", now.Add(3*time.Second).Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"breaker open","kind":"breaker_open"}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	var delays []time.Duration
	c := New(Config{
		BaseURL: ts.URL,
		Rand:    func() float64 { return 0 },
		Now:     func() time.Time { return now },
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	})
	if _, err := c.Get(context.Background(), "/x"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(delays) != 1 || delays[0] != 3*time.Second {
		t.Fatalf("delays = %v, want [3s] from HTTP-date Retry-After", delays)
	}
}

func TestDeadlineShortCircuit(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"shed","kind":"shed"}`)
	}))
	defer ts.Close()
	slept := false
	c := New(Config{
		BaseURL: ts.URL,
		Rand:    func() float64 { return 0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = true
			return nil
		},
	})
	// Deadline 5s away, server demands 30s: the client must fail fast with
	// the typed short-circuit error, without sleeping or retrying.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(5*time.Second))
	defer cancel()
	_, err := c.Get(ctx, "/x")
	if !errors.Is(err, ErrDeadlineShortCircuit) {
		t.Fatalf("err = %v, want ErrDeadlineShortCircuit", err)
	}
	if slept {
		t.Fatal("client slept into a guaranteed deadline miss")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	// The original failure remains visible for diagnosis.
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("short-circuit error lost the last attempt: %v", err)
	}
}

func TestCanceledContextNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"x","kind":"draining"}`)
	}))
	defer ts.Close()
	c, _ := testClient(ts.URL, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Get(ctx, "/x")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("calls = %d, want 0 (pre-canceled context)", calls.Load())
	}
}

func TestTransportErrorsRetried(t *testing.T) {
	// A server that is immediately closed: every attempt is a transport
	// error, all retries burn, and the final error wraps the transport
	// failure.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	var delays []time.Duration
	c := New(Config{
		BaseURL:    url,
		MaxRetries: 2,
		Rand:       func() float64 { return 0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	})
	_, err := c.Get(context.Background(), "/healthz")
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want transport error", err)
	}
	if len(delays) != 2 {
		t.Fatalf("delays = %v, want 2 retries", delays)
	}
}

// TestClientAgainstBreakerHalfOpenProbe drives the real serve.Breaker
// through the client: the breaker opens on failures, rejects with
// Retry-After while open, admits exactly one half-open probe after the
// cooldown, and the client's retry loop rides the hints to the eventual
// success.
func TestClientAgainstBreakerHalfOpenProbe(t *testing.T) {
	b := serve.NewBreaker(2, 50*time.Millisecond)
	var engineHealthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		report, err := b.Allow()
		if err != nil {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"breaker open","kind":"breaker_open"}`)
			return
		}
		if !engineHealthy.Load() {
			report(serve.Failure)
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"engine failed","kind":"engine"}`)
			return
		}
		report(serve.Success)
		fmt.Fprint(w, "recovered")
	}))
	defer ts.Close()

	// Two engine failures open the breaker (500s are not retried by the
	// client, so drive them directly).
	for i := 0; i < 2; i++ {
		c, _ := testClient(ts.URL, 0)
		if _, err := c.Get(context.Background(), "/x"); err == nil {
			t.Fatal("expected failure while engine is down")
		}
	}
	if got := b.State(); got != serve.BreakerOpen {
		t.Fatalf("breaker = %s, want open", got)
	}

	// The engine recovers. A retrying client first hits the open breaker
	// (503 + hint), then its retry lands as the half-open probe and
	// succeeds, closing the breaker.
	engineHealthy.Store(true)
	var delays []time.Duration
	c := New(Config{
		BaseURL: ts.URL,
		Rand:    func() float64 { return 0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			delays = append(delays, d)
			time.Sleep(60 * time.Millisecond) // let the real cooldown elapse
			return nil
		},
	})
	body, err := c.Get(context.Background(), "/x")
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if string(body) != "recovered" {
		t.Fatalf("body = %q", body)
	}
	if got := b.State(); got != serve.BreakerClosed {
		t.Fatalf("breaker = %s, want closed after successful probe", got)
	}
	if len(delays) == 0 || delays[0] != time.Second {
		t.Fatalf("delays = %v, want the server's Retry-After hint first", delays)
	}
	snap := b.Snapshot()
	if snap.HalfOpenProbes != 1 {
		t.Fatalf("probes = %d, want exactly 1", snap.HalfOpenProbes)
	}
}

func TestRetryLogsCarryRequestID(t *testing.T) {
	var calls atomic.Int64
	var gotIDs []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotIDs = append(gotIDs, r.Header.Get(RequestIDHeader))
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining","kind":"drain"}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	c := New(Config{
		BaseURL: ts.URL,
		Rand:    func() float64 { return 0.5 },
		Sleep:   func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Logger:  slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	const id = "cli-corr-007"
	if _, err := c.Get(WithRequestID(context.Background(), id), "/x"); err != nil {
		t.Fatalf("Get: %v", err)
	}

	// Both attempts carried the same correlation id on the wire.
	if len(gotIDs) != 2 || gotIDs[0] != id || gotIDs[1] != id {
		t.Fatalf("request ids on the wire = %v, want [%s %s]", gotIDs, id, id)
	}
	// The retry decision was logged with that id, the attempt number and the
	// Retry-After override that won over the backoff schedule.
	logs := logBuf.String()
	for _, want := range []string{
		`"msg":"retrying request"`,
		`"request_id":"` + id + `"`,
		`"attempt":1`,
		`"retry_after_ms":2000`,
	} {
		if !strings.Contains(logs, want) {
			t.Fatalf("retry log missing %s:\n%s", want, logs)
		}
	}
}

func TestGeneratedRequestIDStableAcrossAttempts(t *testing.T) {
	var gotIDs []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotIDs = append(gotIDs, r.Header.Get(RequestIDHeader))
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	c, _ := testClient(ts.URL, 0.5)
	if _, err := c.Get(context.Background(), "/x"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(gotIDs) != 2 || gotIDs[0] == "" || gotIDs[0] != gotIDs[1] {
		t.Fatalf("generated id not stable across attempts: %v", gotIDs)
	}
	if !strings.HasPrefix(gotIDs[0], "cli-") {
		t.Fatalf("generated id = %q, want cli- prefix", gotIDs[0])
	}
}
