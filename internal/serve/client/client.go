// Package client is the well-behaved consumer of the prefetchd API: it
// retries shed and transient responses (429/503/504 and transport errors)
// with capped exponential backoff and jitter, honors Retry-After hints,
// and short-circuits as soon as the caller's deadline can no longer be
// met instead of sleeping through it.
package client

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the correlation header sent with every request; the
// server echoes it, so one id joins client retry logs, the server access
// log and engine trace spans.
const RequestIDHeader = "X-Request-ID"

// requestIDKey carries an explicit correlation id through a context.
type requestIDKey struct{}

// WithRequestID returns a context whose requests carry id in
// X-Request-ID. An empty id leaves the context unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the correlation id set by WithRequestID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// StatusError is a non-200 response from the server, with the typed error
// envelope decoded and any Retry-After hint attached.
type StatusError struct {
	Status     int
	Kind       string
	Message    string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	return fmt.Sprintf("client: server returned %d (%s): %s", e.Status, e.Kind, msg)
}

// Temporary reports whether the response is worth retrying: load shedding,
// drain/breaker rejections and deadline expiries are; 4xx client mistakes
// are not.
func (e *StatusError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	default:
		return false
	}
}

// ErrDeadlineShortCircuit marks a retry abandoned because the caller's
// context would expire before the next attempt could start.
var ErrDeadlineShortCircuit = errors.New("client: deadline would expire before next retry")

// Config assembles a Client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8437".
	BaseURL string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxRetries caps retry attempts after the first try (default 4;
	// negative disables retries).
	MaxRetries int
	// BaseBackoff seeds the exponential schedule (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff delay (default 5s).
	MaxBackoff time.Duration
	// Rand, when non-nil, supplies jitter draws in [0, 1) and overrides the
	// default schedule. By default jitter is keyed on (request id, attempt):
	// deterministic for a pinned id — so tests and replayed retry chains see
	// the same backoff schedule — while distinct ids still spread across the
	// jitter window (generated ids carry per-process entropy).
	Rand func() float64
	// Sleep waits between attempts (default context-aware timer sleep).
	// Injectable so tests run instantly and record the chosen delays.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the clock used for HTTP-date Retry-After parsing and deadline
	// short-circuiting (default time.Now).
	Now func() time.Time
	// Logger, when non-nil, records one debug line per retry decision
	// (attempt, backoff, Retry-After override, request id) and one per
	// deadline short-circuit. Nil disables logging.
	Logger *slog.Logger
}

// Client calls the prefetchd API with retry and backoff.
type Client struct {
	cfg  Config
	ids  atomic.Int64
	base string // request-id base token for generated ids
}

// New builds a client, applying defaults.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Client{cfg: cfg, base: fmt.Sprintf("cli-%08x", uint32(cfg.Now().UnixNano()))}
}

// requestID resolves the correlation id of one logical Get: the explicit
// WithRequestID value, or a generated chain id shared by all attempts.
func (c *Client) requestID(ctx context.Context) string {
	if id := RequestIDFrom(ctx); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", c.base, c.ids.Add(1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the pre-jitter delay of one retry attempt (0-based):
// BaseBackoff doubling per attempt, capped at MaxBackoff.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= c.cfg.MaxBackoff {
			return c.cfg.MaxBackoff
		}
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	return d
}

// jitter spreads a delay over [d/2, d], so synchronized clients do not
// retry in lockstep. The draw is keyed on (request id, attempt) — the same
// retry of the same chain always lands on the same delay, independent of
// process-global RNG state — unless an explicit Config.Rand overrides it.
func (c *Client) jitter(d time.Duration, id string, attempt int) time.Duration {
	if d <= 0 {
		return 0
	}
	half := d / 2
	draw := keyedDraw(id, attempt)
	if c.cfg.Rand != nil {
		draw = c.cfg.Rand()
	}
	return half + time.Duration(draw*float64(d-half))
}

// keyedDraw hashes (id, attempt) into a uniform draw in [0, 1).
func keyedDraw(id string, attempt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// parseRetryAfter resolves a Retry-After header: delta-seconds or an
// HTTP-date (relative to now). Returns 0 when absent or unparseable.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// Get fetches one API path (e.g. "/api/v1/figures/table1" or a path with
// a query string), retrying temporary failures until ctx or the retry
// budget runs out. It returns the response body on 200.
func (c *Client) Get(ctx context.Context, path string) ([]byte, error) {
	id := c.requestID(ctx)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
			return nil, err
		}
		body, err := c.once(ctx, path, id)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if attempt >= c.cfg.MaxRetries || !temporary(err) {
			return nil, err
		}
		backoff := c.jitter(c.backoff(attempt), id, attempt)
		delay := backoff
		// A server hint overrides a shorter schedule: hammering before the
		// hinted time is guaranteed wasted work.
		var retryAfter time.Duration
		var se *StatusError
		if errors.As(err, &se) {
			retryAfter = se.RetryAfter
		}
		if retryAfter > delay {
			delay = retryAfter
		}
		// Deadline short-circuit: if the wait alone would outlive the
		// caller's deadline, fail now with a typed error instead of
		// sleeping into a guaranteed context error.
		if deadline, ok := ctx.Deadline(); ok && c.cfg.Now().Add(delay).After(deadline) {
			c.cfg.Logger.Debug("retry abandoned: deadline short-circuit",
				"request_id", id, "path", path, "attempt", attempt+1,
				"delay_ms", float64(delay)/float64(time.Millisecond), "error", err.Error())
			return nil, fmt.Errorf("%w after %d attempt(s): %w", ErrDeadlineShortCircuit, attempt+1, err)
		}
		c.cfg.Logger.Debug("retrying request",
			"request_id", id, "path", path, "attempt", attempt+1,
			"backoff_ms", float64(backoff)/float64(time.Millisecond),
			"retry_after_ms", float64(retryAfter)/float64(time.Millisecond),
			"delay_ms", float64(delay)/float64(time.Millisecond),
			"error", err.Error())
		if serr := c.cfg.Sleep(ctx, delay); serr != nil {
			return nil, fmt.Errorf("%w (last attempt: %w)", serr, err)
		}
	}
}

// once performs a single HTTP attempt, stamped with the chain's
// correlation id.
func (c *Client) once(ctx context.Context, path, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(RequestIDHeader, id)
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &transportError{err: err}
	}
	if resp.StatusCode == http.StatusOK {
		return body, nil
	}
	se := &StatusError{
		Status:     resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.cfg.Now()),
	}
	var envelope struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if jerr := json.Unmarshal(body, &envelope); jerr == nil {
		se.Kind, se.Message = envelope.Kind, envelope.Error
	} else {
		se.Message = strings.TrimSpace(string(body))
	}
	return nil, se
}

// transportError wraps a connection-level failure (connect refused, reset,
// etc.) — always worth retrying.
type transportError struct{ err error }

func (e *transportError) Error() string { return fmt.Sprintf("client: transport: %v", e.err) }
func (e *transportError) Unwrap() error { return e.err }

// temporary classifies an attempt error as retryable.
func temporary(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	var te *transportError
	return errors.As(err, &te)
}

// Figure fetches one rendered figure, optionally with query overrides.
func (c *Client) Figure(ctx context.Context, name string, query url.Values) (string, error) {
	path := "/api/v1/figures/" + url.PathEscape(name)
	if len(query) > 0 {
		path += "?" + query.Encode()
	}
	body, err := c.Get(ctx, path)
	return string(body), err
}

// Health fetches and decodes /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	body, err := c.Get(ctx, "/healthz")
	if err != nil {
		return nil, err
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("client: bad healthz body: %w", err)
	}
	return h, nil
}
