package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBackoffSchedulePinned is the regression test for task-keyed retry
// jitter: a retry chain with a pinned request id must produce exactly this
// backoff schedule, byte-for-byte, on every run and in every process. The
// literals are the [d/2, d] jitter window applied to the 100ms-doubling
// schedule with the keyed draw for ("pin-chain", attempt) — if the hashing
// or the schedule changes, this fails.
func TestBackoffSchedulePinned(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	run := func() []time.Duration {
		var delays []time.Duration
		c := New(Config{
			BaseURL:     srv.URL,
			MaxRetries:  4,
			BaseBackoff: 100 * time.Millisecond,
			MaxBackoff:  5 * time.Second,
			Sleep: func(ctx context.Context, d time.Duration) error {
				delays = append(delays, d)
				return nil
			},
		})
		ctx := WithRequestID(context.Background(), "pin-chain")
		if _, err := c.Get(ctx, "/api/v1/figures/table1"); err == nil {
			t.Fatal("Get against an always-503 server succeeded")
		}
		return delays
	}

	want := []time.Duration{
		69251182 * time.Nanosecond,
		150603770 * time.Nanosecond,
		325410353 * time.Nanosecond,
		699226331 * time.Nanosecond,
	}
	got := run()
	if len(got) != len(want) {
		t.Fatalf("retry chain slept %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (task-keyed jitter must be deterministic)", i, got[i], want[i])
		}
	}
	// The schedule is a pure function of the request id: a second chain in
	// the same process (fresh client, fresh connections) repeats it exactly.
	again := run()
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("second chain delay[%d] = %v, want %v", i, again[i], want[i])
		}
	}
}

// TestBackoffJitterSpreadsAcrossIDs checks the other half of the jitter
// contract: distinct request ids land on distinct points of the [d/2, d]
// window, so de-synchronizing concurrent clients still works without
// process-global RNG.
func TestBackoffJitterSpreadsAcrossIDs(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second})
	d := time.Second
	seen := make(map[time.Duration]bool)
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		j := c.jitter(d, id, 1)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%s, %q) = %v, outside [%v, %v]", d, id, j, d/2, d)
		}
		seen[j] = true
	}
	if len(seen) < 6 {
		t.Fatalf("8 ids produced only %d distinct delays — keyed jitter is not spreading", len(seen))
	}
}
