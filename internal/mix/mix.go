// Package mix implements the mixed-workload methodology of §VII-C: random
// four-application mixes run in parallel on the four cores of a simulated
// socket, each application restarting on completion so contention persists
// until every application has finished at least once. The baseline for
// every mix is the same mix with all prefetching off.
package mix

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/metrics"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/workloads"
)

// Generate draws n mixes of four distinct benchmarks from names, seeded for
// reproducibility (the paper uses 180 randomly generated mixes). Mixes are
// deduplicated as ordered core assignments, so a pool of k names admits at
// most k·(k-1)·(k-2)·(k-3) distinct mixes; asking for more is an error
// rather than a rejection-sampling livelock.
func Generate(n int, seed int64, names []string) ([][]string, error) {
	if len(names) < 4 {
		return nil, fmt.Errorf("mix: need at least four benchmarks, have %d", len(names))
	}
	possible := len(names) * (len(names) - 1) * (len(names) - 2) * (len(names) - 3)
	if n > possible {
		return nil, fmt.Errorf("mix: %d mixes requested but only %d distinct mixes exist over %d benchmarks (lower -mixes or widen -benches)",
			n, possible, len(names))
	}
	r := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([][]string, 0, n)
	for len(out) < n {
		perm := r.Perm(len(names))[:4]
		m := []string{names[perm[0]], names[perm[1]], names[perm[2]], names[perm[3]]}
		key := fmt.Sprint(m)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, m)
	}
	return out, nil
}

// Result holds one mix run under one policy.
type Result struct {
	Names   []string
	Policy  pipeline.Policy
	Apps    []cpu.Result
	Traffic int64 // Σ per-app off-chip traffic up to each first completion
}

// appTraffic sums per-app traffic snapshots.
func appTraffic(apps []cpu.Result) int64 {
	var t int64
	for _, a := range apps {
		t += a.Stats.TotalTraffic()
	}
	return t
}

// Cycles returns the per-app first-completion times.
func (r Result) Cycles() []int64 {
	out := make([]int64, len(r.Apps))
	for i, a := range r.Apps {
		out[i] = a.Cycles
	}
	return out
}

// Makespan returns the time at which the last application first completed.
func (r Result) Makespan() int64 {
	var m int64
	for _, a := range r.Apps {
		if a.Cycles > m {
			m = a.Cycles
		}
	}
	return m
}

// AvgBandwidthGBps returns the average off-chip bandwidth over the mix.
func (r Result) AvgBandwidthGBps(mach machine.Machine) float64 {
	ms := r.Makespan()
	if ms == 0 {
		return 0
	}
	return mach.GBps(float64(r.Traffic) / float64(ms))
}

// Comparison holds one mix evaluated against its no-prefetching baseline.
// Policies whose simulation was abandoned under the engine's failure budget
// are absent from ByPolicy and listed in Skipped instead.
type Comparison struct {
	Names    []string
	Base     Result
	ByPolicy map[pipeline.Policy]Result
	Skipped  []SkippedPolicy
}

// SkippedPolicy records a policy run the engine gave up on.
type SkippedPolicy struct {
	Policy pipeline.Policy
	Reason string
}

// orZero collapses a metrics size-mismatch error to the documented zero
// value. Inside a Comparison the baseline and every policy run simulate
// the same mix, so the app counts always agree and the error path is
// unreachable; asking for a policy the mix never ran yields 0.
func orZero(v float64, err error) float64 {
	if err != nil {
		return 0
	}
	return v
}

// WS returns the weighted speedup of a policy relative to the mix baseline
// (0 for a policy the mix was not run under).
func (c *Comparison) WS(p pipeline.Policy) float64 {
	return orZero(metrics.WeightedSpeedup(c.Base.Cycles(), c.ByPolicy[p].Cycles()))
}

// FS returns the fair speedup of a policy relative to the mix baseline
// (0 for a policy the mix was not run under).
func (c *Comparison) FS(p pipeline.Policy) float64 {
	return orZero(metrics.FairSpeedup(c.Base.Cycles(), c.ByPolicy[p].Cycles()))
}

// QoS returns the QoS degradation of a policy relative to the mix baseline
// (0 for a policy the mix was not run under).
func (c *Comparison) QoS(p pipeline.Policy) float64 {
	return orZero(metrics.QoS(c.Base.Cycles(), c.ByPolicy[p].Cycles()))
}

// TrafficDelta returns the relative off-chip traffic change of a policy.
func (c *Comparison) TrafficDelta(p pipeline.Policy) float64 {
	return metrics.Delta(c.Base.Traffic, c.ByPolicy[p].Traffic)
}

// Runner executes mixes. It is safe for concurrent RunOne calls: the
// profiler cache is single-flight and every policy run builds its own
// memory hierarchy.
type Runner struct {
	Prof *pipeline.Profiler
	Mach machine.Machine
	// ProfileInput is the input used for profiling (reference input).
	ProfileInput workloads.Input
	// RunInput, when non-nil, selects the input each mix slot runs with
	// (§VII-D input sensitivity); it receives the mix index and slot and
	// returns the run input. Nil runs the profile input. It must be a pure
	// function of its arguments — policy runs of a slot may evaluate it
	// concurrently and expect the same answer.
	RunInput func(mixIdx, slot int) workloads.Input
	// Pool fans the baseline + per-policy simulations of one mix out
	// across engine workers. The zero value uses every CPU; callers that
	// already fan out across mixes should pass sched.Serial.
	Pool sched.Pool
	// Obs, when non-nil, receives a machine snapshot per policy run. Keys
	// are prefixed with Scope (default "mix/<machine>") so different
	// studies over the same mixes stay distinct in the registry.
	Obs   *obs.Obs
	Scope string
}

// snapshotKey builds the deterministic registry key of one policy run.
func (r *Runner) snapshotKey(mixIdx int, names []string, policy pipeline.Policy) string {
	scope := r.Scope
	if scope == "" {
		scope = "mix/" + r.Mach.Name
	}
	return fmt.Sprintf("%s/mix%03d:%s/%s", scope, mixIdx, strings.Join(names, "+"), policy)
}

// RunOne executes one mix under the baseline and the given policies. The
// baseline and each policy are independent tasks (each simulates the full
// mix on its own hierarchy), merged in policy order.
func (r *Runner) RunOne(ctx context.Context, mixIdx int, names []string, policies []pipeline.Policy) (*Comparison, error) {
	run := func(policy pipeline.Policy) (Result, error) {
		compiled, err := r.variants(ctx, mixIdx, names, policy)
		if err != nil {
			return Result{}, err
		}
		h, err := pipeline.Hierarchy(r.Mach, len(compiled), policy)
		if err != nil {
			return Result{}, err
		}
		apps, err := cpu.RunMix(h, compiled)
		if err != nil {
			return Result{}, err
		}
		r.Obs.RecordMachine(r.snapshotKey(mixIdx, names, policy), r.Mach.Name, h, apps)
		return Result{Names: names, Policy: policy, Apps: apps, Traffic: appTraffic(apps)}, nil
	}
	outs, err := sched.MapOutcomes(ctx, r.Pool, 1+len(policies), func(i int) (Result, error) {
		if i == 0 {
			return run(pipeline.Baseline)
		}
		return run(policies[i-1])
	})
	if err != nil {
		return nil, err
	}
	if outs[0].Skipped {
		// Without the baseline no relative metric of this mix is defined.
		return nil, fmt.Errorf("mix %03d baseline skipped: %w", mixIdx, outs[0].Err)
	}
	cmp := &Comparison{Names: names, Base: outs[0].Value, ByPolicy: make(map[pipeline.Policy]Result)}
	for i, p := range policies {
		if o := outs[i+1]; o.Skipped {
			cmp.Skipped = append(cmp.Skipped, SkippedPolicy{Policy: p, Reason: o.Err.Error()})
		} else {
			cmp.ByPolicy[p] = o.Value
		}
	}
	return cmp, nil
}

// variants resolves the compiled program of each mix slot for a policy.
func (r *Runner) variants(ctx context.Context, mixIdx int, names []string, policy pipeline.Policy) ([]*isa.Compiled, error) {
	out := make([]*isa.Compiled, len(names))
	for slot, name := range names {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		bp, err := r.Prof.Get(ctx, spec, r.ProfileInput)
		if err != nil {
			return nil, err
		}
		runIn := r.ProfileInput
		if r.RunInput != nil {
			runIn = r.RunInput(mixIdx, slot)
		}
		c, err := bp.Variant(ctx, r.Mach, policy, runIn)
		if err != nil {
			return nil, err
		}
		out[slot] = c
	}
	return out, nil
}
