package mix

import (
	"context"
	"testing"

	"prefetchlab/internal/machine"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/workloads"
)

// mustGenerate builds mixes from arguments the test knows are valid.
func mustGenerate(t *testing.T, n int, seed int64, names []string) [][]string {
	t.Helper()
	mixes, err := Generate(n, seed, names)
	if err != nil {
		t.Fatal(err)
	}
	return mixes
}

func TestGenerate(t *testing.T) {
	names := workloads.Names()
	mixes := mustGenerate(t, 20, 1, names)
	if len(mixes) != 20 {
		t.Fatalf("got %d mixes", len(mixes))
	}
	seen := map[string]bool{}
	valid := map[string]bool{}
	for _, n := range names {
		valid[n] = true
	}
	for _, m := range mixes {
		if len(m) != 4 {
			t.Fatalf("mix size %d", len(m))
		}
		distinct := map[string]bool{}
		for _, n := range m {
			if !valid[n] {
				t.Fatalf("unknown bench %q", n)
			}
			distinct[n] = true
		}
		if len(distinct) != 4 {
			t.Fatalf("mix has duplicates: %v", m)
		}
		key := m[0] + m[1] + m[2] + m[3]
		if seen[key] {
			t.Fatalf("duplicate mix %v", m)
		}
		seen[key] = true
	}
}

func TestGenerateRejectsShortRegistry(t *testing.T) {
	if _, err := Generate(3, 1, []string{"a", "b", "c"}); err == nil {
		t.Error("Generate accepted fewer than 4 benchmarks")
	}
}

func TestGenerateRejectsInfeasibleCount(t *testing.T) {
	// A 4-name pool admits exactly 4·3·2·1 = 24 ordered mixes. Asking
	// for more used to livelock in rejection sampling; it must error.
	four := []string{"a", "b", "c", "d"}
	if _, err := Generate(25, 1, four); err == nil {
		t.Error("Generate accepted 25 mixes from a 24-mix pool")
	}
	got := mustGenerate(t, 24, 1, four)
	if len(got) != 24 {
		t.Fatalf("exhaustive generation returned %d mixes, want 24", len(got))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, 5, 7, workloads.Names())
	b := mustGenerate(t, 5, 7, workloads.Names())
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("mix generation not deterministic")
			}
		}
	}
}

func TestRunOneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mix run is slow")
	}
	prof := pipeline.NewProfiler(sampler.Config{Period: 2048, Seed: 1})
	in := workloads.Input{ID: 0, Scale: 0.05}
	r := &Runner{Prof: prof, Mach: machine.AMDPhenomII(), ProfileInput: in}
	names := []string{"libquantum", "mcf", "omnetpp", "cigar"}
	cmp, err := r.RunOne(context.Background(), 0, names, []pipeline.Policy{pipeline.SWPrefNT, pipeline.HWPref})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Base.Apps) != 4 {
		t.Fatalf("baseline apps = %d", len(cmp.Base.Apps))
	}
	if cmp.Base.Traffic <= 0 {
		t.Fatal("no baseline traffic")
	}
	for _, p := range []pipeline.Policy{pipeline.SWPrefNT, pipeline.HWPref} {
		ws := cmp.WS(p)
		if ws <= 0 {
			t.Fatalf("%v WS = %g", p, ws)
		}
		if cmp.FS(p) > ws+1e-9 {
			t.Fatalf("%v: FS %g > WS %g (harmonic must not exceed arithmetic)", p, cmp.FS(p), ws)
		}
		if cmp.QoS(p) > 0 {
			t.Fatalf("%v: QoS %g > 0", p, cmp.QoS(p))
		}
	}
	if cmp.Base.Makespan() <= 0 {
		t.Fatal("makespan")
	}
	if bw := cmp.Base.AvgBandwidthGBps(machine.AMDPhenomII()); bw <= 0 {
		t.Fatal("bandwidth")
	}
}

func TestRunInputVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("mix run is slow")
	}
	prof := pipeline.NewProfiler(sampler.Config{Period: 2048, Seed: 1})
	in := workloads.Input{ID: 0, Scale: 0.05}
	r := &Runner{
		Prof: prof, Mach: machine.AMDPhenomII(), ProfileInput: in,
		RunInput: func(mixIdx, slot int) workloads.Input {
			return workloads.Input{ID: 1 + (slot % 3), Scale: 0.05}
		},
	}
	cmp, err := r.RunOne(context.Background(), 0, []string{"libquantum", "mcf", "gcc", "soplex"},
		[]pipeline.Policy{pipeline.SWPrefNT})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.WS(pipeline.SWPrefNT) <= 0 {
		t.Fatal("diff-input mix did not run")
	}
}
