package pipeline

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prefetchlab/internal/core"
	"prefetchlab/internal/machine"
)

func TestProfileRoundTrip(t *testing.T) {
	p := testProfiler()
	bp := getProfile(t, p, "libquantum")

	var buf bytes.Buffer
	if err := WriteProfile(&buf, bp.Spec.Name, bp.Samples); err != nil {
		t.Fatal(err)
	}
	name, samples, model, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "libquantum" {
		t.Fatalf("program = %q", name)
	}
	if samples.TotalRefs != bp.Samples.TotalRefs ||
		len(samples.Reuse) != len(bp.Samples.Reuse) ||
		len(samples.Strides) != len(bp.Samples.Strides) ||
		len(samples.Cold) != len(bp.Samples.Cold) {
		t.Fatal("samples lost in round trip")
	}
	// The refitted model must agree with the original at every standard
	// size (it is a pure function of the samples).
	for _, size := range []int64{8 << 10, 512 << 10, 6 << 20} {
		a := bp.Model.MissRatio(size)
		b := model.MissRatio(size)
		if a != b {
			t.Fatalf("model diverged at %d: %g vs %g", size, a, b)
		}
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, _, _, err := ReadProfile(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, _, _, err := ReadProfile(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestSerializedProfileDrivesAnalysis(t *testing.T) {
	// A profile written by one session can drive the analysis in another:
	// the plan derived from the deserialized samples matches the original.
	p := testProfiler()
	bp := getProfile(t, p, "libquantum")
	amd := machine.AMDPhenomII()
	orig, err := bp.PlansFor(context.Background(), amd)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteProfile(&buf, bp.Spec.Name, bp.Samples); err != nil {
		t.Fatal(err)
	}
	_, samples, model, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	params, err := bp.AnalysisParams(context.Background(), amd)
	if err != nil {
		t.Fatal(err)
	}
	params.EnableNT = true
	replay := core.Analyze(bp.Compiled, model, samples, params)
	if len(replay.Insertions) != len(orig.SWNT.Insertions) {
		t.Fatalf("replayed plan has %d insertions, original %d",
			len(replay.Insertions), len(orig.SWNT.Insertions))
	}
	for i := range replay.Insertions {
		if replay.Insertions[i] != orig.SWNT.Insertions[i] {
			t.Fatalf("insertion %d differs", i)
		}
	}
}
