package pipeline

import (
	"context"
	"testing"

	"prefetchlab/internal/machine"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/workloads"
)

var testInput = workloads.Input{ID: 0, Scale: 0.05}

func testProfiler() *Profiler {
	return NewProfiler(sampler.Config{Period: 1024, Seed: 3})
}

func getProfile(t *testing.T, p *Profiler, bench string) *BenchProfile {
	t.Helper()
	spec, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := p.Get(context.Background(), spec, testInput)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestProfileCaching(t *testing.T) {
	p := testProfiler()
	a := getProfile(t, p, "libquantum")
	b := getProfile(t, p, "libquantum")
	if a != b {
		t.Fatal("profile not cached")
	}
	if a.Samples.TotalRefs == 0 || a.Model.Samples() == 0 {
		t.Fatal("empty profile")
	}
}

func TestMeasureProducesCounters(t *testing.T) {
	p := testProfiler()
	bp := getProfile(t, p, "libquantum")
	m, err := bp.Measure(context.Background(), machine.AMDPhenomII())
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta <= 0 || m.MissLat <= 0 || m.Cycles <= 0 {
		t.Fatalf("measured = %+v", m)
	}
	m2, err := bp.Measure(context.Background(), machine.AMDPhenomII())
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatal("measurement not cached")
	}
}

func TestPlansDiffer(t *testing.T) {
	p := testProfiler()
	bp := getProfile(t, p, "libquantum")
	pl, err := bp.PlansFor(context.Background(), machine.AMDPhenomII())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.SWNT.Insertions) == 0 {
		t.Fatal("SW+NT plan empty for libquantum")
	}
	// The plain-SW plan must not contain NTA insertions.
	for _, ins := range pl.SW.Insertions {
		if ins.NTA {
			t.Fatal("SW plan contains NTA insertions")
		}
	}
	// The stride-centric plan prefetches at least as many loads as MDDLI.
	if len(pl.Stride.Insertions) < len(pl.SWNT.Insertions) {
		t.Fatalf("stride-centric %d < MDDLI %d insertions",
			len(pl.Stride.Insertions), len(pl.SWNT.Insertions))
	}
}

func TestVariantCachingAndPCStability(t *testing.T) {
	p := testProfiler()
	bp := getProfile(t, p, "mcf")
	amd := machine.AMDPhenomII()
	v1, err := bp.Variant(context.Background(), amd, SWPrefNT, testInput)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := bp.Variant(context.Background(), amd, SWPrefNT, testInput)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("variant not cached")
	}
	// Demand PC numbering is stable under insertion.
	if v1.NumDemandPCs != bp.Compiled.NumDemandPCs {
		t.Fatalf("demand PCs changed: %d vs %d", v1.NumDemandPCs, bp.Compiled.NumDemandPCs)
	}
	base, err := bp.Variant(context.Background(), amd, Baseline, testInput)
	if err != nil {
		t.Fatal(err)
	}
	if base.NumPCs() != bp.Compiled.NumPCs() {
		t.Fatal("baseline variant differs from original program")
	}
}

func TestVariantDifferentInputUsesProfilePlan(t *testing.T) {
	p := testProfiler()
	bp := getProfile(t, p, "libquantum")
	amd := machine.AMDPhenomII()
	ref0, err := bp.Variant(context.Background(), amd, SWPrefNT, testInput)
	if err != nil {
		t.Fatal(err)
	}
	other, err := bp.Variant(context.Background(), amd, SWPrefNT, workloads.Input{ID: 2, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if ref0 == other {
		t.Fatal("different inputs must compile separately")
	}
	if ref0.NumPCs() != other.NumPCs() {
		t.Fatal("plan application must preserve static shape across inputs")
	}
}

func TestRunSoloSpeedsUpStreamer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run is slow")
	}
	p := testProfiler()
	bp := getProfile(t, p, "libquantum")
	amd := machine.AMDPhenomII()
	m, err := bp.Measure(context.Background(), amd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bp.RunSolo(context.Background(), amd, SWPrefNT, testInput)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= m.Cycles {
		t.Fatalf("SW+NT (%d cycles) did not beat baseline (%d)", res.Cycles, m.Cycles)
	}
	if res.Stats.SWPrefIssued == 0 {
		t.Fatal("no software prefetches executed")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p := Baseline; p <= SWPrefL2; p++ {
		if p.String() == "" {
			t.Errorf("empty name for policy %d", int(p))
		}
	}
	if !HWPref.UsesHW() || !SWNTPlusHW.UsesHW() {
		t.Error("UsesHW wrong")
	}
	if Baseline.UsesHW() || SWPrefNT.UsesHW() {
		t.Error("UsesHW wrong for non-HW policies")
	}
}

func TestHierarchyPolicyConfig(t *testing.T) {
	amd := machine.AMDPhenomII()
	h, err := Hierarchy(amd, 1, SWPrefL2)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Config().SWPrefToL2 {
		t.Error("SWPrefL2 policy must set the L2-target flag")
	}
	h2, err := Hierarchy(amd, 4, SWNTPlusHW)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Config().HWPrefEnabled {
		t.Error("combined policy must enable hardware prefetching")
	}
}
