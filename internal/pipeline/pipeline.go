// Package pipeline wires the full optimization framework of the paper's
// Figure 1 end to end: build a benchmark, run the integrated sampling pass
// (data reuse + strides), fit the StatStack model, measure the per-machine
// cost/benefit inputs (Δ and the average L1-miss latency) on a baseline
// timing run, run the analyses, and produce the rewritten program variants
// each evaluated policy executes.
//
// A single input profile (the reference input) serves both target machines
// and all inputs, exactly as the paper optimizes both architectures from
// one profile (§VII) and evaluates input sensitivity by re-running the
// same binaries on different inputs (§VII-D).
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"prefetchlab/internal/analytic"
	"prefetchlab/internal/core"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/staticprof"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/stridecentric"
	"prefetchlab/internal/workloads"
)

// Policy selects how a benchmark is run.
type Policy int

// Policies, in the order the paper's figures report them.
const (
	// Baseline is the original program, hardware prefetching off.
	Baseline Policy = iota
	// HWPref is the original program with the machine's hardware
	// prefetchers enabled.
	HWPref
	// SWPref is MDDLI-guided software prefetching without cache bypassing
	// ("Software Pref.").
	SWPref
	// SWPrefNT is the full method: MDDLI + cache bypassing
	// ("Soft. Pref.+NT").
	SWPrefNT
	// StrideCentric is the prior-work baseline: prefetch all regular
	// strides, no filtering, no bypassing.
	StrideCentric
	// SWNTPlusHW combines SWPrefNT with hardware prefetching — the
	// combination §VIII-B2 (after Lee et al.) reports as harmful.
	SWNTPlusHW
	// SWPrefL2 runs the SWPref plan with prefetches filling only L2/LLC —
	// the "prefetches from L2 alone" ablation of §VII-A.
	SWPrefL2
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Baseline:
		return "Baseline"
	case HWPref:
		return "Hardware Pref."
	case SWPref:
		return "Software Pref."
	case SWPrefNT:
		return "Soft. Pref.+NT"
	case StrideCentric:
		return "Stride-centric"
	case SWNTPlusHW:
		return "SW+NT & HW"
	case SWPrefL2:
		return "SW Pref.→L2"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// UsesHW reports whether the policy enables the hardware prefetchers.
func (p Policy) UsesHW() bool { return p == HWPref || p == SWNTPlusHW }

// Measured holds the per-machine performance-counter measurements the
// analysis consumes (§V, §VI-A).
type Measured struct {
	Delta   float64 // average cycles per memory operation
	MissLat float64 // average latency per L1 load miss, cycles
	Cycles  int64   // baseline solo cycles (reused as the speedup baseline)
	Result  cpu.Result
}

// BenchProfile caches everything derived from one (benchmark, input) pair.
// All caches are single-flight (sched.OnceMap), so concurrent experiment
// workers asking for the same measurement, plan or variant share one
// computation instead of racing to duplicate it.
type BenchProfile struct {
	Spec  workloads.Spec
	Input workloads.Input

	Prog     *isa.Program
	Compiled *isa.Compiled
	Samples  *sampler.Samples
	Model    *statstack.Model

	obs      *obs.Obs // inherited from the Profiler; nil disables
	measured sched.OnceMap[string, Measured]
	plans    sched.OnceMap[string, *Plans]
	variants sched.OnceMap[variantKey, *isa.Compiled]

	coreOnce sync.Once
	core     analytic.Core

	staticOnce sync.Once
	static     *staticprof.Profile
	staticErr  error
}

// AnalyticCore returns the benchmark's analytic-tier inputs (StatStack
// model, instruction mix, latency response, strided fraction). The counting
// and latency-response passes run on first use and are cached for the
// profile's lifetime — so serving-layer sessions that share a Profiler also
// share the analytic model cache. Each call reports a hit or miss on the
// "analytic-core" cache to the profile's observability sinks.
func (bp *BenchProfile) AnalyticCore() analytic.Core {
	start := time.Now()
	hit := true
	bp.coreOnce.Do(func() {
		hit = false
		bp.core = analytic.NewCore(bp.Spec.Name, bp.Model, bp.Samples, bp.Compiled)
	})
	bp.obs.CacheDone("analytic-core", bp.Spec.Name, hit, start, time.Now())
	return bp.core
}

// StaticProfile returns the benchmark's static reuse/stride profile — the
// zero-execution tier (internal/staticprof) — computed on first use from
// the already-compiled program and cached for the profile's lifetime. Each
// call reports a hit or miss on the "static-profile" cache to the profile's
// observability sinks. The error (a typed staticprof failure for degenerate
// programs) is cached alongside the profile.
func (bp *BenchProfile) StaticProfile() (*staticprof.Profile, error) {
	start := time.Now()
	hit := true
	bp.staticOnce.Do(func() {
		hit = false
		bp.static, bp.staticErr = staticprof.Analyze(bp.Compiled, stridecentric.DefaultParams())
	})
	bp.obs.CacheDone("static-profile", bp.Spec.Name, hit, start, time.Now())
	return bp.static, bp.staticErr
}

// Plans groups the three software plans for one target machine.
type Plans struct {
	SWNT   *core.Plan // MDDLI + bypass
	SW     *core.Plan // MDDLI only
	Stride *core.Plan // stride-centric
}

type variantKey struct {
	mach   string
	policy Policy
	input  int
}

// Profiler builds and caches benchmark profiles. It is safe for concurrent
// use: simultaneous requests for the same (benchmark, input) pair share a
// single profiling run.
type Profiler struct {
	SamplerCfg sampler.Config
	obs        *obs.Obs
	cache      sched.OnceMap[string, *BenchProfile]
}

// NewProfiler creates a profiler with the given sampling configuration.
func NewProfiler(scfg sampler.Config) *Profiler {
	if scfg.Period <= 0 {
		scfg = sampler.DefaultConfig()
	}
	return &Profiler{SamplerCfg: scfg}
}

// SetObs attaches the observability sinks: profile-cache operations become
// trace events and every profile built afterwards records its measurement
// and solo-run snapshots in the stats registry. Call before any concurrent
// use; a nil o (the default) keeps everything off.
func (p *Profiler) SetObs(o *obs.Obs) {
	p.obs = o
	p.cache.Name = "profile"
	p.cache.Obs = o.CacheObserver()
}

// Get returns the profile of spec on the *reference* input, building it on
// first use: one functional trace drives both the sampler and nothing else
// (the paper's <30 % overhead sampling run). The sampler is a fresh,
// per-profile instance seeded from the profiler configuration, so profiles
// are identical no matter how many workers request them.
func (p *Profiler) Get(ctx context.Context, spec workloads.Spec, in workloads.Input) (*BenchProfile, error) {
	key := fmt.Sprintf("%s/%d/%g", spec.Name, in.ID, in.Scale)
	return p.cache.Do(key, func() (*BenchProfile, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prog, err := spec.Build(in)
		if err != nil {
			return nil, fmt.Errorf("pipeline: build %s: %w", spec.Name, err)
		}
		c, err := isa.Compile(prog)
		if err != nil {
			return nil, fmt.Errorf("pipeline: compile %s: %w", spec.Name, err)
		}
		s := sampler.New(p.SamplerCfg)
		isa.Trace(c, s)
		samples := s.Finish()
		bp := &BenchProfile{
			Spec:     spec,
			Input:    in,
			Prog:     prog,
			Compiled: c,
			Samples:  samples,
			Model:    statstack.Build(samples),
			obs:      p.obs,
		}
		bp.measured.Name, bp.measured.Obs = "measure:"+spec.Name, p.obs.CacheObserver()
		bp.plans.Name, bp.plans.Obs = "plans:"+spec.Name, p.obs.CacheObserver()
		bp.variants.Name, bp.variants.Obs = "variants:"+spec.Name, p.obs.CacheObserver()
		return bp, nil
	})
}

// Measure returns (computing and caching on first use) the baseline timing
// measurements of the benchmark alone on mach with hardware prefetching
// off — the paper's performance-counter step.
func (bp *BenchProfile) Measure(ctx context.Context, mach machine.Machine) (Measured, error) {
	return bp.measured.Do(mach.Name, func() (Measured, error) {
		if err := ctx.Err(); err != nil {
			return Measured{}, err
		}
		h, err := memsys.New(mach.MemConfig(1, false))
		if err != nil {
			return Measured{}, err
		}
		res, err := cpu.RunSingle(bp.Compiled, h)
		if err != nil {
			return Measured{}, err
		}
		bp.obs.RecordMachine(obs.SoloKey(mach.Name, bp.Spec.Name, bp.Input.ID, Baseline.String()),
			mach.Name, h, []cpu.Result{res})
		m := Measured{Cycles: res.Cycles, Result: res}
		if res.MemRefs > 0 {
			m.Delta = float64(res.Cycles) / float64(res.MemRefs)
		}
		if res.Stats.LoadL1Misses > 0 {
			m.MissLat = float64(res.Stats.MissLatencyCycles) / float64(res.Stats.LoadL1Misses)
		}
		return m, nil
	})
}

// AnalysisParams builds the core analysis parameters for a target machine
// from the machine geometry and the measured counters.
func (bp *BenchProfile) AnalysisParams(ctx context.Context, mach machine.Machine) (core.Params, error) {
	m, err := bp.Measure(ctx, mach)
	if err != nil {
		return core.Params{}, err
	}
	memLat := mach.DRAM.ServiceLat + mach.LLCLat + 14 // typical queue-free DRAM latency
	p := core.DefaultParams(mach.L1.Size, mach.L2.Size, mach.LLC.Size, mach.L2Lat, mach.LLCLat, memLat)
	p.Delta = m.Delta
	p.MissLat = m.MissLat
	return p, nil
}

// PlansFor returns (building and caching on first use) the three software
// prefetching plans for the target machine.
func (bp *BenchProfile) PlansFor(ctx context.Context, mach machine.Machine) (*Plans, error) {
	return bp.plans.Do(mach.Name, func() (*Plans, error) {
		params, err := bp.AnalysisParams(ctx, mach)
		if err != nil {
			return nil, err
		}
		pl := &Plans{}
		params.EnableNT = true
		pl.SWNT = core.Analyze(bp.Compiled, bp.Model, bp.Samples, params)
		params.EnableNT = false
		pl.SW = core.Analyze(bp.Compiled, bp.Model, bp.Samples, params)
		pl.Stride = stridecentric.Analyze(bp.Compiled, bp.Samples, stridecentric.DefaultParams())
		return pl, nil
	})
}

// planFor maps a policy to its plan (nil for plan-less policies).
func (pl *Plans) planFor(policy Policy) *core.Plan {
	switch policy {
	case SWPref, SWPrefL2:
		return pl.SW
	case SWPrefNT, SWNTPlusHW:
		return pl.SWNT
	case StrideCentric:
		return pl.Stride
	default:
		return nil
	}
}

// Variant returns (building and caching on first use) the compiled program
// that the policy runs on mach, for the given *run* input. Plans always
// come from the reference profile input — running them on other inputs is
// exactly the §VII-D input-sensitivity experiment.
func (bp *BenchProfile) Variant(ctx context.Context, mach machine.Machine, policy Policy, runInput workloads.Input) (*isa.Compiled, error) {
	key := variantKey{mach: mach.Name, policy: policy, input: runInput.ID}
	return bp.variants.Do(key, func() (*isa.Compiled, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var prog *isa.Program
		if runInput.ID == bp.Input.ID && runInput.ScaleEq(bp.Input) {
			prog = bp.Prog
		} else {
			var berr error
			if prog, berr = bp.Spec.Build(runInput); berr != nil {
				return nil, fmt.Errorf("pipeline: build %s: %w", bp.Spec.Name, berr)
			}
		}
		pl, err := bp.PlansFor(ctx, mach)
		if err != nil {
			return nil, err
		}
		if plan := pl.planFor(policy); plan != nil {
			rewritten, ierr := plan.Apply(prog)
			if ierr != nil {
				return nil, fmt.Errorf("pipeline: insert %s/%s: %w", bp.Spec.Name, policy, ierr)
			}
			return isa.Compile(rewritten)
		}
		return isa.Compile(prog)
	})
}

// Hierarchy builds the memory system a policy runs on.
func Hierarchy(mach machine.Machine, cores int, policy Policy) (*memsys.Hierarchy, error) {
	cfg := mach.MemConfig(cores, policy.UsesHW())
	cfg.SWPrefToL2 = policy == SWPrefL2
	return memsys.New(cfg)
}

// RunSolo runs one policy of one benchmark alone on mach and returns the
// result.
func (bp *BenchProfile) RunSolo(ctx context.Context, mach machine.Machine, policy Policy, runInput workloads.Input) (cpu.Result, error) {
	if err := ctx.Err(); err != nil {
		return cpu.Result{}, err
	}
	c, err := bp.Variant(ctx, mach, policy, runInput)
	if err != nil {
		return cpu.Result{}, err
	}
	h, err := Hierarchy(mach, 1, policy)
	if err != nil {
		return cpu.Result{}, err
	}
	res, err := cpu.RunSingle(c, h)
	if err != nil {
		return cpu.Result{}, err
	}
	bp.obs.RecordMachine(obs.SoloKey(mach.Name, bp.Spec.Name, runInput.ID, policy.String()),
		mach.Name, h, []cpu.Result{res})
	return res, nil
}
