package pipeline

import (
	"encoding/json"
	"fmt"
	"io"

	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
)

// The paper's framework is designed to work at the binary level so profiles
// can be collected once and reused by offline tooling (dynamic binary
// rewriting, cross-architecture analysis — §II, §VI-C). This file gives the
// profile a stable on-disk form: the raw sampling output serializes to
// JSON, and the model is refitted on load (it is derived data).

// profileFile is the serialized form of one sampling pass.
type profileFile struct {
	Version   int                    `json:"version"`
	Program   string                 `json:"program"`
	Period    int64                  `json:"period"`
	TotalRefs int64                  `json:"total_refs"`
	Reuse     []sampler.ReuseSample  `json:"reuse"`
	Strides   []sampler.StrideSample `json:"strides"`
	Cold      []sampler.ColdSample   `json:"cold"`
}

// profileVersion guards the format.
const profileVersion = 1

// WriteProfile serializes a sampling profile.
func WriteProfile(w io.Writer, program string, s *sampler.Samples) error {
	f := profileFile{
		Version:   profileVersion,
		Program:   program,
		Period:    s.Period,
		TotalRefs: s.TotalRefs,
		Reuse:     s.Reuse,
		Strides:   s.Strides,
		Cold:      s.Cold,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// ReadProfile deserializes a sampling profile and refits its StatStack
// model. The program name is returned so callers can check it matches the
// binary they are about to rewrite.
func ReadProfile(r io.Reader) (program string, s *sampler.Samples, model *statstack.Model, err error) {
	var f profileFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return "", nil, nil, fmt.Errorf("pipeline: decode profile: %w", err)
	}
	if f.Version != profileVersion {
		return "", nil, nil, fmt.Errorf("pipeline: profile version %d, want %d", f.Version, profileVersion)
	}
	s = &sampler.Samples{
		Period:    f.Period,
		TotalRefs: f.TotalRefs,
		Reuse:     f.Reuse,
		Strides:   f.Strides,
		Cold:      f.Cold,
	}
	return f.Program, s, statstack.Build(s), nil
}
