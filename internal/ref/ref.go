// Package ref defines the memory-reference model shared by the program
// interpreter, the cache hierarchy, the sampler and the analyses.
//
// A reference is one dynamic memory operation: a static instruction
// (identified by its PC) touching a byte address with a particular access
// kind. All caches in this repository use a fixed line size of 64 bytes,
// matching both machines evaluated in the paper.
package ref

import "fmt"

// LineBits is log2 of the cache line size.
const LineBits = 6

// LineSize is the cache line size in bytes (64 B on both the AMD Phenom II
// and the Intel i7-2600K evaluated in the paper).
const LineSize = 1 << LineBits

// PC identifies a static memory instruction. PCs are assigned densely by the
// assembler, so they double as indices into per-instruction tables.
type PC uint32

// InvalidPC marks "no instruction", e.g. hardware-generated references.
const InvalidPC PC = ^PC(0)

// Kind classifies a dynamic memory operation.
type Kind uint8

const (
	// Load is a demand load; the core blocks until the data arrives.
	Load Kind = iota
	// Store is a demand store (write-allocate, write-back).
	Store
	// Prefetch is a software prefetch into the whole hierarchy (PREFETCHT0).
	Prefetch
	// PrefetchNTA is a non-temporal software prefetch: it fills the L1 only
	// and the line is dropped, not installed into L2/LLC, on eviction.
	PrefetchNTA
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	case PrefetchNTA:
		return "prefetchnta"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsDemand reports whether the kind is a demand access (load or store) as
// opposed to a software prefetch.
func (k Kind) IsDemand() bool { return k == Load || k == Store }

// IsPrefetch reports whether the kind is a software prefetch.
func (k Kind) IsPrefetch() bool { return k == Prefetch || k == PrefetchNTA }

// Ref is one dynamic memory reference.
type Ref struct {
	PC   PC
	Addr uint64
	Kind Kind
}

// Line returns the cache-line address (byte address >> LineBits).
func (r Ref) Line() uint64 { return r.Addr >> LineBits }

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> LineBits }

// LineBase returns the first byte address of the line containing addr.
func LineBase(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// SameLine reports whether two byte addresses fall in the same cache line.
func SameLine(a, b uint64) bool { return LineAddr(a) == LineAddr(b) }
