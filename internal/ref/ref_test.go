package ref

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Load: "load", Store: "store", Prefetch: "prefetch", PrefetchNTA: "prefetchnta",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind: %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	if !Load.IsDemand() || !Store.IsDemand() {
		t.Error("loads and stores are demand accesses")
	}
	if Prefetch.IsDemand() || PrefetchNTA.IsDemand() {
		t.Error("prefetches are not demand accesses")
	}
	if !Prefetch.IsPrefetch() || !PrefetchNTA.IsPrefetch() {
		t.Error("prefetch kinds must report IsPrefetch")
	}
	if Load.IsPrefetch() || Store.IsPrefetch() {
		t.Error("demand kinds must not report IsPrefetch")
	}
}

func TestLineGeometry(t *testing.T) {
	if LineSize != 64 {
		t.Fatalf("line size = %d, want 64", LineSize)
	}
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 1 {
		t.Error("LineAddr boundaries wrong")
	}
	if LineBase(65) != 64 || LineBase(64) != 64 || LineBase(63) != 0 {
		t.Error("LineBase boundaries wrong")
	}
	if !SameLine(0, 63) || SameLine(63, 64) {
		t.Error("SameLine boundaries wrong")
	}
	r := Ref{Addr: 130}
	if r.Line() != 2 {
		t.Errorf("Ref.Line() = %d, want 2", r.Line())
	}
}

func TestLineGeometryProperties(t *testing.T) {
	// Every address lies within the line it maps to, and line bases are
	// 64-byte aligned.
	f := func(addr uint64) bool {
		base := LineBase(addr)
		return base%LineSize == 0 && addr >= base && addr-base < LineSize &&
			LineAddr(addr) == base/LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
