// Package faultinject provides a deterministic, task-keyed fault injector
// for chaos-testing the experiment engine. An Injector decides, purely from
// (batch, index, attempt) and a seed, whether a task attempt experiences a
// panic, a returned error, artificial latency, or a corrupted sample. The
// same spec and seed always produce the same faults at the same tasks, at
// any worker count, so chaos runs are reproducible.
//
// The Injector satisfies sched.FaultHook structurally; neither package
// imports the other.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Spec holds per-kind fault probabilities in [0,1] plus the seed that keys
// the deterministic draw. The probabilities are cumulative-summed, so their
// total must not exceed 1.
type Spec struct {
	Panic   float64 // probability an attempt panics
	Error   float64 // probability an attempt fails with an injected error
	Latency float64 // probability an attempt sleeps briefly before succeeding
	Corrupt float64 // probability an attempt fails with a CorruptError
	Seed    uint64
	// LatencyCap bounds injected sleeps. Zero keeps the 1 ms default that
	// keeps chaos suites fast; stuck-task tests raise it (key latms=N, in
	// milliseconds) so a latency fault genuinely wedges a task.
	LatencyCap time.Duration
}

// Parse reads a comma-separated spec like
//
//	panic=0.05,error=0.05,latency=0.01,corrupt=0.01,seed=1
//
// Unknown keys and rates outside [0,1] are errors. An empty string yields a
// zero Spec (no faults).
func Parse(s string) (Spec, error) {
	var sp Spec
	if strings.TrimSpace(s) == "" {
		return sp, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: bad field %q (want key=value)", field)
		}
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: bad seed %q: %v", val, err)
			}
			sp.Seed = seed
			continue
		}
		if key == "latms" {
			ms, err := strconv.ParseInt(val, 10, 64)
			if err != nil || ms < 1 || ms > maxLatencyCapMS {
				return Spec{}, fmt.Errorf("faultinject: bad latms %q (want 1..%d milliseconds)", val, maxLatencyCapMS)
			}
			sp.LatencyCap = time.Duration(ms) * time.Millisecond
			continue
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("faultinject: bad rate %q for %s: %v", val, key, err)
		}
		if rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("faultinject: rate %s=%v outside [0,1]", key, rate)
		}
		switch key {
		case "panic":
			sp.Panic = rate
		case "error":
			sp.Error = rate
		case "latency":
			sp.Latency = rate
		case "corrupt":
			sp.Corrupt = rate
		default:
			return Spec{}, fmt.Errorf("faultinject: unknown fault kind %q", key)
		}
	}
	if total := sp.Panic + sp.Error + sp.Latency + sp.Corrupt; total > 1 {
		return Spec{}, fmt.Errorf("faultinject: rates sum to %v > 1", total)
	}
	return sp, nil
}

// CorruptError marks a task whose sample was deliberately corrupted; callers
// treat it like any other task error, but tests can errors.As for it to
// verify corrupt faults are surfaced rather than silently absorbed.
type CorruptError struct {
	Batch string
	Index int
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("faultinject: corrupted sample in batch %q task %d", e.Batch, e.Index)
}

// maxLatency caps injected sleeps so chaos suites stay fast; raise it per
// spec with latms= (bounded by maxLatencyCapMS) to simulate a stuck task.
const (
	maxLatency      = time.Millisecond
	maxLatencyCapMS = 10 * 60 * 1000 // ten minutes
)

// latencyCap resolves the effective sleep bound for a spec.
func (s Spec) latencyCap() time.Duration {
	if s.LatencyCap > 0 {
		return s.LatencyCap
	}
	return maxLatency
}

// Injector draws one deterministic fault decision per task attempt.
type Injector struct {
	spec Spec

	panics    atomic.Int64
	errors    atomic.Int64
	latencies atomic.Int64
	corrupts  atomic.Int64
}

// New returns an Injector for the given spec.
func New(spec Spec) *Injector { return &Injector{spec: spec} }

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// Inject implements the scheduler's fault hook: it is called before each
// task attempt and may panic, sleep, or return an error. A nil *Injector
// injects nothing.
func (in *Injector) Inject(batch string, index, attempt int) error {
	if in == nil {
		return nil
	}
	u := draw(batch, index, attempt, in.spec.Seed)
	switch sp := in.spec; {
	case u < sp.Panic:
		in.panics.Add(1)
		// lint:allow nopanic (the injected panic IS the product: it exercises sched's recover/retry isolation in chaos tests)
		panic(fmt.Sprintf("faultinject: injected panic in batch %q task %d attempt %d", batch, index, attempt))
	case u < sp.Panic+sp.Error:
		in.errors.Add(1)
		return fmt.Errorf("faultinject: injected error in batch %q task %d attempt %d", batch, index, attempt)
	case u < sp.Panic+sp.Error+sp.Latency:
		in.latencies.Add(1)
		// Deterministic duration, bounded so suites stay quick. The sleep
		// itself perturbs timing only, never results.
		d := time.Duration(draw2(batch, index, attempt, in.spec.Seed)*float64(in.spec.latencyCap())) + time.Microsecond
		time.Sleep(d)
		return nil
	case u < sp.Panic+sp.Error+sp.Latency+sp.Corrupt:
		in.corrupts.Add(1)
		return &CorruptError{Batch: batch, Index: index}
	}
	return nil
}

// Counts reports how many faults of each kind have fired, keyed by kind
// name. Kinds that never fired are omitted.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	m := map[string]int64{}
	for kind, n := range map[string]int64{
		"panic":   in.panics.Load(),
		"error":   in.errors.Load(),
		"latency": in.latencies.Load(),
		"corrupt": in.corrupts.Load(),
	} {
		if n > 0 {
			m[kind] = n
		}
	}
	return m
}

// String summarises fired fault counts, deterministically ordered.
func (in *Injector) String() string {
	counts := in.Counts()
	if len(counts) == 0 {
		return "faults: none"
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return "faults: " + strings.Join(parts, " ")
}

// draw maps (batch, index, attempt, seed) to a uniform float in [0,1).
func draw(batch string, index, attempt int, seed uint64) float64 {
	return float64(hash(batch, index, attempt, seed)>>11) / float64(1<<53)
}

// draw2 is an independent second stream used for latency durations.
func draw2(batch string, index, attempt int, seed uint64) float64 {
	return float64(hash(batch, index, attempt, seed^0x9e3779b97f4a7c15)>>11) / float64(1<<53)
}

func hash(batch string, index, attempt int, seed uint64) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], seed)
	put64(buf[8:16], uint64(index))
	put64(buf[16:24], uint64(attempt))
	h.Write([]byte(batch))
	h.Write(buf[:])
	return h.Sum64()
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
