package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"prefetchlab/internal/sched"
)

func TestParse(t *testing.T) {
	sp, err := Parse("panic=0.05,error=0.1,latency=0.01,corrupt=0.02,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Panic: 0.05, Error: 0.1, Latency: 0.01, Corrupt: 0.02, Seed: 7}
	if sp != want {
		t.Errorf("spec = %+v, want %+v", sp, want)
	}
	if sp, err := Parse(""); err != nil || sp != (Spec{}) {
		t.Errorf("empty spec = %+v, %v", sp, err)
	}
	for _, bad := range []string{"panic", "panic=x", "panic=1.5", "nope=0.1", "seed=-1", "panic=0.6,error=0.6"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestInjectIsDeterministic(t *testing.T) {
	sp := Spec{Panic: 0.1, Error: 0.1, Corrupt: 0.1, Seed: 3}
	kind := func(in *Injector, batch string, index, attempt int) (k string) {
		defer func() {
			if recover() != nil {
				k = "panic"
			}
		}()
		err := in.Inject(batch, index, attempt)
		var ce *CorruptError
		switch {
		case errors.As(err, &ce):
			return "corrupt"
		case err != nil:
			return "error"
		}
		return "none"
	}
	a, b := New(sp), New(sp)
	for i := 0; i < 500; i++ {
		if ka, kb := kind(a, "batch", i, 0), kind(b, "batch", i, 0); ka != kb {
			t.Fatalf("task %d: %s vs %s across identical injectors", i, ka, kb)
		}
	}
	// Different seeds must give a different fault pattern.
	c := New(Spec{Panic: 0.1, Error: 0.1, Corrupt: 0.1, Seed: 4})
	same := 0
	for i := 0; i < 500; i++ {
		if kind(a, "batch", i, 1) == kind(c, "batch", i, 1) {
			same++
		}
	}
	if same == 500 {
		t.Error("seed change did not alter the fault pattern")
	}
}

func TestInjectRatesRoughlyMatchSpec(t *testing.T) {
	in := New(Spec{Error: 0.2, Seed: 1})
	n, failed := 5000, 0
	for i := 0; i < n; i++ {
		if in.Inject("rate", i, 0) != nil {
			failed++
		}
	}
	got := float64(failed) / float64(n)
	if got < 0.15 || got > 0.25 {
		t.Errorf("observed error rate %v, want ≈0.2", got)
	}
}

func TestAttemptKeyedDrawsDiffer(t *testing.T) {
	// A task that faults on attempt 0 must be able to succeed on retry:
	// the draw is keyed by attempt, not just by task.
	in := New(Spec{Error: 0.5, Seed: 9})
	flipped := false
	for i := 0; i < 200 && !flipped; i++ {
		a0 := in.Inject("retry", i, 0) != nil
		a1 := in.Inject("retry", i, 1) != nil
		flipped = a0 != a1
	}
	if !flipped {
		t.Error("attempt number never changed the fault outcome")
	}
}

func TestCountsAndString(t *testing.T) {
	in := New(Spec{Error: 1, Seed: 1})
	for i := 0; i < 3; i++ {
		in.Inject("c", i, 0)
	}
	if got := in.Counts()["error"]; got != 3 {
		t.Errorf("error count = %d", got)
	}
	if s := in.String(); !strings.Contains(s, "error=3") {
		t.Errorf("String() = %q", s)
	}
	if s := New(Spec{}).String(); s != "faults: none" {
		t.Errorf("idle String() = %q", s)
	}
	var nilIn *Injector
	if err := nilIn.Inject("x", 0, 0); err != nil {
		t.Errorf("nil injector injected: %v", err)
	}
}

// TestChaosSchedSurvivesInjectedFaults drives the real scheduler through the
// injector at a hostile fault rate and requires graceful degradation: every
// outcome is either a correct value or an explicit skip, at any worker count,
// with identical skip sets across worker counts.
func TestChaosSchedSurvivesInjectedFaults(t *testing.T) {
	sp := Spec{Panic: 0.05, Error: 0.05, Latency: 0.05, Corrupt: 0.05, Seed: 2}
	run := func(workers int) []sched.Outcome[int] {
		p := sched.Pool{
			Workers:       workers,
			Name:          "chaos",
			MaxAttempts:   3,
			FailureBudget: -1,
			Fault:         New(sp),
		}
		outs, err := sched.MapOutcomes(context.Background(), p, 300, func(i int) (int, error) {
			return i * 7, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outs
	}
	base := run(1)
	skips := 0
	for i, o := range base {
		if o.Skipped {
			skips++
			continue
		}
		if o.Err != nil || o.Value != i*7 {
			t.Errorf("outcome[%d] = %+v", i, o)
		}
	}
	t.Logf("chaos: %d/%d cells skipped", skips, len(base))
	for _, workers := range []int{4, 7} {
		outs := run(workers)
		for i := range base {
			if base[i].Skipped != outs[i].Skipped || base[i].Value != outs[i].Value {
				t.Fatalf("workers=%d: outcome[%d] diverged: %+v vs %+v", workers, i, base[i], outs[i])
			}
		}
	}
}

// TestParseLatencyCap pins the latms knob: it bounds latency-fault sleeps
// so stuck-task tests can wedge a task for seconds, and rejects nonsense.
func TestParseLatencyCap(t *testing.T) {
	sp, err := Parse("latency=1,latms=5000,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if sp.LatencyCap != 5*time.Second {
		t.Errorf("LatencyCap = %v, want 5s", sp.LatencyCap)
	}
	if sp.latencyCap() != 5*time.Second {
		t.Errorf("latencyCap() = %v, want 5s", sp.latencyCap())
	}
	if (Spec{}).latencyCap() != time.Millisecond {
		t.Errorf("default latencyCap = %v, want 1ms", (Spec{}).latencyCap())
	}
	for _, bad := range []string{"latms=0", "latms=-5", "latms=abc", "latms=999999999"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
