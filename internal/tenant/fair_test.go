package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func twoTenants(t *testing.T, a, b Limits) (*Registry, *Tenant, *Tenant) {
	t.Helper()
	r, err := NewRegistry([]Spec{
		{Name: "a", Key: "ka", Limits: a},
		{Name: "b", Key: "kb", Limits: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, mustTenant(t, r, "ka"), mustTenant(t, r, "kb")
}

func TestFairShareImmediateAdmit(t *testing.T) {
	r, a, _ := twoTenants(t, Limits{}, Limits{})
	fs := NewFairShare(r, 2, 2, time.Second)
	rel1, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
	rel1()
	rel2()
	if got := fs.Inflight(); got != 0 {
		t.Fatalf("Inflight after release = %d, want 0", got)
	}
}

func TestFairShareShedsWhenQueueFull(t *testing.T) {
	r, a, _ := twoTenants(t, Limits{}, Limits{})
	fs := NewFairShare(r, 1, 1, 250*time.Millisecond)
	rel, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// One waiter fits in a's queue...
	done := make(chan error, 1)
	go func() {
		r2, err := fs.Acquire(context.Background(), a)
		if err == nil {
			r2()
		}
		done <- err
	}()
	waitFor(t, func() bool { return fs.Queued() == 1 })

	// ...the next one sheds with 429 and the configured Retry-After.
	_, err = fs.Acquire(context.Background(), a)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want ShedError", err)
	}
	if shed.Status != 429 || shed.Reason != ShedQueueFull || shed.RetryAfter != 250*time.Millisecond {
		t.Fatalf("shed = %+v", shed)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestFairShareQuota(t *testing.T) {
	r, a, b := twoTenants(t, Limits{MaxInflight: 1}, Limits{})
	fs := NewFairShare(r, 4, 4, time.Second)
	rel, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// a is at quota: sheds even though global slots are free.
	_, err = fs.Acquire(context.Background(), a)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQuota {
		t.Fatalf("over-quota err = %v, want quota ShedError", err)
	}
	// b is unaffected.
	relB, err := fs.Acquire(context.Background(), b)
	if err != nil {
		t.Fatalf("b while a at quota: %v", err)
	}
	relB()
	rel()
	// a admits again after release.
	rel, err = fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatalf("a after release: %v", err)
	}
	rel()
	if got := a.shedQuota.Load(); got != 1 {
		t.Fatalf("shedQuota = %d, want 1", got)
	}
}

func TestFairShareQueuedCancel(t *testing.T) {
	r, a, _ := twoTenants(t, Limits{}, Limits{})
	fs := NewFairShare(r, 1, 4, time.Second)
	rel, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fs.Acquire(ctx, a)
		done <- err
	}()
	waitFor(t, func() bool { return fs.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel err = %v, want context.Canceled", err)
	}
	if got := fs.Queued(); got != 0 {
		t.Fatalf("Queued after cancel = %d, want 0 (waiter removed)", got)
	}
	rel()
	// The slot is still usable after the canceled waiter left the queue.
	rel, err = fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestFairShareDeadlineWhileQueued(t *testing.T) {
	r, a, _ := twoTenants(t, Limits{}, Limits{})
	fs := NewFairShare(r, 1, 4, time.Second)
	rel, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = fs.Acquire(ctx, a)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestFairShareClamps(t *testing.T) {
	fs := NewFairShare(Default(), 0, -5, 0)
	maxIn, depth := fs.Capacity()
	if maxIn != 1 || depth != 0 {
		t.Fatalf("Capacity = (%d, %d), want (1, 0)", maxIn, depth)
	}
	if fs.RetryAfter() != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", fs.RetryAfter())
	}
}

// TestFairShareWeightedOrder pins the stride scheduler: with the single
// slot held and queued waiters from a weight-3 and a weight-1 tenant,
// successive releases admit the weight-3 tenant three times as often.
func TestFairShareWeightedOrder(t *testing.T) {
	r, a, b := twoTenants(t, Limits{Weight: 3}, Limits{Weight: 1})
	fs := NewFairShare(r, 1, 16, time.Second)
	rel, err := fs.Acquire(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}

	// Queue waiters in the 3:1 ratio of the weights (12 from a, 4 from b)
	// so neither queue drains before the last window; collect the
	// admission order.
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tn *Tenant) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			relW, err := fs.Acquire(context.Background(), tn)
			if err != nil {
				t.Errorf("Acquire(%s): %v", tn.Name, err)
				return
			}
			mu.Lock()
			order = append(order, tn.Name)
			mu.Unlock()
			relW() // chain: each admission triggers the next grant
		}()
	}
	for i := 0; i < 12; i++ {
		enqueue(a)
		if i < 4 {
			enqueue(b)
		}
	}
	waitFor(t, func() bool { return fs.Queued() == 16 })
	rel() // start the chain
	wg.Wait()

	if len(order) != 16 {
		t.Fatalf("admitted %d, want 16", len(order))
	}
	// In any window of 4 consecutive admissions, a (weight 3) gets 3 and
	// b (weight 1) gets 1.
	for start := 0; start+4 <= len(order); start += 4 {
		countA := 0
		for _, n := range order[start : start+4] {
			if n == "a" {
				countA++
			}
		}
		if countA != 3 {
			t.Fatalf("window %d: a admitted %d/4, want 3 (order %v)", start, countA, order)
		}
	}
}

// TestFairShareFloodIsolation is the tenant-isolation chaos test: tenant A
// floods far past capacity while tenant B issues occasional requests. B
// must never shed, and B's queue waits stay bounded by a few task lengths
// — the fair share — while A sees 429s.
func TestFairShareFloodIsolation(t *testing.T) {
	r, a, b := twoTenants(t,
		Limits{Weight: 1},
		Limits{Weight: 1},
	)
	const (
		slots    = 2
		depth    = 4
		taskTime = 2 * time.Millisecond
		floodN   = 400
		politeN  = 40
	)
	fs := NewFairShare(r, slots, depth, time.Millisecond)

	var wg sync.WaitGroup
	var aShed, aOK atomic64
	stop := make(chan struct{})

	// Tenant A: unbounded flood from 8 goroutines.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < floodN/8; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rel, err := fs.Acquire(context.Background(), a)
				if err != nil {
					var shed *ShedError
					if !errors.As(err, &shed) {
						t.Errorf("flood acquire: %v", err)
						return
					}
					aShed.add(1)
					continue
				}
				time.Sleep(taskTime)
				rel()
				aOK.add(1)
			}
		}()
	}

	// Tenant B: polite sequential requests; every one must be admitted,
	// and p99 queue wait must stay bounded.
	var waits []time.Duration
	for i := 0; i < politeN; i++ {
		start := time.Now()
		rel, err := fs.Acquire(context.Background(), b)
		if err != nil {
			t.Fatalf("polite tenant shed on request %d: %v", i, err)
		}
		waits = append(waits, time.Since(start))
		time.Sleep(taskTime)
		rel()
	}
	close(stop)
	wg.Wait()

	if b.shedQuota.Load()+b.shedQueue.Load()+b.shedRate.Load() != 0 {
		t.Fatalf("polite tenant shed: %+v", r.Snapshots())
	}
	if aShed.load() == 0 {
		t.Fatalf("flooding tenant never shed (ok=%d) — queue bound not enforced", aOK.load())
	}
	// p99 bound: sort and take the 2nd-worst of 40 (~p97.5). The fair
	// share means B waits behind at most its own share of the queue, not
	// behind A's flood: allow a generous constant factor over taskTime
	// for scheduler noise, still far below the flood backlog
	// (floodN*taskTime ≈ 800ms).
	worst := maxAllBut(waits, 1)
	if limit := 100 * taskTime; worst > limit {
		t.Fatalf("polite tenant p99 queue wait %v exceeds %v (waits %v)", worst, limit, waits)
	}
}

// maxAllBut returns the maximum of ds after dropping the k largest values.
func maxAllBut(ds []time.Duration, k int) time.Duration {
	cp := append([]time.Duration(nil), ds...)
	for i := 0; i < k && len(cp) > 0; i++ {
		maxIdx := 0
		for j, d := range cp {
			if d > cp[maxIdx] {
				maxIdx = j
			}
		}
		cp = append(cp[:maxIdx], cp[maxIdx+1:]...)
	}
	var m time.Duration
	for _, d := range cp {
		if d > m {
			m = d
		}
	}
	return m
}

type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
