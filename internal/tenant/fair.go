package tenant

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// waiter is one queued admission request.
type waiter struct {
	t       *Tenant
	ready   chan struct{}
	granted bool
}

// FairShare is the weighted fair-share admission controller for the heavy
// (engine-backed) endpoints. It replaces a single FIFO queue with one
// bounded FIFO queue per tenant plus stride scheduling between them: at
// most maxInflight requests execute concurrently, and when a slot frees it
// goes to the eligible tenant with the lowest virtual time, which advances
// by 1/weight per admission. A tenant that floods therefore racks up
// virtual time and only competes for its own share, while a light tenant's
// occasional request is admitted almost immediately — its virtual time
// trails the clock, so it wins the next free slot.
//
// Per-tenant max-inflight quotas and queue bounds shed with 429 before
// anything waits, so a flood converts to fast Retry-After responses, not
// an unbounded backlog.
type FairShare struct {
	reg         *Registry
	maxInflight int
	queueDepth  int // per-tenant queue bound
	retryAfter  time.Duration

	// All mutable scheduling state below (and the fair-share fields on
	// Tenant) is guarded by a single lock: admissions are rare relative to
	// engine work, so contention is negligible and the invariants stay
	// simple.
	mu       sync.Mutex
	inflight int
	vclock   float64
}

// NewFairShare builds the admission controller over reg's tenants.
// maxInflight < 1 is clamped to 1; queueDepth (per tenant) < 0 to 0;
// retryAfter <= 0 selects 1s — the same clamps the old single-queue
// limiter applied.
func NewFairShare(reg *Registry, maxInflight, queueDepth int, retryAfter time.Duration) *FairShare {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &FairShare{
		reg:         reg,
		maxInflight: maxInflight,
		queueDepth:  queueDepth,
		retryAfter:  retryAfter,
	}
}

func (fs *FairShare) lock()   { fs.mu.Lock() }
func (fs *FairShare) unlock() { fs.mu.Unlock() }

// Acquire claims an execution slot for tenant t, waiting in t's bounded
// queue if the server is saturated. It returns a release func on success;
// a *ShedError when t is over its inflight quota or its queue is full; or
// the context error if the caller gave up (or timed out) while queued.
func (fs *FairShare) Acquire(ctx context.Context, t *Tenant) (release func(), err error) {
	fs.lock()
	if t.Limits.MaxInflight > 0 && t.inflight >= t.Limits.MaxInflight {
		t.shedQuota.Add(1)
		fs.unlock()
		return nil, &ShedError{
			Status:     http.StatusTooManyRequests,
			Tenant:     t.Name,
			Reason:     ShedQuota,
			Message:    fmt.Sprintf("tenant %q at its inflight quota (%d)", t.Name, t.Limits.MaxInflight),
			RetryAfter: fs.retryAfter,
		}
	}
	if fs.inflight < fs.maxInflight {
		fs.grantLocked(t)
		fs.unlock()
		return func() { fs.release(t) }, nil
	}
	if len(t.queue) >= fs.queueDepth {
		t.shedQueue.Add(1)
		queued, inflight := len(t.queue), fs.inflight
		fs.unlock()
		return nil, &ShedError{
			Status:     http.StatusTooManyRequests,
			Tenant:     t.Name,
			Reason:     ShedQueueFull,
			Message:    fmt.Sprintf("tenant %q admission queue full (%d waiting, %d in flight)", t.Name, queued, inflight),
			RetryAfter: fs.retryAfter,
		}
	}
	w := &waiter{t: t, ready: make(chan struct{})}
	t.queue = append(t.queue, w)
	fs.unlock()

	select {
	case <-w.ready:
		return func() { fs.release(t) }, nil
	case <-ctx.Done():
		fs.lock()
		if w.granted {
			// Lost the race: a slot was granted between ctx firing and us
			// taking the lock. Hand it on rather than leak it.
			fs.releaseLocked(t)
			fs.unlock()
			return nil, ctx.Err()
		}
		for i, qw := range t.queue {
			if qw == w {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
		fs.unlock()
		return nil, ctx.Err()
	}
}

// grantLocked admits tenant t: advances its virtual time by one weighted
// stride and charges the slot. Caller holds the lock.
func (fs *FairShare) grantLocked(t *Tenant) {
	if t.vtime < fs.vclock {
		t.vtime = fs.vclock // idle tenants rejoin at the clock, keeping no credit
	}
	fs.vclock = t.vtime
	t.vtime += 1 / float64(t.Limits.Weight)
	t.inflight++
	fs.inflight++
	t.admitted.Add(1)
}

// release frees t's slot and hands it to the eligible tenant with the
// lowest virtual time.
func (fs *FairShare) release(t *Tenant) {
	fs.lock()
	fs.releaseLocked(t)
	fs.unlock()
}

func (fs *FairShare) releaseLocked(t *Tenant) {
	t.inflight--
	fs.inflight--
	fs.grantNextLocked()
}

// grantNextLocked fills free slots from the queues: repeatedly pick the
// queued tenant with the lowest virtual time (name-ordered tie break, so
// scheduling is deterministic) whose quota permits another grant.
func (fs *FairShare) grantNextLocked() {
	for fs.inflight < fs.maxInflight {
		var pick *Tenant
		for _, t := range fs.reg.sorted {
			if len(t.queue) == 0 {
				continue
			}
			if t.Limits.MaxInflight > 0 && t.inflight >= t.Limits.MaxInflight {
				continue // its own release will re-run this scan
			}
			if pick == nil || t.vtime < pick.vtime {
				pick = t
			}
		}
		if pick == nil {
			return
		}
		w := pick.queue[0]
		pick.queue = pick.queue[1:]
		fs.grantLocked(pick)
		w.granted = true
		close(w.ready)
	}
}

// Inflight reports how many requests currently hold execution slots.
func (fs *FairShare) Inflight() int {
	fs.lock()
	defer fs.unlock()
	return fs.inflight
}

// Queued reports how many admitted requests are waiting across all tenant
// queues.
func (fs *FairShare) Queued() int {
	fs.lock()
	defer fs.unlock()
	n := 0
	for _, t := range fs.reg.sorted {
		n += len(t.queue)
	}
	return n
}

// Capacity reports (maxInflight, perTenantQueueDepth).
func (fs *FairShare) Capacity() (int, int) { return fs.maxInflight, fs.queueDepth }

// RetryAfter is the hint attached to shed responses.
func (fs *FairShare) RetryAfter() time.Duration { return fs.retryAfter }

// Registry returns the tenant registry the limiter schedules over.
func (fs *FairShare) Registry() *Registry { return fs.reg }

// Snapshots returns every tenant's cumulative tally including live
// inflight/queued counts, sorted by name — the /healthz "tenants" section
// and the per-tenant Prometheus series sample from here.
func (fs *FairShare) Snapshots() []Snapshot {
	snaps := fs.reg.Snapshots()
	fs.lock()
	defer fs.unlock()
	for i, t := range fs.reg.sorted {
		snaps[i].Inflight = t.inflight
		snaps[i].Queued = len(t.queue)
	}
	return snaps
}
