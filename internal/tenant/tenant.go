// Package tenant is prefetchd's multi-tenant admission layer: API-key
// identification, per-tenant token-bucket rate limits and max-inflight
// quotas, and weighted fair-share scheduling of the shared engine capacity
// (see fair.go). It is the serving-tier analog of the paper's core
// argument — cores competing for a shared cache and memory bandwidth must
// be governed so no one workload degrades the others: here the shared
// resource is the experiment engine, the competitors are API clients, and
// the governor is a fair-share admission queue that sheds a flooding
// tenant with 429/Retry-After while well-behaved tenants keep their
// weighted share.
//
// Identification is header-based: `Authorization: Bearer <key>` or
// `X-API-Key: <key>`, with keys loaded from a tenants file (see
// ParseConfig). A request carrying no key maps to the built-in anonymous
// tenant; a request carrying a key the registry does not know is rejected
// with ErrUnknownKey (a typo'd key must never silently inherit anonymous
// limits).
package tenant

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Anonymous is the name of the built-in tenant that serves requests
// carrying no API key. A tenants-file line may redefine its limits by
// using this name with the key "-".
const Anonymous = "anonymous"

// ErrUnknownKey reports a request that presented an API key the registry
// does not know. It maps to 401: an unknown key is a client error, never a
// silent downgrade to anonymous limits.
type ErrUnknownKey struct{}

func (ErrUnknownKey) Error() string { return "tenant: unknown API key" }

// Limits is one tenant's admission policy. The zero value means
// "unlimited": no rate limit, no inflight cap, fair-share weight 1.
type Limits struct {
	// Weight is the tenant's fair-share weight: under contention a tenant
	// with weight 2 is admitted twice as often as a tenant with weight 1.
	// Values < 1 normalize to 1.
	Weight int
	// Rate is the sustained heavy-request rate in requests/second enforced
	// by a token bucket; 0 disables rate limiting for the tenant.
	Rate float64
	// Burst is the token-bucket depth — how many requests may arrive
	// back-to-back before the sustained rate applies. 0 selects
	// max(Rate, 1) when Rate > 0.
	Burst float64
	// MaxInflight caps the tenant's concurrently executing heavy requests;
	// 0 leaves the tenant bounded only by the global capacity.
	MaxInflight int
}

// normalized fills Limits defaults.
func (l Limits) normalized() Limits {
	if l.Weight < 1 {
		l.Weight = 1
	}
	if l.Rate > 0 && l.Burst <= 0 {
		l.Burst = math.Max(l.Rate, 1)
	}
	if l.Rate <= 0 {
		l.Burst = 0
	}
	if l.MaxInflight < 0 {
		l.MaxInflight = 0
	}
	return l
}

// Tenant is one registered API client plus its live admission state. All
// methods are safe for concurrent use.
type Tenant struct {
	Name   string
	Limits Limits

	reg *Registry

	mu     sync.Mutex
	tokens float64   // token bucket level
	last   time.Time // last refill

	// fair-share state, owned by FairShare (under its lock)
	inflight int
	queue    []*waiter
	vtime    float64

	admitted  atomic.Int64
	shedRate  atomic.Int64
	shedQuota atomic.Int64
	shedQueue atomic.Int64
	shedDrain atomic.Int64
}

// TakeToken charges one request against the tenant's token bucket. It
// returns nil when admitted; a *ShedError carrying the Retry-After hint
// (time until the bucket refills one token) when the sustained rate is
// exceeded. Tenants without a configured rate always admit.
func (t *Tenant) TakeToken() error {
	if t.Limits.Rate <= 0 {
		return nil
	}
	now := t.reg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.IsZero() {
		t.tokens = t.Limits.Burst
	} else {
		t.tokens = math.Min(t.Limits.Burst, t.tokens+now.Sub(t.last).Seconds()*t.Limits.Rate)
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return nil
	}
	t.shedRate.Add(1)
	wait := time.Duration((1 - t.tokens) / t.Limits.Rate * float64(time.Second))
	return &ShedError{
		Status:     http.StatusTooManyRequests,
		Tenant:     t.Name,
		Reason:     ShedRateLimit,
		Message:    fmt.Sprintf("tenant %q over its rate limit (%.3g req/s)", t.Name, t.Limits.Rate),
		RetryAfter: wait,
	}
}

// NoteDrainShed tallies a request this tenant lost to a draining server.
func (t *Tenant) NoteDrainShed() { t.shedDrain.Add(1) }

// Shed reason labels — the `reason` label of the per-tenant shed counters.
const (
	ShedRateLimit = "rate_limit" // token bucket empty
	ShedQuota     = "quota"      // per-tenant max-inflight reached
	ShedQueueFull = "queue_full" // tenant's fair-share queue at capacity
	ShedDraining  = "draining"   // server drain in progress
)

// ShedReasons lists every shed reason label, for metric pre-registration.
func ShedReasons() []string {
	return []string{ShedRateLimit, ShedQuota, ShedQueueFull, ShedDraining}
}

// ShedError reports a request rejected by tenant admission before any
// engine work ran. RetryAfter is surfaced as a Retry-After header so
// well-behaved clients back off instead of hammering.
type ShedError struct {
	Status     int
	Tenant     string
	Reason     string
	Message    string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("tenant: request shed (%d, %s): %s; retry after %s",
		e.Status, e.Reason, e.Message, e.RetryAfter)
}

// Snapshot is one tenant's cumulative admission tally, exported on
// /healthz and sampled onto the per-tenant Prometheus series.
type Snapshot struct {
	Name        string  `json:"name"`
	Weight      int     `json:"weight"`
	Admitted    int64   `json:"admitted"`
	ShedRate    int64   `json:"shed_rate_limit"`
	ShedQuota   int64   `json:"shed_quota"`
	ShedQueue   int64   `json:"shed_queue_full"`
	ShedDrain   int64   `json:"shed_draining"`
	Inflight    int     `json:"inflight"`
	Queued      int     `json:"queued"`
	MaxInflight int     `json:"max_inflight,omitempty"`
	Rate        float64 `json:"rate,omitempty"`
}

// Registry maps API keys to tenants. Build one with NewRegistry (or Load /
// ParseConfig for the tenants-file form); the tenant set is fixed at
// construction, so metric label sets stay deterministic for the process
// lifetime.
type Registry struct {
	byKey  map[string]*Tenant
	sorted []*Tenant // by name, for deterministic iteration
	anon   *Tenant
	keyed  int // tenants beyond the built-in anonymous one
	now    func() time.Time
}

// Spec declares one tenant for NewRegistry.
type Spec struct {
	Name   string
	Key    string // API key; "-" or "" declares no key (only valid for the anonymous tenant)
	Limits Limits
}

// NewRegistry builds a registry from specs. A spec named Anonymous
// overrides the built-in anonymous tenant's limits; every other spec needs
// a non-empty key. Duplicate names or keys are errors.
func NewRegistry(specs []Spec) (*Registry, error) {
	r := &Registry{
		byKey: make(map[string]*Tenant),
		now:   time.Now,
	}
	names := make(map[string]bool)
	for _, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("tenant: spec with empty name")
		}
		if names[sp.Name] {
			return nil, fmt.Errorf("tenant: duplicate tenant %q", sp.Name)
		}
		names[sp.Name] = true
		t := &Tenant{Name: sp.Name, Limits: sp.Limits.normalized(), reg: r}
		key := sp.Key
		if key == "-" {
			key = ""
		}
		if sp.Name == Anonymous {
			if key != "" {
				return nil, fmt.Errorf("tenant: the anonymous tenant takes no API key (use - as the key)")
			}
			r.anon = t
		} else {
			if key == "" {
				return nil, fmt.Errorf("tenant: tenant %q needs an API key", sp.Name)
			}
			if _, dup := r.byKey[key]; dup {
				return nil, fmt.Errorf("tenant: duplicate API key for tenant %q", sp.Name)
			}
			r.byKey[key] = t
			r.keyed++
		}
		r.sorted = append(r.sorted, t)
	}
	if r.anon == nil {
		r.anon = &Tenant{Name: Anonymous, Limits: Limits{}.normalized(), reg: r}
		r.sorted = append(r.sorted, r.anon)
	}
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].Name < r.sorted[j].Name })
	return r, nil
}

// Default returns a registry holding only the unlimited anonymous tenant —
// the single-tenant configuration every pre-tenant deployment ran under.
func Default() *Registry {
	r, err := NewRegistry(nil)
	if err != nil {
		// NewRegistry(nil) cannot fail; keep the signature honest anyway.
		return &Registry{byKey: map[string]*Tenant{}, now: time.Now}
	}
	return r
}

// SetClock overrides the registry clock (token-bucket tests).
func (r *Registry) SetClock(now func() time.Time) { r.now = now }

// Keyed reports how many key-bearing tenants are registered (the anonymous
// tenant excluded) — the /healthz "tenants" count.
func (r *Registry) Keyed() int { return r.keyed }

// Anonymous returns the built-in no-key tenant.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Tenants returns every tenant, sorted by name.
func (r *Registry) Tenants() []*Tenant {
	return append([]*Tenant(nil), r.sorted...)
}

// Names returns every tenant name, sorted — for metric pre-registration.
func (r *Registry) Names() []string {
	names := make([]string, len(r.sorted))
	for i, t := range r.sorted {
		names[i] = t.Name
	}
	return names
}

// Identify resolves a request to its tenant: the Bearer token of an
// Authorization header, else the X-API-Key header, else the anonymous
// tenant. An unrecognized key returns ErrUnknownKey.
func (r *Registry) Identify(req *http.Request) (*Tenant, error) {
	key := ""
	if auth := req.Header.Get("Authorization"); auth != "" {
		const bearer = "Bearer "
		if len(auth) > len(bearer) && strings.EqualFold(auth[:len(bearer)], bearer) {
			key = strings.TrimSpace(auth[len(bearer):])
		} else {
			return nil, ErrUnknownKey{}
		}
	} else if h := req.Header.Get("X-API-Key"); h != "" {
		key = strings.TrimSpace(h)
	}
	if key == "" {
		return r.anon, nil
	}
	t, ok := r.byKey[key]
	if !ok {
		return nil, ErrUnknownKey{}
	}
	return t, nil
}

// Snapshots returns every tenant's cumulative tally, sorted by name.
// Inflight/queued reflect the FairShare limiter's live state.
func (r *Registry) Snapshots() []Snapshot {
	out := make([]Snapshot, len(r.sorted))
	for i, t := range r.sorted {
		out[i] = Snapshot{
			Name:        t.Name,
			Weight:      t.Limits.Weight,
			Admitted:    t.admitted.Load(),
			ShedRate:    t.shedRate.Load(),
			ShedQuota:   t.shedQuota.Load(),
			ShedQueue:   t.shedQueue.Load(),
			ShedDrain:   t.shedDrain.Load(),
			MaxInflight: t.Limits.MaxInflight,
			Rate:        t.Limits.Rate,
		}
	}
	return out
}

// Load reads a tenants file (see ParseConfig for the format).
func Load(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	defer f.Close() // lint:allow errwrap (read-only handle; the parse result is the primary outcome)
	r, err := ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// ParseConfig parses the tenants-file format: one tenant per line,
//
//	<name> <api-key> [weight=N] [rate=R] [burst=N] [max-inflight=N]
//
// with '#' comments and blank lines ignored. The key "-" declares a tenant
// without a key — only valid for the built-in "anonymous" name, whose
// limits it overrides.
func ParseConfig(src io.Reader) (*Registry, error) {
	var specs []Spec
	sc := bufio.NewScanner(src)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want `<name> <key> [limit=value ...]`, got %q", lineNo, line)
		}
		sp := Spec{Name: fields[0], Key: fields[1]}
		for _, f := range fields[2:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: bad limit %q (want key=value)", lineNo, f)
			}
			switch k {
			case "weight":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("line %d: bad weight %q (want a positive integer)", lineNo, v)
				}
				sp.Limits.Weight = n
			case "rate":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil || x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
					return nil, fmt.Errorf("line %d: bad rate %q (want requests/second >= 0)", lineNo, v)
				}
				sp.Limits.Rate = x
			case "burst":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil || x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
					return nil, fmt.Errorf("line %d: bad burst %q (want a count >= 0)", lineNo, v)
				}
				sp.Limits.Burst = x
			case "max-inflight":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("line %d: bad max-inflight %q (want an integer >= 0)", lineNo, v)
				}
				sp.Limits.MaxInflight = n
			default:
				return nil, fmt.Errorf("line %d: unknown limit %q (want weight, rate, burst or max-inflight)", lineNo, k)
			}
		}
		specs = append(specs, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading tenants file: %w", err)
	}
	return NewRegistry(specs)
}
