package tenant

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	src := `
# comment
alice key-a weight=3 rate=2 burst=4 max-inflight=2
bob   key-b
anonymous - rate=0.5
`
	r, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if got := r.Keyed(); got != 2 {
		t.Fatalf("Keyed() = %d, want 2", got)
	}
	names := r.Names()
	want := []string{"alice", "anonymous", "bob"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer key-a")
	alice, err := r.Identify(req)
	if err != nil || alice.Name != "alice" {
		t.Fatalf("Identify bearer = %v, %v; want alice", alice, err)
	}
	if alice.Limits.Weight != 3 || alice.Limits.Rate != 2 || alice.Limits.Burst != 4 || alice.Limits.MaxInflight != 2 {
		t.Fatalf("alice limits = %+v", alice.Limits)
	}

	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-API-Key", "key-b")
	bob, err := r.Identify(req)
	if err != nil || bob.Name != "bob" {
		t.Fatalf("Identify header = %v, %v; want bob", bob, err)
	}
	if bob.Limits.Weight != 1 {
		t.Fatalf("bob default weight = %d, want 1", bob.Limits.Weight)
	}

	req = httptest.NewRequest("GET", "/", nil)
	anon, err := r.Identify(req)
	if err != nil || anon.Name != Anonymous {
		t.Fatalf("Identify no key = %v, %v; want anonymous", anon, err)
	}
	if anon.Limits.Rate != 0.5 {
		t.Fatalf("anonymous rate override = %g, want 0.5", anon.Limits.Rate)
	}
}

func TestIdentifyUnknownKey(t *testing.T) {
	r := Default()
	for _, hdr := range []struct{ k, v string }{
		{"Authorization", "Bearer nope"},
		{"X-API-Key", "nope"},
		{"Authorization", "Basic dXNlcjpwdw=="}, // non-Bearer scheme is rejected, not anonymous
	} {
		req := httptest.NewRequest("GET", "/", nil)
		req.Header.Set(hdr.k, hdr.v)
		_, err := r.Identify(req)
		if !errors.As(err, &ErrUnknownKey{}) {
			t.Fatalf("Identify(%s: %s) err = %v, want ErrUnknownKey", hdr.k, hdr.v, err)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, src := range []string{
		"onlyname",
		"alice key-a weight=0",
		"alice key-a rate=-1",
		"alice key-a burst=nan",
		"alice key-a max-inflight=-2",
		"alice key-a bogus=1",
		"alice key-a weight",
		"alice key-a\nalice key-b",  // duplicate name
		"alice key-a\nbob key-a",    // duplicate key
		"bob -",                     // only anonymous may go keyless
		"anonymous with-a-real-key", // anonymous takes no key
	} {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("ParseConfig(%q): want error, got nil", src)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	r, err := NewRegistry([]Spec{{Name: "a", Key: "k", Limits: Limits{Rate: 1, Burst: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	a := mustTenant(t, r, "k")

	// The burst admits two back-to-back, then the bucket is dry.
	if err := a.TakeToken(); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := a.TakeToken(); err != nil {
		t.Fatalf("second: %v", err)
	}
	err = a.TakeToken()
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("third: err = %v, want ShedError", err)
	}
	if shed.Status != 429 || shed.Reason != ShedRateLimit || shed.Tenant != "a" {
		t.Fatalf("shed = %+v", shed)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", shed.RetryAfter)
	}

	// One second refills one token at rate=1.
	now = now.Add(time.Second)
	if err := a.TakeToken(); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := a.TakeToken(); !errors.As(err, &shed) {
		t.Fatalf("after refill exhausted: %v, want ShedError", err)
	}
	if got := a.shedRate.Load(); got != 2 {
		t.Fatalf("shedRate = %d, want 2", got)
	}

	// The bucket never overfills past its burst.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if err := a.TakeToken(); err != nil {
			t.Fatalf("burst refill %d: %v", i, err)
		}
	}
	if err := a.TakeToken(); !errors.As(err, &shed) {
		t.Fatalf("burst cap: %v, want ShedError", err)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	a := Default().Anonymous()
	for i := 0; i < 1000; i++ {
		if err := a.TakeToken(); err != nil {
			t.Fatalf("unlimited tenant shed at %d: %v", i, err)
		}
	}
}

func mustTenant(t *testing.T, r *Registry, key string) *Tenant {
	t.Helper()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("X-API-Key", key)
	tn, err := r.Identify(req)
	if err != nil {
		t.Fatalf("Identify(%s): %v", key, err)
	}
	return tn
}
