package textplot

import (
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// decodeValues turns arbitrary fuzz bytes into float64s, 8 bytes per value,
// deliberately including the bit patterns for NaN, ±Inf and subnormals.
func decodeValues(data []byte) []float64 {
	var vs []float64
	for len(data) >= 8 {
		vs = append(vs, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return vs
}

// FuzzBarsRender renders arbitrary rows and must never panic. The renderer
// sits on the serve path (figure endpoints), where a panic is an outage;
// this mirrors ckpt's FuzzCkptReader contract for arbitrary input bytes.
// NaN and ±Inf are the interesting corners: NaN falls through every max
// comparison and Inf divides to Inf, so the bar-width computation must
// clamp before strings.Repeat.
func FuzzBarsRender(f *testing.F) {
	f.Add("fig", int8(40), []byte{})
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add("", int8(0), nan)
	inf := make([]byte, 8)
	binary.LittleEndian.PutUint64(inf, math.Float64bits(math.Inf(1)))
	f.Add("inf", int8(-3), append(inf, 0x01, 0x02))
	neg := make([]byte, 8)
	binary.LittleEndian.PutUint64(neg, math.Float64bits(-2.5))
	f.Add("neg", int8(7), neg)

	f.Fuzz(func(t *testing.T, title string, width int8, data []byte) {
		var rows []Row
		for i, v := range decodeValues(data) {
			rows = append(rows, Row{Label: string(rune('a' + i%26)), Value: v})
		}
		b := Bars{Title: title, Width: int(width)}
		b.Render(io.Discard, rows)
	})
}

// FuzzCurveRender renders arbitrary series — including unsorted values,
// NaN, ±Inf and degenerate point counts — and must never panic. quantile
// interpolates by index, so even a slice that violates the documented
// ascending order must only produce odd numbers, never a crash.
func FuzzCurveRender(f *testing.F) {
	f.Add("fig7", int8(11), []byte{})
	vals := make([]byte, 24)
	binary.LittleEndian.PutUint64(vals[0:], math.Float64bits(3.0))
	binary.LittleEndian.PutUint64(vals[8:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(vals[16:], math.Float64bits(math.Inf(-1)))
	f.Add("", int8(1), vals)
	f.Add("one-point", int8(-5), vals[:8])

	f.Fuzz(func(t *testing.T, title string, points int8, data []byte) {
		vs := decodeValues(data)
		series := []Series{
			{Name: title, Sorted: vs},
			{Name: "b", Sorted: nil},
		}
		c := Curve{Title: title, Points: int(points)}
		c.Render(io.Discard, series)
	})
}
