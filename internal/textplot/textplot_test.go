package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarsRender(t *testing.T) {
	var buf bytes.Buffer
	Bars{Title: "demo", Width: 10}.Render(&buf, []Row{
		{Label: "a", Value: 1.0},
		{Label: "bb", Value: -0.5},
		{Label: "c", Value: 0},
	})
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "██████████") {
		t.Errorf("full bar missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-") || !strings.Contains(lines[2], "█████") {
		t.Errorf("negative bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "█") {
		t.Errorf("zero bar should be empty: %q", lines[3])
	}
}

func TestBarsAllZero(t *testing.T) {
	var buf bytes.Buffer
	Bars{}.Render(&buf, []Row{{Label: "x", Value: 0}})
	if !strings.Contains(buf.String(), "x") {
		t.Error("zero-only chart should still render labels")
	}
}

func TestCurveRender(t *testing.T) {
	var buf bytes.Buffer
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	Curve{Title: "curve", Points: 5}.Render(&buf, []Series{{Name: "s", Sorted: sorted}})
	out := buf.String()
	if !strings.Contains(out, "curve") || !strings.Contains(out, "s") {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Error("missing percentile header")
	}
	// First and last sampled quantiles are the min and max.
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "10.0") {
		t.Errorf("quantile endpoints missing: %q", out)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{0, 10}
	if got := quantile(s, 0.5); got != 5 {
		t.Errorf("median = %g", got)
	}
	if quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	if got := quantile(s, -1); got != 0 {
		t.Errorf("clamped low = %g", got)
	}
	if got := quantile(s, 2); got != 10 {
		t.Errorf("clamped high = %g", got)
	}
}

func TestCurveEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	Curve{}.Render(&buf, []Series{{Name: "empty"}})
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty series should render its name")
	}
}
