// Package textplot renders the small ASCII charts the command-line
// experiment drivers print: grouped bar charts for the per-benchmark
// figures and sorted-distribution curves for the mixed-workload figures.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bars renders one labelled bar per row. Values may be negative; the bar
// extends left or right of a zero axis. fmtv formats the value (default
// %.2f).
type Bars struct {
	Title string
	Width int // bar field width in runes (default 40)
	FmtV  func(float64) string
}

// Row is one labelled value.
type Row struct {
	Label string
	Value float64
}

// Render writes the chart.
func (b Bars) Render(w io.Writer, rows []Row) {
	width := b.Width
	if width <= 0 {
		width = 40
	}
	fmtv := b.FmtV
	if fmtv == nil {
		fmtv = func(v float64) string { return fmt.Sprintf("%.2f", v) }
	}
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n", b.Title)
	}
	var max float64
	labelW := 0
	for _, r := range rows {
		if a := math.Abs(r.Value); a > max {
			max = a
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if max == 0 {
		max = 1
	}
	for _, r := range rows {
		// NaN falls through every max comparison above and ±Inf divides to
		// ±Inf, so clamp: the fraction must land in [0,1] or strings.Repeat
		// gets a negative or astronomically large count and panics. Finite
		// inputs are unaffected (max already bounds them), so figure bytes
		// do not change.
		frac := math.Abs(r.Value) / max
		n := 0
		if frac > 0 {
			if frac > 1 {
				frac = 1
			}
			n = int(frac * float64(width))
		}
		bar := strings.Repeat("█", n)
		sign := " "
		if r.Value < 0 {
			sign = "-"
		}
		fmt.Fprintf(w, "  %-*s %s%-*s %s\n", labelW, r.Label, sign, width, bar, fmtv(r.Value))
	}
}

// Curve renders a sorted distribution as a fixed number of sampled points,
// matching the "distribution function across runs" presentation of the
// paper's Figures 7 and 9 (x = percentile of runs, y = value).
type Curve struct {
	Title  string
	Points int // sampled quantiles (default 11: 0%,10%,…,100%)
	FmtV   func(float64) string
}

// Series is one named distribution.
type Series struct {
	Name   string
	Sorted []float64 // ascending
}

// Render writes one row per series with values at the sampled quantiles.
func (c Curve) Render(w io.Writer, series []Series) {
	pts := c.Points
	if pts <= 1 {
		pts = 11
	}
	fmtv := c.FmtV
	if fmtv == nil {
		fmtv = func(v float64) string { return fmt.Sprintf("%6.1f", v) }
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(w, "  %-*s", nameW, "runs→")
	for i := 0; i < pts; i++ {
		fmt.Fprintf(w, " %6.0f%%", float64(i)/float64(pts-1)*100)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "  %-*s", nameW, s.Name)
		for i := 0; i < pts; i++ {
			q := float64(i) / float64(pts-1)
			fmt.Fprintf(w, " %7s", fmtv(quantile(s.Sorted, q)))
		}
		fmt.Fprintln(w)
	}
}

// quantile interpolates the sorted slice at fraction q.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
