package stackdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
)

func TestColdThenReuse(t *testing.T) {
	a := New(16)
	if _, cold := a.Ref(1); !cold {
		t.Fatal("first access must be cold")
	}
	if sd, cold := a.Ref(1); cold || sd != 0 {
		t.Fatalf("immediate reuse: sd=%d cold=%v, want 0,false", sd, cold)
	}
	a.Ref(2)
	a.Ref(3)
	if sd, _ := a.Ref(1); sd != 2 {
		t.Fatalf("sd = %d, want 2 (lines 2 and 3 intervened)", sd)
	}
}

func TestRepeatsDoNotInflate(t *testing.T) {
	a := New(16)
	a.Ref(1)
	a.Ref(2)
	a.Ref(2)
	a.Ref(2) // repeated accesses to 2 count once
	if sd, _ := a.Ref(1); sd != 1 {
		t.Fatalf("sd = %d, want 1", sd)
	}
}

func TestCyclicSweep(t *testing.T) {
	// Sweeping n lines cyclically: every non-cold access has sd = n-1.
	const n = 100
	a := New(1024)
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < n; i++ {
			sd, cold := a.Ref(i)
			if pass == 0 {
				if !cold {
					t.Fatal("first pass must be cold")
				}
				continue
			}
			if cold || sd != n-1 {
				t.Fatalf("pass %d line %d: sd=%d cold=%v, want %d", pass, i, sd, cold, n-1)
			}
		}
	}
}

func TestGrowthRebuild(t *testing.T) {
	// Force several Fenwick rebuilds and check correctness afterwards.
	a := New(16)
	for i := 0; i < 37*135; i++ { // whole cycles, ending on line 36
		a.Ref(uint64(i % 37))
	}
	if sd, cold := a.Ref(0); cold || sd != 36 {
		t.Fatalf("after growth: sd=%d cold=%v, want 36,false", sd, cold)
	}
}

// naiveSD recomputes a stack distance by brute force.
func naiveSD(trace []uint64, i int) (int64, bool) {
	line := trace[i]
	seen := map[uint64]bool{}
	for j := i - 1; j >= 0; j-- {
		if trace[j] == line {
			return int64(len(seen)), false
		}
		seen[trace[j]] = true
	}
	return 0, true
}

func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 2
		r := rand.New(rand.NewSource(seed))
		trace := make([]uint64, n)
		for i := range trace {
			trace[i] = uint64(r.Intn(20))
		}
		a := New(n)
		for i, line := range trace {
			sd, cold := a.Ref(line)
			wantSD, wantCold := naiveSD(trace, i)
			if cold != wantCold || (!cold && sd != wantSD) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactMRC(t *testing.T) {
	// Cyclic sweep over 256 lines (16 kB): exact MRC is 1 for sizes below
	// 16 kB and only the cold pass misses above.
	sizes := []int64{8 << 10, 32 << 10}
	m := NewMRC(sizes, 4096)
	const passes, lines = 4, 256
	for p := 0; p < passes; p++ {
		for i := uint64(0); i < lines; i++ {
			m.Ref(i)
		}
	}
	r := m.Ratios()
	if r[0] != 1.0 {
		t.Errorf("8k exact mr = %g, want 1", r[0])
	}
	if want := 1.0 / passes; math.Abs(r[1]-want) > 1e-9 {
		t.Errorf("32k exact mr = %g, want %g (cold pass only)", r[1], want)
	}
}

// TestStatStackAgainstExact is the §IV validation strengthened: the sampled
// StatStack estimate must track the exact fully-associative LRU miss-ratio
// curve on a mixed synthetic trace.
func TestStatStackAgainstExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const refs = 400000
	sizes := []int64{8 << 10, 64 << 10, 512 << 10, 2 << 20}

	exact := NewMRC(sizes, refs)
	s := sampler.New(sampler.Config{Period: 64, Seed: 5})
	streamLine := uint64(1 << 24)
	for i := 0; i < refs; i++ {
		var line uint64
		switch i % 4 {
		case 0: // hot set: 64 lines (4 kB)
			line = uint64(r.Intn(64))
		case 1: // warm set: 4096 lines (256 kB)
			line = 4096 + uint64(r.Intn(4096))
		case 2: // big set: 32768 lines (2 MB)
			line = 65536 + uint64(r.Intn(32768))
		default: // stream: always cold
			streamLine++
			line = streamLine
		}
		exact.Ref(line)
		s.Ref(ref.Ref{PC: ref.PC(i % 4), Addr: line * 64, Kind: ref.Load})
	}
	model := statstack.Build(s.Finish())
	got := model.MRC(sizes)
	want := exact.Ratios()
	for i, size := range sizes {
		if math.Abs(got[i]-want[i]) > 0.08 {
			t.Errorf("size %d: statstack %.3f vs exact %.3f", size, got[i], want[i])
		}
	}
}
