// Package stackdist computes *exact* LRU stack distances over a reference
// stream (Olken's algorithm: a last-access table plus a Fenwick tree over
// time), and from them exact miss-ratio curves.
//
// StatStack (internal/statstack) estimates the same quantities from sparse
// samples; this package is the ground truth the estimator is validated
// against (the paper validates against a Pin-based functional simulator,
// §IV — an exact stack-distance oracle is the stronger check, since it
// matches the fully-associative LRU abstraction StatStack models).
package stackdist

import "prefetchlab/internal/ref"

// Analyzer computes the exact stack distance of each reference online.
type Analyzer struct {
	last map[uint64]int32 // line → time of last access
	bit  []int32          // Fenwick tree: 1 at times that are last accesses
	now  int32
}

// New creates an analyzer. capacityHint sizes internal structures (the
// number of references expected; it grows as needed).
func New(capacityHint int) *Analyzer {
	if capacityHint < 16 {
		capacityHint = 16
	}
	return &Analyzer{
		last: make(map[uint64]int32, capacityHint/8),
		bit:  make([]int32, capacityHint+1),
	}
}

// add updates the Fenwick tree at time index i (1-based) by delta.
func (a *Analyzer) add(i, delta int32) {
	for ; int(i) < len(a.bit); i += i & (-i) {
		a.bit[i] += delta
	}
}

// sum returns the prefix sum over [1, i].
func (a *Analyzer) sum(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & (-i) {
		s += a.bit[i]
	}
	return s
}

// Ref processes one line reference and returns its stack distance — the
// number of distinct other lines touched since this line's previous access
// — or cold=true for a first access.
func (a *Analyzer) Ref(line uint64) (sd int64, cold bool) {
	a.now++
	if int(a.now) >= len(a.bit) {
		grown := make([]int32, len(a.bit)*2)
		copy(grown, a.bit)
		// Fenwick trees cannot simply be copied and resized; rebuild from
		// the last-access table instead (rare: amortized by doubling).
		for i := range grown {
			grown[i] = 0
		}
		a.bit = grown
		// lint:allow detrand (Fenwick point-updates commute; the rebuilt tree is identical for any visit order)
		for _, t := range a.last {
			a.add(t, 1)
		}
	}
	prev, seen := a.last[line]
	if seen {
		// Distinct lines since prev = number of "last accesses" in (prev, now).
		sd = int64(a.sum(a.now-1) - a.sum(prev))
		a.add(prev, -1)
	}
	a.last[line] = a.now
	a.add(a.now, 1)
	if !seen {
		return 0, true
	}
	return sd, false
}

// MRC accumulates an exact miss-ratio curve for the given cache sizes
// (bytes, 64 B lines): a reference with stack distance sd hits a cache of
// L lines iff sd < L; cold references always miss.
type MRC struct {
	analyzer *Analyzer
	lines    []int64 // cache sizes in lines, ascending
	misses   []int64
	total    int64
}

// NewMRC builds an exact-MRC accumulator for the byte sizes.
func NewMRC(sizes []int64, capacityHint int) *MRC {
	m := &MRC{analyzer: New(capacityHint), misses: make([]int64, len(sizes))}
	for _, s := range sizes {
		m.lines = append(m.lines, s/ref.LineSize)
	}
	return m
}

// Ref processes one reference (by line address).
func (m *MRC) Ref(line uint64) {
	m.total++
	sd, cold := m.analyzer.Ref(line)
	for i, l := range m.lines {
		if cold || sd >= l {
			m.misses[i]++
		}
	}
}

// Ratios returns the exact miss ratios per size.
func (m *MRC) Ratios() []float64 {
	out := make([]float64, len(m.misses))
	for i, miss := range m.misses {
		if m.total > 0 {
			out[i] = float64(miss) / float64(m.total)
		}
	}
	return out
}

// Total returns the number of references processed.
func (m *MRC) Total() int64 { return m.total }
