package sampler

import (
	"testing"

	"prefetchlab/internal/ref"
)

// feed pushes a synthetic reference stream through a sampler.
func feed(s *Sampler, refs []ref.Ref) {
	for _, r := range refs {
		s.Ref(r)
	}
}

// denseConfig samples every reference (period 1 still randomizes gaps, so
// tests that need determinism use it with many repetitions).
func denseConfig() Config { return Config{Period: 1, Seed: 7} }

func TestReuseDistanceMeasured(t *testing.T) {
	s := New(denseConfig())
	// Line 5 accessed at positions 0 and 4 → 3 intervening references.
	refs := []ref.Ref{
		{PC: 1, Addr: 5 * 64, Kind: ref.Load},
		{PC: 2, Addr: 100 * 64, Kind: ref.Load},
		{PC: 3, Addr: 101 * 64, Kind: ref.Load},
		{PC: 4, Addr: 102 * 64, Kind: ref.Load},
		{PC: 9, Addr: 5*64 + 8, Kind: ref.Load},
	}
	feed(s, refs)
	out := s.Finish()
	found := false
	for _, r := range out.Reuse {
		if r.PC == 1 && r.ReusePC == 9 {
			found = true
			if r.Dist != 3 {
				t.Errorf("reuse distance = %d, want 3", r.Dist)
			}
		}
	}
	if !found {
		t.Fatal("no reuse sample for the re-accessed line")
	}
}

func TestStrideAndRecurrence(t *testing.T) {
	s := New(denseConfig())
	// PC 7 executes at positions 0 and 3 with addresses 0 and 256:
	// stride 256, recurrence 2.
	refs := []ref.Ref{
		{PC: 7, Addr: 0, Kind: ref.Load},
		{PC: 1, Addr: 1 << 20, Kind: ref.Load},
		{PC: 2, Addr: 2 << 20, Kind: ref.Load},
		{PC: 7, Addr: 256, Kind: ref.Load},
	}
	feed(s, refs)
	out := s.Finish()
	if len(out.Strides) == 0 {
		t.Fatal("no stride samples")
	}
	st := out.Strides[0]
	if st.PC != 7 || st.Stride != 256 || st.Recurrence != 2 {
		t.Fatalf("stride sample = %+v, want PC 7, stride 256, recurrence 2", st)
	}
}

func TestColdSamples(t *testing.T) {
	s := New(denseConfig())
	// Every line touched exactly once: all watchpoints dangle.
	var refs []ref.Ref
	for i := uint64(0); i < 50; i++ {
		refs = append(refs, ref.Ref{PC: 1, Addr: i * 64, Kind: ref.Load})
	}
	feed(s, refs)
	out := s.Finish()
	if len(out.Reuse) != 0 {
		t.Fatalf("unexpected reuse samples: %d", len(out.Reuse))
	}
	if len(out.Cold) == 0 {
		t.Fatal("expected cold samples for never-reused lines")
	}
}

func TestPrefetchesAreTransparent(t *testing.T) {
	s := New(denseConfig())
	refs := []ref.Ref{
		{PC: 1, Addr: 0, Kind: ref.Load},
		{PC: 2, Addr: 0, Kind: ref.Prefetch}, // must not fire the watchpoint
		{PC: 3, Addr: 8, Kind: ref.Load},
	}
	feed(s, refs)
	out := s.Finish()
	for _, r := range out.Reuse {
		if r.ReusePC == 2 {
			t.Fatal("prefetch fired a watchpoint")
		}
	}
	if out.TotalRefs != 2 {
		t.Fatalf("TotalRefs = %d, want 2 (prefetches excluded)", out.TotalRefs)
	}
}

func TestSparseSamplingRate(t *testing.T) {
	s := New(Config{Period: 1000, Seed: 3})
	var refs []ref.Ref
	for i := uint64(0); i < 200000; i++ {
		refs = append(refs, ref.Ref{PC: ref.PC(i % 7), Addr: (i % 4096) * 64, Kind: ref.Load})
	}
	feed(s, refs)
	out := s.Finish()
	n := len(out.Reuse) + len(out.Cold)
	// ~200 samples expected; allow wide slack for randomness.
	if n < 100 || n > 400 {
		t.Fatalf("sample count = %d, want ≈ 200", n)
	}
}

func TestGroupingHelpers(t *testing.T) {
	s := New(denseConfig())
	refs := []ref.Ref{
		{PC: 1, Addr: 0, Kind: ref.Load},
		{PC: 2, Addr: 8, Kind: ref.Load},   // reuse of line 0 by PC 2
		{PC: 1, Addr: 64, Kind: ref.Load},  // stride sample for PC 1
		{PC: 2, Addr: 128, Kind: ref.Load}, // stride sample for PC 2
	}
	feed(s, refs)
	out := s.Finish()
	edges := out.ReuseEdges()
	if edges[1][2] == 0 {
		t.Fatalf("missing reuse edge 1→2: %v", edges)
	}
	byPC := out.StridesByPC()
	if len(byPC[1]) == 0 {
		t.Fatalf("missing stride samples for PC 1: %v", byPC)
	}
	if got := out.ReuseByPC(); len(got[1]) == 0 {
		t.Fatalf("ReuseByPC missing PC 1: %v", got)
	}
}

func TestStoresSampledToo(t *testing.T) {
	s := New(denseConfig())
	refs := []ref.Ref{
		{PC: 1, Addr: 0, Kind: ref.Store},
		{PC: 2, Addr: 8, Kind: ref.Load},
	}
	feed(s, refs)
	out := s.Finish()
	if len(out.Reuse) == 0 {
		t.Fatal("store-initiated watchpoint did not fire")
	}
}
