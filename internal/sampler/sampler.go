// Package sampler implements the paper's runtime sampling pass (§III): the
// application's memory-reference stream is sampled sparsely at random; each
// sampled reference arms
//
//  1. a *watchpoint* on the cache line it touched — the next access to that
//     line yields a data-reuse sample whose distance is the number of
//     intervening memory references (the StatStack input), and records which
//     instruction re-used the line (the reuse edge the cache-bypass analysis
//     of §VI-B needs); and
//  2. a *breakpoint* on the sampled instruction — its next execution yields
//     a stride sample (difference of the two data addresses) and the
//     recurrence (intervening references between the two executions).
//
// On real hardware this costs <30 % overhead using debug registers and
// performance counters; here the same bookkeeping runs over the simulated
// reference stream, producing identical sample distributions.
//
// The paper samples 1 in 100,000 references of full SPEC runs (~10^11 refs).
// Synthetic runs here are ~10^6–10^8 references, so the default period is
// proportionally denser to obtain comparable sample counts; the period is a
// parameter and tests exercise the paper's 1e5 setting on long runs.
package sampler

import (
	"math/rand"

	"prefetchlab/internal/ref"
)

// ReuseSample is one data-reuse observation: line sampled at instruction PC
// was next touched by instruction ReusePC after Dist intervening references.
type ReuseSample struct {
	PC      ref.PC
	ReusePC ref.PC
	Dist    int64
}

// StrideSample is one per-instruction stride observation.
type StrideSample struct {
	PC         ref.PC
	Stride     int64 // byte delta between consecutive executions' addresses
	Recurrence int64 // intervening memory references between the executions
}

// ColdSample records a watchpoint that was never re-accessed before the end
// of execution: an infinite reuse distance (a compulsory/capacity miss at
// any cache size).
type ColdSample struct {
	PC ref.PC
}

// Config parameterizes a sampling pass.
type Config struct {
	// Period is the mean number of references between samples (the paper
	// uses 100,000 on full SPEC runs).
	Period int64
	// Seed makes the random sample-point selection reproducible.
	Seed int64
	// MaxOutstanding bounds the number of simultaneously armed watchpoints
	// (real hardware has few debug registers but samplers multiplex them;
	// 0 means unlimited).
	MaxOutstanding int
}

// DefaultConfig returns a sampling configuration suited to the synthetic
// runs in this repository.
func DefaultConfig() Config { return Config{Period: 4096, Seed: 1} }

// Sampler consumes a reference stream and accumulates samples. It
// implements isa.Sink.
type Sampler struct {
	cfg Config
	rng *rand.Rand

	refCount int64
	nextAt   int64

	lineWatch map[uint64]lineWatchpoint
	pcWatch   map[ref.PC]pcWatchpoint

	reuse   []ReuseSample
	strides []StrideSample
	cold    []ColdSample
}

type lineWatchpoint struct {
	pc      ref.PC
	startAt int64
}

type pcWatchpoint struct {
	addr    uint64
	startAt int64
}

// New creates a sampler.
func New(cfg Config) *Sampler {
	if cfg.Period <= 0 {
		cfg.Period = DefaultConfig().Period
	}
	s := &Sampler{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		lineWatch: make(map[uint64]lineWatchpoint),
		pcWatch:   make(map[ref.PC]pcWatchpoint),
	}
	s.nextAt = s.gap()
	return s
}

// gap draws the distance to the next sample point (geometric with mean
// Period, minimum 1) so sample points are randomly and sparsely placed.
func (s *Sampler) gap() int64 {
	g := int64(s.rng.ExpFloat64()*float64(s.cfg.Period)) + 1
	return g
}

// Ref implements isa.Sink; feed every memory reference in program order.
// Software prefetches are transparent to the sampler: the paper samples the
// original, unoptimized binary.
func (s *Sampler) Ref(r ref.Ref) {
	if r.Kind.IsPrefetch() {
		return
	}
	s.refCount++
	line := r.Line()

	// Fire line watchpoints (data reuse).
	if w, ok := s.lineWatch[line]; ok {
		delete(s.lineWatch, line)
		s.reuse = append(s.reuse, ReuseSample{PC: w.pc, ReusePC: r.PC, Dist: s.refCount - w.startAt - 1})
	}
	// Fire instruction breakpoints (stride + recurrence).
	if w, ok := s.pcWatch[r.PC]; ok {
		delete(s.pcWatch, r.PC)
		s.strides = append(s.strides, StrideSample{
			PC:         r.PC,
			Stride:     int64(r.Addr) - int64(w.addr),
			Recurrence: s.refCount - w.startAt - 1,
		})
	}

	// Arm a new sample point?
	if s.refCount < s.nextAt {
		return
	}
	s.nextAt = s.refCount + s.gap()
	if s.cfg.MaxOutstanding > 0 && len(s.lineWatch) >= s.cfg.MaxOutstanding {
		return
	}
	if _, busy := s.lineWatch[line]; !busy {
		s.lineWatch[line] = lineWatchpoint{pc: r.PC, startAt: s.refCount}
	}
	if _, busy := s.pcWatch[r.PC]; !busy {
		s.pcWatch[r.PC] = pcWatchpoint{addr: r.Addr, startAt: s.refCount}
	}
}

// Finish flushes watchpoints that never fired into cold samples and returns
// the accumulated profile data.
func (s *Sampler) Finish() *Samples {
	for _, w := range s.lineWatch {
		s.cold = append(s.cold, ColdSample{PC: w.pc})
	}
	s.lineWatch = make(map[uint64]lineWatchpoint)
	s.pcWatch = make(map[ref.PC]pcWatchpoint)
	return &Samples{
		Period:    s.cfg.Period,
		TotalRefs: s.refCount,
		Reuse:     s.reuse,
		Strides:   s.strides,
		Cold:      s.cold,
	}
}

// Samples is the output of one sampling pass.
type Samples struct {
	Period    int64
	TotalRefs int64
	Reuse     []ReuseSample
	Strides   []StrideSample
	Cold      []ColdSample
}

// ReuseByPC groups reuse samples by the sampled instruction.
func (s *Samples) ReuseByPC() map[ref.PC][]ReuseSample {
	m := make(map[ref.PC][]ReuseSample)
	for _, r := range s.Reuse {
		m[r.PC] = append(m[r.PC], r)
	}
	return m
}

// StridesByPC groups stride samples by instruction.
func (s *Samples) StridesByPC() map[ref.PC][]StrideSample {
	m := make(map[ref.PC][]StrideSample)
	for _, st := range s.Strides {
		m[st.PC] = append(m[st.PC], st)
	}
	return m
}

// ColdByPC counts never-reused samples by instruction.
func (s *Samples) ColdByPC() map[ref.PC]int {
	m := make(map[ref.PC]int)
	for _, c := range s.Cold {
		m[c.PC]++
	}
	return m
}

// ReuseEdges aggregates the sampled data-flow graph: edge (A → B) counts how
// often a line sampled at A was next touched by B. The cache-bypass
// analysis walks these edges to find each load's data-reusing loads.
func (s *Samples) ReuseEdges() map[ref.PC]map[ref.PC]int {
	m := make(map[ref.PC]map[ref.PC]int)
	for _, r := range s.Reuse {
		e := m[r.PC]
		if e == nil {
			e = make(map[ref.PC]int)
			m[r.PC] = e
		}
		e[r.ReusePC]++
	}
	return m
}
