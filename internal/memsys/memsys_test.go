package memsys

import (
	"strings"
	"testing"

	"prefetchlab/internal/cache"
	"prefetchlab/internal/dram"
	"prefetchlab/internal/hwpref"
	"prefetchlab/internal/ref"
)

// testConfig builds a small hierarchy: 4 kB L1, 16 kB L2, 64 kB LLC.
func testConfig(cores int) Config {
	return Config{
		Cores:  cores,
		L1:     cache.Config{Name: "L1", Size: 4 << 10, Assoc: 2},
		L2:     cache.Config{Name: "L2", Size: 16 << 10, Assoc: 4},
		LLC:    cache.Config{Name: "LLC", Size: 64 << 10, Assoc: 8},
		L1Lat:  3,
		L2Lat:  12,
		LLCLat: 30,
		DRAM:   dram.Config{ServiceLat: 200, BytesPerCycle: 4},
	}
}

func mkH(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.SetCorePCs(0, 16)
	return h
}

func load(pc ref.PC, addr uint64) ref.Ref { return ref.Ref{PC: pc, Addr: addr, Kind: ref.Load} }

func TestDemandLatencies(t *testing.T) {
	h := mkH(t, testConfig(1))
	// Cold miss goes to DRAM: stall ≥ LLCLat + ServiceLat.
	stall := h.Access(0, 0, load(0, 0))
	if stall < 200 {
		t.Fatalf("cold miss stall = %d, want ≥ 200", stall)
	}
	// Immediate re-access hits L1 (stall = L1Lat-1 = 2), once data arrived.
	stall2 := h.Access(0, stall+10, load(0, 8))
	if stall2 != 2 {
		t.Fatalf("L1 hit stall = %d, want 2", stall2)
	}
	st := h.CoreStats(0)
	if st.L1Misses != 1 || st.LLCMisses != 1 || st.Loads != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DemandFetchBytes != 64 {
		t.Fatalf("demand fetch bytes = %d, want 64", st.DemandFetchBytes)
	}
}

func TestSWPrefetchHidesLatency(t *testing.T) {
	h := mkH(t, testConfig(1))
	h.Access(0, 0, ref.Ref{PC: 1, Addr: 4096, Kind: ref.Prefetch})
	// Long after the prefetch completes, the demand access hits.
	stall := h.Access(0, 5000, load(0, 4096))
	if stall != 2 {
		t.Fatalf("post-prefetch stall = %d, want 2 (L1 hit)", stall)
	}
	st := h.CoreStats(0)
	if st.SWFetchBytes != 64 || st.SWPrefUseful != 1 {
		t.Fatalf("sw prefetch stats = %+v", st)
	}
	// A demand access arriving too early pays the residual latency.
	h2 := mkH(t, testConfig(1))
	h2.Access(0, 0, ref.Ref{PC: 1, Addr: 4096, Kind: ref.Prefetch})
	early := h2.Access(0, 50, load(0, 4096))
	if early <= 2 || early >= 250 {
		t.Fatalf("early demand stall = %d, want partial residual", early)
	}
}

func TestNTAFillBypassesOnEviction(t *testing.T) {
	cfg := testConfig(1)
	h := mkH(t, cfg)
	// NTA-prefetch a line, then stream enough lines through the L1 to evict
	// it. The line must not land in L2 or LLC.
	h.Access(0, 0, ref.Ref{PC: 1, Addr: 1 << 20, Kind: ref.PrefetchNTA})
	now := int64(1000)
	for i := uint64(0); i < 200; i++ {
		h.Access(0, now, load(2, i*64))
		now += 300
	}
	// Re-access: must be an LLC miss again (fetched from DRAM).
	before := h.CoreStats(0).LLCMisses
	h.Access(0, now, load(3, 1<<20))
	if h.CoreStats(0).LLCMisses != before+1 {
		t.Fatal("NTA line was found in L2/LLC after eviction; bypass failed")
	}
}

func TestNormalPrefetchInstallsInLLC(t *testing.T) {
	cfg := testConfig(1)
	h := mkH(t, cfg)
	h.Access(0, 0, ref.Ref{PC: 1, Addr: 1 << 20, Kind: ref.Prefetch})
	now := int64(1000)
	for i := uint64(0); i < 200; i++ { // evict from L1/L2, LLC keeps it
		h.Access(0, now, load(2, i*64))
		now += 300
	}
	before := h.CoreStats(0).LLCMisses
	h.Access(0, now, load(3, 1<<20))
	if h.CoreStats(0).LLCMisses != before {
		t.Fatal("PREFETCHT0 line missing from LLC")
	}
}

func TestStoreWriteAllocateAndWriteback(t *testing.T) {
	cfg := testConfig(1)
	cfg.L1 = cache.Config{Name: "L1", Size: 2 * 64, Assoc: 2}
	cfg.L2 = cache.Config{Name: "L2", Size: 4 * 64, Assoc: 2}
	cfg.LLC = cache.Config{Name: "LLC", Size: 8 * 64, Assoc: 2}
	h := mkH(t, cfg)
	// Store misses fetch the line (RFO) but never stall the core.
	if stall := h.Access(0, 0, ref.Ref{PC: 0, Addr: 0, Kind: ref.Store}); stall != 0 {
		t.Fatalf("store stall = %d, want 0", stall)
	}
	if h.CoreStats(0).DemandFetchBytes != 64 {
		t.Fatal("store did not fetch its line")
	}
	// Stream stores until the dirty line is pushed out of the LLC.
	now := int64(1000)
	for i := uint64(1); i < 64; i++ {
		h.Access(0, now, ref.Ref{PC: 0, Addr: i * 64, Kind: ref.Store})
		now += 300
	}
	if h.CoreStats(0).WritebackBytes == 0 {
		t.Fatal("no writeback traffic for evicted dirty lines")
	}
}

func TestHWPrefetchAccounting(t *testing.T) {
	cfg := testConfig(1)
	cfg.HWPrefEnabled = true
	cfg.NewL2Pref = func() (hwpref.Engine, error) { return hwEngineStub{}, nil }
	h := mkH(t, cfg)
	// Two misses in the same page train the stub, which prefetches +1.
	h.Access(0, 0, load(0, 0))
	h.Access(0, 1000, load(0, 64))
	st := h.CoreStats(0)
	if st.HWPrefIssued == 0 || st.HWFetchBytes == 0 {
		t.Fatalf("hw prefetch stats = %+v", st)
	}
}

// hwEngineStub prefetches line+1 on every observed miss.
type hwEngineStub struct{}

func (hwEngineStub) Name() string { return "stub" }
func (hwEngineStub) Observe(now int64, pc ref.PC, line uint64, miss bool, buf []uint64) []uint64 {
	if miss {
		return append(buf, line+1)
	}
	return buf
}
func (hwEngineStub) Reset() {}

func TestPerPCMissCounting(t *testing.T) {
	h := mkH(t, testConfig(1))
	h.Access(0, 0, load(5, 0))
	h.Access(0, 1000, load(5, 1<<20))
	h.Access(0, 2000, load(6, 8)) // hit (line 0 resident)
	miss := h.L1MissByPC(0)
	acc := h.AccessByPC(0)
	if miss[5] != 2 || miss[6] != 0 {
		t.Fatalf("missByPC = %v", miss[:8])
	}
	if acc[5] != 2 || acc[6] != 1 {
		t.Fatalf("accByPC = %v", acc[:8])
	}
}

func TestSharedLLCContention(t *testing.T) {
	cfg := testConfig(2)
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.SetCorePCs(0, 4)
	h.SetCorePCs(1, 4)
	// Core 0 loads a line and then pushes it out of its own L1/L2 (but the
	// LLC keeps it); core 1 streams the LLC full; core 0 must then re-miss
	// off-chip.
	h.Access(0, 0, load(0, 0))
	now := int64(1000)
	for i := uint64(1); i < 400; i++ { // evict line 0 from core 0's L1/L2
		h.Access(0, now, load(0, (1<<30)+i*64))
		now += 300
	}
	for i := uint64(1); i < 4096; i++ { // thrash the shared LLC
		h.Access(1, now, load(0, (2<<30)+i*64))
		now += 300
	}
	before := h.CoreStats(0).LLCMisses
	h.Access(0, now, load(1, 0))
	if h.CoreStats(0).LLCMisses != before+1 {
		t.Fatal("core 1's streaming did not evict core 0's line from the shared LLC")
	}
}

func TestFunctionalCoverage(t *testing.T) {
	f, err := NewFunctional(cache.Config{Name: "f", Size: 4 << 10, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two passes over 128 lines (8 kB > 4 kB cache): all miss.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 128; i++ {
			f.Ref(load(0, i*64))
		}
	}
	if f.MissRatio() != 1.0 {
		t.Fatalf("thrash miss ratio = %g, want 1.0", f.MissRatio())
	}
	// Prefetching each line ahead removes the misses.
	f2, err := NewFunctional(cache.Config{Name: "f", Size: 4 << 10, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 128; i++ {
			f2.Ref(ref.Ref{PC: 1, Addr: i * 64, Kind: ref.Prefetch})
			f2.Ref(load(0, i*64))
		}
	}
	if f2.Misses() != 0 {
		t.Fatalf("prefetched functional misses = %d, want 0", f2.Misses())
	}
	if f2.Prefetches() != 256 {
		t.Fatalf("prefetch count = %d, want 256", f2.Prefetches())
	}
	if f2.PCMissRatio(0) != 0 {
		t.Fatalf("per-PC miss ratio = %g, want 0", f2.PCMissRatio(0))
	}
}

func TestSWPrefToL2DoesNotFillL1(t *testing.T) {
	cfg := testConfig(1)
	cfg.SWPrefToL2 = true
	h := mkH(t, cfg)
	h.Access(0, 0, ref.Ref{PC: 1, Addr: 4096, Kind: ref.Prefetch})
	// Demand must miss L1 but hit L2.
	stall := h.Access(0, 5000, load(0, 4096))
	if stall != 12-1 {
		t.Fatalf("L2-target prefetch demand stall = %d, want %d (L2 hit)", stall, 11)
	}
	if h.CoreStats(0).L1Misses != 1 {
		t.Fatal("demand should have missed L1")
	}
}

func TestWriteSummary(t *testing.T) {
	h := mkH(t, testConfig(1))
	// One cold miss and one hit so every section has something to show.
	stall := h.Access(0, 0, load(0, 0))
	h.Access(0, stall+10, load(0, 8))
	var b strings.Builder
	h.WriteSummary(&b)
	out := b.String()
	for _, want := range []string{
		"core 0", "demand", "miss ratio L1", "traffic",
		"off-chip: demand", "prefetch  sw issued",
		"L1 ", "L2 ", "LLC ", "DRAM ", "transfers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}
}

func TestCoreCacheStats(t *testing.T) {
	h := mkH(t, testConfig(1))
	h.Access(0, 0, load(0, 0))
	l1, l2 := h.CoreCacheStats(0)
	if l1.Misses != 1 || l2.Misses != 1 {
		t.Errorf("L1/L2 misses = %d/%d, want 1/1", l1.Misses, l2.Misses)
	}
}

func TestPrivateLinesNamespaceTheSharedLLC(t *testing.T) {
	// The mixed-workload methodology co-runs independent program instances
	// whose arenas start at identical bases. With private lines on (as
	// cpu.RunMix sets), a line core 0 fetched must NOT count as resident
	// for the same address issued by core 1 — the instances do not actually
	// share data, and cross-core hits would fabricate LLC capacity.
	cfg := testConfig(2)
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.SetCorePCs(0, 4)
	h.SetCorePCs(1, 4)
	h.SetPrivateLines(true)
	s0 := h.Access(0, 0, load(0, 0))
	if s0 < 200 {
		t.Fatalf("core 0 cold miss stall = %d, want off-chip", s0)
	}
	s1 := h.Access(1, 10000, load(0, 0))
	if s1 < 200 {
		t.Fatalf("core 1 stall for the same address = %d, want an off-chip miss (private lines)", s1)
	}
	if m := h.CoreStats(1).LLCMisses; m != 1 {
		t.Fatalf("core 1 LLC misses = %d, want 1", m)
	}

	// With private lines off (solo and SPMD-parallel runs, which genuinely
	// share data), core 1 hits the line core 0 brought in.
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2.SetCorePCs(0, 4)
	h2.SetCorePCs(1, 4)
	h2.SetPrivateLines(false)
	h2.Access(0, 0, load(0, 0))
	if s := h2.Access(1, 10000, load(0, 0)); s >= 200 {
		t.Fatalf("core 1 stall = %d, want a shared-LLC hit (shared lines)", s)
	}
	if m := h2.CoreStats(1).LLCMisses; m != 0 {
		t.Fatalf("core 1 LLC misses = %d, want 0", m)
	}
}
