// Package memsys assembles the full memory system of one simulated socket:
// per-core private L1 and L2 caches, a shared last-level cache (LLC), a
// bandwidth-limited DRAM channel, and optional hardware prefetch engines at
// the L1 and L2. It implements the access path for demand loads/stores,
// software prefetches (normal and non-temporal) and hardware prefetches,
// with the traffic accounting the paper's evaluation is built on.
package memsys

import (
	"fmt"

	"prefetchlab/internal/cache"
	"prefetchlab/internal/dram"
	"prefetchlab/internal/hwpref"
	"prefetchlab/internal/ref"
)

// Config describes a socket's memory system.
type Config struct {
	Cores int

	L1  cache.Config
	L2  cache.Config
	LLC cache.Config

	// Total load-to-use latencies in cycles for hits at each level. The
	// one-cycle issue cost charged by the core is included, so the stall
	// returned for an L1 hit is L1Lat-1.
	L1Lat, L2Lat, LLCLat int64

	DRAM dram.Config

	// Hardware prefetchers: constructors invoked once per core (L1) and once
	// per core (L2; a single socket-level streamer would serialize training
	// across cores). Nil means no engine at that level. NewL2B allows a
	// second L2 engine (Intel pairs a streamer with the adjacent-line
	// prefetcher).
	NewL1Pref  func() (hwpref.Engine, error)
	NewL2Pref  func() (hwpref.Engine, error)
	NewL2PrefB func() (hwpref.Engine, error)

	// HWPrefEnabled turns the hardware engines on. The paper's baseline is
	// always "hardware prefetching turned off".
	HWPrefEnabled bool

	// ThrottleBacklog, when > 0, drops hardware prefetches while the channel
	// backlog exceeds this many cycles — the contention throttling modern
	// processors apply (§I notes it exists but still wastes traffic).
	ThrottleBacklog int64

	// SWPrefToL2, when true, makes software prefetches fill the L2 (and
	// LLC) but not the L1 — the "prefetches from L2 alone" ablation the
	// paper mentions in §VII-A (libquantum +4 %, lbm +3 %, soplex +1.3 %).
	SWPrefToL2 bool

	// OOOWindow is the core's reorder-window size in instructions; it
	// bounds how far execution runs past an incomplete load and therefore
	// the memory-level parallelism of independent misses. 0 selects the
	// VM default.
	OOOWindow int64
}

// CoreStats aggregates demand-path statistics for one core.
type CoreStats struct {
	Loads  int64
	Stores int64

	L1Misses  int64 // demand accesses missing L1
	L2Misses  int64 // demand accesses missing L2 (subset of L1Misses)
	LLCMisses int64 // demand accesses missing LLC (off-chip demand fetches)

	LoadStallCycles int64
	// LoadL1Misses / MissLatencyCycles measure the average latency per L1
	// load miss — the "latency" input of the paper's cost/benefit test
	// (§V), measured with performance counters on real hardware.
	LoadL1Misses      int64
	MissLatencyCycles int64

	// Off-chip fetch traffic in bytes by requester.
	DemandFetchBytes int64
	SWFetchBytes     int64
	HWFetchBytes     int64
	WritebackBytes   int64

	SWPrefIssued    int64 // software prefetch instructions executed
	SWPrefUseful    int64 // sw prefetches that actually fetched a missing line
	SWPrefRedundant int64 // sw prefetches filtered because the line was in L1
	HWPrefIssued    int64 // hardware prefetch fills initiated
	HWPrefRedundant int64 // hw prefetch candidates filtered as already cached
	HWPrefDropped   int64 // hardware prefetches dropped by throttling
}

// FetchBytes returns total off-chip fetch traffic (excluding writebacks).
func (s CoreStats) FetchBytes() int64 {
	return s.DemandFetchBytes + s.SWFetchBytes + s.HWFetchBytes
}

// TotalTraffic returns all off-chip traffic including writebacks.
func (s CoreStats) TotalTraffic() int64 { return s.FetchBytes() + s.WritebackBytes }

type coreState struct {
	l1, l2   *cache.Cache
	l1Pref   hwpref.Engine
	l2Pref   hwpref.Engine
	l2PrefB  hwpref.Engine
	stats    CoreStats
	missByPC []int64 // demand L1 misses per PC
	accByPC  []int64 // demand accesses per PC
	prefBuf  []uint64
}

// Hierarchy is one socket's memory system.
type Hierarchy struct {
	cfg   Config
	cores []coreState
	llc   *cache.Cache
	chan_ *dram.Channel
	// privateLines tags line addresses with the owning core so distinct
	// co-running programs cannot alias each other in the shared LLC; see
	// SetPrivateLines.
	privateLines bool
}

// New builds a hierarchy from cfg.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("memsys: bad core count %d", cfg.Cores)
	}
	ch, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, chan_: ch}
	llc, err := cache.New(cfg.LLC)
	if err != nil {
		return nil, err
	}
	h.llc = llc
	h.cores = make([]coreState, cfg.Cores)
	for i := range h.cores {
		c := &h.cores[i]
		if c.l1, err = cache.New(cfg.L1); err != nil {
			return nil, err
		}
		if c.l2, err = cache.New(cfg.L2); err != nil {
			return nil, err
		}
		if cfg.NewL1Pref != nil {
			if c.l1Pref, err = cfg.NewL1Pref(); err != nil {
				return nil, err
			}
		}
		if cfg.NewL2Pref != nil {
			if c.l2Pref, err = cfg.NewL2Pref(); err != nil {
				return nil, err
			}
		}
		if cfg.NewL2PrefB != nil {
			if c.l2PrefB, err = cfg.NewL2PrefB(); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Channel exposes the DRAM channel (for bandwidth metrics).
func (h *Hierarchy) Channel() *dram.Channel { return h.chan_ }

// LLC exposes the shared cache (for pollution statistics).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// CoreStats returns a copy of core c's statistics.
func (h *Hierarchy) CoreStats(c int) CoreStats { return h.cores[c].stats }

// CoreCacheStats returns copies of core c's private L1 and L2 level
// statistics (for observability snapshots and summaries).
func (h *Hierarchy) CoreCacheStats(c int) (l1, l2 cache.Stats) {
	return h.cores[c].l1.Stats(), h.cores[c].l2.Stats()
}

// L1MissByPC returns core c's per-PC demand L1 miss counts (live slice).
func (h *Hierarchy) L1MissByPC(c int) []int64 { return h.cores[c].missByPC }

// AccessByPC returns core c's per-PC demand access counts (live slice).
func (h *Hierarchy) AccessByPC(c int) []int64 { return h.cores[c].accByPC }

// SetCorePCs sizes core c's per-PC counters for a program with n static
// memory instructions. Must be called before the core issues accesses.
func (h *Hierarchy) SetCorePCs(c, n int) {
	h.cores[c].missByPC = make([]int64, n)
	h.cores[c].accByPC = make([]int64, n)
}

// ResetCore clears core c's private caches, engines and statistics (used
// when a mix slot restarts with a different program).
func (h *Hierarchy) ResetCore(c int) {
	cs := &h.cores[c]
	cs.l1.Reset()
	cs.l2.Reset()
	if cs.l1Pref != nil {
		cs.l1Pref.Reset()
	}
	if cs.l2Pref != nil {
		cs.l2Pref.Reset()
	}
	if cs.l2PrefB != nil {
		cs.l2PrefB.Reset()
	}
	cs.stats = CoreStats{}
	for i := range cs.missByPC {
		cs.missByPC[i] = 0
	}
	for i := range cs.accByPC {
		cs.accByPC[i] = 0
	}
}

// countPC bumps the per-PC counters, growing them if the program was not
// registered via SetCorePCs.
func grow(s []int64, pc ref.PC) []int64 {
	for int(pc) >= len(s) {
		s = append(s, 0)
	}
	return s
}

// SetPrivateLines switches the hierarchy between shared and private
// address spaces. The builders give every program the same address layout,
// so when distinct programs co-run on the socket their lines alias in the
// shared LLC and manufacture cross-application hits that have no physical
// counterpart — co-scheduled SPEC instances own disjoint memory. Under
// private lines each core's line addresses are tagged with the core index
// (in bits the arena allocator never reaches) before any cache or
// prefetcher sees them. The mixed-workload methodology (cpu.RunMix)
// enables it; single-program and SPMD parallel runs keep it off, since
// their cores genuinely share data (and core 0 alone is unaffected by the
// tag either way).
func (h *Hierarchy) SetPrivateLines(on bool) { h.privateLines = on }

// coreLine maps a reference to its cache-line key, tagging the core index
// into bit 48 and up under private-lines mode (arena addresses stay far
// below 2^48, so prefetcher stride arithmetic never carries into the tag).
func (h *Hierarchy) coreLine(c int, r ref.Ref) uint64 {
	line := r.Line()
	if h.privateLines {
		line |= uint64(c) << 48
	}
	return line
}

// Access performs one memory reference for core c at time now and returns
// the stall the core observes (0 for stores and prefetches). It implements
// the per-core half of isa.MemSystem.
func (h *Hierarchy) Access(c int, now int64, r ref.Ref) int64 {
	switch r.Kind {
	case ref.Load, ref.Store:
		return h.demand(c, now, r)
	case ref.Prefetch:
		h.swPrefetch(c, now, r, false)
		return 0
	case ref.PrefetchNTA:
		h.swPrefetch(c, now, r, true)
		return 0
	default:
		// lint:allow nopanic (exhaustive-switch assertion over ref.Kind; unreachable unless a new kind is added without a case)
		panic("memsys: unknown ref kind")
	}
}

// demand walks the hierarchy for a demand load/store.
func (h *Hierarchy) demand(c int, now int64, r ref.Ref) int64 {
	cs := &h.cores[c]
	line := h.coreLine(c, r)
	isStore := r.Kind == ref.Store
	if isStore {
		cs.stats.Stores++
	} else {
		cs.stats.Loads++
	}
	if r.PC != ref.InvalidPC {
		cs.accByPC = grow(cs.accByPC, r.PC)
		cs.accByPC[r.PC]++
	}

	var lat int64
	wait, hitL1 := cs.l1.Lookup(line, now)
	missL1 := !hitL1
	if hitL1 {
		lat = h.cfg.L1Lat + wait
		if isStore {
			cs.l1.Touch(line, true)
		}
	} else {
		cs.stats.L1Misses++
		if r.PC != ref.InvalidPC {
			cs.missByPC = grow(cs.missByPC, r.PC)
			cs.missByPC[r.PC]++
		}
		lat = h.fillFromL2(c, now, r, line, isStore)
		if !isStore {
			cs.stats.LoadL1Misses++
			cs.stats.MissLatencyCycles += lat
		}
	}

	// Train hardware prefetchers.
	if h.cfg.HWPrefEnabled {
		if cs.l1Pref != nil {
			cs.prefBuf = cs.l1Pref.Observe(now, r.PC, line, missL1, cs.prefBuf[:0])
			h.issueHW(c, now, cs.prefBuf, 1)
		}
	}

	if isStore {
		return 0 // write buffer: stores do not stall the core
	}
	stall := lat - 1 // the core already charged the 1-cycle issue
	if stall < 0 {
		stall = 0
	}
	cs.stats.LoadStallCycles += stall
	return stall
}

// fillFromL2 handles a demand L1 miss: L2 → LLC → DRAM, installing the line
// on the way back. Returns the total load-to-use latency.
func (h *Hierarchy) fillFromL2(c int, now int64, r ref.Ref, line uint64, isStore bool) int64 {
	cs := &h.cores[c]
	var lat int64
	var readyAt int64

	wait, hitL2 := cs.l2.Lookup(line, now)
	if hitL2 {
		lat = h.cfg.L2Lat + wait
		readyAt = now + lat
	} else {
		cs.stats.L2Misses++
		wait, hitLLC := h.llc.Lookup(line, now)
		if hitLLC {
			lat = h.cfg.LLCLat + wait
			readyAt = now + lat
		} else {
			cs.stats.LLCMisses++
			completeAt := h.chan_.Transfer(now+h.cfg.LLCLat, ref.LineSize)
			lat = completeAt - now
			readyAt = completeAt
			cs.stats.DemandFetchBytes += ref.LineSize
			h.installLLC(c, line, now, cache.FillOpts{Src: cache.FillDemand, ReadyAt: readyAt, Used: true})
		}
		h.installL2(c, line, now, cache.FillOpts{Src: cache.FillDemand, ReadyAt: readyAt, Used: true})

		// L2-level hardware prefetchers observe the miss stream.
		if h.cfg.HWPrefEnabled {
			if cs.l2Pref != nil {
				cs.prefBuf = cs.l2Pref.Observe(now, r.PC, line, !hitLLC, cs.prefBuf[:0])
				h.issueHW(c, now, cs.prefBuf, 2)
			}
			if cs.l2PrefB != nil {
				cs.prefBuf = cs.l2PrefB.Observe(now, r.PC, line, !hitLLC, cs.prefBuf[:0])
				h.issueHW(c, now, cs.prefBuf, 2)
			}
		}
	}
	h.installL1(c, line, now, cache.FillOpts{Dirty: isStore, Src: cache.FillDemand, ReadyAt: readyAt, Used: true})
	return lat
}

// swPrefetch implements PREFETCHT0 (nta=false) and PREFETCHNTA (nta=true).
func (h *Hierarchy) swPrefetch(c int, now int64, r ref.Ref, nta bool) {
	cs := &h.cores[c]
	cs.stats.SWPrefIssued++
	line := h.coreLine(c, r)
	if !h.cfg.SWPrefToL2 && cs.l1.Probe(line) {
		cs.stats.SWPrefRedundant++
		return // already (or about to be) in L1
	}
	var readyAt int64
	wait, hitL2 := cs.l2.Lookup(line, now)
	switch {
	case hitL2:
		readyAt = now + h.cfg.L2Lat + wait
	default:
		wait, hitLLC := h.llc.Lookup(line, now)
		if hitLLC {
			readyAt = now + h.cfg.LLCLat + wait
		} else {
			completeAt := h.chan_.Transfer(now+h.cfg.LLCLat, ref.LineSize)
			readyAt = completeAt
			cs.stats.SWFetchBytes += ref.LineSize
			cs.stats.SWPrefUseful++
			if !nta {
				// PREFETCHT0 installs throughout the hierarchy.
				h.installLLC(c, line, now, cache.FillOpts{Src: cache.FillSW, ReadyAt: readyAt})
			}
		}
		if !nta || h.cfg.SWPrefToL2 {
			h.installL2(c, line, now, cache.FillOpts{Src: cache.FillSW, ReadyAt: readyAt})
		}
	}
	if h.cfg.SWPrefToL2 {
		return // L2-target ablation: do not touch the L1
	}
	h.installL1(c, line, now, cache.FillOpts{NT: nta, Src: cache.FillSW, ReadyAt: readyAt})
}

// issueHW issues hardware prefetch candidates produced at the given level
// (1 = fills L1+L2+LLC, 2 = fills L2+LLC).
func (h *Hierarchy) issueHW(c int, now int64, lines []uint64, level int) {
	if len(lines) == 0 {
		return
	}
	cs := &h.cores[c]
	for _, line := range lines {
		if h.cfg.ThrottleBacklog > 0 && h.chan_.Backlog(now) > h.cfg.ThrottleBacklog {
			cs.stats.HWPrefDropped++
			continue
		}
		if level == 1 && cs.l1.Probe(line) {
			cs.stats.HWPrefRedundant++
			continue
		}
		if cs.l2.Probe(line) {
			cs.stats.HWPrefRedundant++
			if level == 1 {
				h.installL1(c, line, now, cache.FillOpts{Src: cache.FillHW, ReadyAt: now + h.cfg.L2Lat})
			}
			continue
		}
		var readyAt int64
		if h.llc.Probe(line) {
			readyAt = now + h.cfg.LLCLat
		} else {
			readyAt = h.chan_.Transfer(now+h.cfg.LLCLat, ref.LineSize)
			cs.stats.HWFetchBytes += ref.LineSize
			h.installLLC(c, line, now, cache.FillOpts{Src: cache.FillHW, ReadyAt: readyAt})
		}
		cs.stats.HWPrefIssued++
		h.installL2(c, line, now, cache.FillOpts{Src: cache.FillHW, ReadyAt: readyAt})
		if level == 1 {
			h.installL1(c, line, now, cache.FillOpts{Src: cache.FillHW, ReadyAt: readyAt})
		}
	}
}

// installL1 installs a line into core c's L1 and routes the victim.
func (h *Hierarchy) installL1(c int, line uint64, now int64, opts cache.FillOpts) {
	cs := &h.cores[c]
	victim, evicted := cs.l1.Insert(line, now, opts)
	if !evicted {
		return
	}
	if victim.NT {
		// Non-temporal lines bypass L2/LLC: dirty data goes straight to
		// DRAM, clean data is dropped (§VI-B).
		if victim.Dirty {
			h.chan_.Transfer(now, ref.LineSize)
			cs.stats.WritebackBytes += ref.LineSize
		}
		return
	}
	if victim.Dirty {
		// Write-back into L2 (mark dirty there, installing if absent).
		if cs.l2.Probe(victim.Tag) {
			cs.l2.Touch(victim.Tag, true)
		} else {
			h.installL2(c, victim.Tag, now, cache.FillOpts{Dirty: true, Src: victim.Src, Used: victim.Used})
		}
	}
}

// installL2 installs a line into core c's L2 and routes the victim.
func (h *Hierarchy) installL2(c int, line uint64, now int64, opts cache.FillOpts) {
	cs := &h.cores[c]
	victim, evicted := cs.l2.Insert(line, now, opts)
	if !evicted {
		return
	}
	if victim.Dirty {
		if h.llc.Probe(victim.Tag) {
			h.llc.Touch(victim.Tag, true)
		} else {
			h.installLLC(c, victim.Tag, now, cache.FillOpts{Dirty: true, Src: victim.Src, Used: victim.Used})
		}
	}
}

// installLLC installs a line into the shared LLC and writes back the victim.
func (h *Hierarchy) installLLC(c int, line uint64, now int64, opts cache.FillOpts) {
	cs := &h.cores[c]
	victim, evicted := h.llc.Insert(line, now, opts)
	if evicted && victim.Dirty {
		h.chan_.Transfer(now, ref.LineSize)
		cs.stats.WritebackBytes += ref.LineSize
	}
}

// TotalTraffic sums off-chip traffic (bytes) across all cores.
func (h *Hierarchy) TotalTraffic() int64 {
	var t int64
	for i := range h.cores {
		t += h.cores[i].stats.TotalTraffic()
	}
	return t
}

// CoreMem adapts one core of the hierarchy to isa.MemSystem.
type CoreMem struct {
	H    *Hierarchy
	Core int
}

// Access implements isa.MemSystem.
func (m CoreMem) Access(now int64, r ref.Ref) int64 { return m.H.Access(m.Core, now, r) }
