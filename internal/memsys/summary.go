package memsys

import (
	"fmt"
	"io"
	"strings"
)

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// ratio renders part/whole as a percentage ("-" when whole is 0).
func ratio(part, whole int64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", float64(part)/float64(whole)*100)
}

// Summary renders one core's statistics as a readable multi-line table:
// the demand-path miss ratios, the off-chip traffic split between demand
// fetches, prefetch fetches and writebacks, and prefetch usefulness — so
// callers (examples, reports) need not reach into the counter fields.
func (s CoreStats) Summary() string {
	var b strings.Builder
	acc := s.Loads + s.Stores
	fmt.Fprintf(&b, "  demand    %d loads, %d stores | miss ratio L1 %s, L2 %s, LLC %s",
		s.Loads, s.Stores, ratio(s.L1Misses, acc), ratio(s.L2Misses, acc), ratio(s.LLCMisses, acc))
	if s.LoadL1Misses > 0 {
		fmt.Fprintf(&b, " | avg miss latency %.1f cycles",
			float64(s.MissLatencyCycles)/float64(s.LoadL1Misses))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  traffic   %s off-chip: demand %s, sw-pref %s, hw-pref %s, writeback %s\n",
		fmtBytes(s.TotalTraffic()), fmtBytes(s.DemandFetchBytes), fmtBytes(s.SWFetchBytes),
		fmtBytes(s.HWFetchBytes), fmtBytes(s.WritebackBytes))
	fmt.Fprintf(&b, "  prefetch  sw issued %d (useful %d, redundant %d) | hw issued %d (redundant %d, dropped %d)",
		s.SWPrefIssued, s.SWPrefUseful, s.SWPrefRedundant,
		s.HWPrefIssued, s.HWPrefRedundant, s.HWPrefDropped)
	return b.String()
}

// WriteSummary renders the whole hierarchy as a per-level table: each
// core's demand/prefetch traffic split and private cache levels, then the
// shared LLC and the DRAM channel.
func (h *Hierarchy) WriteSummary(w io.Writer) {
	for c := range h.cores {
		cs := h.CoreStats(c)
		l1, l2 := h.CoreCacheStats(c)
		fmt.Fprintf(w, "core %d\n%s\n", c, cs.Summary())
		fmt.Fprintf(w, "  L1        %s\n", l1)
		fmt.Fprintf(w, "  L2        %s\n", l2)
	}
	fmt.Fprintf(w, "LLC         %s\n", h.llc.Stats())
	d := h.chan_.Stats()
	fmt.Fprintf(w, "DRAM        %d transfers, %s, queue delay %d cycles, busy %d cycles\n",
		d.Transfers, fmtBytes(d.Bytes), d.QueueDelay, d.BusyCycles)
}
