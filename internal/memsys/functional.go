package memsys

import (
	"prefetchlab/internal/cache"
	"prefetchlab/internal/ref"
)

// Functional is the equivalent of the paper's Pin-based functional cache
// simulator (§IV): a single cache level fed the exact reference stream,
// producing baseline per-instruction miss ratios. It has no timing — every
// access costs zero — so it measures *which* references miss, not when.
//
// Software prefetches are honoured (they fill the cache), which is what
// makes coverage measurable: running the rewritten program through the same
// functional cache shows how many demand misses the prefetches removed.
type Functional struct {
	c        *cache.Cache
	accByPC  []int64
	missByPC []int64
	prefByPC []int64
	accesses int64
	misses   int64
	prefs    int64
}

// NewFunctional builds a functional simulator around one cache config
// (e.g. the paper's 64 kB 2-way AMD L1, or the 512 kB L2 variant).
func NewFunctional(cfg cache.Config) (*Functional, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Functional{c: c}, nil
}

// Access implements isa.MemSystem with zero latency.
func (f *Functional) Access(now int64, r ref.Ref) int64 {
	f.Ref(r)
	return 0
}

// Ref implements isa.Sink so the functional simulator can also consume a
// trace directly.
func (f *Functional) Ref(r ref.Ref) {
	line := r.Line()
	if r.Kind.IsPrefetch() {
		f.prefs++
		if r.PC != ref.InvalidPC {
			f.prefByPC = grow(f.prefByPC, r.PC)
			f.prefByPC[r.PC]++
		}
		if !f.c.Probe(line) {
			f.c.Insert(line, 0, cache.FillOpts{Src: cache.FillSW, NT: r.Kind == ref.PrefetchNTA})
		}
		return
	}
	f.accesses++
	if r.PC != ref.InvalidPC {
		f.accByPC = grow(f.accByPC, r.PC)
		f.accByPC[r.PC]++
	}
	if _, ok := f.c.Lookup(line, 0); ok {
		if r.Kind == ref.Store {
			f.c.Touch(line, true)
		}
		return
	}
	f.misses++
	if r.PC != ref.InvalidPC {
		f.missByPC = grow(f.missByPC, r.PC)
		f.missByPC[r.PC]++
	}
	f.c.Insert(line, 0, cache.FillOpts{Src: cache.FillDemand, Dirty: r.Kind == ref.Store, Used: true})
}

// Accesses returns the number of demand accesses observed.
func (f *Functional) Accesses() int64 { return f.accesses }

// Misses returns the number of demand misses observed.
func (f *Functional) Misses() int64 { return f.misses }

// Prefetches returns the number of software prefetches observed.
func (f *Functional) Prefetches() int64 { return f.prefs }

// MissRatio returns the overall demand miss ratio.
func (f *Functional) MissRatio() float64 {
	if f.accesses == 0 {
		return 0
	}
	return float64(f.misses) / float64(f.accesses)
}

// MissByPC returns per-PC demand miss counts (live slice).
func (f *Functional) MissByPC() []int64 { return f.missByPC }

// AccessByPC returns per-PC demand access counts (live slice).
func (f *Functional) AccessByPC() []int64 { return f.accByPC }

// PrefetchByPC returns per-PC software prefetch counts (live slice).
func (f *Functional) PrefetchByPC() []int64 { return f.prefByPC }

// PCMissRatio returns the miss ratio of one static instruction.
func (f *Functional) PCMissRatio(pc ref.PC) float64 {
	if int(pc) >= len(f.accByPC) || f.accByPC[pc] == 0 {
		return 0
	}
	var m int64
	if int(pc) < len(f.missByPC) {
		m = f.missByPC[pc]
	}
	return float64(m) / float64(f.accByPC[pc])
}
