package experiments

import (
	"context"
	"fmt"
)

// Names lists every experiment Run accepts, in presentation order — the
// order "all" expands to in the CLI and the order the serving layer
// advertises.
func Names() []string {
	return []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "statcov",
		"ablation-combined", "ablation-l2", "ablation-throttle",
		"ablation-window", "analytic", "analytic-validate",
		"static-validate"}
}

// analyticCapable reports whether an experiment can answer under
// Tier == "analytic": either it never runs the timing simulator (fig3 is
// pure StatStack), or it is the analytic tier itself. analytic-validate is
// capable by definition — comparing against the simulator is its job.
func analyticCapable(name string) bool {
	switch name {
	case "fig3", "analytic", "analytic-validate", "static-validate":
		return true
	}
	return false
}

// staticCapable reports whether an experiment can answer under
// Tier == "static": only the static tier's own differential harness —
// every figure needs either the timing simulator or the sampled profile,
// both of which the zero-execution tier exists to avoid.
func staticCapable(name string) bool { return name == "static-validate" }

// Known reports whether name is a runnable experiment.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Run executes one experiment by name and renders it to the session's
// output writer. It is the single dispatch shared by the CLI and the
// serving layer. Cancelling ctx drains the experiment's in-flight tasks
// and surfaces sched.ErrCanceled.
func Run(ctx context.Context, s *Session, name string) error {
	if !Known(name) {
		return fmt.Errorf("unknown experiment %q", name)
	}
	if s.O.Tier == "analytic" && !analyticCapable(name) {
		return fmt.Errorf("experiment %q requires the timing simulator (run with -tier=sim)", name)
	}
	if s.O.Tier == "static" && !staticCapable(name) {
		return fmt.Errorf("experiment %q is not available under the static tier (run with -tier=sim)", name)
	}
	switch name {
	case "table1":
		r, err := s.Table1(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig3":
		r, err := s.Fig3(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig4", "fig5", "fig6":
		r, err := s.Fig456(ctx)
		if err != nil {
			return err
		}
		switch name {
		case "fig4":
			r.PrintFig4(s)
		case "fig5":
			r.PrintFig5(s)
		case "fig6":
			r.PrintFig6(s)
		}
	case "fig7":
		r, err := s.Fig7(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig8":
		r, err := s.Fig8(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig9":
		r, err := s.Fig9(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig10":
		r, err := s.Fig10(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig11":
		r, err := s.Fig11(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "fig12":
		r, err := s.Fig12(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "statcov":
		r, err := s.StatCoverage(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-combined":
		r, err := s.AblationCombined(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-l2":
		r, err := s.AblationL2(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-throttle":
		r, err := s.AblationThrottle(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "ablation-window":
		r, err := s.AblationWindow(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "analytic":
		r, err := s.Analytic(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "analytic-validate":
		r, err := s.AnalyticValidate(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	case "static-validate":
		r, err := s.StaticValidate(ctx)
		if err != nil {
			return err
		}
		r.Print(s)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
