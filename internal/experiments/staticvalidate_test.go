package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prefetchlab/internal/obs"
	"prefetchlab/internal/workloads"
)

// staticMAEBounds is the golden table for TestStaticVsSampled: the worst
// acceptable mean absolute miss-ratio error between the static (zero
// execution) MRC and the sampled StatStack MRC, per benchmark, at the
// session's test configuration (scale 0.05, sampler period 1024, seed 11).
// Bounds are measured error plus ~2x margin. cigar is the documented
// outlier: its bursty phase structure means the sampled model sees phases
// blended through one reservoir while the static model keeps them separate
// (see EXPERIMENTS.md). lbm/leslie3d carry wide bounds for the same reason
// in milder form — multi-array sweeps whose cross-pass reuse lands near a
// cache-size knee, where a small reuse-distance disagreement is amplified.
var staticMAEBounds = map[string]float64{
	"gcc":        0.020,
	"libquantum": 0.035,
	"lbm":        0.070,
	"mcf":        0.025,
	"omnetpp":    0.060,
	"soplex":     0.035,
	"astar":      0.005,
	"xalan":      0.015,
	"leslie3d":   0.060,
	"GemsFDTD":   0.010,
	"milc":       0.005,
	"cigar":      0.150,
}

// staticInsertFloor is the minimum acceptable insert-decision agreement per
// benchmark. At the pinned seed both tiers agree on every comparable load of
// every workload, so the floor is 1.0 almost everywhere. cigar keeps a
// relaxed floor: its short burst phases give the sampler few stride pairs
// per phase, so small seed changes can flip one load to too-few-samples or
// no-dominant-stride while the static tier (which sees the whole text)
// still says insert — the known, documented divergence mode of the tier.
var staticInsertFloor = map[string]float64{"cigar": 0.80}

func insertFloor(bench string) float64 {
	if f, ok := staticInsertFloor[bench]; ok {
		return f
	}
	return 1.0
}

// TestStaticVsSampled is the differential golden test for the static tier:
// the zero-execution analyzer profiles the complete Table I workload set and
// its stride classification, prefetch decisions, and miss-ratio curves must
// agree with the sampled pipeline inside the pinned per-workload bounds.
func TestStaticVsSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sampled pipeline over all 12 workloads")
	}
	s := testSession() // all 12 benchmarks, seed 11
	r, err := s.StaticValidate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Skipped) != 0 {
		t.Fatalf("skipped cells in a fault-free run: %+v", r.Skipped)
	}
	names := workloads.Names()
	if len(r.Rows) != len(names) {
		t.Fatalf("%d rows, want %d", len(r.Rows), len(names))
	}
	for i, row := range r.Rows {
		if row.Bench != names[i] {
			t.Fatalf("row %d is %s, want Table I order (%s)", i, row.Bench, names[i])
		}
		if row.Loads == 0 || row.Comparable == 0 {
			t.Errorf("%s: no comparable loads (loads=%d)", row.Bench, row.Loads)
			continue
		}
		if a := row.InsertAgreement(); a < insertFloor(row.Bench) {
			t.Errorf("%s: insert agreement %.2f (%d/%d) below floor %.2f",
				row.Bench, a, row.InsertAgree, row.Comparable, insertFloor(row.Bench))
		}
		// Stride agreement is pinned exactly: when both tiers say insert,
		// they derive the dominant stride from the same program, so any
		// mismatch is a real classifier bug, not noise.
		if row.StrideAgree < row.InsertAgree {
			t.Errorf("%s: stride agreement %d/%d below insert agreement %d",
				row.Bench, row.StrideAgree, row.Comparable, row.InsertAgree)
		}
		// The static tier must actually recommend prefetches where the
		// sampled tier does — not trivially agree by never inserting.
		if row.SampledInserts > 0 && row.StaticInserts == 0 {
			t.Errorf("%s: sampled tier inserts %d, static tier inserts none",
				row.Bench, row.SampledInserts)
		}
		bound, ok := staticMAEBounds[row.Bench]
		if !ok {
			t.Fatalf("no golden MAE bound for %q", row.Bench)
		}
		if row.MRCMAE > bound {
			t.Errorf("%s: MRC MAE %.4f exceeds golden bound %.4f (max err %.4f)",
				row.Bench, row.MRCMAE, bound, row.MRCMax)
		}
		if row.MRCMax < row.MRCMAE {
			t.Errorf("%s: max err %.4f below MAE %.4f", row.Bench, row.MRCMax, row.MRCMAE)
		}
	}
	// The rendered report is what EXPERIMENTS.md quotes; make sure it
	// carries the aggregate line.
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "total: insert agreement") {
		t.Errorf("printed report missing aggregate line:\n%s", buf.String())
	}
}

// TestStaticValidateDeterministicAcrossWorkers pins the static tier's
// scheduling invariant: the differential study's rendered output and its
// synthesized stats-registry snapshots (including the static agreement
// section) are byte-identical at -workers=1 and -workers=8.
func TestStaticValidateDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles four benchmarks twice")
	}
	run := func(workers int) (string, string) {
		var out bytes.Buffer
		o := &obs.Obs{Stats: obs.NewStats()}
		s := NewSession(Options{
			Scale: 0.05, Mixes: 2, Seed: 11, SamplerPeriod: 1024,
			Workers: workers, Out: &out, Obs: o,
			Benches: []string{"libquantum", "mcf", "omnetpp", "cigar"},
			Tier:    "static",
		})
		r, err := s.StaticValidate(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		r.Print(s)
		var stats bytes.Buffer
		if err := o.Stats.WriteJSON(&stats); err != nil {
			t.Fatal(err)
		}
		return out.String(), stats.String()
	}
	out1, stats1 := run(1)
	out8, stats8 := run(8)
	if out1 != out8 {
		t.Errorf("rendered static-validate output differs between -workers=1 and -workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", out1, out8)
	}
	if stats1 != stats8 {
		t.Error("stats-registry JSON differs between -workers=1 and -workers=8")
	}
	if !strings.Contains(stats1, `"static"`) {
		t.Error("stats registry missing the static agreement section")
	}
}
