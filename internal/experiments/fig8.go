package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/machine"
	"prefetchlab/internal/metrics"
	"prefetchlab/internal/mix"
	"prefetchlab/internal/pipeline"
)

// fig8Mix is the workload mix §VII-C examines in detail on Intel: the mix
// where software prefetching has the largest benefit over hardware
// prefetching.
var fig8Mix = []string{"cigar", "gcc", "lbm", "libquantum"}

// Fig8Result holds the detailed per-application view of that mix.
type Fig8Result struct {
	Machine string
	Names   []string
	// Per-app speedups over their times in the baseline mix.
	SWNT []float64
	HW   []float64
	// Averages (weighted speedup − 1).
	SWNTAvg, HWAvg float64
	// Average off-chip bandwidth of the mix under each policy (GB/s).
	SWNTBandwidth, HWBandwidth float64
	// Skipped, when non-empty, marks a figure abandoned after retries:
	// the per-app series are empty and only the skip reasons are reported.
	Skipped []SkippedCell
}

// Fig8 reproduces Figure 8. The single mix's baseline and policy runs fan
// out across the engine workers.
func (s *Session) Fig8(ctx context.Context) (*Fig8Result, error) {
	intel := machine.IntelSandyBridge()
	runner := &mix.Runner{Prof: s.Prof, Mach: intel, ProfileInput: s.Input(),
		Pool: s.pool().Named("fig8"), Obs: s.O.Obs, Scope: "fig8/" + intel.Name}
	res := &Fig8Result{Machine: intel.Name, Names: fig8Mix}
	cmp, err := runner.RunOne(ctx, 0, fig8Mix, mixPolicies)
	if err != nil {
		// The figure is one mix: a lost baseline loses the whole figure.
		// Under a failure budget that degrades to an explicit figure-level
		// skip; cancellations and strict runs still abort.
		if s.O.FailureBudget == 0 || isCancellation(err) {
			return nil, err
		}
		s.recordSkip(&res.Skipped, "fig8/"+intel.Name, skipReason(err))
		return res, nil
	}
	if len(cmp.Skipped) > 0 {
		// A policy run was skipped; the side-by-side comparison is
		// undefined, so the figure degrades as a whole.
		for _, sp := range cmp.Skipped {
			s.recordSkip(&res.Skipped, fmt.Sprintf("fig8/%s/%s", intel.Name, sp.Policy), sp.Reason)
		}
		return res, nil
	}
	base := cmp.Base.Cycles()
	sw := cmp.ByPolicy[pipeline.SWPrefNT]
	hw := cmp.ByPolicy[pipeline.HWPref]
	for i := range fig8Mix {
		res.SWNT = append(res.SWNT, metrics.Speedup(base[i], sw.Cycles()[i]))
		res.HW = append(res.HW, metrics.Speedup(base[i], hw.Cycles()[i]))
	}
	res.SWNTAvg = cmp.WS(pipeline.SWPrefNT) - 1
	res.HWAvg = cmp.WS(pipeline.HWPref) - 1
	res.SWNTBandwidth = sw.AvgBandwidthGBps(intel)
	res.HWBandwidth = hw.AvgBandwidthGBps(intel)
	return res, nil
}

// Print renders the per-application bars plus the bandwidth annotations.
func (r *Fig8Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Figure 8: Detailed mix %v on %s (speedup over baseline mix)\n", r.Names, r.Machine)
	if len(r.Skipped) > 0 {
		printSkipped(w, r.Skipped)
		return
	}
	fmt.Fprintf(w, "  %-12s %14s %14s\n", "App", "Soft Pref.+NT", "Hardware Pref.")
	for i, n := range r.Names {
		fmt.Fprintf(w, "  %-12s %+13.1f%% %+13.1f%%\n", n, r.SWNT[i]*100, r.HW[i]*100)
	}
	fmt.Fprintf(w, "  %-12s %+13.1f%% %+13.1f%%\n", "average", r.SWNTAvg*100, r.HWAvg*100)
	fmt.Fprintf(w, "  off-chip bandwidth: SW+NT %.1f GB/s, HW %.1f GB/s\n", r.SWNTBandwidth, r.HWBandwidth)
}
