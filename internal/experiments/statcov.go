package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/cache"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/statstack"
)

// StatCovRow is one benchmark's StatStack miss coverage against functional
// simulation (§IV): the fraction of simulated misses the model attributes
// to the right instructions, at the AMD L1 (64 kB) and a 512 kB L2.
type StatCovRow struct {
	Bench  string
	Cov64k float64
	Cov512 float64
}

// StatCovResult is the model-validation study (paper: 88 % at 64 kB, 94 %
// at 512 kB on average).
type StatCovResult struct {
	Rows              []StatCovRow
	Avg64k, Avg512    float64
	SampleRatePeriod  int64
	FunctionalConfigs [2]cache.Config
	// Skipped lists benchmarks whose row was abandoned after retries.
	Skipped []SkippedCell
}

// StatCoverage compares StatStack's per-instruction miss estimates against
// the functional cache simulator. Each benchmark is an independent engine
// task with its own functional simulators; rows merge in benchmark order.
func (s *Session) StatCoverage(ctx context.Context) (*StatCovResult, error) {
	cfg64 := cache.Config{Name: "statcov-64k", Size: 64 << 10, Assoc: 2}
	cfg512 := cache.Config{Name: "statcov-512k", Size: 512 << 10, Assoc: 16}
	res := &StatCovResult{SampleRatePeriod: s.O.SamplerPeriod, FunctionalConfigs: [2]cache.Config{cfg64, cfg512}}
	names := s.benchNames()
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("statcov"), len(names), func(i int) (StatCovRow, error) {
		name := names[i]
		s.logf("statcov: %s", name)
		bp, err := s.Profile(ctx, name)
		if err != nil {
			return StatCovRow{}, err
		}
		f64, err := memsys.NewFunctional(cfg64)
		if err != nil {
			return StatCovRow{}, err
		}
		f512, err := memsys.NewFunctional(cfg512)
		if err != nil {
			return StatCovRow{}, err
		}
		isa.Trace(bp.Compiled, isa.SinkFunc(func(r ref.Ref) {
			f64.Ref(r)
			f512.Ref(r)
		}))
		return StatCovRow{
			Bench:  name,
			Cov64k: modelCoverage(bp.Model, f64, 64<<10),
			Cov512: modelCoverage(bp.Model, f512, 512<<10),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.Skipped {
			s.recordSkip(&res.Skipped, "statcov/"+names[i], skipReason(o.Err))
			continue
		}
		res.Rows = append(res.Rows, o.Value)
	}
	for _, row := range res.Rows {
		res.Avg64k += row.Cov64k
		res.Avg512 += row.Cov512
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.Avg64k /= n
		res.Avg512 /= n
	}
	return res, nil
}

// modelCoverage computes the fraction of simulated misses covered by the
// model: per instruction, the model "covers" min(estimated, simulated)
// misses, where estimated = modelled miss ratio × executed accesses.
func modelCoverage(m *statstack.Model, f *memsys.Functional, size int64) float64 {
	missByPC := f.MissByPC()
	accByPC := f.AccessByPC()
	var covered, total float64
	for pc := 0; pc < len(missByPC); pc++ {
		actual := float64(missByPC[pc])
		total += actual
		if int(pc) >= len(accByPC) || accByPC[pc] == 0 {
			continue
		}
		mr, ok := m.PCMissRatio(ref.PC(pc), size)
		if !ok {
			continue
		}
		est := mr * float64(accByPC[pc])
		if est < actual {
			covered += est
		} else {
			covered += actual
		}
	}
	if total == 0 {
		return 1
	}
	return covered / total
}

// Print renders the validation table.
func (r *StatCovResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "StatStack miss coverage vs functional simulation (period %d)\n", r.SampleRatePeriod)
	fmt.Fprintf(w, "  %-12s %12s %12s\n", "Benchmark", "64kB L1", "512kB L2")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12s %11.1f%% %11.1f%%\n", row.Bench, row.Cov64k*100, row.Cov512*100)
	}
	fmt.Fprintf(w, "  %-12s %11.1f%% %11.1f%%\n", "Average", r.Avg64k*100, r.Avg512*100)
	printSkipped(w, r.Skipped)
}
