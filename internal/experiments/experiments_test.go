package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prefetchlab/internal/pipeline"
)

// testSession restricts benchmarks and scale so experiment tests stay fast
// while exercising the full drivers end to end.
func testSession(benches ...string) *Session {
	return NewSession(Options{
		Scale:         0.05,
		Mixes:         2,
		Seed:          11,
		SamplerPeriod: 1024,
		Out:           &bytes.Buffer{},
		Benches:       benches,
	})
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles three benchmarks; TestTable1Smoke covers -short")
	}
	s := testSession("libquantum", "omnetpp", "milc")
	r, err := s.Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range r.Rows {
		byName[row.Bench] = row
	}
	// Streaming benchmarks are highly coverable; pointer chasing is not.
	if byName["milc"].MDDLICov < 0.8 {
		t.Errorf("milc coverage = %.2f, want ≥ 0.8", byName["milc"].MDDLICov)
	}
	if byName["omnetpp"].MDDLICov > 0.3 {
		t.Errorf("omnetpp coverage = %.2f, want ≤ 0.3", byName["omnetpp"].MDDLICov)
	}
	// MDDLI must not execute more prefetches than stride-centric overall
	// (the paper's minimization claim).
	if r.PrefReduction < 0 {
		t.Errorf("MDDLI executed more prefetches than stride-centric: %.2f", r.PrefReduction)
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("print output missing header")
	}
}

func TestFig3Monotone(t *testing.T) {
	s := testSession()
	r, err := s.Fig3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Average) != len(r.Sizes) {
		t.Fatal("size/curve mismatch")
	}
	for i := 1; i < len(r.Average); i++ {
		if r.Average[i] > r.Average[i-1]+1e-9 {
			t.Fatalf("average MRC not monotone at %d", i)
		}
		if r.Load[i] > r.Load[i-1]+1e-9 {
			t.Fatalf("per-load MRC not monotone at %d", i)
		}
	}
	if len(r.Marks) != 3 {
		t.Fatal("missing cache size marks")
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "L1$") {
		t.Error("marks not printed")
	}
}

func TestFig456SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing runs are slow")
	}
	s := testSession("libquantum", "omnetpp")
	r, err := s.Fig456(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Machines) != 2 {
		t.Fatalf("machines = %d", len(r.Machines))
	}
	for _, mr := range r.Machines {
		// libquantum: SW+NT must speed up clearly; omnetpp must not regress
		// much (its prefetch opportunity is tiny).
		lib := mr.Cells["libquantum"][pipeline.SWPrefNT]
		if lib.Speedup <= 0 {
			t.Errorf("%s: libquantum SW+NT speedup = %.2f", mr.Machine, lib.Speedup)
		}
		omn := mr.Cells["omnetpp"][pipeline.SWPrefNT]
		if omn.Speedup < -0.05 {
			t.Errorf("%s: omnetpp SW+NT regressed %.2f", mr.Machine, omn.Speedup)
		}
		if mr.Baseline["libquantum"].BandwidthGBs <= 0 {
			t.Error("no baseline bandwidth")
		}
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.PrintFig4(s)
	r.PrintFig5(s)
	r.PrintFig6(s)
	out := buf.String()
	for _, want := range []string{"Figure 4", "Figure 5", "Figure 6", "libquantum"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestStatCoverageHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles two benchmarks; TestStatCoverageSmoke covers -short")
	}
	s := testSession("libquantum", "mcf")
	r, err := s.StatCoverage(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The model should cover the bulk of simulated misses (paper: 88 %+).
	if r.Avg64k < 0.6 {
		t.Errorf("64k coverage = %.2f, want ≥ 0.6", r.Avg64k)
	}
	if r.Avg512 < 0.6 {
		t.Errorf("512k coverage = %.2f, want ≥ 0.6", r.Avg512)
	}
	for _, row := range r.Rows {
		if row.Cov64k < 0 || row.Cov64k > 1.000001 {
			t.Errorf("%s: coverage out of range: %v", row.Bench, row.Cov64k)
		}
	}
}

// smokeSession is testSession at a smaller scale for the -short tier.
func smokeSession(benches ...string) *Session {
	return NewSession(Options{
		Scale:         0.02,
		Mixes:         1,
		Seed:          11,
		SamplerPeriod: 512,
		Out:           &bytes.Buffer{},
		Benches:       benches,
	})
}

// TestTable1Smoke exercises the Table 1 driver end to end on one benchmark
// — the fast-tier stand-in for TestTable1Shapes.
func TestTable1Smoke(t *testing.T) {
	s := smokeSession("libquantum")
	r, err := s.Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Bench != "libquantum" {
		t.Fatalf("rows = %+v", r.Rows)
	}
	if r.Rows[0].MDDLICov <= 0 {
		t.Errorf("libquantum coverage = %.2f, want > 0", r.Rows[0].MDDLICov)
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("print output missing header")
	}
}

// TestStatCoverageSmoke is the fast-tier stand-in for TestStatCoverageHigh.
func TestStatCoverageSmoke(t *testing.T) {
	s := smokeSession("libquantum")
	r, err := s.StatCoverage(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Avg64k <= 0 || r.Avg64k > 1.000001 {
		t.Errorf("coverage out of range: %v", r.Avg64k)
	}
}

func TestBenchNamesFilter(t *testing.T) {
	s := testSession("mcf")
	if got := s.benchNames(); len(got) != 1 || got[0] != "mcf" {
		t.Fatalf("filter broken: %v", got)
	}
	s2 := testSession()
	if got := s2.benchNames(); len(got) != 12 {
		t.Fatalf("default names = %d", len(got))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Mixes <= 0 || o.Seed == 0 || o.SamplerPeriod <= 0 || o.Out == nil {
		t.Fatalf("defaults = %+v", o)
	}
}
