package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// serializeFig8 renders a Fig8Result to a canonical string: the full value
// plus its printed form, so both the numbers and the presentation are
// compared byte for byte.
func serializeFig8(s *Session, r *Fig8Result) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%+v\n", *r)
	out := s.O.Out
	s.O.Out = &buf
	r.Print(s)
	s.O.Out = out
	return buf.String()
}

// TestFig8DeterministicAcrossWorkerCounts is the engine's replay guarantee:
// the same study run serially and with every CPU must produce byte-identical
// results. Fresh sessions ensure nothing is shared but the options.
func TestFig8DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a mix twice; skipped in -short")
	}
	runAt := func(workers int) string {
		s := NewSession(Options{
			Scale: 0.05, Mixes: 2, Seed: 11, SamplerPeriod: 1024,
			Out: &bytes.Buffer{}, Workers: workers,
		})
		r, err := s.Fig8(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return serializeFig8(s, r)
	}
	serial := runAt(1)
	parallel := runAt(runtime.NumCPU())
	if serial != parallel {
		t.Errorf("Fig8 differs between workers=1 and workers=%d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			runtime.NumCPU(), serial, parallel)
	}
	// An explicit over-subscribed pool must agree too.
	if over := runAt(7); over != serial {
		t.Errorf("Fig8 differs between workers=1 and workers=7:\n--- serial ---\n%s\n--- workers=7 ---\n%s",
			serial, over)
	}
}

// TestFig12PrintGolden pins the rendered Figure 12 layout, including the
// high-bandwidth "*" marker, against a fixed result value.
func TestFig12PrintGolden(t *testing.T) {
	r := &Fig12Result{
		Machine: "Intel Xeon E5-2660",
		Rows: []Fig12Row{
			{Name: "swim", HighBandwidth: true, Threads: []int{1, 2, 4},
				SWNT: []float64{1, 1.99, 3.61}, HW: []float64{1, 1.97, 3.45},
				PeakBW4SW: 47.3, PeakBW4HW: 49.1},
			{Name: "fft", Threads: []int{1, 2, 4},
				SWNT: []float64{1.12, 2.2, 4.31}, HW: []float64{1.1, 2.18, 4.29},
				PeakBW4SW: 11.5, PeakBW4HW: 12},
		},
		AvgSWNT4: 3.96,
		AvgHW4:   3.87,
	}
	var buf bytes.Buffer
	s := NewSession(Options{Out: &buf})
	r.Print(s)
	want := strings.Join([]string{
		"Figure 12: Parallel workloads, 1/2/4 threads on Intel Xeon E5-2660 (speedup vs 1-thread baseline)",
		"  bench             |   SW 1t   SW 2t   SW 4t |   HW 1t   HW 2t   HW 4t | 4t bandwidth (SW/HW)",
		"  swim*             |    1.00    1.99    3.61 |    1.00    1.97    3.45 | 47.3 / 49.1 GB/s",
		"  fft               |    1.12    2.20    4.31 |    1.10    2.18    4.29 | 11.5 / 12.0 GB/s",
		"  avg 4-thread speedup: SW+NT 3.96, HW 3.87 (* = highest off-chip bandwidth)",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("Fig12 Print mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
