package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"prefetchlab/internal/faultinject"
	"prefetchlab/internal/sched"
)

// chaosSession builds a session with ~5 % injected panic, error and latency
// faults, bounded retries and an unlimited failure budget: every driver must
// degrade gracefully instead of failing.
func chaosSession(t *testing.T, benches ...string) *Session {
	t.Helper()
	spec, err := faultinject.Parse("panic=0.05,error=0.05,latency=0.02,corrupt=0.02,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(Options{
		Scale:         0.01,
		Mixes:         1,
		Seed:          11,
		SamplerPeriod: 512,
		Out:           &bytes.Buffer{},
		Benches:       benches,
		Retries:       2,
		FailureBudget: -1,
		Fault:         faultinject.New(spec),
	})
}

// TestChaosFigureDriversSurviveFaults drives every figure and table through
// the engine under injected faults. No driver may return an error: cells the
// retry budget cannot save must surface as explicit skips, and whatever rows
// survive must still print. All drivers share one session — like a
// `prefetchlab all` run — so the single-flight study caches keep the sweep
// inside the package test budget on a single core.
func TestChaosFigureDriversSurviveFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs every driver; skipped in -short")
	}
	ctx := context.Background()
	shared := chaosSession(t, "libquantum", "mcf", "omnetpp", "cigar")
	drivers := []struct {
		name string
		run  func(s *Session) (interface{ Print(*Session) }, error)
	}{
		{"table1", func(s *Session) (interface{ Print(*Session) }, error) { return s.Table1(ctx) }},
		{"fig3", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig3(ctx) }},
		{"fig4-6", func(s *Session) (interface{ Print(*Session) }, error) {
			r, err := s.Fig456(ctx)
			if err != nil {
				return nil, err
			}
			return printFunc(func(s *Session) { r.PrintFig4(s); r.PrintFig5(s); r.PrintFig6(s) }), nil
		}},
		{"fig7", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig7(ctx) }},
		{"fig8", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig8(ctx) }},
		{"fig9", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig9(ctx) }},
		{"fig10", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig10(ctx) }},
		{"fig11", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig11(ctx) }},
		{"fig12", func(s *Session) (interface{ Print(*Session) }, error) { return s.Fig12(ctx) }},
		{"statcov", func(s *Session) (interface{ Print(*Session) }, error) { return s.StatCoverage(ctx) }},
		{"ablation-combined", func(s *Session) (interface{ Print(*Session) }, error) { return s.AblationCombined(ctx) }},
		{"ablation-l2", func(s *Session) (interface{ Print(*Session) }, error) { return s.AblationL2(ctx) }},
		{"ablation-throttle", func(s *Session) (interface{ Print(*Session) }, error) { return s.AblationThrottle(ctx) }},
		{"ablation-window", func(s *Session) (interface{ Print(*Session) }, error) { return s.AblationWindow(ctx) }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			r, err := d.run(shared)
			if err != nil {
				t.Fatalf("%s did not survive injected faults: %v", d.name, err)
			}
			// Whatever survived must still render.
			var buf bytes.Buffer
			shared.O.Out = &buf
			r.Print(shared)
			if counts := shared.O.Fault.(*faultinject.Injector).Counts(); len(counts) > 0 {
				t.Logf("%s: injected %v so far, output %d bytes", d.name, counts, buf.Len())
			}
		})
	}
}

// printFunc adapts a closure to the Print interface of the driver table.
type printFunc func(*Session)

func (f printFunc) Print(s *Session) { f(s) }

// TestChaosSkipsAreDeterministic runs one faulted study at two worker counts
// and requires identical results — fault injection is task-keyed, so the
// skip set must not depend on scheduling.
func TestChaosSkipsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a study twice; skipped in -short")
	}
	run := func(workers int) (string, []SkippedCell) {
		spec, err := faultinject.Parse("panic=0.2,error=0.2,seed=3")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		s := NewSession(Options{
			Scale: 0.02, Mixes: 1, Seed: 11, SamplerPeriod: 512,
			Out: &buf, Benches: []string{"libquantum", "mcf", "omnetpp"},
			Workers: workers, Retries: 1, FailureBudget: -1,
			Fault: faultinject.New(spec),
		})
		r, err := s.StatCoverage(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		r.Print(s)
		return buf.String(), r.Skipped
	}
	out1, skip1 := run(1)
	out4, skip4 := run(4)
	if out1 != out4 {
		t.Errorf("faulted output differs across worker counts:\n--- w1 ---\n%s\n--- w4 ---\n%s", out1, out4)
	}
	if len(skip1) != len(skip4) {
		t.Fatalf("skip counts differ: %d vs %d", len(skip1), len(skip4))
	}
	for i := range skip1 {
		if skip1[i] != skip4[i] {
			t.Errorf("skip %d differs: %+v vs %+v", i, skip1[i], skip4[i])
		}
	}
}

// TestChaosCancellationMidStudy cancels a study mid-flight and requires the
// typed cancellation error rather than a hang or a panic.
func TestChaosCancellationMidStudy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	s := NewSession(Options{
		Scale: 0.02, Mixes: 1, Seed: 11, SamplerPeriod: 512,
		Out: &bytes.Buffer{}, Benches: []string{"libquantum", "mcf", "omnetpp"},
		Workers: 1,
		Fault: sched.FaultFunc(func(batch string, index, attempt int) error {
			calls++
			if calls == 2 {
				cancel()
			}
			return nil
		}),
	})
	_, err := s.StatCoverage(ctx)
	if err == nil {
		t.Fatal("canceled study returned no error")
	}
	if !IsCancellation(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	var ce *sched.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *sched.CanceledError", err)
	}
	if ce.Done >= ce.Total {
		t.Errorf("cancellation reported %d/%d done; expected a partial prefix", ce.Done, ce.Total)
	}
}
