package experiments

// staticvalidate.go wires the zero-execution static tier
// (internal/staticprof) into the experiment engine as a differential
// harness: for every benchmark it derives the static stride classification
// and reuse-based MRC from the program text alone, runs the sampled
// pipeline on the same program, and reports where the two tiers agree —
// per-load prefetch decisions against the shared stride-centric policy, and
// miss-ratio curves against the sampled StatStack model. The golden tests
// pin the per-workload agreement, so a regression in either tier (or a
// drift between them) fails loudly.

import (
	"context"
	"fmt"
	"math"

	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/staticprof"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/stridecentric"
	"prefetchlab/internal/workloads"
)

// StaticOnly derives the zero-execution static profile of one benchmark
// input: the program is built and compiled but never executed or sampled.
// This is the ?tier=static serving path — the differential harness below
// instead reuses the sampled pipeline's compilation so both tiers score the
// exact same binary.
func StaticOnly(spec workloads.Spec, in workloads.Input) (*staticprof.Profile, error) {
	prog, err := spec.Build(in)
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", spec.Name, err)
	}
	c, err := isa.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", spec.Name, err)
	}
	return staticprof.Analyze(c, stridecentric.DefaultParams())
}

// StaticRow is the static-vs-sampled comparison of one benchmark.
type StaticRow struct {
	Bench string `json:"bench"`
	// Loads is the number of demand loads the static analyzer profiled.
	Loads int `json:"loads"`
	// Comparable counts loads where the sampled tier collected enough
	// stride evidence to decide (its decision is not too-few-samples); the
	// static tier always has full evidence, so only these are fair to score.
	Comparable int `json:"comparable"`
	// InsertAgree counts comparable loads where both tiers reach the same
	// insert/don't-insert outcome.
	InsertAgree int `json:"insert_agree"`
	// StrideAgree counts comparable loads where both tiers report the same
	// dominant stride (including "none").
	StrideAgree int `json:"stride_agree"`
	// StaticInserts / SampledInserts are each tier's insertion counts.
	StaticInserts  int `json:"static_inserts"`
	SampledInserts int `json:"sampled_inserts"`
	// MRCMAE / MRCMax are the mean and max absolute miss-ratio error
	// between the static and sampled curves over the standard sizes.
	MRCMAE float64 `json:"mrc_mae"`
	MRCMax float64 `json:"mrc_max_err"`
}

// InsertAgreement is the fraction of comparable loads with matching
// insert decisions (1 when nothing is comparable).
func (r StaticRow) InsertAgreement() float64 {
	if r.Comparable == 0 {
		return 1
	}
	return float64(r.InsertAgree) / float64(r.Comparable)
}

// StaticValidateResult is the static tier's differential report.
type StaticValidateResult struct {
	Rows    []StaticRow
	Skipped []SkippedCell
}

// StaticValidate runs the static analyzer and the sampled pipeline over the
// session's benchmarks and scores their agreement. The sampled side reuses
// the session's cached profiles; the static side adds microseconds on top.
func (s *Session) StaticValidate(ctx context.Context) (*StaticValidateResult, error) {
	benches := s.benchNames()
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("static-validate"), len(benches), func(i int) (StaticRow, error) {
		s.logf("static-validate %d/%d: %s", i+1, len(benches), benches[i])
		return s.staticRow(ctx, benches[i])
	})
	if err != nil {
		return nil, err
	}
	out := &StaticValidateResult{}
	for i, o := range outs {
		if o.Skipped {
			s.recordSkip(&out.Skipped, "static-validate/"+benches[i], skipReason(o.Err))
			continue
		}
		out.Rows = append(out.Rows, o.Value)
	}
	s.O.Obs.RecordStatic(out.Rows)
	return out, nil
}

// staticRow scores one benchmark: static classification and MRC against the
// sampled stride-centric plan and StatStack model.
func (s *Session) staticRow(ctx context.Context, bench string) (StaticRow, error) {
	bp, err := s.Profile(ctx, bench)
	if err != nil {
		return StaticRow{}, err
	}
	sp, err := bp.StaticProfile()
	if err != nil {
		return StaticRow{}, fmt.Errorf("static analysis of %s: %w", bench, err)
	}
	sampled := stridecentric.Analyze(bp.Compiled, bp.Samples, stridecentric.DefaultParams())
	byPC := make(map[ref.PC]int, len(sampled.Loads))
	for i, li := range sampled.Loads {
		byPC[li.PC] = i
	}
	row := StaticRow{Bench: bench, Loads: len(sp.Loads)}
	for _, ld := range sp.Loads {
		sIns := ld.Decision == core.DecisionInsertNormal || ld.Decision == core.DecisionInsertNTA
		if sIns {
			row.StaticInserts++
		}
		i, ok := byPC[ld.PC]
		if !ok {
			continue
		}
		sl := sampled.Loads[i]
		if sl.Inserted() {
			row.SampledInserts++
		}
		if sl.Decision == core.DecisionFewStrides {
			continue // the sampler never saw this load often enough to judge
		}
		row.Comparable++
		staticStride := int64(0)
		if sIns {
			staticStride = ld.Stride
		}
		sampledStride := int64(0)
		if sl.Inserted() {
			sampledStride = sl.Stride
		}
		if staticStride == sampledStride {
			row.StrideAgree++
		}
		if sIns == sl.Inserted() {
			row.InsertAgree++
		}
	}
	sizes := statstack.StandardSizes()
	sMRC := bp.Model.MRC(sizes)
	aMRC := sp.MRC(sizes)
	for i := range sizes {
		e := math.Abs(aMRC[i] - sMRC[i])
		row.MRCMAE += e
		if e > row.MRCMax {
			row.MRCMax = e
		}
	}
	row.MRCMAE /= float64(len(sizes))
	return row, nil
}

// Print renders the per-benchmark agreement table and the aggregate summary
// the docs quote.
func (r *StaticValidateResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintln(w, "Static vs sampled: zero-execution analyzer agreement")
	fmt.Fprintf(w, "  %-12s %6s %6s %7s %8s   %5s %5s   %8s %8s\n",
		"bench", "loads", "cmp", "insert", "stride", "sIns", "pIns", "MRC MAE", "MRC max")
	var cmp, agree, strideOK int
	var mae, maxMAE float64
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12s %6d %6d %6d%% %7d%%   %5d %5d   %8.4f %8.4f\n",
			row.Bench, row.Loads, row.Comparable,
			int(row.InsertAgreement()*100+0.5),
			int(pct(row.StrideAgree, row.Comparable)*100+0.5),
			row.StaticInserts, row.SampledInserts, row.MRCMAE, row.MRCMax)
		cmp += row.Comparable
		agree += row.InsertAgree
		strideOK += row.StrideAgree
		mae += row.MRCMAE
		if row.MRCMAE > maxMAE {
			maxMAE = row.MRCMAE
		}
	}
	if n := len(r.Rows); n > 0 {
		fmt.Fprintf(w, "  total: insert agreement %d/%d (%.1f%%) | stride agreement %d/%d | mean MRC MAE %.4f (worst benchmark %.4f)\n",
			agree, cmp, pct(agree, cmp)*100, strideOK, cmp, mae/float64(n), maxMAE)
	}
	printSkipped(w, r.Skipped)
}

// pct is a safe ratio (1 for an empty denominator).
func pct(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
