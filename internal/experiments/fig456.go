package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/metrics"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sched"
)

// soloPolicies are the four prefetching policies of Figures 4–6, in the
// paper's legend order.
var soloPolicies = []pipeline.Policy{
	pipeline.HWPref, pipeline.SWPref, pipeline.SWPrefNT, pipeline.StrideCentric,
}

// SoloCell is one benchmark × policy single-thread measurement.
type SoloCell struct {
	Speedup      float64 // vs baseline (HW off), fraction
	TrafficDelta float64 // off-chip traffic increase vs baseline, fraction
	BandwidthGBs float64 // average off-chip bandwidth
}

// SoloMachineResult holds Figures 4–6 for one machine.
type SoloMachineResult struct {
	Machine  string
	Benches  []string
	Baseline map[string]SoloCell // speedup 0; traffic delta 0; baseline BW
	Cells    map[string]map[pipeline.Policy]SoloCell
	// Averages across benchmarks per policy.
	AvgSpeedup map[pipeline.Policy]float64
	AvgTraffic map[pipeline.Policy]float64
	AvgBW      map[pipeline.Policy]float64
	AvgBaseBW  float64
}

// Fig456Result holds the single-thread evaluation on both machines.
type Fig456Result struct {
	Machines []*SoloMachineResult
	// Skipped lists (machine, benchmark) cells abandoned after retries;
	// their rows are reported as skipped instead of silently zeroed.
	Skipped []SkippedCell
}

// soloBench is one benchmark's full policy sweep on one machine — the unit
// of work the engine fans out for Figures 4–6. Fields are exported so
// completed sweeps gob-encode into checkpoints and replay on resume.
type soloBench struct {
	Base  SoloCell
	Cells map[pipeline.Policy]SoloCell
}

// Fig456 runs every benchmark alone under each policy on both machines —
// the data behind Figure 4 (speedup), Figure 5 (off-chip traffic increase)
// and Figure 6 (average bandwidth). Every (machine, benchmark) pair is an
// independent engine task; averages are accumulated after the merge, in
// benchmark order, so they do not depend on task completion order.
func (s *Session) Fig456(ctx context.Context) (*Fig456Result, error) {
	machines := s.Machines()
	benches := s.benchNames()
	nb := len(benches)
	runs, err := sched.MapOutcomes(ctx, s.pool().Named("fig4-6"), len(machines)*nb, func(i int) (soloBench, error) {
		mach, bench := machines[i/nb], benches[i%nb]
		s.logf("fig4-6: %s on %s", bench, mach.Name)
		base, err := s.Solo(ctx, bench, mach, pipeline.Baseline)
		if err != nil {
			return soloBench{}, err
		}
		sb := soloBench{
			Base:  SoloCell{BandwidthGBs: mach.GBps(float64(base.Stats.TotalTraffic()) / float64(base.Cycles))},
			Cells: make(map[pipeline.Policy]SoloCell),
		}
		for _, pol := range soloPolicies {
			res, err := s.Solo(ctx, bench, mach, pol)
			if err != nil {
				return soloBench{}, err
			}
			sb.Cells[pol] = SoloCell{
				Speedup:      metrics.Speedup(base.Cycles, res.Cycles),
				TrafficDelta: metrics.Delta(base.Stats.TotalTraffic(), res.Stats.TotalTraffic()),
				BandwidthGBs: mach.GBps(float64(res.Stats.TotalTraffic()) / float64(res.Cycles)),
			}
		}
		return sb, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig456Result{}
	for mi, mach := range machines {
		mr := &SoloMachineResult{
			Machine:    mach.Name,
			Benches:    benches,
			Baseline:   make(map[string]SoloCell),
			Cells:      make(map[string]map[pipeline.Policy]SoloCell),
			AvgSpeedup: make(map[pipeline.Policy]float64),
			AvgTraffic: make(map[pipeline.Policy]float64),
			AvgBW:      make(map[pipeline.Policy]float64),
		}
		nOK := 0
		for bi, bench := range benches {
			o := runs[mi*nb+bi]
			if o.Skipped {
				s.recordSkip(&out.Skipped, fmt.Sprintf("fig4-6/%s/%s", mach.Name, bench), skipReason(o.Err))
				continue
			}
			sb := o.Value
			nOK++
			mr.Baseline[bench] = sb.Base
			mr.AvgBaseBW += sb.Base.BandwidthGBs
			mr.Cells[bench] = sb.Cells
			for _, pol := range soloPolicies {
				mr.AvgSpeedup[pol] += sb.Cells[pol].Speedup
				mr.AvgTraffic[pol] += sb.Cells[pol].TrafficDelta
				mr.AvgBW[pol] += sb.Cells[pol].BandwidthGBs
			}
		}
		if nOK > 0 {
			n := float64(nOK)
			mr.AvgBaseBW /= n
			for _, pol := range soloPolicies {
				mr.AvgSpeedup[pol] /= n
				mr.AvgTraffic[pol] /= n
				mr.AvgBW[pol] /= n
			}
		}
		out.Machines = append(out.Machines, mr)
	}
	return out, nil
}

// HWTrafficReductionNT returns how much less off-chip traffic SW+NT moves
// than hardware prefetching on machine i (the paper's −44 % AMD / −64 %
// Intel claim), as a fraction of hardware prefetching's traffic.
func (r *Fig456Result) HWTrafficReductionNT(i int) float64 {
	mr := r.Machines[i]
	var hw, nt float64
	for _, bench := range mr.Benches {
		cells, ok := mr.Cells[bench]
		if !ok {
			continue // skipped cell
		}
		hw += 1 + cells[pipeline.HWPref].TrafficDelta
		nt += 1 + cells[pipeline.SWPrefNT].TrafficDelta
	}
	if hw == 0 {
		return 0
	}
	return (hw - nt) / hw
}

// PrintFig4 renders the speedup figure.
func (r *Fig456Result) PrintFig4(s *Session) {
	r.print(s, "Figure 4: Speedup with different prefetching policies",
		func(c SoloCell) string { return fmt.Sprintf("%+7.1f%%", c.Speedup*100) },
		func(mr *SoloMachineResult, p pipeline.Policy) string {
			return fmt.Sprintf("%+7.1f%%", mr.AvgSpeedup[p]*100)
		}, false)
}

// PrintFig5 renders the off-chip traffic increase figure.
func (r *Fig456Result) PrintFig5(s *Session) {
	r.print(s, "Figure 5: Increase in data volume fetched from DRAM",
		func(c SoloCell) string { return fmt.Sprintf("%+7.1f%%", c.TrafficDelta*100) },
		func(mr *SoloMachineResult, p pipeline.Policy) string {
			return fmt.Sprintf("%+7.1f%%", mr.AvgTraffic[p]*100)
		}, false)
}

// PrintFig6 renders the average bandwidth figure (GB/s), including the
// baseline column.
func (r *Fig456Result) PrintFig6(s *Session) {
	r.print(s, "Figure 6: Average off-chip bandwidth (GB/s)",
		func(c SoloCell) string { return fmt.Sprintf("%7.2f", c.BandwidthGBs) },
		func(mr *SoloMachineResult, p pipeline.Policy) string {
			return fmt.Sprintf("%7.2f", mr.AvgBW[p])
		}, true)
}

// print renders one figure for both machines.
func (r *Fig456Result) print(s *Session, title string, cell func(SoloCell) string,
	avg func(*SoloMachineResult, pipeline.Policy) string, withBase bool) {
	w := s.O.Out
	fmt.Fprintln(w, title)
	for _, mr := range r.Machines {
		fmt.Fprintf(w, " (%s)\n", mr.Machine)
		fmt.Fprintf(w, "  %-12s", "Benchmark")
		if withBase {
			fmt.Fprintf(w, " %14s", "Baseline")
		}
		for _, pol := range soloPolicies {
			fmt.Fprintf(w, " %14s", pol)
		}
		fmt.Fprintln(w)
		for _, bench := range mr.Benches {
			fmt.Fprintf(w, "  %-12s", bench)
			if _, ok := mr.Cells[bench]; !ok {
				fmt.Fprintf(w, " %14s\n", "(skipped)")
				continue
			}
			if withBase {
				fmt.Fprintf(w, " %14s", cell(mr.Baseline[bench]))
			}
			for _, pol := range soloPolicies {
				fmt.Fprintf(w, " %14s", cell(mr.Cells[bench][pol]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  %-12s", "average")
		if withBase {
			fmt.Fprintf(w, " %14.2f", mr.AvgBaseBW)
		}
		for _, pol := range soloPolicies {
			fmt.Fprintf(w, " %14s", avg(mr, pol))
		}
		fmt.Fprintln(w)
	}
	printSkipped(w, r.Skipped)
}
