package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prefetchlab/internal/obs"
	"prefetchlab/internal/workloads"
)

// analyticCPIBounds is the golden table for TestAnalyticVsSimulator: the
// worst acceptable solo CPI-prediction error per benchmark, on either
// machine, at the session's test configuration (scale 0.05, sampler period
// 1024). Bounds are measured error plus ~1.5-2x margin, so they fail on
// regressions without flaking on platform noise (the whole stack is
// deterministic, so in practice these only move when the model or the
// simulator changes). gcc is the documented outlier: its phase mix of
// pointer chasing and dense sweeps is where the single-window StatStack
// CPI model is weakest (see EXPERIMENTS.md).
var analyticCPIBounds = map[string]float64{
	"gcc":        0.70,
	"libquantum": 0.18,
	"lbm":        0.15,
	"mcf":        0.25,
	"omnetpp":    0.10,
	"soplex":     0.22,
	"astar":      0.25,
	"xalan":      0.15,
	"leslie3d":   0.20,
	"GemsFDTD":   0.25,
	"milc":       0.15,
	"cigar":      0.22,
}

// analyticAggBounds pins the per-machine aggregate error bounds the docs
// quote. Mix slowdown error is dominated by the two bandwidth-saturated
// session mixes (lbm/milc/GemsFDTD streaming together), where the analytic
// queue model under-predicts the simulator's batch pile-ups; the bound is
// wide there and documented as the tier's known weak regime.
var analyticAggBounds = map[string]struct {
	meanCPI, maxCPI, meanMR, meanBW, meanSd, maxSd float64
}{
	"AMD Phenom II":      {0.12, 0.70, 0.04, 0.25, 3.2, 6.0},
	"Intel Sandy Bridge": {0.18, 0.70, 0.04, 0.25, 4.5, 9.0},
}

// TestAnalyticVsSimulator is the differential golden test: the analytic
// tier and the full timing simulator run the complete Table I workload set
// plus the session mixes on both machines, and every per-benchmark and
// aggregate error must stay inside the pinned bounds.
func TestAnalyticVsSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator over all 12 workloads; several minutes")
	}
	s := testSession() // all 12 benchmarks, 2 mixes, seed 11
	r, err := s.AnalyticValidate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Skipped) != 0 {
		t.Fatalf("skipped cells in a fault-free run: %+v", r.Skipped)
	}
	if len(r.Reports) != 2 {
		t.Fatalf("reports = %d, want one per machine", len(r.Reports))
	}
	names := workloads.Names()
	for _, rep := range r.Reports {
		agg, ok := analyticAggBounds[rep.Machine]
		if !ok {
			t.Fatalf("no golden bounds for machine %q", rep.Machine)
		}
		if len(rep.Solo) != len(names) {
			t.Fatalf("%s: %d solo rows, want %d", rep.Machine, len(rep.Solo), len(names))
		}
		for i, row := range rep.Solo {
			if row.Bench != names[i] {
				t.Fatalf("%s: row %d is %s, want Table I order (%s)", rep.Machine, i, row.Bench, names[i])
			}
			if row.PredCPI <= 0.5 || row.SimCPI <= 0.5 {
				t.Errorf("%s/%s: degenerate CPI pred %.3f sim %.3f", rep.Machine, row.Bench, row.PredCPI, row.SimCPI)
			}
			if row.PredMR < 0 || row.PredMR > 1 || row.SimMR < 0 || row.SimMR > 1 {
				t.Errorf("%s/%s: miss ratio out of range: pred %.4f sim %.4f", rep.Machine, row.Bench, row.PredMR, row.SimMR)
			}
			if bound := analyticCPIBounds[row.Bench]; row.CPIErr > bound {
				t.Errorf("%s/%s: CPI error %.1f%% exceeds golden bound %.0f%% (pred %.3f, sim %.3f)",
					rep.Machine, row.Bench, row.CPIErr*100, bound*100, row.PredCPI, row.SimCPI)
			}
		}
		if e := rep.MeanCPIErr(); e > agg.meanCPI {
			t.Errorf("%s: mean CPI err %.3f > %.3f", rep.Machine, e, agg.meanCPI)
		}
		if e := rep.MaxCPIErr(); e > agg.maxCPI {
			t.Errorf("%s: max CPI err %.3f > %.3f", rep.Machine, e, agg.maxCPI)
		}
		if e := rep.MeanMRErr(); e > agg.meanMR {
			t.Errorf("%s: mean LLC-mr err %.4f > %.4f", rep.Machine, e, agg.meanMR)
		}
		if e := rep.MeanBWErr(); e > agg.meanBW {
			t.Errorf("%s: mean BW err %.3f > %.3f", rep.Machine, e, agg.meanBW)
		}
		if len(rep.Mixes) != 2 {
			t.Fatalf("%s: %d mix rows, want 2", rep.Machine, len(rep.Mixes))
		}
		for _, row := range rep.Mixes {
			if len(row.Names) != 4 || len(row.PredSlowdown) != 4 || len(row.SimSlowdown) != 4 {
				t.Fatalf("%s: malformed mix row %+v", rep.Machine, row)
			}
			for j, sd := range row.PredSlowdown {
				if sd < 1 {
					t.Errorf("%s mix %v: predicted slowdown %.3f < 1 for %s",
						rep.Machine, row.Names, sd, row.Names[j])
				}
			}
		}
		if e := rep.MeanSlowdownErr(); e > agg.meanSd {
			t.Errorf("%s: mix slowdown MAE %.3f > %.3f", rep.Machine, e, agg.meanSd)
		}
		if e := rep.MaxSlowdownErr(); e > agg.maxSd {
			t.Errorf("%s: mix slowdown max err %.3f > %.3f", rep.Machine, e, agg.maxSd)
		}
		// The tier must predict real contention, not default to "no
		// interference": across the session's mixes the mean predicted
		// slowdown is well above 1.
		var sd float64
		var n int
		for _, row := range rep.Mixes {
			for _, v := range row.PredSlowdown {
				sd += v
				n++
			}
		}
		if mean := sd / float64(n); mean < 1.2 {
			t.Errorf("%s: mean predicted mix slowdown %.3f — tier predicts no contention", rep.Machine, mean)
		}
	}
	// The rendered report is what EXPERIMENTS.md quotes; make sure it
	// carries the aggregate lines.
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	for _, want := range []string{"solo: mean CPI err", "mixes (2): slowdown MAE"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("printed report missing %q", want)
		}
	}
}

// TestAnalyticDeterministicAcrossWorkers pins the tier's scheduling
// invariant: the analytic study's rendered output and its synthesized
// stats-registry snapshots are byte-identical at -workers=1 and
// -workers=8.
func TestAnalyticDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles four benchmarks twice")
	}
	run := func(workers int) (string, string) {
		var out bytes.Buffer
		o := &obs.Obs{Stats: obs.NewStats()}
		s := NewSession(Options{
			Scale: 0.05, Mixes: 2, Seed: 11, SamplerPeriod: 1024,
			Workers: workers, Out: &out, Obs: o,
			Benches: []string{"libquantum", "mcf", "omnetpp", "cigar"},
			Tier:    "analytic",
		})
		r, err := s.Analytic(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		r.Print(s)
		var stats bytes.Buffer
		if err := o.Stats.WriteJSON(&stats); err != nil {
			t.Fatal(err)
		}
		return out.String(), stats.String()
	}
	out1, stats1 := run(1)
	out8, stats8 := run(8)
	if out1 != out8 {
		t.Errorf("rendered analytic output differs between -workers=1 and -workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", out1, out8)
	}
	if stats1 != stats8 {
		t.Error("stats-registry JSON differs between -workers=1 and -workers=8")
	}
	if !strings.Contains(stats1, "analytic/") {
		t.Error("stats registry missing analytic snapshots")
	}
}
