package experiments

// analytic.go wires the MRC-only fast tier (internal/analytic) into the
// experiment engine. Two drivers ship:
//
//   - "analytic" predicts every benchmark's solo steady state and the
//     session's mixes on both machines from StatStack models alone — no
//     timing simulation — and records synthesized machine snapshots under
//     the same obs registry the simulator uses;
//   - "analytic-validate" is the differential harness: it runs the analytic
//     tier and the full simulator over the same benchmarks and mixes and
//     renders the per-metric error report (internal/analytic/validate) whose
//     bounds the golden tests pin.
//
// Both fan out through the session pool, so task keys, retries, failure
// budgets and checkpointing behave exactly as for the simulator figures.

import (
	"context"
	"fmt"
	"strings"

	"prefetchlab/internal/analytic"
	"prefetchlab/internal/analytic/validate"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/mix"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/workloads"
)

// AnalyticCore returns the cached analytic-tier inputs of one benchmark on
// the reference input (profile-cached, so repeated predictions share the
// one functional counting pass).
func (s *Session) AnalyticCore(ctx context.Context, bench string) (analytic.Core, error) {
	bp, err := s.Profile(ctx, bench)
	if err != nil {
		return analytic.Core{}, err
	}
	return bp.AnalyticCore(), nil
}

// AnalyticSnapshot synthesizes a stats-registry machine snapshot from an
// analytic prediction, so `-tier=analytic -stats-json` exports through the
// same registry, keys and schema as simulator runs. Counters the model does
// not predict (prefetch usefulness, per-level fills/evictions) stay zero;
// miss counts are the modeled ratios scaled by each core's reference count.
func AnalyticSnapshot(machineName string, pred analytic.Prediction, cores []analytic.Core) obs.MachineSnapshot {
	snap := obs.MachineSnapshot{Machine: machineName}
	for i, cp := range pred.Cores {
		var counts analytic.Counts
		if i < len(cores) {
			counts = cores[i].Counts
		}
		refs := counts.Refs()
		cs := obs.CoreSnapshot{
			Core:         i,
			Bench:        cp.Name,
			Cycles:       cp.Cycles,
			Instructions: counts.Instructions,
			MemRefs:      refs + counts.Prefetches,
		}
		cs.Demand = obs.DemandStats{
			Loads:     counts.Loads,
			Stores:    counts.Stores,
			L1Misses:  int64(cp.MR1 * float64(refs)),
			L2Misses:  int64(cp.MR2 * float64(refs)),
			LLCMisses: int64(cp.MRLLC * float64(refs)),
		}
		fetch := cs.Demand.LLCMisses * ref.LineSize
		wb := int64(cp.MRLLC*float64(counts.Stores)) * ref.LineSize
		cs.Traffic = obs.TrafficStats{DemandFetch: fetch, Writeback: wb, Total: fetch + wb}
		cs.L1 = obs.LevelStats{Misses: cs.Demand.L1Misses, MissRatio: cp.MR1}
		cs.L2 = obs.LevelStats{Misses: cs.Demand.L2Misses, MissRatio: cp.MR2}
		snap.LLC.Misses += cs.Demand.LLCMisses
		snap.DRAM.Bytes += cs.Traffic.Total
		snap.DRAM.Transfers += cs.Traffic.Total / ref.LineSize
		snap.Cores = append(snap.Cores, cs)
	}
	if acc := totalRefs(cores); acc > 0 {
		snap.LLC.MissRatio = float64(snap.LLC.Misses) / float64(acc)
	}
	return snap
}

// meanOf averages a slice (0 for empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// totalRefs sums demand references across cores.
func totalRefs(cores []analytic.Core) int64 {
	var n int64
	for _, c := range cores {
		n += c.Counts.Refs()
	}
	return n
}

// AnalyticStudy is the analytic tier's output for one machine: solo
// predictions for every benchmark plus predictions for the session's mixes.
type AnalyticStudy struct {
	Machine string
	Benches []string
	// Solo is index-aligned with Benches; a zero-value prediction (no
	// cores) marks a benchmark skipped under the failure budget.
	Solo  []analytic.Prediction
	Mixes [][]string
	// MixPreds is index-aligned with Mixes, with the same skip convention.
	MixPreds []analytic.Prediction
	Skipped  []SkippedCell
}

// AnalyticResult holds the analytic-tier studies of both machines.
type AnalyticResult struct {
	Studies []*AnalyticStudy
}

// Analytic runs the MRC-only prediction tier: solo steady states for the
// session's benchmarks and shared-LLC fixed points for its mixes, on both
// machines, without the timing simulator.
func (s *Session) Analytic(ctx context.Context) (*AnalyticResult, error) {
	mixes, err := mix.Generate(s.O.Mixes, s.O.Seed, s.mixNames())
	if err != nil {
		return nil, err
	}
	out := &AnalyticResult{}
	for _, mach := range s.Machines() {
		st, err := s.analyticStudy(ctx, mach, mixes)
		if err != nil {
			return nil, err
		}
		out.Studies = append(out.Studies, st)
	}
	return out, nil
}

// mixNames returns the name pool mixes draw from: the session's benchmark
// subset when it is large enough to mix, the full Table I set otherwise.
func (s *Session) mixNames() []string {
	if names := s.benchNames(); len(names) >= 4 {
		return names
	}
	return workloads.Names()
}

// analyticStudy predicts one machine's solo and mix steady states. Tasks
// fan out through the session pool and merge in index order, so results —
// and the synthesized snapshots' keys — are identical at any worker count.
func (s *Session) analyticStudy(ctx context.Context, mach machine.Machine, mixes [][]string) (*AnalyticStudy, error) {
	benches := s.benchNames()
	st := &AnalyticStudy{Machine: mach.Name, Benches: benches, Mixes: mixes}
	soloKey := fmt.Sprintf("analytic/%s/solo", mach.Name)
	soloOuts, err := sched.MapOutcomes(ctx, s.pool().Named(soloKey), len(benches), func(i int) (analytic.Prediction, error) {
		s.logf("analytic solo %d/%d on %s: %s", i+1, len(benches), mach.Name, benches[i])
		core, err := s.AnalyticCore(ctx, benches[i])
		if err != nil {
			return analytic.Prediction{}, err
		}
		pred := analytic.Predict(mach, []analytic.Core{core})
		s.O.Obs.RecordSnapshot(fmt.Sprintf("%s/%s", soloKey, benches[i]),
			AnalyticSnapshot(mach.Name, pred, []analytic.Core{core}))
		return pred, nil
	})
	if err != nil {
		return nil, err
	}
	st.Solo = make([]analytic.Prediction, len(benches))
	for i, o := range soloOuts {
		if o.Skipped {
			s.recordSkip(&st.Skipped, fmt.Sprintf("%s/%s", soloKey, benches[i]), skipReason(o.Err))
			continue
		}
		st.Solo[i] = o.Value
	}
	mixKey := fmt.Sprintf("analytic/%s/mix", mach.Name)
	mixOuts, err := sched.MapOutcomes(ctx, s.pool().Named(mixKey), len(mixes), func(i int) (analytic.Prediction, error) {
		s.logf("analytic mix %d/%d on %s: %v", i+1, len(mixes), mach.Name, mixes[i])
		cores, err := s.analyticCores(ctx, mixes[i])
		if err != nil {
			return analytic.Prediction{}, err
		}
		pred := analytic.Predict(mach, cores)
		s.O.Obs.RecordSnapshot(fmt.Sprintf("%s%03d:%s", mixKey, i, strings.Join(mixes[i], "+")),
			AnalyticSnapshot(mach.Name, pred, cores))
		return pred, nil
	})
	if err != nil {
		return nil, err
	}
	st.MixPreds = make([]analytic.Prediction, len(mixes))
	for i, o := range mixOuts {
		if o.Skipped {
			s.recordSkip(&st.Skipped, fmt.Sprintf("%s%03d %v", mixKey, i, mixes[i]), skipReason(o.Err))
			continue
		}
		st.MixPreds[i] = o.Value
	}
	return st, nil
}

// analyticCores resolves the analytic inputs of one mix's applications.
func (s *Session) analyticCores(ctx context.Context, names []string) ([]analytic.Core, error) {
	cores := make([]analytic.Core, len(names))
	for i, name := range names {
		c, err := s.AnalyticCore(ctx, name)
		if err != nil {
			return nil, err
		}
		cores[i] = c
	}
	return cores, nil
}

// Print renders the analytic tier's per-benchmark table and mix summary.
func (r *AnalyticResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintln(w, "Analytic tier: MRC-only steady-state predictions (no timing simulation)")
	for _, st := range r.Studies {
		fmt.Fprintf(w, " (%s)\n", st.Machine)
		fmt.Fprintf(w, "  %-12s %8s %8s %8s %9s %10s\n",
			"bench", "CPI", "LLC mr", "occ MB", "BW GB/s", "pref GB/s")
		for i, b := range st.Benches {
			p := st.Solo[i]
			if len(p.Cores) == 0 {
				continue
			}
			c := p.Cores[0]
			fmt.Fprintf(w, "  %-12s %8.3f %8.4f %8.2f %9.2f %10.2f\n",
				b, c.CPI, c.MRLLC, float64(c.OccupancyBytes)/(1<<20),
				c.BandwidthGBps, c.PrefetchGBps)
		}
		var sd, maxSd, bw float64
		cores, preds := 0, 0
		for _, p := range st.MixPreds {
			if len(p.Cores) == 0 {
				continue
			}
			preds++
			bw += p.TotalBandwidthGBps
			for _, c := range p.Cores {
				sd += c.Slowdown
				if c.Slowdown > maxSd {
					maxSd = c.Slowdown
				}
				cores++
			}
		}
		if preds > 0 {
			fmt.Fprintf(w, "  mixes: %d predicted | mean slowdown %.3f, max %.3f | mean demand %.2f GB/s\n",
				preds, sd/float64(cores), maxSd, bw/float64(preds))
		}
		printSkipped(w, st.Skipped)
	}
}

// AnalyticValidateResult is the differential harness's output: one error
// report per machine.
type AnalyticValidateResult struct {
	Reports []*validate.Report
	Skipped []SkippedCell
}

// AnalyticValidate runs the analytic tier and the full timing simulator
// over the same benchmarks and mixes and reports per-metric error. This is
// the one analytic experiment that deliberately runs the simulator — it is
// the reference the fast tier is validated against.
func (s *Session) AnalyticValidate(ctx context.Context) (*AnalyticValidateResult, error) {
	mixes, err := mix.Generate(s.O.Mixes, s.O.Seed, s.mixNames())
	if err != nil {
		return nil, err
	}
	out := &AnalyticValidateResult{}
	for _, mach := range s.Machines() {
		rep, err := s.validateMachine(ctx, mach, mixes, &out.Skipped)
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, rep)
	}
	return out, nil
}

// validateMachine builds one machine's differential report: a solo row per
// benchmark (analytic vs baseline measurement) and a mix row per session
// mix (analytic fixed point vs baseline mix simulation).
func (s *Session) validateMachine(ctx context.Context, mach machine.Machine, mixes [][]string, skipped *[]SkippedCell) (*validate.Report, error) {
	rep := &validate.Report{Machine: mach.Name}
	benches := s.benchNames()
	soloKey := fmt.Sprintf("analytic-validate/%s/solo", mach.Name)
	soloOuts, err := sched.MapOutcomes(ctx, s.pool().Named(soloKey), len(benches), func(i int) (validate.SoloRow, error) {
		bench := benches[i]
		s.logf("analytic-validate solo %d/%d on %s: %s", i+1, len(benches), mach.Name, bench)
		core, err := s.AnalyticCore(ctx, bench)
		if err != nil {
			return validate.SoloRow{}, err
		}
		sim, err := s.Solo(ctx, bench, mach, pipeline.Baseline)
		if err != nil {
			return validate.SoloRow{}, err
		}
		pred := analytic.Predict(mach, []analytic.Core{core})
		return validate.SoloRowOf(bench, pred, sim, mach), nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range soloOuts {
		if o.Skipped {
			s.recordSkip(skipped, fmt.Sprintf("%s/%s", soloKey, benches[i]), skipReason(o.Err))
			continue
		}
		rep.Solo = append(rep.Solo, o.Value)
	}
	runner := &mix.Runner{Prof: s.Prof, Mach: mach, ProfileInput: s.Input(),
		Pool: sched.Serial, Obs: s.O.Obs, Scope: "analytic-validate/" + mach.Name}
	mixKey := fmt.Sprintf("analytic-validate/%s/mix", mach.Name)
	mixOuts, err := sched.MapOutcomes(ctx, s.pool().Named(mixKey), len(mixes), func(i int) (validate.MixRow, error) {
		names := mixes[i]
		s.logf("analytic-validate mix %d/%d on %s: %v", i+1, len(mixes), mach.Name, names)
		cores, err := s.analyticCores(ctx, names)
		if err != nil {
			return validate.MixRow{}, err
		}
		pred := analytic.Predict(mach, cores)
		// Baseline-only simulation: no policies, just the contended mix.
		cmp, err := runner.RunOne(ctx, i, names, nil)
		if err != nil {
			return validate.MixRow{}, err
		}
		soloCycles := make([]int64, len(names))
		for j, name := range names {
			simSolo, err := s.Solo(ctx, name, mach, pipeline.Baseline)
			if err != nil {
				return validate.MixRow{}, err
			}
			soloCycles[j] = simSolo.Cycles
		}
		return validate.MixRowOf(names, pred, cmp.Base.Apps, soloCycles, cmp.Base.AvgBandwidthGBps(mach)), nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range mixOuts {
		if o.Skipped {
			s.recordSkip(skipped, fmt.Sprintf("%s%03d %v", mixKey, i, mixes[i]), skipReason(o.Err))
			continue
		}
		rep.Mixes = append(rep.Mixes, o.Value)
	}
	return rep, nil
}

// Print renders the differential comparison tables and the aggregate error
// summary the docs quote.
func (r *AnalyticValidateResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintln(w, "Analytic vs simulator: differential validation")
	for _, rep := range r.Reports {
		fmt.Fprintf(w, " (%s)\n", rep.Machine)
		fmt.Fprintf(w, "  %-12s %8s %8s %7s   %7s %7s %7s   %7s %7s %6s\n",
			"bench", "aCPI", "sCPI", "err", "aLLCmr", "sLLCmr", "abserr", "aGB/s", "sGB/s", "err")
		for _, row := range rep.Solo {
			fmt.Fprintf(w, "  %-12s %8.3f %8.3f %6.1f%%   %7.4f %7.4f %7.4f   %7.2f %7.2f %5.0f%%\n",
				row.Bench, row.PredCPI, row.SimCPI, row.CPIErr*100,
				row.PredMR, row.SimMR, row.MRErr,
				row.PredBW, row.SimBW, row.BWErr*100)
		}
		fmt.Fprintf(w, "  solo: mean CPI err %.1f%% (max %.1f%%) | mean LLC-mr err %.4f | mean BW err %.1f%%\n",
			rep.MeanCPIErr()*100, rep.MaxCPIErr()*100, rep.MeanMRErr(), rep.MeanBWErr()*100)
		if len(rep.Mixes) > 0 {
			var bwErr float64
			for _, row := range rep.Mixes {
				bwErr += row.BWErr
				fmt.Fprintf(w, "  mix %-40s slowdown %5.2f vs %5.2f (MAE %.3f) | BW %5.2f vs %5.2f GB/s\n",
					strings.Join(row.Names, "+"), meanOf(row.PredSlowdown), meanOf(row.SimSlowdown),
					row.SlowdownErr, row.PredBW, row.SimBW)
			}
			fmt.Fprintf(w, "  mixes (%d): slowdown MAE %.3f (max %.3f) | mean BW err %.1f%%\n",
				len(rep.Mixes), rep.MeanSlowdownErr(), rep.MaxSlowdownErr(),
				bwErr/float64(len(rep.Mixes))*100)
		}
	}
	printSkipped(w, r.Skipped)
}
