// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV–§VII), plus the ablations the text mentions.
// Each driver computes a result struct (so tests can assert the paper's
// qualitative shapes) and renders the same rows or series the paper
// reports.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/workloads"
)

// Options configures an experiment session.
type Options struct {
	// Scale multiplies workload iteration counts (1.0 reproduces the
	// default run lengths; benchmarks keep ≥2 passes at any scale).
	Scale float64
	// Mixes is the number of random 4-app mixes for Figures 7–11
	// (the paper runs 180).
	Mixes int
	// Seed drives mix generation and input selection.
	Seed int64
	// SamplerPeriod is the mean references between samples.
	SamplerPeriod int64
	// Out receives rendered reports (default os.Stdout).
	Out io.Writer
	// Verbose adds per-load analysis detail to reports.
	Verbose bool
	// Benches restricts experiments to a subset of the Table I benchmarks
	// (nil = all twelve). Used by tests and benchmarks to bound runtime.
	Benches []string
	// Workers caps the experiment engine's concurrent simulation tasks.
	// 0 uses every CPU; 1 runs studies serially. Results are bit-identical
	// at any worker count: every task owns its machine, memory hierarchy,
	// sampler and RNG stream (seeded from the task key), and results merge
	// in task order.
	Workers int
	// Obs, when non-nil, attaches the observability layer: machine
	// snapshots into the stats registry after each simulation task, trace
	// spans for engine tasks and single-flight caches, and progress
	// accounting. Nil (the default) keeps all instrumentation off, so
	// figure output and determinism are untouched.
	Obs *obs.Obs
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Mixes <= 0 {
		o.Mixes = 45
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.SamplerPeriod <= 0 {
		o.SamplerPeriod = 4096
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	return o
}

// Session caches profiles and solo runs so the figure drivers share work.
// Sessions are safe for concurrent use: the caches are single-flight, so
// engine workers asking for the same solo run or mix study share one
// computation.
type Session struct {
	O    Options
	Prof *pipeline.Profiler

	solo    sched.OnceMap[string, cpu.Result]
	studies sched.OnceMap[string, *MixStudy]

	logMu sync.Mutex
}

// NewSession creates a session.
func NewSession(o Options) *Session {
	o = o.withDefaults()
	s := &Session{
		O:    o,
		Prof: pipeline.NewProfiler(sampler.Config{Period: o.SamplerPeriod, Seed: o.Seed}),
	}
	s.Prof.SetObs(o.Obs)
	s.solo.Name, s.solo.Obs = "solo", o.Obs.CacheObserver()
	s.studies.Name, s.studies.Obs = "mixstudy", o.Obs.CacheObserver()
	return s
}

// pool returns the session's worker pool for fanning out simulation tasks;
// drivers label it per batch with Named. The observer only watches task
// timing — it cannot affect results.
func (s *Session) pool() sched.Pool {
	return sched.Pool{Workers: s.O.Workers, Obs: s.O.Obs.SchedObserver()}
}

// Input returns the reference input at the session scale.
func (s *Session) Input() workloads.Input {
	return workloads.Input{ID: 0, Scale: s.O.Scale}
}

// InputID returns input set id at the session scale.
func (s *Session) InputID(id int) workloads.Input {
	return workloads.Input{ID: id, Scale: s.O.Scale}
}

// Profile returns the cached profile of a benchmark on the reference input.
func (s *Session) Profile(bench string) (*pipeline.BenchProfile, error) {
	spec, err := workloads.ByName(bench)
	if err != nil {
		return nil, err
	}
	return s.Prof.Get(spec, s.Input())
}

// Solo returns the cached solo run of one benchmark under one policy.
func (s *Session) Solo(bench string, mach machine.Machine, pol pipeline.Policy) (cpu.Result, error) {
	key := fmt.Sprintf("%s/%s/%d", bench, mach.Name, pol)
	return s.solo.Do(key, func() (cpu.Result, error) {
		bp, err := s.Profile(bench)
		if err != nil {
			return cpu.Result{}, err
		}
		if pol == pipeline.Baseline {
			m, err := bp.Measure(mach)
			if err != nil {
				return cpu.Result{}, err
			}
			return m.Result, nil
		}
		return bp.RunSolo(mach, pol, s.Input())
	})
}

// Machines returns the two evaluation machines in paper order.
func (s *Session) Machines() []machine.Machine { return machine.Both() }

// logf writes a progress line when verbose. It serializes writers because
// engine workers log concurrently.
func (s *Session) logf(format string, args ...any) {
	if s.O.Verbose {
		s.logMu.Lock()
		fmt.Fprintf(s.O.Out, "# "+format+"\n", args...)
		s.logMu.Unlock()
	}
}
