// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV–§VII), plus the ablations the text mentions.
// Each driver computes a result struct (so tests can assert the paper's
// qualitative shapes) and renders the same rows or series the paper
// reports.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/workloads"
)

// Options configures an experiment session.
type Options struct {
	// Scale multiplies workload iteration counts (1.0 reproduces the
	// default run lengths; benchmarks keep ≥2 passes at any scale).
	Scale float64
	// Mixes is the number of random 4-app mixes for Figures 7–11
	// (the paper runs 180).
	Mixes int
	// Seed drives mix generation and input selection.
	Seed int64
	// SamplerPeriod is the mean references between samples.
	SamplerPeriod int64
	// Out receives rendered reports (default os.Stdout).
	Out io.Writer
	// Verbose adds per-load analysis detail to reports.
	Verbose bool
	// Benches restricts experiments to a subset of the Table I benchmarks
	// (nil = all twelve). Used by tests and benchmarks to bound runtime.
	Benches []string
	// Workers caps the experiment engine's concurrent simulation tasks.
	// 0 uses every CPU; 1 runs studies serially. Results are bit-identical
	// at any worker count: every task owns its machine, memory hierarchy,
	// sampler and RNG stream (seeded from the task key), and results merge
	// in task order.
	Workers int
	// Obs, when non-nil, attaches the observability layer: machine
	// snapshots into the stats registry after each simulation task, trace
	// spans for engine tasks and single-flight caches, and progress
	// accounting. Nil (the default) keeps all instrumentation off, so
	// figure output and determinism are untouched.
	Obs *obs.Obs
	// Retries is how many extra attempts a failing (or panicking)
	// simulation task gets before its cell is final. Retries are
	// deterministic: the same task retries identically at any worker
	// count.
	Retries int
	// FailureBudget governs graceful degradation: 0 fails a figure on the
	// first final task failure, a positive value absorbs up to that many
	// failed cells per batch as explicit skips, and a negative value
	// absorbs any number.
	FailureBudget int
	// Fault, when non-nil, injects deterministic faults into every task
	// attempt (chaos testing; see internal/faultinject).
	Fault sched.FaultHook
	// Save, when non-nil, checkpoints completed task results and replays
	// them on resume instead of re-executing (see internal/ckpt).
	Save sched.Saver
	// Tier selects the prediction tier: "sim" (the default; "" normalizes
	// to it) answers with the timing simulator, "analytic" answers from the
	// MRC-only analytic model (internal/analytic) and rejects experiments
	// that need the simulator, and "static" answers from the zero-execution
	// static analyzer (internal/staticprof) and rejects everything but its
	// own differential harness. The "analytic-validate" and "static-validate"
	// experiments run two tiers by design — they are the differential
	// harnesses.
	Tier string
	// Remote, when non-nil, offers every scheduler batch to a remote
	// executor (the cluster coordinator) before local fan-out; indices it
	// does not cover run locally, so output stays byte-identical to a
	// single-process run at any fleet size (see internal/cluster).
	Remote sched.BatchRunner
}

// Fingerprint identifies the result-affecting configuration: the string
// covers exactly the options that change task results — never Workers,
// Retries, Remote or timeouts, which only change scheduling — so a
// checkpoint or shard ledger written under one fingerprint is valid for
// any schedule of the same configuration. Call on normalized options.
func (o Options) Fingerprint() string {
	fp := fmt.Sprintf("scale=%g seed=%d mixes=%d period=%d benches=%s",
		o.Scale, o.Seed, o.Mixes, o.SamplerPeriod, strings.Join(o.Benches, ","))
	// The tier changes what tasks compute; appended only when non-default
	// so fingerprints from before the option existed stay valid.
	if o.Tier != "" && o.Tier != "sim" {
		fp += " tier=" + o.Tier
	}
	return fp
}

// Tiers lists the valid Options.Tier values after normalization.
func Tiers() []string { return []string{"sim", "analytic", "static"} }

// ValidTier reports whether t names a prediction tier ("" is the default
// simulator tier).
func ValidTier(t string) bool {
	return t == "" || t == "sim" || t == "analytic" || t == "static"
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Mixes <= 0 {
		o.Mixes = 45
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.SamplerPeriod <= 0 {
		o.SamplerPeriod = 4096
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Tier == "" {
		o.Tier = "sim"
	}
	return o
}

// Normalized returns the options with every unset field filled with its
// default, exactly as NewSession would see them. Long-running callers (the
// serve front end) use it to pin down the effective configuration before
// deriving fingerprints or sharing profilers.
func (o Options) Normalized() Options { return o.withDefaults() }

// Session caches profiles and solo runs so the figure drivers share work.
// Sessions are safe for concurrent use: the caches are single-flight, so
// engine workers asking for the same solo run or mix study share one
// computation.
type Session struct {
	O    Options
	Prof *pipeline.Profiler

	solo    sched.OnceMap[string, cpu.Result]
	studies sched.OnceMap[string, *MixStudy]

	logMu sync.Mutex
}

// NewSession creates a session.
func NewSession(o Options) *Session {
	o = o.withDefaults()
	s := &Session{
		O:    o,
		Prof: pipeline.NewProfiler(sampler.Config{Period: o.SamplerPeriod, Seed: o.Seed}),
	}
	s.Prof.SetObs(o.Obs)
	s.solo.Name, s.solo.Obs = "solo", o.Obs.CacheObserver()
	s.studies.Name, s.studies.Obs = "mixstudy", o.Obs.CacheObserver()
	return s
}

// pool returns the session's worker pool for fanning out simulation tasks;
// drivers label it per batch with Named. The observer only watches task
// timing — it cannot affect results. Retry, budget, fault-injection and
// checkpoint settings ride along from the options.
func (s *Session) pool() sched.Pool {
	return sched.Pool{
		Workers:       s.O.Workers,
		Obs:           s.O.Obs.SchedObserver(),
		MaxAttempts:   s.O.Retries + 1,
		FailureBudget: s.O.FailureBudget,
		Fault:         s.O.Fault,
		Save:          s.O.Save,
		Remote:        s.O.Remote,
	}
}

// SkippedCell is one unit of work a figure driver abandoned after the retry
// budget: instead of silently zeroing the cell, drivers report it in the
// result and the stats registry.
type SkippedCell struct {
	Label  string
	Reason string
}

// skipReason compresses a final task error into a one-line reason.
func skipReason(err error) string {
	if err == nil {
		return "skipped"
	}
	var te *sched.TaskError
	if errors.As(err, &te) && te.Panic != nil {
		return fmt.Sprintf("panic after %d attempts: %v", te.Attempts, te.Panic)
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return msg
}

// recordSkip appends a skipped cell to a figure's list and mirrors it into
// the stats registry so -stats-json reports it explicitly.
func (s *Session) recordSkip(skipped *[]SkippedCell, label, reason string) {
	*skipped = append(*skipped, SkippedCell{Label: label, Reason: reason})
	s.O.Obs.RecordSkipped(label, reason)
}

// printSkipped renders a figure's skipped-cell list, if any.
func printSkipped(w io.Writer, skipped []SkippedCell) {
	if len(skipped) == 0 {
		return
	}
	fmt.Fprintf(w, "  skipped %d cell(s) after retries:\n", len(skipped))
	for _, sc := range skipped {
		fmt.Fprintf(w, "    %-36s %s\n", sc.Label, sc.Reason)
	}
}

// isCancellation reports whether err is a cancellation rather than a task
// failure; cancellations always abort a figure instead of degrading it.
func isCancellation(err error) bool {
	return errors.Is(err, sched.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsCancellation reports whether an error returned by a figure driver stems
// from run cancellation (signal, timeout, or sched.ErrCanceled) rather than
// a task failure. Callers use it to report interrupted runs distinctly.
func IsCancellation(err error) bool { return isCancellation(err) }

// Input returns the reference input at the session scale.
func (s *Session) Input() workloads.Input {
	return workloads.Input{ID: 0, Scale: s.O.Scale}
}

// InputID returns input set id at the session scale.
func (s *Session) InputID(id int) workloads.Input {
	return workloads.Input{ID: id, Scale: s.O.Scale}
}

// Profile returns the cached profile of a benchmark on the reference input.
func (s *Session) Profile(ctx context.Context, bench string) (*pipeline.BenchProfile, error) {
	spec, err := workloads.ByName(bench)
	if err != nil {
		return nil, err
	}
	return s.Prof.Get(ctx, spec, s.Input())
}

// Solo returns the cached solo run of one benchmark under one policy.
func (s *Session) Solo(ctx context.Context, bench string, mach machine.Machine, pol pipeline.Policy) (cpu.Result, error) {
	key := fmt.Sprintf("%s/%s/%d", bench, mach.Name, pol)
	return s.solo.Do(key, func() (cpu.Result, error) {
		bp, err := s.Profile(ctx, bench)
		if err != nil {
			return cpu.Result{}, err
		}
		if pol == pipeline.Baseline {
			m, err := bp.Measure(ctx, mach)
			if err != nil {
				return cpu.Result{}, err
			}
			return m.Result, nil
		}
		return bp.RunSolo(ctx, mach, pol, s.Input())
	})
}

// Machines returns the two evaluation machines in paper order.
func (s *Session) Machines() []machine.Machine { return machine.Both() }

// logf writes a progress line when verbose. It serializes writers because
// engine workers log concurrently.
func (s *Session) logf(format string, args ...any) {
	if s.O.Verbose {
		s.logMu.Lock()
		fmt.Fprintf(s.O.Out, "# "+format+"\n", args...)
		s.logMu.Unlock()
	}
}
