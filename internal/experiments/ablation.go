package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/metrics"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sched"
)

// AblationCombinedRow holds one benchmark × machine comparison of software
// prefetching, hardware prefetching and their combination (§VIII-B2, after
// Lee et al.: combining the two can hurt and should be avoided).
type AblationCombinedRow struct {
	Machine  string
	Bench    string
	SWNT     float64
	HW       float64
	Combined float64
}

// Worse reports whether the combination underperforms the better of the
// two individual policies.
func (r AblationCombinedRow) Worse() bool {
	best := r.SWNT
	if r.HW > best {
		best = r.HW
	}
	return r.Combined < best
}

// AblationCombinedResult aggregates the combination study.
type AblationCombinedResult struct {
	Rows []AblationCombinedRow
	// WorseCount counts cases where HW+SW underperforms the better
	// individual policy.
	WorseCount int
	// Skipped lists (machine, benchmark) rows abandoned after retries.
	Skipped []SkippedCell
}

// AblationCombined evaluates SW+NT combined with hardware prefetching.
// Every (machine, benchmark) pair is an independent engine task; rows merge
// in machine-major, benchmark-minor order.
func (s *Session) AblationCombined(ctx context.Context) (*AblationCombinedResult, error) {
	machines := s.Machines()
	benches := s.benchNames()
	nb := len(benches)
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("ablation/combined"), len(machines)*nb, func(i int) (AblationCombinedRow, error) {
		mach, bench := machines[i/nb], benches[i%nb]
		s.logf("ablation-combined: %s on %s", bench, mach.Name)
		base, err := s.Solo(ctx, bench, mach, pipeline.Baseline)
		if err != nil {
			return AblationCombinedRow{}, err
		}
		row := AblationCombinedRow{Machine: mach.Name, Bench: bench}
		for _, p := range []pipeline.Policy{pipeline.SWPrefNT, pipeline.HWPref, pipeline.SWNTPlusHW} {
			r, err := s.Solo(ctx, bench, mach, p)
			if err != nil {
				return AblationCombinedRow{}, err
			}
			sp := metrics.Speedup(base.Cycles, r.Cycles)
			switch p {
			case pipeline.SWPrefNT:
				row.SWNT = sp
			case pipeline.HWPref:
				row.HW = sp
			case pipeline.SWNTPlusHW:
				row.Combined = sp
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationCombinedResult{}
	for i, o := range outs {
		if o.Skipped {
			mach, bench := machines[i/nb], benches[i%nb]
			s.recordSkip(&res.Skipped, fmt.Sprintf("ablation/combined/%s/%s", mach.Name, bench), skipReason(o.Err))
			continue
		}
		res.Rows = append(res.Rows, o.Value)
		if o.Value.Worse() {
			res.WorseCount++
		}
	}
	return res, nil
}

// Print renders the combination table.
func (r *AblationCombinedResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintln(w, "Ablation: combining software and hardware prefetching (§VIII-B2)")
	fmt.Fprintf(w, "  %-20s %-12s %10s %10s %10s %s\n", "Machine", "Benchmark", "SW+NT", "HW", "SW+NT&HW", "")
	for _, row := range r.Rows {
		note := ""
		if row.Worse() {
			note = "← combination worse"
		}
		fmt.Fprintf(w, "  %-20s %-12s %+9.1f%% %+9.1f%% %+9.1f%% %s\n",
			row.Machine, row.Bench, row.SWNT*100, row.HW*100, row.Combined*100, note)
	}
	fmt.Fprintf(w, "  combination underperforms the better individual policy in %d/%d cases\n",
		r.WorseCount, len(r.Rows))
	printSkipped(w, r.Skipped)
}

// AblationL2Row is one benchmark's speedup from prefetching into the L2
// only (§VII-A: libquantum +4 %, lbm +3 %, soplex +1.3 % on AMD).
type AblationL2Row struct {
	Bench   string
	Speedup float64
}

// AblationL2Result holds the L2-target prefetch study on AMD.
type AblationL2Result struct {
	Machine string
	Rows    []AblationL2Row
	// Skipped lists benchmarks abandoned after retries.
	Skipped []SkippedCell
}

// AblationL2 evaluates the "prefetches from L2 alone" variant. Each
// benchmark is an independent engine task.
func (s *Session) AblationL2(ctx context.Context) (*AblationL2Result, error) {
	amd := s.Machines()[0]
	benches := []string{"libquantum", "lbm", "soplex"}
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("ablation/l2"), len(benches), func(i int) (AblationL2Row, error) {
		bench := benches[i]
		s.logf("ablation-l2: %s", bench)
		base, err := s.Solo(ctx, bench, amd, pipeline.Baseline)
		if err != nil {
			return AblationL2Row{}, err
		}
		r, err := s.Solo(ctx, bench, amd, pipeline.SWPrefL2)
		if err != nil {
			return AblationL2Row{}, err
		}
		return AblationL2Row{Bench: bench, Speedup: metrics.Speedup(base.Cycles, r.Cycles)}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationL2Result{Machine: amd.Name}
	for i, o := range outs {
		if o.Skipped {
			s.recordSkip(&res.Skipped, "ablation/l2/"+benches[i], skipReason(o.Err))
			continue
		}
		res.Rows = append(res.Rows, o.Value)
	}
	return res, nil
}

// Print renders the L2-target table.
func (r *AblationL2Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Ablation: software prefetches into L2 only (%s)\n", r.Machine)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12s %+6.1f%%\n", row.Bench, row.Speedup*100)
	}
	printSkipped(w, r.Skipped)
}
