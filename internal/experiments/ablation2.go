package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/cpu"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/metrics"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/workloads"
)

// mixApps compiles the policy variant of each mix member for mach.
func (s *Session) mixApps(ctx context.Context, names []string, mach machine.Machine, policy pipeline.Policy) ([]*isa.Compiled, error) {
	out := make([]*isa.Compiled, len(names))
	for i, name := range names {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		bp, err := s.Prof.Get(ctx, spec, s.Input())
		if err != nil {
			return nil, err
		}
		c, err := bp.Variant(ctx, mach, policy, s.Input())
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// runMixWith runs one mix on a hierarchy built from cfg and returns the
// per-app first-completion cycles and the summed off-chip traffic.
func runMixWith(cfg memsys.Config, apps []*isa.Compiled) ([]int64, int64, error) {
	h, err := memsys.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	rs, err := cpu.RunMix(h, apps)
	if err != nil {
		return nil, 0, err
	}
	cyc := make([]int64, len(rs))
	var traffic int64
	for i, r := range rs {
		cyc[i] = r.Cycles
		traffic += r.Stats.TotalTraffic()
	}
	return cyc, traffic, nil
}

// AblationThrottleResult compares hardware prefetching with and without
// contention throttling on a bandwidth-heavy mix. §I observes that modern
// processors throttle prefetching under contention yet still waste
// significant off-chip traffic — this ablation quantifies both halves.
type AblationThrottleResult struct {
	Machine string
	Names   []string
	// Weighted speedups over the no-prefetch baseline mix.
	WSThrottled, WSUnthrottled float64
	// Off-chip traffic deltas over the baseline mix.
	TrafficThrottled, TrafficUnthrottled float64
	// Skipped, when non-empty, marks the ablation abandoned after retries.
	Skipped []SkippedCell
}

// AblationThrottle runs a streaming-heavy mix under hardware prefetching
// with the machine's throttle enabled and disabled.
func (s *Session) AblationThrottle(ctx context.Context) (*AblationThrottleResult, error) {
	mach := s.Machines()[0] // AMD: the tighter bandwidth budget
	names := []string{"libquantum", "lbm", "leslie3d", "milc"}
	res := &AblationThrottleResult{Machine: mach.Name, Names: names}

	apps, err := s.mixApps(ctx, names, mach, pipeline.Baseline)
	if err != nil {
		return nil, err
	}
	baseCyc, baseTraffic, err := runMixWith(mach.MemConfig(4, false), apps)
	if err != nil {
		return nil, err
	}
	// The throttled and unthrottled runs share the baseline and are
	// otherwise independent tasks.
	settings := []bool{true, false}
	type wsTd struct{ WS, TD float64 }
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("ablation/throttle"), len(settings), func(i int) (wsTd, error) {
		m := mach
		if !settings[i] {
			m.ThrottleBacklog = 0
		}
		cyc, traffic, err := runMixWith(m.MemConfig(4, true), apps)
		if err != nil {
			return wsTd{}, err
		}
		ws, err := metrics.WeightedSpeedup(baseCyc, cyc)
		if err != nil {
			return wsTd{}, err
		}
		return wsTd{WS: ws, TD: metrics.Delta(baseTraffic, traffic)}, nil
	})
	if err != nil {
		return nil, err
	}
	// Either half missing leaves nothing to compare: degrade the whole
	// ablation to an explicit skip.
	for i, o := range outs {
		if o.Skipped {
			label := "ablation/throttle/on"
			if !settings[i] {
				label = "ablation/throttle/off"
			}
			s.recordSkip(&res.Skipped, label, skipReason(o.Err))
		}
	}
	if len(res.Skipped) > 0 {
		return res, nil
	}
	res.WSThrottled, res.TrafficThrottled = outs[0].Value.WS, outs[0].Value.TD
	res.WSUnthrottled, res.TrafficUnthrottled = outs[1].Value.WS, outs[1].Value.TD
	return res, nil
}

// Print renders the throttle ablation.
func (r *AblationThrottleResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Ablation: hardware-prefetch contention throttling (%s, mix %v)\n", r.Machine, r.Names)
	if len(r.Skipped) > 0 {
		printSkipped(w, r.Skipped)
		return
	}
	fmt.Fprintf(w, "  %-22s %14s %16s\n", "", "weighted spdup", "traffic vs base")
	fmt.Fprintf(w, "  %-22s %+13.1f%% %+15.1f%%\n", "HW, throttled", (r.WSThrottled-1)*100, r.TrafficThrottled*100)
	fmt.Fprintf(w, "  %-22s %+13.1f%% %+15.1f%%\n", "HW, unthrottled", (r.WSUnthrottled-1)*100, r.TrafficUnthrottled*100)
}

// AblationWindowResult sweeps the core reorder window to show how baseline
// memory-level parallelism sets the room prefetching has to help — the key
// sensitivity of the simulated timing model (DESIGN.md §5).
type AblationWindowResult struct {
	Machine string
	Bench   string
	Windows []int64
	// BaseCPI and speedups of SW+NT prefetching at each window.
	BaseCPI []float64
	SWNT    []float64
	// Skipped lists window sizes abandoned after retries; their points
	// are dropped from the sweep.
	Skipped []SkippedCell
}

// AblationWindow measures libquantum's SW+NT speedup across window sizes.
func (s *Session) AblationWindow(ctx context.Context) (*AblationWindowResult, error) {
	mach := s.Machines()[0]
	windows := []int64{32, 64, 128, 256, 512}
	res := &AblationWindowResult{Machine: mach.Name, Bench: "libquantum"}
	spec, err := workloads.ByName(res.Bench)
	if err != nil {
		return nil, err
	}
	bp, err := s.Prof.Get(ctx, spec, s.Input())
	if err != nil {
		return nil, err
	}
	opt, err := bp.Variant(ctx, mach, pipeline.SWPrefNT, s.Input())
	if err != nil {
		return nil, err
	}
	// One engine task per window size; each task builds its own pair of
	// hierarchies. Results merge in window order.
	type winPoint struct{ CPI, SWNT float64 }
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("ablation/window"), len(windows), func(i int) (winPoint, error) {
		m := mach
		m.Window = windows[i]
		hb, err := memsys.New(m.MemConfig(1, false))
		if err != nil {
			return winPoint{}, err
		}
		base, err := cpu.RunSingle(bp.Compiled, hb)
		if err != nil {
			return winPoint{}, err
		}
		ho, err := memsys.New(m.MemConfig(1, false))
		if err != nil {
			return winPoint{}, err
		}
		fast, err := cpu.RunSingle(opt, ho)
		if err != nil {
			return winPoint{}, err
		}
		return winPoint{
			CPI:  float64(base.Cycles) / float64(base.Instructions),
			SWNT: metrics.Speedup(base.Cycles, fast.Cycles),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		if o.Skipped {
			s.recordSkip(&res.Skipped, fmt.Sprintf("ablation/window/%d", windows[i]), skipReason(o.Err))
			continue
		}
		res.Windows = append(res.Windows, windows[i])
		res.BaseCPI = append(res.BaseCPI, o.Value.CPI)
		res.SWNT = append(res.SWNT, o.Value.SWNT)
	}
	return res, nil
}

// Print renders the window sweep.
func (r *AblationWindowResult) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Ablation: reorder-window (MLP) sensitivity (%s, %s)\n", r.Machine, r.Bench)
	fmt.Fprintf(w, "  %-10s %10s %14s\n", "window", "base CPI", "SW+NT speedup")
	for i, win := range r.Windows {
		fmt.Fprintf(w, "  %-10d %10.2f %+13.1f%%\n", win, r.BaseCPI[i], r.SWNT[i]*100)
	}
	printSkipped(w, r.Skipped)
}
