package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/core"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/workloads"
)

// Fig12Row is one parallel workload's speedups at 1, 2 and 4 threads under
// software (SW+NT) and hardware prefetching, relative to the single-thread
// no-prefetching baseline (§VII-E).
type Fig12Row struct {
	Name          string
	HighBandwidth bool
	Threads       []int
	SWNT          []float64 // speedup per thread count
	HW            []float64
	// BaselineBW is the single-thread baseline bandwidth (GB/s); the
	// high-bandwidth codes approach the channel limit at four threads.
	PeakBW4SW float64
	PeakBW4HW float64
}

// Fig12Result holds the parallel-workload study on Intel.
type Fig12Result struct {
	Machine string
	Rows    []Fig12Row
	// Averages across workloads at 4 threads.
	AvgSWNT4, AvgHW4 float64
	// Skipped lists workloads (or individual thread-count runs) abandoned
	// after retries; their rows are dropped from the figure.
	Skipped []SkippedCell
}

// fig12Threads are the evaluated thread counts.
var fig12Threads = []int{1, 2, 4}

// fig12Prep is one workload's single-thread baseline and the SW+NT plan
// derived from it — the shared inputs of that workload's per-thread-count
// simulations. It holds a plan pointer and a spec with function values, so
// it is deliberately not checkpointable: profiles re-run on resume.
type fig12Prep struct {
	spec    workloads.ParallelSpec
	baseRes cpu.Result
	plan    *core.Plan
}

// fig12Point is one (workload, thread count) simulation outcome. Fields
// are exported so completed points gob-encode into checkpoints.
type fig12Point struct {
	SWNT, HW           float64
	PeakBWSW, PeakBWHW float64
}

// Fig12 reproduces Figure 12 on the Intel machine: SPMD workloads at 1, 2
// and 4 threads; software prefetching wins where off-chip bandwidth demand
// is high (swim, cg) and matches hardware prefetching elsewhere.
//
// The study runs in two parallel phases: first each workload's
// single-thread baseline run and prefetch plan (one task per workload,
// each with its own sampler seeded from the session options), then every
// (workload × thread count) simulation as an independent task. Rows merge
// in paper order; a workload with any abandoned task is reported as
// skipped rather than rendered partially.
func (s *Session) Fig12(ctx context.Context) (*Fig12Result, error) {
	intel := machine.IntelSandyBridge()
	specs := workloads.Parallel()
	in := s.Input()

	prepOuts, err := sched.MapOutcomes(ctx, s.pool().Named("fig12/profile"), len(specs), func(i int) (fig12Prep, error) {
		spec := specs[i]
		s.logf("fig12: profile %s", spec.Name)
		// Baseline: single thread, hardware prefetching off.
		p1, err := spec.Build(in, 1, 0)
		if err != nil {
			return fig12Prep{}, err
		}
		base1, err := isa.Compile(p1)
		if err != nil {
			return fig12Prep{}, err
		}
		hBase, err := memsys.New(intel.MemConfig(1, false))
		if err != nil {
			return fig12Prep{}, err
		}
		baseRes, err := cpu.RunSingle(base1, hBase)
		if err != nil {
			return fig12Prep{}, err
		}
		s.O.Obs.RecordMachine(fmt.Sprintf("fig12/%s/%s/t1/Baseline", intel.Name, spec.Name),
			intel.Name, hBase, []cpu.Result{baseRes})

		// Profile the single-thread program and build the SW+NT plan.
		sm := sampler.New(sampler.Config{Period: s.O.SamplerPeriod, Seed: s.O.Seed})
		isa.Trace(base1, sm)
		samples := sm.Finish()
		model := statstack.Build(samples)
		params := core.DefaultParams(intel.L1.Size, intel.L2.Size, intel.LLC.Size,
			intel.L2Lat, intel.LLCLat, intel.DRAM.ServiceLat+intel.LLCLat+14)
		if baseRes.MemRefs > 0 {
			params.Delta = float64(baseRes.Cycles) / float64(baseRes.MemRefs)
		}
		if baseRes.Stats.LoadL1Misses > 0 {
			params.MissLat = float64(baseRes.Stats.MissLatencyCycles) / float64(baseRes.Stats.LoadL1Misses)
		}
		return fig12Prep{spec: spec, baseRes: baseRes, plan: core.Analyze(base1, model, samples, params)}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig12Result{Machine: intel.Name}
	// Workloads whose profile survived; only their runs fan out below.
	var okIdx []int
	for i, o := range prepOuts {
		if o.Skipped {
			s.recordSkip(&res.Skipped, "fig12/"+specs[i].Name, skipReason(o.Err))
			continue
		}
		okIdx = append(okIdx, i)
	}

	nt := len(fig12Threads)
	points, err := sched.MapOutcomes(ctx, s.pool().Named("fig12/runs"), len(okIdx)*nt, func(i int) (fig12Point, error) {
		prep, n := prepOuts[okIdx[i/nt]].Value, fig12Threads[i%nt]
		s.logf("fig12: %s ×%d", prep.spec.Name, n)
		return s.fig12Point(intel, in, prep, n)
	})
	if err != nil {
		return nil, err
	}

	for oi, wi := range okIdx {
		spec := specs[wi]
		row := Fig12Row{Name: spec.Name, HighBandwidth: spec.HighBandwidth, Threads: fig12Threads}
		complete := true
		for ti, n := range fig12Threads {
			o := points[oi*nt+ti]
			if o.Skipped {
				s.recordSkip(&res.Skipped, fmt.Sprintf("fig12/%s/t%d", spec.Name, n), skipReason(o.Err))
				complete = false
				continue
			}
			row.SWNT = append(row.SWNT, o.Value.SWNT)
			row.HW = append(row.HW, o.Value.HW)
			if n == 4 {
				row.PeakBW4SW = o.Value.PeakBWSW
				row.PeakBW4HW = o.Value.PeakBWHW
			}
		}
		if !complete {
			continue // a partial row cannot be rendered
		}
		res.Rows = append(res.Rows, row)
		res.AvgSWNT4 += row.SWNT[len(row.SWNT)-1]
		res.AvgHW4 += row.HW[len(row.HW)-1]
	}
	if len(res.Rows) > 0 {
		res.AvgSWNT4 /= float64(len(res.Rows))
		res.AvgHW4 /= float64(len(res.Rows))
	}
	return res, nil
}

// fig12Point measures one workload at one thread count under SW+NT and
// hardware prefetching, on hierarchies owned by this task.
func (s *Session) fig12Point(mach machine.Machine, in workloads.Input, prep fig12Prep, n int) (fig12Point, error) {
	// SW+NT: the plan derived from thread 0 applies to every thread (SPMD
	// threads share the static code).
	swProgs := make([]*isa.Compiled, n)
	hwProgs := make([]*isa.Compiled, n)
	for t := 0; t < n; t++ {
		p, err := prep.spec.Build(in, n, t)
		if err != nil {
			return fig12Point{}, err
		}
		rw, err := prep.plan.Apply(p)
		if err != nil {
			return fig12Point{}, err
		}
		if swProgs[t], err = isa.Compile(rw); err != nil {
			return fig12Point{}, err
		}
		ph, err := prep.spec.Build(in, n, t)
		if err != nil {
			return fig12Point{}, err
		}
		if hwProgs[t], err = isa.Compile(ph); err != nil {
			return fig12Point{}, err
		}
	}
	hSW, err := memsys.New(mach.MemConfig(n, false))
	if err != nil {
		return fig12Point{}, err
	}
	swRes, err := cpu.RunParallel(hSW, swProgs)
	if err != nil {
		return fig12Point{}, err
	}
	s.O.Obs.RecordMachine(fmt.Sprintf("fig12/%s/%s/t%d/SW+NT", mach.Name, prep.spec.Name, n),
		mach.Name, hSW, swRes)
	hHW, err := memsys.New(mach.MemConfig(n, true))
	if err != nil {
		return fig12Point{}, err
	}
	hwRes, err := cpu.RunParallel(hHW, hwProgs)
	if err != nil {
		return fig12Point{}, err
	}
	s.O.Obs.RecordMachine(fmt.Sprintf("fig12/%s/%s/t%d/HW", mach.Name, prep.spec.Name, n),
		mach.Name, hHW, hwRes)

	pt := fig12Point{
		SWNT: float64(prep.baseRes.Cycles) / float64(makespan(swRes)),
		HW:   float64(prep.baseRes.Cycles) / float64(makespan(hwRes)),
	}
	if n == 4 {
		pt.PeakBWSW = mach.GBps(float64(totalTraffic(swRes)) / float64(makespan(swRes)))
		pt.PeakBWHW = mach.GBps(float64(totalTraffic(hwRes)) / float64(makespan(hwRes)))
	}
	return pt, nil
}

// makespan returns the slowest thread's completion time.
func makespan(rs []cpu.Result) int64 {
	var m int64
	for _, r := range rs {
		if r.Cycles > m {
			m = r.Cycles
		}
	}
	if m == 0 {
		m = 1
	}
	return m
}

// totalTraffic sums off-chip traffic across threads.
func totalTraffic(rs []cpu.Result) int64 {
	var t int64
	for _, r := range rs {
		t += r.Stats.TotalTraffic()
	}
	return t
}

// Print renders the figure.
func (r *Fig12Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Figure 12: Parallel workloads, 1/2/4 threads on %s (speedup vs 1-thread baseline)\n", r.Machine)
	fmt.Fprintf(w, "  %-8s %8s | %7s %7s %7s | %7s %7s %7s | %s\n",
		"bench", "", "SW 1t", "SW 2t", "SW 4t", "HW 1t", "HW 2t", "HW 4t", "4t bandwidth (SW/HW)")
	for _, row := range r.Rows {
		mark := ""
		if row.HighBandwidth {
			mark = "*"
		}
		fmt.Fprintf(w, "  %-8s %8s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f | %.1f / %.1f GB/s\n",
			row.Name+mark, "", row.SWNT[0], row.SWNT[1], row.SWNT[2],
			row.HW[0], row.HW[1], row.HW[2], row.PeakBW4SW, row.PeakBW4HW)
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(w, "  avg 4-thread speedup: SW+NT %.2f, HW %.2f (* = highest off-chip bandwidth)\n",
			r.AvgSWNT4, r.AvgHW4)
	}
	printSkipped(w, r.Skipped)
}
