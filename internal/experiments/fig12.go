package experiments

import (
	"fmt"

	"prefetchlab/internal/core"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/workloads"
)

// Fig12Row is one parallel workload's speedups at 1, 2 and 4 threads under
// software (SW+NT) and hardware prefetching, relative to the single-thread
// no-prefetching baseline (§VII-E).
type Fig12Row struct {
	Name          string
	HighBandwidth bool
	Threads       []int
	SWNT          []float64 // speedup per thread count
	HW            []float64
	// BaselineBW is the single-thread baseline bandwidth (GB/s); the
	// high-bandwidth codes approach the channel limit at four threads.
	PeakBW4SW float64
	PeakBW4HW float64
}

// Fig12Result holds the parallel-workload study on Intel.
type Fig12Result struct {
	Machine string
	Rows    []Fig12Row
	// Averages across workloads at 4 threads.
	AvgSWNT4, AvgHW4 float64
}

// fig12Threads are the evaluated thread counts.
var fig12Threads = []int{1, 2, 4}

// Fig12 reproduces Figure 12 on the Intel machine: SPMD workloads at 1, 2
// and 4 threads; software prefetching wins where off-chip bandwidth demand
// is high (swim, cg) and matches hardware prefetching elsewhere.
func (s *Session) Fig12() (*Fig12Result, error) {
	intel := machine.IntelSandyBridge()
	res := &Fig12Result{Machine: intel.Name}
	for _, spec := range workloads.Parallel() {
		s.logf("fig12: %s", spec.Name)
		row, err := s.fig12Workload(intel, spec)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		res.AvgSWNT4 += row.SWNT[len(row.SWNT)-1]
		res.AvgHW4 += row.HW[len(row.HW)-1]
	}
	res.AvgSWNT4 /= float64(len(res.Rows))
	res.AvgHW4 /= float64(len(res.Rows))
	return res, nil
}

// fig12Workload profiles thread 0's program, derives one plan, applies it
// to every thread, and measures makespans.
func (s *Session) fig12Workload(mach machine.Machine, spec workloads.ParallelSpec) (Fig12Row, error) {
	in := s.Input()
	row := Fig12Row{Name: spec.Name, HighBandwidth: spec.HighBandwidth, Threads: fig12Threads}

	// Baseline: single thread, hardware prefetching off.
	base1, err := isa.Compile(spec.Build(in, 1, 0))
	if err != nil {
		return row, err
	}
	hBase, err := memsys.New(mach.MemConfig(1, false))
	if err != nil {
		return row, err
	}
	baseRes := cpu.RunSingle(base1, hBase)

	// Profile the single-thread program and build the SW+NT plan.
	sm := sampler.New(sampler.Config{Period: s.O.SamplerPeriod, Seed: s.O.Seed})
	isa.Trace(base1, sm)
	samples := sm.Finish()
	model := statstack.Build(samples)
	params := core.DefaultParams(mach.L1.Size, mach.L2.Size, mach.LLC.Size,
		mach.L2Lat, mach.LLCLat, mach.DRAM.ServiceLat+mach.LLCLat+14)
	if baseRes.MemRefs > 0 {
		params.Delta = float64(baseRes.Cycles) / float64(baseRes.MemRefs)
	}
	if baseRes.Stats.LoadL1Misses > 0 {
		params.MissLat = float64(baseRes.Stats.MissLatencyCycles) / float64(baseRes.Stats.LoadL1Misses)
	}
	plan := core.Analyze(base1, model, samples, params)

	for _, n := range row.Threads {
		// SW+NT: the plan derived from thread 0 applies to every thread
		// (SPMD threads share the static code).
		swProgs := make([]*isa.Compiled, n)
		hwProgs := make([]*isa.Compiled, n)
		for t := 0; t < n; t++ {
			p := spec.Build(in, n, t)
			rw, err := plan.Apply(p)
			if err != nil {
				return row, err
			}
			if swProgs[t], err = isa.Compile(rw); err != nil {
				return row, err
			}
			if hwProgs[t], err = isa.Compile(spec.Build(in, n, t)); err != nil {
				return row, err
			}
		}
		hSW, err := memsys.New(mach.MemConfig(n, false))
		if err != nil {
			return row, err
		}
		swRes := cpu.RunParallel(hSW, swProgs)
		hHW, err := memsys.New(mach.MemConfig(n, true))
		if err != nil {
			return row, err
		}
		hwRes := cpu.RunParallel(hHW, hwProgs)

		row.SWNT = append(row.SWNT, float64(baseRes.Cycles)/float64(makespan(swRes)))
		row.HW = append(row.HW, float64(baseRes.Cycles)/float64(makespan(hwRes)))
		if n == 4 {
			row.PeakBW4SW = mach.GBps(float64(totalTraffic(swRes)) / float64(makespan(swRes)))
			row.PeakBW4HW = mach.GBps(float64(totalTraffic(hwRes)) / float64(makespan(hwRes)))
		}
	}
	return row, nil
}

// makespan returns the slowest thread's completion time.
func makespan(rs []cpu.Result) int64 {
	var m int64
	for _, r := range rs {
		if r.Cycles > m {
			m = r.Cycles
		}
	}
	if m == 0 {
		m = 1
	}
	return m
}

// totalTraffic sums off-chip traffic across threads.
func totalTraffic(rs []cpu.Result) int64 {
	var t int64
	for _, r := range rs {
		t += r.Stats.TotalTraffic()
	}
	return t
}

// Print renders the figure.
func (r *Fig12Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Figure 12: Parallel workloads, 1/2/4 threads on %s (speedup vs 1-thread baseline)\n", r.Machine)
	fmt.Fprintf(w, "  %-8s %8s | %7s %7s %7s | %7s %7s %7s | %s\n",
		"bench", "", "SW 1t", "SW 2t", "SW 4t", "HW 1t", "HW 2t", "HW 4t", "4t bandwidth (SW/HW)")
	for _, row := range r.Rows {
		mark := ""
		if row.HighBandwidth {
			mark = "*"
		}
		fmt.Fprintf(w, "  %-8s %8s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f | %.1f / %.1f GB/s\n",
			row.Name+mark, "", row.SWNT[0], row.SWNT[1], row.SWNT[2],
			row.HW[0], row.HW[1], row.HW[2], row.PeakBW4SW, row.PeakBW4HW)
	}
	fmt.Fprintf(w, "  avg 4-thread speedup: SW+NT %.2f, HW %.2f (* = highest off-chip bandwidth)\n",
		r.AvgSWNT4, r.AvgHW4)
}
