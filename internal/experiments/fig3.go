package experiments

import (
	"context"
	"fmt"
	"sort"

	"prefetchlab/internal/machine"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/statstack"
)

// Fig3Result holds the modelled miss-ratio curves of Figure 3: the whole
// application and one frequently executed load of mcf, across cache sizes
// 8 kB … 8 MB, with the AMD Phenom II L1/L2/LLC sizes marked.
type Fig3Result struct {
	Bench   string
	Sizes   []int64
	Average []float64
	LoadPC  ref.PC
	Load    []float64
	Marks   map[string]int64 // level name → size
}

// Fig3 models the MRCs with StatStack from the sampling profile, exactly
// as §IV does.
func (s *Session) Fig3(ctx context.Context) (*Fig3Result, error) {
	bp, err := s.Profile(ctx, "mcf")
	if err != nil {
		return nil, err
	}
	sizes := statstack.StandardSizes()
	res := &Fig3Result{
		Bench:   "mcf",
		Sizes:   sizes,
		Average: bp.Model.MRC(sizes),
	}
	// "a frequently executed load": the load with the most reuse samples.
	var best ref.PC
	var bestN int64 = -1
	for _, pc := range bp.Model.PCs() {
		if n := bp.Model.PCSampleCount(pc); n > bestN {
			bestN = n
			best = pc
		}
	}
	res.LoadPC = best
	res.Load = bp.Model.PCMRC(best, sizes)
	amd := machine.AMDPhenomII()
	res.Marks = map[string]int64{"L1$": amd.L1.Size, "L2$": amd.L2.Size, "LLC": amd.LLC.Size}
	return res, nil
}

// Print renders the curves as a table.
func (r *Fig3Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Figure 3: Miss Ratio Modeling (%s, StatStack)\n", r.Bench)
	fmt.Fprintf(w, "  %-8s %12s %16s\n", "size", "average", fmt.Sprintf("load pc=%d", r.LoadPC))
	// Sort the mark names once: ranging the map directly would make the
	// arrow label depend on iteration order when two marks share a size.
	names := make([]string, 0, len(r.Marks))
	for name := range r.Marks {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, sz := range r.Sizes {
		mark := ""
		for _, name := range names {
			if r.Marks[name] == sz {
				mark = "  ← " + name
			}
		}
		fmt.Fprintf(w, "  %-8s %11.1f%% %15.1f%%%s\n", sizeLabel(sz), r.Average[i]*100, r.Load[i]*100, mark)
	}
}

// sizeLabel formats a cache size like the paper's axis (8k … 8M).
func sizeLabel(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dM", b>>20)
	}
	return fmt.Sprintf("%dk", b>>10)
}
