package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"prefetchlab/internal/machine"
	"prefetchlab/internal/metrics"
	"prefetchlab/internal/mix"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/textplot"
	"prefetchlab/internal/workloads"
)

// mixPolicies are the two policies the mixed-workload figures compare.
var mixPolicies = []pipeline.Policy{pipeline.SWPrefNT, pipeline.HWPref}

// MixStudy is the outcome of running the session's mixes on one machine,
// either with the profiled inputs (Figure 7) or with randomly varied inputs
// (Figure 9, §VII-D).
type MixStudy struct {
	Machine    string
	DiffInputs bool
	Mixes      [][]string
	// Comparisons is index-aligned with Mixes; a nil entry is a mix whose
	// baseline run was skipped under the failure budget (see Skipped).
	Comparisons []*mix.Comparison
	// Skipped lists abandoned mixes and policy runs.
	Skipped []SkippedCell
}

// has reports whether comparison c carries policy p (it may have been
// skipped under the failure budget, or the whole mix may be nil).
func has(c *mix.Comparison, p pipeline.Policy) bool {
	if c == nil {
		return false
	}
	_, ok := c.ByPolicy[p]
	return ok
}

// WSDist returns the distribution of weighted-speedup deltas (WS−1) of a
// policy across the mixes that ran it.
func (st *MixStudy) WSDist(p pipeline.Policy) metrics.Distribution {
	vals := make([]float64, 0, len(st.Comparisons))
	for _, c := range st.Comparisons {
		if has(c, p) {
			vals = append(vals, c.WS(p)-1)
		}
	}
	return metrics.NewDistribution(vals)
}

// TrafficDist returns the distribution of off-chip traffic deltas.
func (st *MixStudy) TrafficDist(p pipeline.Policy) metrics.Distribution {
	vals := make([]float64, 0, len(st.Comparisons))
	for _, c := range st.Comparisons {
		if has(c, p) {
			vals = append(vals, c.TrafficDelta(p))
		}
	}
	return metrics.NewDistribution(vals)
}

// FSAvg returns the mean fair speedup of a policy.
func (st *MixStudy) FSAvg(p pipeline.Policy) float64 {
	var s float64
	n := 0
	for _, c := range st.Comparisons {
		if has(c, p) {
			s += c.FS(p)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// QoSAvg returns the mean QoS degradation of a policy.
func (st *MixStudy) QoSAvg(p pipeline.Policy) float64 {
	var s float64
	n := 0
	for _, c := range st.Comparisons {
		if has(c, p) {
			s += c.QoS(p)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// SWNTBeatsHW counts mixes where the software method's throughput exceeds
// hardware prefetching's.
func (st *MixStudy) SWNTBeatsHW() int {
	n := 0
	for _, c := range st.Comparisons {
		if has(c, pipeline.SWPrefNT) && has(c, pipeline.HWPref) &&
			c.WS(pipeline.SWPrefNT) > c.WS(pipeline.HWPref) {
			n++
		}
	}
	return n
}

// Slowdowns counts mixes a policy slows below the baseline.
func (st *MixStudy) Slowdowns(p pipeline.Policy) int {
	n := 0
	for _, c := range st.Comparisons {
		if has(c, p) && c.WS(p) < 1 {
			n++
		}
	}
	return n
}

// mixStudy runs (and caches) the session's mixes on one machine. Mixes are
// independent tasks: each fans out to an engine worker and the comparisons
// merge in mix order. The inner per-mix policy runs stay serial — the mix
// fan-out already saturates the pool.
func (s *Session) mixStudy(ctx context.Context, mach machine.Machine, diffInputs bool) (*MixStudy, error) {
	key := fmt.Sprintf("mixstudy/%s/%v", mach.Name, diffInputs)
	return s.studies.Do(key, func() (*MixStudy, error) {
		mixes, err := mix.Generate(s.O.Mixes, s.O.Seed, workloads.Names())
		if err != nil {
			return nil, err
		}
		scope := fmt.Sprintf("fig7-11/%s/profiled-inputs", mach.Name)
		if diffInputs {
			scope = fmt.Sprintf("fig7-11/%s/diff-inputs", mach.Name)
		}
		runner := &mix.Runner{Prof: s.Prof, Mach: mach, ProfileInput: s.Input(),
			Pool: sched.Serial, Obs: s.O.Obs, Scope: scope}
		if diffInputs {
			// §VII-D: run each mix slot with a randomly selected
			// non-reference input. The choice draws from an RNG stream
			// seeded by the (mix, slot) task key — never from shared
			// state — so it is identical at any worker count.
			seed := s.O.Seed
			scale := s.O.Scale
			runner.RunInput = func(mixIdx, slot int) workloads.Input {
				rng := rand.New(rand.NewSource(seed*7919 + int64(mixIdx)*64 + int64(slot)))
				return workloads.Input{ID: 1 + rng.Intn(3), Scale: scale}
			}
		}
		st := &MixStudy{Machine: mach.Name, DiffInputs: diffInputs, Mixes: mixes}
		outs, err := sched.MapOutcomes(ctx, s.pool().Named(key), len(mixes), func(i int) (*mix.Comparison, error) {
			s.logf("mix %d/%d on %s (diff=%v): %v", i+1, len(mixes), mach.Name, diffInputs, mixes[i])
			return runner.RunOne(ctx, i, mixes[i], mixPolicies)
		})
		if err != nil {
			return nil, err
		}
		st.Comparisons = make([]*mix.Comparison, len(mixes))
		for i, o := range outs {
			if o.Skipped {
				s.recordSkip(&st.Skipped, fmt.Sprintf("%s/mix%03d %v", key, i, mixes[i]), skipReason(o.Err))
				continue
			}
			st.Comparisons[i] = o.Value
			// Surface per-policy skips the mix runner absorbed.
			for _, sp := range o.Value.Skipped {
				s.recordSkip(&st.Skipped, fmt.Sprintf("%s/mix%03d/%s", key, i, sp.Policy), sp.Reason)
			}
		}
		return st, nil
	})
}

// Fig7Result holds the same-input mixed-workload study on both machines.
type Fig7Result struct {
	Studies []*MixStudy
}

// Fig7 reproduces Figure 7: weighted-speedup and off-chip-traffic
// distributions across random mixes on both machines.
func (s *Session) Fig7(ctx context.Context) (*Fig7Result, error) {
	out := &Fig7Result{}
	for _, mach := range s.Machines() {
		st, err := s.mixStudy(ctx, mach, false)
		if err != nil {
			return nil, err
		}
		out.Studies = append(out.Studies, st)
	}
	return out, nil
}

// Print renders the four panels of Figure 7.
func (r *Fig7Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Figure 7: Distributions across %d mixed workloads (sorted per series)\n", s.O.Mixes)
	pct := func(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }
	for _, st := range r.Studies {
		fmt.Fprintf(w, " (%s)\n", st.Machine)
		textplot.Curve{Title: "  Weighted speedup over baseline mix", FmtV: pct}.Render(w, []textplot.Series{
			{Name: "Soft Pref.+NT", Sorted: st.WSDist(pipeline.SWPrefNT).Values()},
			{Name: "Hardware Pref.", Sorted: st.WSDist(pipeline.HWPref).Values()},
		})
		textplot.Curve{Title: "  Off-chip traffic increase", FmtV: pct}.Render(w, []textplot.Series{
			{Name: "Soft Pref.+NT", Sorted: st.TrafficDist(pipeline.SWPrefNT).Values()},
			{Name: "Hardware Pref.", Sorted: st.TrafficDist(pipeline.HWPref).Values()},
		})
		sw, hw := st.WSDist(pipeline.SWPrefNT), st.WSDist(pipeline.HWPref)
		swt, hwt := st.TrafficDist(pipeline.SWPrefNT), st.TrafficDist(pipeline.HWPref)
		fmt.Fprintf(w, "  avg speedup: SW+NT %s, HW %s | SW+NT beats HW in %d/%d mixes | HW slows %d mixes, SW+NT slows %d\n",
			pct(sw.Mean()), pct(hw.Mean()), st.SWNTBeatsHW(), len(st.Comparisons),
			st.Slowdowns(pipeline.HWPref), st.Slowdowns(pipeline.SWPrefNT))
		fmt.Fprintf(w, "  avg traffic:  SW+NT %s, HW %s | min SW+NT speedup %s\n",
			pct(swt.Mean()), pct(hwt.Mean()), pct(sw.Min()))
		printSkipped(w, st.Skipped)
	}
}

// Fig9Result holds the different-input study (input sensitivity, §VII-D).
type Fig9Result struct {
	Studies []*MixStudy
}

// Fig9 reproduces Figure 9: the same mixes run with inputs other than those
// profiled.
func (s *Session) Fig9(ctx context.Context) (*Fig9Result, error) {
	out := &Fig9Result{}
	for _, mach := range s.Machines() {
		st, err := s.mixStudy(ctx, mach, true)
		if err != nil {
			return nil, err
		}
		out.Studies = append(out.Studies, st)
	}
	return out, nil
}

// Print renders the two panels of Figure 9.
func (r *Fig9Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintf(w, "Figure 9: Speedup distributions across %d mixes with different inputs\n", s.O.Mixes)
	pct := func(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }
	for _, st := range r.Studies {
		fmt.Fprintf(w, " (%s)\n", st.Machine)
		textplot.Curve{Title: "  Weighted speedup over baseline mix", FmtV: pct}.Render(w, []textplot.Series{
			{Name: "Soft Pref.+NT", Sorted: st.WSDist(pipeline.SWPrefNT).Values()},
			{Name: "Hardware Pref.", Sorted: st.WSDist(pipeline.HWPref).Values()},
		})
		sw, hw := st.WSDist(pipeline.SWPrefNT), st.WSDist(pipeline.HWPref)
		swt, hwt := st.TrafficDist(pipeline.SWPrefNT), st.TrafficDist(pipeline.HWPref)
		fmt.Fprintf(w, "  avg speedup: SW+NT %s, HW %s | avg traffic: SW+NT %s, HW %s | HW slows %d mixes, SW+NT slows %d\n",
			pct(sw.Mean()), pct(hw.Mean()), pct(swt.Mean()), pct(hwt.Mean()),
			st.Slowdowns(pipeline.HWPref), st.Slowdowns(pipeline.SWPrefNT))
		printSkipped(w, st.Skipped)
	}
}

// Fig10Result holds the fair-speedup averages of Figure 10: AMD and Intel,
// original and different inputs.
type Fig10Result struct {
	Labels []string
	SWNT   []float64
	HW     []float64
}

// Fig10 reproduces Figure 10 (fair speedup, normalized to baseline).
func (s *Session) Fig10(ctx context.Context) (*Fig10Result, error) {
	return s.fig1011(ctx, func(st *MixStudy, p pipeline.Policy) float64 { return st.FSAvg(p) })
}

// Fig11Result holds the QoS-degradation averages of Figure 11.
type Fig11Result = Fig10Result

// Fig11 reproduces Figure 11 (QoS degradation; closer to zero is better).
func (s *Session) Fig11(ctx context.Context) (*Fig11Result, error) {
	return s.fig1011(ctx, func(st *MixStudy, p pipeline.Policy) float64 { return st.QoSAvg(p) })
}

// fig1011 evaluates a per-study metric over the four study groups.
func (s *Session) fig1011(ctx context.Context, metric func(*MixStudy, pipeline.Policy) float64) (*Fig10Result, error) {
	out := &Fig10Result{}
	for _, mach := range s.Machines() {
		for _, diff := range []bool{false, true} {
			st, err := s.mixStudy(ctx, mach, diff)
			if err != nil {
				return nil, err
			}
			label := mach.Name + "-avg"
			if diff {
				label = mach.Name + " avg-diff-in"
			}
			out.Labels = append(out.Labels, label)
			out.SWNT = append(out.SWNT, metric(st, pipeline.SWPrefNT))
			out.HW = append(out.HW, metric(st, pipeline.HWPref))
		}
	}
	return out, nil
}

// Print renders the grouped bars of Figures 10/11.
func (r *Fig10Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintln(w, "Fair-Speedup / QoS summary (per machine, original and different inputs)")
	fmt.Fprintf(w, "  %-26s %14s %14s\n", "", "Soft Pref.+NT", "Hardware Pref.")
	for i, label := range r.Labels {
		fmt.Fprintf(w, "  %-26s %14.3f %14.3f\n", label, r.SWNT[i], r.HW[i])
	}
}
