package experiments

import (
	"context"
	"fmt"

	"prefetchlab/internal/cache"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/pipeline"
	"prefetchlab/internal/sched"
	"prefetchlab/internal/workloads"
)

// Table1Row is one benchmark's prefetch coverage and overhead, for the
// MDDLI-filtered method and the stride-centric baseline (paper Table I).
type Table1Row struct {
	Bench string
	// MDDLI-filtered stride analysis.
	MDDLICov float64 // fraction of baseline L1 misses removed
	MDDLIOH  float64 // prefetch instructions executed per miss removed
	// Stride-centric.
	StrideCov float64
	StrideOH  float64
	// Executed prefetch counts (for the "35 % fewer prefetches" claim).
	MDDLIPrefs  int64
	StridePrefs int64
	BaseMisses  int64
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
	// Averages across benchmarks.
	AvgMDDLICov, AvgMDDLIOH   float64
	AvgStrideCov, AvgStrideOH float64
	// PrefReduction is how many fewer prefetches MDDLI executes than
	// stride-centric, as a fraction of stride-centric's count.
	PrefReduction float64
	// Skipped lists benchmarks whose row was abandoned after retries.
	Skipped []SkippedCell
}

// table1Cache is the functional-simulator configuration the paper uses as
// ground truth: the AMD Phenom II L1 (64 kB, 2-way, 64 B lines).
var table1Cache = cache.Config{Name: "table1-L1", Size: 64 << 10, Assoc: 2}

// coverageOf traces a program variant through the functional simulator and
// returns its demand misses and executed software prefetch count.
func coverageOf(c *isa.Compiled) (misses, prefs int64, err error) {
	f, err := memsys.NewFunctional(table1Cache)
	if err != nil {
		return 0, 0, err
	}
	isa.Trace(c, f)
	return f.Misses(), f.Prefetches(), nil
}

// Table1 reproduces Table I: prefetch coverage and overhead of the
// MDDLI-filtered analysis versus the stride-centric method, measured
// against functional simulation of the AMD L1. Benchmarks are independent
// tasks: each fans out to an engine worker with its own functional
// simulators, and rows merge in Table I order.
func (s *Session) Table1(ctx context.Context) (*Table1Result, error) {
	amd := machine.AMDPhenomII()
	names := s.benchNames()
	outs, err := sched.MapOutcomes(ctx, s.pool().Named("table1"), len(names), func(i int) (Table1Row, error) {
		name := names[i]
		s.logf("table1: %s", name)
		bp, err := s.Profile(ctx, name)
		if err != nil {
			return Table1Row{}, err
		}
		baseM, _, err := coverageOf(bp.Compiled)
		if err != nil {
			return Table1Row{}, err
		}
		mddli, err := bp.Variant(ctx, amd, pipeline.SWPrefNT, s.Input())
		if err != nil {
			return Table1Row{}, err
		}
		mM, mP, err := coverageOf(mddli)
		if err != nil {
			return Table1Row{}, err
		}
		stride, err := bp.Variant(ctx, amd, pipeline.StrideCentric, s.Input())
		if err != nil {
			return Table1Row{}, err
		}
		sM, sP, err := coverageOf(stride)
		if err != nil {
			return Table1Row{}, err
		}
		row := Table1Row{Bench: name, BaseMisses: baseM, MDDLIPrefs: mP, StridePrefs: sP}
		if baseM > 0 {
			row.MDDLICov = float64(baseM-mM) / float64(baseM)
			row.StrideCov = float64(baseM-sM) / float64(baseM)
		}
		if rem := baseM - mM; rem > 0 {
			row.MDDLIOH = float64(mP) / float64(rem)
		}
		if rem := baseM - sM; rem > 0 {
			row.StrideOH = float64(sP) / float64(rem)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for i, o := range outs {
		if o.Skipped {
			s.recordSkip(&res.Skipped, "table1/"+names[i], skipReason(o.Err))
			continue
		}
		res.Rows = append(res.Rows, o.Value)
	}
	var sumMC, sumMO, sumSC, sumSO float64
	var nOH int
	var totalMP, totalSP int64
	for _, row := range res.Rows {
		sumMC += row.MDDLICov
		sumSC += row.StrideCov
		if row.MDDLIOH > 0 || row.StrideOH > 0 {
			sumMO += row.MDDLIOH
			sumSO += row.StrideOH
			nOH++
		}
		totalMP += row.MDDLIPrefs
		totalSP += row.StridePrefs
	}
	if len(res.Rows) == 0 {
		return res, nil
	}
	n := float64(len(res.Rows))
	res.AvgMDDLICov = sumMC / n
	res.AvgStrideCov = sumSC / n
	if nOH > 0 {
		res.AvgMDDLIOH = sumMO / float64(nOH)
		res.AvgStrideOH = sumSO / float64(nOH)
	}
	if totalSP > 0 {
		res.PrefReduction = float64(totalSP-totalMP) / float64(totalSP)
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (r *Table1Result) Print(s *Session) {
	w := s.O.Out
	fmt.Fprintln(w, "Table I: Prefetch Coverage & Minimization (functional sim, 64 kB 2-way L1)")
	fmt.Fprintf(w, "  %-12s | %-18s | %-18s\n", "", "MDDLI filtered", "Stride-centric")
	fmt.Fprintf(w, "  %-12s | %9s %8s | %9s %8s\n", "Benchmark", "Miss Cov.", "OH", "Miss Cov.", "OH")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12s | %8.1f%% %8.1f | %8.1f%% %8.1f\n",
			row.Bench, row.MDDLICov*100, row.MDDLIOH, row.StrideCov*100, row.StrideOH)
	}
	fmt.Fprintf(w, "  %-12s | %8.1f%% %8.1f | %8.1f%% %8.1f\n",
		"Average", r.AvgMDDLICov*100, r.AvgMDDLIOH, r.AvgStrideCov*100, r.AvgStrideOH)
	fmt.Fprintf(w, "  MDDLI executes %.0f%% fewer prefetch instructions than stride-centric\n",
		r.PrefReduction*100)
	printSkipped(w, r.Skipped)
}

// benchNames returns the session's benchmark set in Table I order.
func (s *Session) benchNames() []string {
	if len(s.O.Benches) > 0 {
		return s.O.Benches
	}
	return workloads.Names()
}
