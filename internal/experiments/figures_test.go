package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prefetchlab/internal/pipeline"
)

func TestFig7MixStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("mix study is slow")
	}
	s := testSession()
	r, err := s.Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Studies) != 2 {
		t.Fatalf("studies = %d", len(r.Studies))
	}
	for _, st := range r.Studies {
		if len(st.Comparisons) != s.O.Mixes {
			t.Fatalf("%s: %d comparisons", st.Machine, len(st.Comparisons))
		}
		// The headline resource claim: software prefetching moves less data
		// than hardware prefetching on average.
		swT := st.TrafficDist(pipeline.SWPrefNT).Mean()
		hwT := st.TrafficDist(pipeline.HWPref).Mean()
		if swT >= hwT {
			t.Errorf("%s: SW+NT traffic %+.2f not below HW %+.2f", st.Machine, swT, hwT)
		}
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "Weighted speedup") {
		t.Error("missing curve output")
	}
	// Fig10/Fig11 reuse the same studies (cached) — exercise them too.
	f10, err := s.Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Labels) != 4 {
		t.Fatalf("fig10 groups = %d", len(f10.Labels))
	}
	for i := range f10.Labels {
		if f10.SWNT[i] <= 0 || f10.HW[i] <= 0 {
			t.Fatalf("non-positive fair speedup at %s", f10.Labels[i])
		}
	}
	f11, err := s.Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range f11.Labels {
		if f11.SWNT[i] > 0 || f11.HW[i] > 0 {
			t.Fatalf("QoS must be ≤ 0, got %g/%g", f11.SWNT[i], f11.HW[i])
		}
	}
}

func TestFig8DetailMix(t *testing.T) {
	if testing.Short() {
		t.Skip("mix run is slow")
	}
	s := testSession()
	r, err := s.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 4 || len(r.SWNT) != 4 || len(r.HW) != 4 {
		t.Fatalf("result = %+v", r)
	}
	if r.SWNTBandwidth <= 0 || r.HWBandwidth <= 0 {
		t.Fatal("missing bandwidth")
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "cigar") {
		t.Error("missing app rows")
	}
}

func TestFig12Parallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel study is slow")
	}
	s := testSession()
	r, err := s.Fig12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row.SWNT) != 3 || len(row.HW) != 3 {
			t.Fatalf("%s: thread counts missing", row.Name)
		}
		// More threads must not be slower than one thread under the same
		// policy (strong scaling of independent chunks).
		if row.SWNT[2] < row.SWNT[0] || row.HW[2] < row.HW[0] {
			t.Errorf("%s: 4 threads slower than 1 (%v / %v)", row.Name, row.SWNT, row.HW)
		}
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	r.Print(s)
	if !strings.Contains(buf.String(), "swim*") {
		t.Error("high-bandwidth marker missing")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs are slow")
	}
	s := testSession("libquantum")
	rc, err := s.AblationCombined(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Rows) != 2 { // one per machine
		t.Fatalf("combined rows = %d", len(rc.Rows))
	}
	rl, err := s.AblationL2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Rows) != 3 {
		t.Fatalf("l2 rows = %d", len(rl.Rows))
	}
	var buf bytes.Buffer
	s.O.Out = &buf
	rc.Print(s)
	rl.Print(s)
	if !strings.Contains(buf.String(), "L2 only") {
		t.Error("missing ablation output")
	}
}
