// Package staticprof is detrand golden testdata: the static analyzer's
// profiles must be byte-identical across runs, so the package name places
// it inside the analyzer's deterministic set.
package staticprof

import (
	"sort"
	"time"
)

// Timestamp stamps a profile with the wall clock, which makes two analyses
// of the same program differ.
func Timestamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// SumWeightsInMapOrder folds float weights in map order: float addition is
// not associative bitwise, so the histogram depends on iteration order.
func SumWeightsInMapOrder(hist map[int64]float64) float64 {
	var total float64
	for _, w := range hist { // want `map iteration order is random`
		total += w
	}
	return total
}

// SortedReuseDistances is the blessed pattern: collect the keys, sort, then
// fold in a fixed order.
func SortedReuseDistances(hist map[int64]float64) []int64 {
	rds := make([]int64, 0, len(hist))
	for rd := range hist {
		rds = append(rds, rd)
	}
	sort.Slice(rds, func(i, j int) bool { return rds[i] < rds[j] })
	return rds
}

// CountLoads is order-insensitive: integer accumulation commutes.
func CountLoads(byPC map[uint32]int) int {
	n := 0
	for _, c := range byPC {
		n += c
	}
	return n
}

// MergeFootprints documents a site where visit order provably cannot reach
// the result bytes: each region's footprint lands on its own key.
func MergeFootprints(regions map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(regions))
	// lint:allow detrand (per-key pure copy; no cross-iteration state)
	for name, foot := range regions {
		out[name] = foot
	}
	return out
}
