// Package other is outside detrand's deterministic set: identical code to
// the positive cases must produce no diagnostics here.
package other

import "time"

func Wallclock() int64 {
	return time.Now().UnixNano()
}

func ConcatInMapOrder(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	return out
}
