// Package statstack is detrand golden testdata: the package name places it
// inside the analyzer's deterministic set.
package statstack

import (
	"math/rand"
	"sort"
	"time"
)

func Wallclock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.UnixNano()
}

func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since reads the wall clock`
}

func GlobalRand() int {
	return rand.Intn(8) // want `rand\.Intn draws from the process-global source`
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global source`
}

// SeededStream is the sanctioned path: an explicitly seeded, task-keyed
// stream. Methods on *rand.Rand are never flagged.
func SeededStream(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func ConcatInMapOrder(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order is random`
		out += k
	}
	return out
}

func SumFloatsInMapOrder(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order is random`
		total += v // float addition is not associative bitwise
	}
	return total
}

// CountInMapOrder is order-insensitive: integer accumulation commutes.
func CountInMapOrder(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n += v
		}
		n++
	}
	return n
}

// CollectAndSort is the blessed pattern: append the keys, sort, then use.
func CollectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert builds another map: keyed writes are order-free.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// PruneNegative deletes during iteration, which the spec allows and which
// cannot leak order into results.
func PruneNegative(m map[string]int) {
	for k, v := range m {
		if v >= 0 {
			continue
		}
		delete(m, k)
	}
}

// Suppressed documents a site where visit order provably cannot reach the
// result bytes.
func Suppressed(m map[string][]int, f func([]int)) {
	// lint:allow detrand (each value is processed independently; no cross-iteration state)
	for _, vs := range m {
		f(vs)
	}
}
