package detrand_test

import (
	"testing"

	"prefetchlab/internal/lint/detrand"
	"prefetchlab/internal/lint/linttest"
)

func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/src/statstack")
}

func TestOutOfScopePackage(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/src/other")
}

func TestStaticProfPackage(t *testing.T) {
	linttest.Run(t, detrand.Analyzer, "testdata/src/staticprof")
}
