// Package detrand enforces the reproduction's central claim: StatStack MRCs
// and every figure driver produce byte-identical output at any -workers
// count. Inside the deterministic modeling packages it forbids the three
// ways nondeterminism leaks into result bytes — wall-clock reads, the
// process-global math/rand source, and map iteration order — leaving only
// the task-keyed *rand.Rand streams introduced in PR 1.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"prefetchlab/internal/lint"
)

// Deterministic names the packages (by import-path base) whose output bytes
// must not depend on scheduling: the StatStack model, the stack-distance
// sampler, the analytic tier and its validation harness, the static
// analyzer, the figure drivers, the mix runner and the text plotter.
var Deterministic = map[string]bool{
	"statstack":   true,
	"analytic":    true,
	"validate":    true,
	"stackdist":   true,
	"staticprof":  true,
	"experiments": true,
	"mix":         true,
	"textplot":    true,
}

// Analyzer is the detrand pass.
var Analyzer = &lint.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads, global math/rand and order-sensitive map iteration " +
		"in the deterministic modeling packages (statstack, stackdist, analytic, experiments, mix, textplot)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !Deterministic[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	obj := lint.CalleeObj(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn on a task-keyed stream) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; derive values from task keys or move timing behind obs", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			// Constructing an explicitly seeded stream is the sanctioned path.
		default:
			pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; use the task-keyed *rand.Rand stream instead", fn.Name())
		}
	}
}

// checkRange flags `for ... range m` over a map unless every statement in
// the body is order-insensitive: commutative compound assignments (+= etc.),
// ++/--, appends collecting keys for a later sort, writes into another map,
// deletes, and control flow composed only of those. Anything else — plain
// assignments, function calls, channel sends, output — can smuggle the
// random iteration order into result bytes.
func checkRange(pass *lint.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBlock(pass, rng.Body) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is random and this loop body is order-sensitive; collect and sort the keys first (see Model.PCs) or document with // lint:allow detrand (reason)")
}

func orderInsensitiveBlock(pass *lint.Pass, b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *lint.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound ops commute across iterations only for integers:
			// string += concatenates in visit order, and float += is not
			// associative bitwise — both leak map order into result bytes.
			return len(s.Lhs) == 1 && isInteger(pass, s.Lhs[0])
		}
		for i, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					continue // collecting for a later sort
				}
			}
			if i < len(s.Lhs) {
				if idx, ok := ast.Unparen(s.Lhs[i]).(*ast.IndexExpr); ok {
					if tv, ok := pass.Info.Types[idx.X]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							continue // building another map: keyed, order-free
						}
					}
				}
			}
			return false
		}
		return true
	case *ast.IncDecStmt:
		return isInteger(pass, s.X)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(pass, s.Init) {
			return false
		}
		if !orderInsensitiveBlock(pass, s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveBlock(pass, e)
		case *ast.IfStmt:
			return orderInsensitiveStmt(pass, e)
		}
		return false
	case *ast.BlockStmt:
		return orderInsensitiveBlock(pass, s)
	case *ast.BranchStmt:
		// continue is a per-key decision; break makes the result depend
		// on which key the runtime happened to visit first.
		return s.Tok == token.CONTINUE
	case *ast.DeclStmt:
		return true
	}
	return false
}

func isInteger(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
