package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns, rooted at dir.
//
// It shells out to `go list -export -deps -json`, which compiles every
// dependency through the build cache and reports the path of each export
// file; those feed a gc-importer lookup function, so dependencies are
// imported from compiler export data exactly as `go build` sees them. This
// works fully offline (the module has no external dependencies) and avoids
// re-typechecking the standard library from source. Test files are not
// loaded: _test.go code may use wall clocks, panics and context.Background
// freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	// One shared importer so dependency packages resolve to identical
	// *types.Package values across every root — cross-package type
	// identity depends on it.
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range roots {
		files := make([]*ast.File, 0, len(lp.GoFiles)+len(lp.CgoFiles))
		for _, name := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := Check(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Types.Path() < pkgs[j].Types.Path() })
	return pkgs, nil
}

// Check type-checks one package's parsed files with the given importer,
// recording the full types.Info the analyzers rely on. It is shared by
// Load and by the linttest harness (which parses testdata directories that
// `go list` cannot see).
func Check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// ExportImporter builds a gc importer backed by `go list -export` for the
// given import paths (plus their dependency closure), rooted at dir. The
// linttest harness uses it to resolve the standard-library imports of
// testdata packages.
func ExportImporter(fset *token.FileSet, dir string, paths []string) (types.Importer, error) {
	if len(paths) == 0 {
		paths = []string{"fmt"} // keep `go list` happy on import-free testdata
	}
	_, exports, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}

// goList runs `go list -export -deps -json` and splits the result into the
// requested root packages and an ImportPath→export-file map covering the
// whole dependency closure.
func goList(dir string, patterns []string) (roots []*listPkg, exports map[string]string, err error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}

	exports = map[string]string{}
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		exports[lp.ImportPath] = lp.Export
		if !lp.DepOnly {
			roots = append(roots, lp)
		}
	}
	return roots, exports, nil
}
