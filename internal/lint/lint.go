// Package lint is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repo carries zero external dependencies. It exists to turn the
// reproduction's engineering invariants — deterministic result bytes at any
// -workers count, context propagation through every task-running path,
// panic-free library code, nil-guarded observer calls and %w-wrapped typed
// errors — from properties that chaos and golden tests catch after the fact
// into properties the merge gate rejects mechanically.
//
// The pieces:
//
//   - Analyzer / Pass / Diagnostic mirror the x/tools API shape, so the
//     five checkers under internal/lint/* read like ordinary go/analysis
//     passes and could be ported to the real framework verbatim.
//   - Load (load.go) type-checks packages via `go list -export`, feeding
//     compiler export data to the gc importer — no network, no source
//     re-typechecking of the standard library.
//   - Run applies every analyzer to every package and filters diagnostics
//     through `// lint:allow <name> (reason)` suppression comments.
//
// Suppression contract: a violation is silenced only by a comment of the
// form `// lint:allow name1,name2 (reason)` on the offending line or the
// line directly above it, and the reason is mandatory — an allow comment
// without one is itself reported. That keeps every escape hatch documented
// at the site it excuses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `// lint:allow <name>` suppression comments.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one type-checked package, reporting
	// violations through pass.Reportf.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// PkgBase returns the last element of the package import path — the handle
// analyzers use to decide whether their invariant applies (e.g. detrand
// fires only inside the deterministic modeling packages).
func (p *Pass) PkgBase() string {
	path := p.Pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation with its resolved source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies analyzers to pkgs, filters the results through lint:allow
// suppression comments, and returns the surviving diagnostics sorted by
// file, line and analyzer. Analyzer errors (not violations — failures of
// the analyzer itself) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow, allowDiags := allowSites(pkg.Fset, pkg.Files)
		diags = append(diags, allowDiags...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
		for _, d := range raw {
			if !allow.allows(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowSet records, per file and line, which analyzers a lint:allow comment
// silences. A comment covers its own line and the line below it, so both
// trailing comments and standalone comments above the violating line work.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) allows(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer]
}

// allowRe matches `lint:allow name1,name2 (reason...)`; the reason group is
// checked separately so its absence yields a diagnostic, not a silent miss.
var allowRe = regexp.MustCompile(`^lint:allow\s+([a-z][a-z0-9_,-]*)\s*(.*)$`)

// allowSites scans comments for lint:allow markers. Malformed markers —
// unparsable or missing the mandatory reason — are returned as diagnostics
// from the pseudo-analyzer "lintallow" so they fail the gate instead of
// silently not suppressing.
func allowSites(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lintallow",
						Pos:      pos,
						Message:  "malformed suppression; want `// lint:allow <analyzer>[,<analyzer>] (reason)`",
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, name := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return set, bad
}

// WithStack walks every node of every file, calling fn with the node and
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false prunes the subtree. It is the framework
// replacement for x/tools' inspector.WithStack, used by guards that need
// enclosing context (obssafe's nil-check search, nopanic's Must* escape).
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// CalleeObj resolves the object a call expression invokes: a package-level
// function, a method, or a builtin. Returns nil for indirect calls through
// function values and conversions.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function pkgPath.name
// (methods are excluded: their receiver distinguishes e.g. (*rand.Rand).Intn
// from the global rand.Intn).
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
