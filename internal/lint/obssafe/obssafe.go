// Package obssafe guards PR 2's off-by-default observability contract: the
// engine carries observer interfaces (sched.TaskObserver, FaultObserver,
// CacheObserver) that are nil unless the user opted in with -stats-json,
// -trace or -progress, so every call through such an interface must be
// nil-guarded or a disabled run panics on its first task. The analyzer
// flags any method call whose receiver's static type is an interface named
// *Observer unless the call is dominated by a nil check on that receiver —
// either an enclosing `if recv != nil` or an earlier `if recv == nil {
// return/continue/break }` in an enclosing block.
package obssafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"prefetchlab/internal/lint"
)

// Analyzer is the obssafe pass.
var Analyzer = &lint.Analyzer{
	Name: "obssafe",
	Doc: "calls through *Observer interfaces must be nil-guarded; observers are " +
		"off by default and a bare call panics every disabled run; prom metric " +
		"handles must open every exported pointer-receiver method with a " +
		"nil-receiver guard",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.PkgBase() == "prom" {
		checkPromHandles(pass)
	}
	lint.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, isObs := observerInterface(pass.Info.Types[sel.X].Type)
		if !isObs {
			return true
		}
		if guarded(pass.Info, sel.X, stack, n) {
			return true
		}
		pass.Reportf(call.Pos(), "call through observer interface %s is not nil-guarded; wrap in `if %s != nil` — observers are off by default", name, exprString(sel.X))
		return true
	})
	return nil
}

// checkPromHandles enforces the prom package's nil-handle contract: metric
// handles (Counter, Gauge, Histogram, the vec types, Registry) are returned
// as nil when metrics are disabled or a registration conflicts, and callers
// hold them without re-checking — so every exported pointer-receiver method
// must begin with a guard of the form `if recv == nil { return ... }` (a
// disjunction such as `if recv == nil || fn == nil` also counts). A method
// that forgets the guard panics the first time a disabled handle is used.
func checkPromHandles(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			star, ok := ast.Unparen(fn.Recv.List[0].Type).(*ast.StarExpr)
			if !ok {
				continue // value receivers cannot be nil
			}
			tname := "receiver"
			if id, ok := ast.Unparen(star.X).(*ast.Ident); ok {
				tname = id.Name
			}
			if !leadingNilGuard(pass.Info, fn) {
				pass.Reportf(fn.Name.Pos(),
					"exported method (*%s).%s must begin with a nil-receiver guard; prom handles are nil when metrics are disabled",
					tname, fn.Name.Name)
			}
		}
	}
}

// leadingNilGuard reports whether fn's first statement is
// `if recv == nil { ...; return }` — with `recv == nil` allowed as a
// disjunct of an || chain — so a nil handle exits before touching state.
func leadingNilGuard(info *types.Info, fn *ast.FuncDecl) bool {
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return false // unnamed receiver cannot be guarded
	}
	if len(fn.Body.List) == 0 {
		return false
	}
	ifs, ok := fn.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	// A synthetic ident carrying the receiver's name: exprEqual falls back
	// to name equality when an object is unresolved, which is sound here —
	// nothing can shadow the receiver before the method's first statement.
	recv := &ast.Ident{Name: names[0].Name}
	return hasNilDisjunct(info, ifs.Cond, recv)
}

// hasNilDisjunct looks for `recv == nil` directly or as a disjunct of an
// || chain. Conjunctions do not count: `recv == nil && other` does not
// guarantee the early return fires on every nil receiver.
func hasNilDisjunct(info *types.Info, cond ast.Expr, recv ast.Expr) bool {
	e, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if e.Op == token.LOR {
		return hasNilDisjunct(info, e.X, recv) || hasNilDisjunct(info, e.Y, recv)
	}
	if e.Op != token.EQL {
		return false
	}
	return (isNil(info, e.X) && exprEqual(info, e.Y, recv)) ||
		(isNil(info, e.Y) && exprEqual(info, e.X, recv))
}

// observerInterface reports whether t is a named interface type whose name
// ends in "Observer" (the engine's observer-contract naming convention).
func observerInterface(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return "", false
	}
	name := named.Obj().Name()
	return name, strings.HasSuffix(name, "Observer")
}

// guarded reports whether the call at node is dominated by a nil check on
// recv: an enclosing if whose condition conjoins `recv != nil`, or an
// earlier statement in an enclosing block of the form
// `if recv == nil { return/continue/break }`.
func guarded(info *types.Info, recv ast.Expr, stack []ast.Node, node ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			// The body of `if recv != nil` and the else branch of
			// `if recv == nil` are both protected; the condition and
			// init themselves are evaluated first and are not.
			if containsNode(s.Body, node) && hasNilCompare(info, s.Cond, recv, token.NEQ) {
				return true
			}
			if s.Else != nil && containsNode(s.Else, node) && hasNilCompare(info, s.Cond, recv, token.EQL) {
				return true
			}
		case *ast.BlockStmt:
			for _, stmt := range s.List {
				if containsNode(stmt, node) {
					break
				}
				if earlyExitNilCheck(info, stmt, recv) {
					return true
				}
			}
		case *ast.FuncLit:
			return false // closures may run later, outside the enclosing guard
		}
	}
	return false
}

// hasNilCompare looks for `recv <op> nil` as a conjunct of cond.
func hasNilCompare(info *types.Info, cond ast.Expr, recv ast.Expr, op token.Token) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return hasNilCompare(info, e.X, recv, op) || hasNilCompare(info, e.Y, recv, op)
		}
		if e.Op != op {
			return false
		}
		return (isNil(info, e.X) && exprEqual(info, e.Y, recv)) ||
			(isNil(info, e.Y) && exprEqual(info, e.X, recv))
	}
	return false
}

// earlyExitNilCheck matches `if recv == nil { return ... }` (or continue,
// break, or a call that cannot return, conservatively not modeled — only
// genuine exits count).
func earlyExitNilCheck(info *types.Info, stmt ast.Stmt, recv ast.Expr) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if !hasNilCompare(info, ifs.Cond, recv, token.EQL) {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		_ = last
		return true
	}
	return false
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}

// exprEqual is structural equality for the guard patterns that matter:
// identifiers (compared by resolved object) and selector chains.
func exprEqual(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := useOrDef(info, av), useOrDef(info, bv)
		if ao != nil && bo != nil {
			return ao == bo
		}
		return av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return av.Sel.Name == bv.Sel.Name && exprEqual(info, av.X, bv.X)
	}
	return false
}

func useOrDef(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil || target == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	}
	return "recv"
}
