package obssafe_test

import (
	"testing"

	"prefetchlab/internal/lint/linttest"
	"prefetchlab/internal/lint/obssafe"
)

func TestObserverGuards(t *testing.T) {
	linttest.Run(t, obssafe.Analyzer, "testdata/src/engine")
}

func TestPromHandleGuards(t *testing.T) {
	linttest.Run(t, obssafe.Analyzer, "testdata/src/prom")
}
