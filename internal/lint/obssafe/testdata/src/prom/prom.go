// Package prom is obssafe golden testdata for the nil-handle contract:
// the package base name "prom" puts every exported pointer-receiver method
// in scope, and each must open with a leading nil-receiver guard.
package prom

// Counter is a stand-in metric handle; a disabled registry hands out nil
// ones, so every exported method must tolerate a nil receiver.
type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add guards through a disjunction; the receiver check still dominates.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.n += n
}

func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

func (c *Counter) Bare() { // want `exported method \(\*Counter\).Bare must begin with a nil-receiver guard`
	c.n++
}

// LateGuard checks too late: the first statement already dereferences.
func (c *Counter) LateGuard() { // want `exported method \(\*Counter\).LateGuard must begin with a nil-receiver guard`
	c.n++
	if c == nil {
		return
	}
}

// WrongOperand guards a different value, not the receiver.
func (c *Counter) WrongOperand(d *Counter) { // want `exported method \(\*Counter\).WrongOperand must begin with a nil-receiver guard`
	if d == nil {
		return
	}
	c.n++
}

// Conjunction does not dominate: `c == nil && n > 0` falls through for a
// nil receiver when n == 0.
func (c *Counter) Conjunction(n int64) { // want `exported method \(\*Counter\).Conjunction must begin with a nil-receiver guard`
	if c == nil && n > 0 {
		return
	}
	c.n += n
}

// NoReturn guards without exiting, so execution still reaches the body.
func (c *Counter) NoReturn() { // want `exported method \(\*Counter\).NoReturn must begin with a nil-receiver guard`
	if c == nil {
		_ = c
	}
	c.n++
}

// unexported methods are internal to the package, which only calls them on
// receivers it already checked — out of scope.
func (c *Counter) bump() {
	c.n++
}

// Snapshot has a value receiver; those cannot be nil and are out of scope.
func (c Counter) Snapshot() int64 {
	return c.n
}

// Gauge exercises the multi-statement guard body: any body ending in a
// return counts.
type Gauge struct {
	v float64
}

func (g *Gauge) Set(v float64) {
	if g == nil {
		_ = v
		return
	}
	g.v = v
}

// Allowed is suppressed at the site with a documented reason.
func (g *Gauge) Allowed() { // lint:allow obssafe (testdata: suppression keeps the diagnostic quiet)
	g.v++
}
