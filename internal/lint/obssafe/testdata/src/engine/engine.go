// Package engine is obssafe golden testdata: the *Observer interface naming
// convention puts its calls in scope regardless of package.
package engine

// TaskObserver mirrors the sched observer contract: off by default, nil
// unless the user opted in.
type TaskObserver interface {
	TaskDone(i int)
}

// Runner is not an observer; calls through it are never flagged.
type Runner interface{ Run() }

type Pool struct {
	Obs TaskObserver
}

func (p *Pool) Bare(i int) {
	p.Obs.TaskDone(i) // want `call through observer interface TaskObserver is not nil-guarded`
}

func (p *Pool) Guarded(i int) {
	if p.Obs != nil {
		p.Obs.TaskDone(i)
	}
}

func (p *Pool) GuardedConjunct(i int) {
	if i > 0 && p.Obs != nil {
		p.Obs.TaskDone(i)
	}
}

func (p *Pool) EarlyReturn(i int) {
	if p.Obs == nil {
		return
	}
	p.Obs.TaskDone(i)
}

func (p *Pool) ElseBranch(i int) {
	if p.Obs == nil {
		_ = i
	} else {
		p.Obs.TaskDone(i)
	}
}

// LocalCopy is the sched idiom: a comma-ok extension assertion into a local,
// then a guard on the local.
func (p *Pool) LocalCopy(i int) {
	obs := p.Obs
	if obs != nil {
		obs.TaskDone(i)
	}
}

// WrongGuard checks a different receiver; the call stays flagged.
func (p *Pool) WrongGuard(q *Pool, i int) {
	if q.Obs != nil {
		p.Obs.TaskDone(i) // want `call through observer interface TaskObserver is not nil-guarded`
	}
}

// ConditionItself evaluates the observer in the guard condition, before any
// protection exists.
func (p *Pool) Closure(i int) func() {
	if p.Obs != nil {
		// The guard ran when the closure was built, not when it runs.
		return func() {
			p.Obs.TaskDone(i) // want `call through observer interface TaskObserver is not nil-guarded`
		}
	}
	return nil
}

func (p *Pool) NotObserver(r Runner) {
	r.Run()
}

// Known documents a site where the observer is set unconditionally.
func (p *Pool) Known(i int) {
	// lint:allow obssafe (observer is injected in the constructor and never nil here; retained for the suppression test)
	p.Obs.TaskDone(i)
}
