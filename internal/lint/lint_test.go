package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// callFlagger reports every call to a function literally named "bad" — a
// minimal analyzer for exercising the framework plumbing.
var callFlagger = &Analyzer{
	Name: "flag",
	Doc:  "test analyzer",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

func checkPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset, files := parseOne(t, src)
	pkg, err := Check(fset, nil, "p", files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestRunReportsActionablePositions(t *testing.T) {
	pkg := checkPkg(t, `package p

func bad() {}

func f() {
	bad()
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Filename != "x.go" || d.Pos.Line != 6 || d.Pos.Column != 2 {
		t.Errorf("diagnostic position = %s, want x.go:6:2", d.Pos)
	}
	if d.Analyzer != "flag" || d.Message != "call to bad" {
		t.Errorf("diagnostic = %+v", d)
	}
	if got := d.String(); !strings.Contains(got, "x.go:6:2") || !strings.Contains(got, "[flag]") {
		t.Errorf("String() = %q, want position and analyzer tag", got)
	}
}

func TestRunSuppression(t *testing.T) {
	pkg := checkPkg(t, `package p

func bad() {}

func f() {
	bad() // lint:allow flag (trailing-comment suppression)
	// lint:allow flag (line-above suppression)
	bad()
	bad()
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed call: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 9 {
		t.Errorf("surviving diagnostic at line %d, want 9", diags[0].Pos.Line)
	}
}

func TestRunWrongAnalyzerNameDoesNotSuppress(t *testing.T) {
	pkg := checkPkg(t, `package p

func bad() {}

func f() {
	bad() // lint:allow otherchecker (names are per-analyzer)
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (allow for another analyzer must not suppress): %v", len(diags), diags)
	}
}

func TestMalformedAllowIsReported(t *testing.T) {
	pkg := checkPkg(t, `package p

// lint:allow flag
func f() {}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 malformed-suppression report: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lintallow" || !strings.Contains(d.Message, "malformed suppression") {
		t.Errorf("diagnostic = %+v, want lintallow malformed-suppression", d)
	}
	if d.Pos.Line != 3 {
		t.Errorf("malformed allow reported at line %d, want 3", d.Pos.Line)
	}
}

func TestAllowMultipleNames(t *testing.T) {
	pkg := checkPkg(t, `package p

func bad() {}

func f() {
	bad() // lint:allow other,flag (multiple analyzers share one site)
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %v, want none", diags)
	}
}

func TestWithStack(t *testing.T) {
	_, files := parseOne(t, `package p

func f() {
	if true {
		g()
	}
}

func g() {}
`)
	var sawCall bool
	WithStack(files, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			sawCall = true
			var kinds []string
			for _, s := range stack {
				switch s.(type) {
				case *ast.FuncDecl:
					kinds = append(kinds, "func")
				case *ast.IfStmt:
					kinds = append(kinds, "if")
				}
			}
			if strings.Join(kinds, ",") != "func,if" {
				t.Errorf("stack kinds = %v, want enclosing func then if", kinds)
			}
		}
		return true
	})
	if !sawCall {
		t.Fatal("walker never reached the call")
	}
}
