// Package staticprof is ctxflow golden testdata: the package name places
// the static analyzer inside the analyzer's engine set.
package staticprof

import "context"

// AnalyzeAll fabricates a root context instead of threading the caller's,
// so a canceled sweep keeps analyzing programs.
func AnalyzeAll(progs []string) error {
	ctx := context.Background() // want `context\.Background severs the cancellation chain`
	for _, p := range progs {
		if err := analyzeOne(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// Profile promises cancellation in its signature and never delivers it.
func Profile(ctx context.Context, prog string) int { // want `exported Profile accepts ctx but never uses it`
	return len(prog)
}

// Validate threads its context: no diagnostic.
func Validate(ctx context.Context, prog string) error {
	return analyzeOne(ctx, prog)
}

// Classify is pure and takes no context at all — that is fine; the promise
// only exists once ctx is in the signature.
func Classify(stride int64) string {
	if stride == 0 {
		return "invariant"
	}
	return "stream"
}

func analyzeOne(ctx context.Context, prog string) error { return ctx.Err() }

// WarmCache documents a sanctioned root context.
func WarmCache() error {
	// lint:allow ctxflow (process-lifetime warmup; no request to inherit from)
	return analyzeOne(context.Background(), "warmup")
}
