// Package tenant is ctxflow golden testdata: the package name places the
// multi-tenant admission layer inside the analyzer's engine set.
package tenant

import "context"

// Admit severs the chain the way a careless admission path would: a caller
// that gives up (client disconnect, server drain) keeps holding its queue
// slot because the wait can never be cancelled.
func Admit() error {
	ctx := context.Background() // want `context\.Background severs the cancellation chain`
	return wait(ctx)
}

// Refill promises cancellation in its signature and never delivers it — a
// token-bucket refill loop that cannot be stopped.
func Refill(ctx context.Context, tokens int) int { // want `exported Refill accepts ctx but never uses it`
	granted := 0
	for i := 0; i < tokens; i++ {
		granted++
	}
	return granted
}

// Acquire threads its context into the queue wait: no diagnostic.
func Acquire(ctx context.Context) error {
	return wait(ctx)
}

// NewDrain documents the one sanctioned root: a drain context whose
// lifetime is the registry's, not any single admission call's.
func NewDrain() (context.Context, context.CancelFunc) {
	// lint:allow ctxflow (drain contexts span the registry lifetime; admission waits still merge them with each caller's ctx)
	return context.WithCancel(context.Background())
}

func wait(ctx context.Context) error { return ctx.Err() }
