// Package cluster is ctxflow golden testdata: the package name places the
// distributed sweep coordinator inside the analyzer's engine set.
package cluster

import "context"

// Dispatch severs the chain the way a careless shard dispatch would: the
// caller's cancellation (a dying worker, a -timeout) never reaches the call.
func Dispatch() error {
	ctx := context.Background() // want `context\.Background severs the cancellation chain`
	return call(ctx)
}

// RunBatch promises cancellation in its signature and never delivers it —
// a coordinator batch that cannot be aborted.
func RunBatch(ctx context.Context, n int) error { // want `exported RunBatch accepts ctx but never uses it`
	covered := 0
	for i := 0; i < n; i++ {
		covered++
	}
	_ = covered
	return nil
}

// Heartbeat threads its context: no diagnostic.
func Heartbeat(ctx context.Context) error {
	return call(ctx)
}

// NewWorker documents the one sanctioned root: a liveness-scoped context
// whose lifetime is the worker's, not any single call's.
func NewWorker() (context.Context, context.CancelFunc) {
	// lint:allow ctxflow (worker live contexts span liveness, not a call; dispatches merge them with the caller's ctx)
	return context.WithCancel(context.Background())
}

func call(ctx context.Context) error { return ctx.Err() }
