// Package sched is ctxflow golden testdata: the package name places it
// inside the analyzer's engine set.
package sched

import "context"

func RootContext() error {
	ctx := context.Background() // want `context\.Background severs the cancellation chain`
	return work(ctx)
}

func TodoContext() error {
	return work(context.TODO()) // want `context\.TODO severs the cancellation chain`
}

// Map promises cancellation in its signature and never delivers it.
func Map(ctx context.Context, n int) error { // want `exported Map accepts ctx but never uses it`
	out := 0
	for i := 0; i < n; i++ {
		out += i
	}
	_ = out
	return nil
}

// Run threads its context: no diagnostic.
func Run(ctx context.Context) error {
	return work(ctx)
}

// RunIndirect uses ctx through a derived context: still propagated.
func RunIndirect(ctx context.Context) error {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(child)
}

// Blank-named contexts are an explicit opt-out of the unused check.
func Sink(_ context.Context, n int) int { return n }

// unexportedRoot is internal plumbing; only exported functions make the
// propagation promise.
func unexportedRoot(ctx context.Context) error { return work(ctx) }

func work(ctx context.Context) error { return ctx.Err() }

// Legacy documents a sanctioned root context.
func Legacy() error {
	// lint:allow ctxflow (compatibility shim retained for the suppression test)
	ctx := context.Background()
	return work(ctx)
}
