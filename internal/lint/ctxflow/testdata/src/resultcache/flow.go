// Package resultcache is ctxflow golden testdata: the package name places
// the content-addressed result cache inside the analyzer's engine set.
package resultcache

import "context"

// Warm severs the chain with a TODO root: a cache pre-warm sweep that
// ignores the deadline of the startup sequence that launched it.
func Warm(keys []string) int {
	ctx := context.TODO() // want `context\.TODO severs the cancellation chain`
	warmed := 0
	for range keys {
		if ctx.Err() == nil {
			warmed++
		}
	}
	return warmed
}

// Fill promises cancellation and never delivers it — a disk-tier fill that
// cannot be aborted mid-scan.
func Fill(ctx context.Context, entries int) int { // want `exported Fill accepts ctx but never uses it`
	filled := 0
	for i := 0; i < entries; i++ {
		filled++
	}
	return filled
}

// Sweep threads its context through the eviction scan: no diagnostic.
func Sweep(ctx context.Context, entries int) (int, error) {
	swept := 0
	for i := 0; i < entries; i++ {
		if err := ctx.Err(); err != nil {
			return swept, err
		}
		swept++
	}
	return swept, nil
}
