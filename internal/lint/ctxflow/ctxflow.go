// Package ctxflow enforces PR 3's cancellation contract: every
// task-running path in the engine accepts a context.Context from its caller
// and actually threads it downward, so -timeout, SIGINT/SIGTERM and
// per-request server deadlines reach every worker. Inside the engine
// packages it flags (1) context.Background()/context.TODO(), which sever
// the cancellation chain — only main functions and tests may mint root
// contexts — and (2) exported functions that accept a ctx parameter and
// then ignore it, which is how propagation silently breaks.
package ctxflow

import (
	"go/ast"
	"go/types"

	"prefetchlab/internal/lint"
)

// Engine names the packages (by import-path base) whose exported surface
// runs tasks: the worker pool, the figure drivers, the HTTP front end and
// its client, the distributed sweep coordinator, the mix runner, the
// sampling pipeline, the static analyzer, the multi-tenant admission layer
// and the result cache.
var Engine = map[string]bool{
	"sched":       true,
	"experiments": true,
	"serve":       true,
	"client":      true,
	"cluster":     true,
	"mix":         true,
	"pipeline":    true,
	"staticprof":  true,
	"tenant":      true,
	"resultcache": true,
}

// Analyzer is the ctxflow pass.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "engine packages must propagate caller contexts: no context.Background/TODO " +
		"outside main and tests, and exported functions must use the ctx they accept",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !Engine[pass.PkgBase()] || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := lint.CalleeObj(pass.Info, n)
				if lint.IsPkgFunc(obj, "context", "Background") || lint.IsPkgFunc(obj, "context", "TODO") {
					pass.Reportf(n.Pos(), "context.%s severs the cancellation chain inside an engine package; accept a ctx from the caller (root contexts belong in main and tests)", obj.Name())
				}
			case *ast.FuncDecl:
				checkUnusedCtx(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkUnusedCtx flags exported functions that take a context.Context and
// never reference it: the signature promises cancellation support the body
// does not deliver.
func checkUnusedCtx(pass *lint.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass.Info.Types[field.Type].Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if !objUsed(pass.Info, fn.Body, obj) {
				pass.Reportf(name.Pos(), "exported %s accepts ctx but never uses it; propagate it to callees (or name it _ and document why cancellation does not apply)", fn.Name.Name)
			}
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func objUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
