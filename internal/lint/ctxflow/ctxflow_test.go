package ctxflow_test

import (
	"testing"

	"prefetchlab/internal/lint/ctxflow"
	"prefetchlab/internal/lint/linttest"
)

func TestEnginePackage(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/sched")
}

func TestClusterPackage(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/cluster")
}

func TestTenantPackage(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/tenant")
}

func TestResultCachePackage(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/resultcache")
}

func TestStaticProfPackage(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/staticprof")
}
