// Package errwrap keeps the engine's error chains intact on its hot paths.
// PR 3 introduced typed errors — *sched.TaskError, *sched.CanceledError,
// ckpt's corruption errors — that callers unwrap with errors.As to decide
// retry, skip and resume behavior; formatting one with %v or %s flattens it
// to text and breaks that dispatch, and discarding an error return entirely
// hides engine failures from the failure budget. Inside the engine packages
// the analyzer flags (1) fmt.Errorf formatting an error value with a verb
// other than %w, (2) statement-level calls whose error result is dropped,
// and (3) assignments that blank an error value. fmt.Fprint* rendering
// calls are exempt from (2): figure text and HTTP bodies are best-effort
// writes whose sinks either cannot fail or have no recovery path.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"prefetchlab/internal/lint"
)

// Engine names the packages (by import-path base) with typed-error
// contracts on their hot paths.
var Engine = map[string]bool{
	"sched":       true,
	"experiments": true,
	"serve":       true,
	"client":      true,
	"ckpt":        true,
	"mix":         true,
	"staticprof":  true,
	"tenant":      true,
	"resultcache": true,
}

// Analyzer is the errwrap pass.
var Analyzer = &lint.Analyzer{
	Name: "errwrap",
	Doc: "engine packages wrap errors with %w (never %v/%s) and may not discard " +
		"error results; fmt.Fprint* rendering calls are exempt from the discard rule",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !Engine[pass.PkgBase()] {
		return nil
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, errIface, n)
			case *ast.ExprStmt:
				checkDiscardedCall(pass, errIface, n)
			case *ast.AssignStmt:
				checkBlankedError(pass, errIface, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that format an error-typed argument
// with a verb other than %w.
func checkErrorf(pass *lint.Pass, errIface *types.Interface, call *ast.CallExpr) {
	if !lint.IsPkgFunc(lint.CalleeObj(pass.Info, call), "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass.Info, call.Args[0])
	if !ok {
		return
	}
	args := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.argIndex >= len(args) {
			continue // malformed format; go vet's printf check owns that
		}
		if v.verb == 'w' || (v.verb != 'v' && v.verb != 's') {
			continue
		}
		arg := args[v.argIndex]
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil || !types.Implements(tv.Type, errIface) {
			continue
		}
		pass.Reportf(arg.Pos(), "error formatted with %%%c flattens the chain and defeats errors.As dispatch on typed errors; use %%w", v.verb)
	}
}

// checkDiscardedCall flags statement-level calls that return an error
// nobody looks at. Deferred and go-routine calls are different statements
// and are not covered; fmt.Fprint-family rendering is exempt by contract.
func checkDiscardedCall(pass *lint.Pass, errIface *types.Interface, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if obj := lint.CalleeObj(pass.Info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(obj.Name(), "Fprint") || strings.HasPrefix(obj.Name(), "Print")) {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pass.Info.Types[sel.X]; ok && infallibleWriter(tv.Type) {
			return
		}
	}
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !resultCarriesError(errIface, tv.Type) {
		return
	}
	pass.Reportf(call.Pos(), "error result discarded on an engine hot path; handle it, return it, or document with // lint:allow errwrap (reason)")
}

// checkBlankedError flags assignments that drop an error-typed value into
// the blank identifier, e.g. `_ = f()` or `v, _ := g()` where the blanked
// position is the error.
func checkBlankedError(pass *lint.Pass, errIface *types.Interface, as *ast.AssignStmt) {
	rhsType := func(i int) types.Type {
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			// multi-value call: pick the i'th tuple element
			tv, ok := pass.Info.Types[as.Rhs[0]]
			if !ok || tv.Type == nil {
				return nil
			}
			tup, ok := tv.Type.(*types.Tuple)
			if !ok || i >= tup.Len() {
				return nil
			}
			return tup.At(i).Type()
		}
		if i < len(as.Rhs) {
			if tv, ok := pass.Info.Types[as.Rhs[i]]; ok {
				return tv.Type
			}
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := rhsType(i)
		if t == nil || !types.Implements(t, errIface) {
			continue
		}
		pass.Reportf(lhs.Pos(), "error value blanked on an engine hot path; handle it, return it, or document with // lint:allow errwrap (reason)")
	}
}

// infallibleWriter reports whether methods on t are documented never to
// return an error: bytes.Buffer, strings.Builder and the hash.Hash family.
// Dropping their error results is fine; requiring checks there is noise.
func infallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder", "hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}

// resultCarriesError reports whether a call result type includes an error:
// either the sole result or any element of the result tuple.
func resultCarriesError(errIface *types.Interface, t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Implements(tup.At(i).Type(), errIface) {
				return true
			}
		}
		return false
	}
	return types.Implements(t, errIface)
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return constant.StringVal(tv.Value), true
	}
	return s, true
}

// verb is one formatting directive and the flattened argument index it
// consumes (width/precision `*` arguments shift later indices).
type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs walks a fmt format string and maps each verb to its argument
// index, handling flags, `*` width/precision and `%[n]` explicit indexes.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// flags
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		// width
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(runes) && runes[i] == '.' {
			i++
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		// explicit argument index %[n]
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verb{verb: runes[i], argIndex: arg})
		arg++
	}
	return out
}
