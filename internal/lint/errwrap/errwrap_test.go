package errwrap_test

import (
	"testing"

	"prefetchlab/internal/lint/errwrap"
	"prefetchlab/internal/lint/linttest"
)

func TestEnginePackage(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/src/sched")
}

func TestTenantPackage(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/src/tenant")
}

func TestResultCachePackage(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/src/resultcache")
}

func TestStaticProfPackage(t *testing.T) {
	linttest.Run(t, errwrap.Analyzer, "testdata/src/staticprof")
}
