// Package sched is errwrap golden testdata: the package name places it
// inside the analyzer's engine set.
package sched

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
)

var ErrBase = errors.New("base")

func FlattenV(err error) error {
	return fmt.Errorf("task failed: %v", err) // want `error formatted with %v flattens the chain`
}

func FlattenS(err error) error {
	return fmt.Errorf("task failed: %s", err) // want `error formatted with %s flattens the chain`
}

// FlattenIndexed exercises the verb parser: the starred width consumes one
// argument and the error lands on %v.
func FlattenIndexed(n int, err error) error {
	return fmt.Errorf("%*d tasks: %v", 8, n, err) // want `error formatted with %v flattens the chain`
}

func WrapOK(err error) error {
	return fmt.Errorf("task failed: %w", err)
}

// WrapBoth multi-wraps (Go 1.20+): both errors stay matchable.
func WrapBoth(err, last error) error {
	return fmt.Errorf("%w (last attempt: %w)", err, last)
}

// NonErrorVerbs never fire: %v on a non-error is ordinary formatting.
func NonErrorVerbs(n int, s string) error {
	return fmt.Errorf("cell %d of %v failed", n, s)
}

func DropResult() {
	os.Remove("x") // want `error result discarded`
}

func BlankResult() {
	_ = os.Remove("x") // want `error value blanked`
}

func BlankTuple() {
	f, _ := os.Open("x") // want `error value blanked`
	if f != nil {
		defer f.Close() // deferred cleanup is out of scope by design
	}
}

// CommaOkIsFine: the dropped second value is a bool, not an error.
func CommaOkIsFine(m map[string]int) int {
	v, _ := m["k"]
	return v
}

// InfallibleSinks: bytes.Buffer and hash writes are documented never to
// fail; requiring checks there is noise.
func InfallibleSinks(b *bytes.Buffer, data []byte) uint64 {
	b.Write(data)
	b.WriteString("tail")
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Rendering is exempt: figure text and HTTP bodies are best-effort writes.
func Rendering(b *bytes.Buffer, n int) {
	fmt.Fprintf(b, "cell %d\n", n)
}

// Handled is the normal path: no diagnostic.
func Handled() error {
	if err := os.Remove("x"); err != nil {
		return fmt.Errorf("cleanup: %w", err)
	}
	return nil
}

// StickyByDesign documents a deliberate drop.
func StickyByDesign() {
	// lint:allow errwrap (failure is sticky and reported at close; retained for the suppression test)
	_ = os.Remove("x")
}
