// Package resultcache is errwrap golden testdata: the package name places
// the content-addressed result cache inside the analyzer's engine set.
package resultcache

import (
	"errors"
	"fmt"
	"os"
)

// ErrCorrupt is the typed corruption sentinel callers match with errors.Is
// to decide between quarantine and plain miss.
var ErrCorrupt = errors.New("result cache entry corrupt")

// FlattenRead turns a typed corruption error into text: the caller can no
// longer tell a corrupt entry from a transient read failure, so nothing
// gets quarantined.
func FlattenRead(err error) error {
	return fmt.Errorf("read cache entry: %v", err) // want `error formatted with %v flattens the chain`
}

// WrapRead keeps ErrCorrupt matchable through the wrap: no diagnostic.
func WrapRead(err error) error {
	return fmt.Errorf("read cache entry: %w", err)
}

// DropQuarantine discards the rename failure, leaving a corrupt entry in
// place to be served again on the next lookup.
func DropQuarantine(path string) {
	os.Rename(path, path+".quarantine") // want `error result discarded`
}

// BlankStat blanks the stat error that distinguishes a missing entry from
// an unreadable one.
func BlankStat(path string) {
	_, _ = os.Stat(path) // want `error value blanked`
}

// Handled is the normal path: no diagnostic.
func Handled(path string) error {
	if err := os.Rename(path, path+".quarantine"); err != nil {
		return fmt.Errorf("quarantine %s: %w", path, err)
	}
	return nil
}

// BestEffortEvict documents a deliberate drop.
func BestEffortEvict(path string) {
	// lint:allow errwrap (eviction is advisory; a leftover file is re-counted on the next disk scan)
	_ = os.Remove(path)
}
