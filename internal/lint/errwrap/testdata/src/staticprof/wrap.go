// Package staticprof is errwrap golden testdata: the static analyzer's
// typed errors (ErrTooDeep, ErrTooComplex, ErrOverflow) are matched with
// errors.Is by the fuzz target and the serving layer, so the package name
// places it inside the analyzer's engine set.
package staticprof

import (
	"errors"
	"fmt"
	"os"
)

// ErrTooDeep is the sentinel callers match with errors.Is.
var ErrTooDeep = errors.New("loop nesting too deep")

// FlattenDepth loses the sentinel: errors.Is(err, ErrTooDeep) fails
// downstream because %v renders the chain into plain text.
func FlattenDepth(depth int) error {
	return fmt.Errorf("nesting depth %d: %v", depth, ErrTooDeep) // want `error formatted with %v flattens the chain`
}

// WrapDepth keeps the chain matchable: no diagnostic.
func WrapDepth(depth int) error {
	return fmt.Errorf("nesting depth %d: %w", depth, ErrTooDeep)
}

// DropDump discards the only signal that the profile dump failed.
func DropDump(path string) {
	os.Remove(path) // want `error result discarded`
}

// BlankLoad blanks a read failure, silently analyzing an empty program.
func BlankLoad(path string) {
	_, _ = os.ReadFile(path) // want `error value blanked`
}

// Handled is the normal path: no diagnostic.
func Handled(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("remove stale profile: %w", err)
	}
	return nil
}

// BestEffortEvict documents a deliberate drop.
func BestEffortEvict(path string) {
	// lint:allow errwrap (cache eviction is best-effort; a stale profile is re-derived on next use)
	_ = os.Remove(path)
}
