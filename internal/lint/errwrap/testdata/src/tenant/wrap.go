// Package tenant is errwrap golden testdata: the package name places the
// multi-tenant admission layer inside the analyzer's engine set.
package tenant

import (
	"errors"
	"fmt"
	"os"
)

// ErrUnknownKey is the sentinel callers match with errors.Is.
var ErrUnknownKey = errors.New("unknown api key")

// FlattenLoad loses the sentinel: errors.Is(err, ErrUnknownKey) fails
// downstream because %v renders the chain into plain text.
func FlattenLoad(err error) error {
	return fmt.Errorf("load tenants: %v", err) // want `error formatted with %v flattens the chain`
}

// WrapLoad keeps the chain matchable: no diagnostic.
func WrapLoad(err error) error {
	return fmt.Errorf("load tenants: %w", err)
}

// DropRemove discards the only signal that the key file cleanup failed.
func DropRemove(path string) {
	os.Remove(path) // want `error result discarded`
}

// BlankParse blanks a parse failure, silently admitting a malformed spec.
func BlankParse(path string) {
	_, _ = os.ReadFile(path) // want `error value blanked`
}

// Handled is the normal path: no diagnostic.
func Handled(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("remove tenant file: %w", err)
	}
	return nil
}

// BestEffortReload documents a deliberate drop.
func BestEffortReload(path string) {
	// lint:allow errwrap (reload is best-effort; the previous registry stays live and the failure is counted elsewhere)
	_ = os.Remove(path)
}
