package nopanic_test

import (
	"testing"

	"prefetchlab/internal/lint/linttest"
	"prefetchlab/internal/lint/nopanic"
)

func TestLibraryPackage(t *testing.T) {
	linttest.Run(t, nopanic.Analyzer, "testdata/src/lib")
}

func TestClusterPackage(t *testing.T) {
	linttest.Run(t, nopanic.Analyzer, "testdata/src/cluster")
}

func TestStaticProfPackage(t *testing.T) {
	linttest.Run(t, nopanic.Analyzer, "testdata/src/staticprof")
}
