// Package nopanic completes PR 3's panic-to-error conversion: library
// packages must surface failures as typed errors the engine's retry,
// failure-budget and checkpoint machinery can absorb — a panic that escapes
// a worker is survivable only through sched's recover shim, and log.Fatal /
// os.Exit bypass even that, killing checkpoints and trace flushes mid-run.
// It flags panic(), log.Fatal*/log.Panic* and os.Exit in every non-main
// package. Escape hatches: functions whose name starts with Must (the
// idiomatic panic-on-error wrappers used by static workload tables) and
// documented `// lint:allow nopanic (reason)` sites.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"prefetchlab/internal/lint"
)

// Analyzer is the nopanic pass.
var Analyzer = &lint.Analyzer{
	Name: "nopanic",
	Doc: "library packages return typed errors instead of calling panic, log.Fatal or os.Exit " +
		"(Must* wrappers and documented lint:allow sites excepted)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	lint.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := lint.CalleeObj(pass.Info, call)
		switch {
		case isBuiltinPanic(obj):
			if inMust(stack) {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code; return a typed error the engine's retry/failure-budget machinery can absorb")
		case isFatal(obj):
			pass.Reportf(call.Pos(), "%s.%s kills the process past sched's recover shim, losing checkpoints and traces; return an error instead", obj.Pkg().Name(), obj.Name())
		case lint.IsPkgFunc(obj, "os", "Exit"):
			pass.Reportf(call.Pos(), "os.Exit in library code skips deferred checkpoint/trace flushes; return an error and let main decide the exit code")
		}
		return true
	})
	return nil
}

func isBuiltinPanic(obj types.Object) bool {
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isFatal matches log.Fatal{,f,ln} and log.Panic{,f,ln}, both the
// package-level functions and the *log.Logger methods.
func isFatal(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "log" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
}

// inMust reports whether the innermost enclosing function declaration is a
// Must*-style panic-on-error wrapper.
func inMust(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			name := fn.Name.Name
			return strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must")
		case *ast.FuncLit:
			return false // a closure is not the Must wrapper itself
		}
	}
	return false
}
