// Package lib is nopanic golden testdata: any non-main package is in scope.
package lib

import (
	"log"
	"os"
	"strconv"
)

func Explode() {
	panic("boom") // want `panic in library code`
}

func FatalPkg() {
	log.Fatalf("x: %d", 1) // want `log\.Fatalf kills the process`
}

func FatalMethod(l *log.Logger) {
	l.Fatal("y") // want `log\.Fatal kills the process`
}

func PanicMethod(l *log.Logger) {
	l.Panicln("z") // want `log\.Panicln kills the process`
}

func Exit() {
	os.Exit(2) // want `os\.Exit in library code`
}

// MustAtoi is the idiomatic panic-on-error wrapper; Must* is exempt.
func MustAtoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(err)
	}
	return n
}

// MustSpawn shows the exemption does not leak into closures, which may run
// far from the Must call frame.
func MustSpawn() {
	go func() {
		panic("in closure") // want `panic in library code`
	}()
}

// Invariant documents an allowed assertion.
func Invariant(x int) {
	if x < 0 {
		// lint:allow nopanic (assertion retained for the suppression test)
		panic("negative")
	}
}

// Recovering is fine: recover is the engine's isolation tool.
func Recovering(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errFromPanic(r)
		}
	}()
	f()
	return nil
}

type panicErr struct{ r any }

func (e panicErr) Error() string { return "panic" }

func errFromPanic(r any) error { return panicErr{r} }
