// Package staticprof is nopanic golden testdata: the static analyzer is a
// library the serving layer calls per request, so an escaping panic would
// take down in-flight requests — degenerate programs must surface as typed
// errors instead.
package staticprof

import "errors"

// ErrOverflow is what the classifier should return instead of panicking.
var ErrOverflow = errors.New("trip-count product overflows")

// ClassifyOrDie panics on a malformed loop nest instead of returning the
// typed error the caller's fuzz target expects.
func ClassifyOrDie(depth int) string {
	if depth > 64 {
		panic("nest too deep") // want `panic in library code`
	}
	return "stream"
}

// Classify is the sanctioned shape: a typed error the engine can absorb.
func Classify(depth int) (string, error) {
	if depth > 64 {
		return "", ErrOverflow
	}
	return "stream", nil
}

// MustClassify is the idiomatic panic-on-error wrapper; Must* is exempt.
func MustClassify(depth int) string {
	c, err := Classify(depth)
	if err != nil {
		panic(err)
	}
	return c
}

// CheckInvariant documents an allowed assertion on an internal invariant.
func CheckInvariant(execs int64) {
	if execs < 0 {
		// lint:allow nopanic (negative execution counts are impossible by construction; assertion retained for the suppression test)
		panic("negative executions")
	}
}
