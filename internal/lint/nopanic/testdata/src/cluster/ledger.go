// Package cluster is nopanic golden testdata shaped like the distributed
// sweep fabric: coordinator and ledger code must degrade through typed
// errors — a panic past sched's recover shim, or an outright exit, loses the
// durable shard ledger's sync and every in-flight figure.
package cluster

import (
	"errors"
	"fmt"
	"log"
	"os"
)

var errCorrupt = errors.New("cluster: corrupt ledger record")

// ApplyRecord is the wrong shape: corrupt input must dispatch the shard
// again, never kill the coordinator.
func ApplyRecord(data []byte) {
	if len(data) == 0 {
		panic("empty ledger record") // want `panic in library code`
	}
}

// OpenOrDie loses the ledger: log.Fatal skips the deferred Sync/Close.
func OpenOrDie(path string) {
	if path == "" {
		log.Fatalf("no ledger path") // want `log\.Fatalf kills the process`
	}
}

// Abort bypasses even sched's recover shim.
func Abort(code int) {
	os.Exit(code) // want `os\.Exit in library code`
}

// Lookup is the right shape: a typed error the dispatch loop can absorb by
// requeueing the shard.
func Lookup(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("applying shard: %w", errCorrupt)
	}
	return data, nil
}

// MustFingerprint keeps the idiomatic Must* exemption for static
// configuration tables.
func MustFingerprint(fp string) string {
	if fp == "" {
		panic("empty fingerprint")
	}
	return fp
}

// RecordOrCrash documents a sanctioned crash for the suppression test.
func RecordOrCrash(ok bool) {
	if !ok {
		// lint:allow nopanic (golden suppression test; real ledger code returns errors)
		panic("unreachable")
	}
}
