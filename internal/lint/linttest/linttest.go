// Package linttest is the framework's analysistest equivalent: it runs one
// analyzer over a testdata package and checks the reported diagnostics
// against `// want "regexp"` comments in the source, the same golden
// convention x/tools uses. Lines carrying a `// lint:allow` comment double
// as suppression tests — they must produce no diagnostic.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"prefetchlab/internal/lint"
)

// Run parses and type-checks the Go package rooted at dir (conventionally
// testdata/src/<name>), applies the analyzer, and fails t unless the
// surviving diagnostics exactly match the `// want` expectations.
//
// The type-checked package path is the testdata package's declared name, so
// analyzers that scope themselves by import-path base (detrand's
// deterministic set, ctxflow's engine set) see testdata named `statstack`
// or `sched` as in scope.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files under %s", dir)
	}

	imp, err := lint.ExportImporter(fset, dir, importPaths(files))
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkg, err := lint.Check(fset, imp, files[0].Name.Name, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	var missed []string
	for key, res := range wants {
		for _, w := range res {
			if w != nil {
				missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", key.file, key.line, w))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

type posKey struct {
	file string
	line int
}

// wantRe pulls every quoted or backquoted pattern out of a want comment:
// `// want "foo" "bar"`.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*regexp.Regexp {
	t.Helper()
	wants := map[posKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := posKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// importPaths collects the distinct import paths of the testdata files so
// the export-data importer can resolve exactly what they use.
func importPaths(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}
