// Package cache implements one level of a set-associative, write-back
// cache (LRU replacement by default; FIFO and Random are available for
// model-fidelity ablations) with the timing refinements the reproduction
// needs:
//
//   - in-flight fills: a line installed by a prefetch carries the time its
//     data actually arrives, so a demand access that comes too early pays
//     the remaining latency (partial prefetch hiding);
//   - non-temporal lines: lines filled by PREFETCHNTA are flagged so the
//     hierarchy can drop them instead of installing them into L2/LLC on
//     eviction;
//   - prefetch usefulness: lines remember whether a prefetch brought them in
//     and whether a demand access touched them before eviction, which is how
//     useless-prefetch traffic is accounted.
//
// The line size is fixed at 64 B (ref.LineSize); all addresses handled here
// are line addresses.
package cache

import "fmt"

// FillSrc records what caused a line to be filled.
type FillSrc uint8

const (
	// FillDemand is a fill triggered by a demand miss.
	FillDemand FillSrc = iota
	// FillSW is a fill triggered by a software prefetch.
	FillSW
	// FillHW is a fill triggered by a hardware prefetch engine.
	FillHW
)

// String implements fmt.Stringer.
func (s FillSrc) String() string {
	switch s {
	case FillDemand:
		return "demand"
	case FillSW:
		return "sw"
	case FillHW:
		return "hw"
	default:
		return fmt.Sprintf("FillSrc(%d)", uint8(s))
	}
}

// Policy selects the replacement policy of a cache level.
type Policy uint8

const (
	// LRU evicts the least-recently-used way (the default; what StatStack
	// models).
	LRU Policy = iota
	// FIFO evicts the oldest-filled way regardless of use.
	FIFO
	// Random evicts a pseudo-random way (deterministic xorshift so runs
	// stay reproducible).
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config describes one cache level.
type Config struct {
	Name   string
	Size   int64 // total bytes; must be a multiple of Assoc*64
	Assoc  int
	Policy Policy // replacement policy (default LRU)
}

// Line is one cache line's state.
type Line struct {
	Tag      uint64 // line address
	Valid    bool
	Dirty    bool
	NT       bool    // non-temporal: bypass lower levels on eviction
	Src      FillSrc // what filled the line
	Used     bool    // touched by a demand access since fill
	ReadyAt  int64   // cycle at which the fill data arrives
	lastUse  int64   // LRU stamp
	filledAt int64   // fill stamp (FIFO replacement)
}

// Stats counts events at this level.
type Stats struct {
	Hits       int64 // demand hits (including hits on in-flight lines)
	Misses     int64 // demand misses
	LateHits   int64 // demand hits that waited on an in-flight fill
	Fills      int64
	Evictions  int64
	Writebacks int64 // dirty evictions
	// UselessPrefetches counts evictions of never-used prefetched lines,
	// split by prefetch source.
	UselessSW int64
	UselessHW int64
}

// Accesses returns the number of demand accesses (hits + misses).
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// MissRatio returns demand misses per demand access (0 when idle).
func (s Stats) MissRatio() float64 {
	if acc := s.Accesses(); acc > 0 {
		return float64(s.Misses) / float64(acc)
	}
	return 0
}

// String renders the level's counters as one readable line, e.g. for
// examples and summary tables:
//
//	12034 acc, 3.1% miss (12 late), 370 fills, 298 evict (14 wb), useless pf sw 3 / hw 0
func (s Stats) String() string {
	return fmt.Sprintf("%d acc, %.1f%% miss (%d late), %d fills, %d evict (%d wb), useless pf sw %d / hw %d",
		s.Accesses(), s.MissRatio()*100, s.LateHits, s.Fills, s.Evictions, s.Writebacks,
		s.UselessSW, s.UselessHW)
}

// Cache is a single set-associative level.
type Cache struct {
	cfg     Config
	sets    int
	assoc   int
	setMask uint64
	lines   []Line
	useCtr  int64
	rng     uint64 // xorshift state for Random replacement
	stats   Stats
}

// New builds a cache from cfg. Size/(Assoc*64) must be a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache %q: bad associativity %d", cfg.Name, cfg.Assoc)
	}
	lines := cfg.Size / 64
	if lines <= 0 || cfg.Size%64 != 0 {
		return nil, fmt.Errorf("cache %q: bad size %d", cfg.Name, cfg.Size)
	}
	sets := lines / int64(cfg.Assoc)
	if sets <= 0 || lines%int64(cfg.Assoc) != 0 {
		return nil, fmt.Errorf("cache %q: size %d not divisible by assoc %d ways", cfg.Name, cfg.Size, cfg.Assoc)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %q: set count %d not a power of two", cfg.Name, sets)
	}
	return &Cache{
		cfg:     cfg,
		sets:    int(sets),
		assoc:   cfg.Assoc,
		setMask: uint64(sets - 1),
		lines:   make([]Line, lines),
		rng:     0x9e3779b97f4a7c15,
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a copy of the level statistics.
func (c *Cache) Stats() Stats { return c.stats }

// setOf returns the slice of ways for the line address.
func (c *Cache) setOf(line uint64) []Line {
	s := int(line&c.setMask) * c.assoc
	return c.lines[s : s+c.assoc]
}

// Lookup performs a demand access to a line address at time now. On a hit it
// refreshes LRU state, marks the line used, and returns any residual
// in-flight latency (0 if the fill already completed). On a miss it returns
// ok=false and records a miss.
func (c *Cache) Lookup(line uint64, now int64) (wait int64, ok bool) {
	set := c.setOf(line)
	for i := range set {
		l := &set[i]
		if l.Valid && l.Tag == line {
			c.useCtr++
			l.lastUse = c.useCtr
			l.Used = true
			c.stats.Hits++
			if l.ReadyAt > now {
				c.stats.LateHits++
				return l.ReadyAt - now, true
			}
			return 0, true
		}
	}
	c.stats.Misses++
	return 0, false
}

// Probe reports whether the line is present without touching LRU, usage or
// statistics. Hardware prefetchers use it to filter redundant prefetches.
func (c *Cache) Probe(line uint64) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			return true
		}
	}
	return false
}

// Touch marks an existing line dirty (store hit). No-op if absent.
func (c *Cache) Touch(line uint64, dirty bool) {
	set := c.setOf(line)
	for i := range set {
		if set[i].Valid && set[i].Tag == line {
			if dirty {
				set[i].Dirty = true
			}
			return
		}
	}
}

// FillOpts qualifies an Insert.
type FillOpts struct {
	Dirty   bool
	NT      bool
	Src     FillSrc
	ReadyAt int64 // when the data arrives (≤ now means already here)
	Used    bool  // filled by the demand access itself
}

// Insert installs a line, evicting the LRU victim if the set is full. The
// evicted line (if any) is returned so the hierarchy can write it back or
// install it one level down. Inserting a line that is already present
// refreshes its metadata instead of duplicating it.
func (c *Cache) Insert(line uint64, now int64, opts FillOpts) (victim Line, evicted bool) {
	set := c.setOf(line)
	victimIdx := -1
	for i := range set {
		l := &set[i]
		if l.Valid && l.Tag == line {
			// Refresh in place (e.g. prefetch to an already-present line).
			if opts.Dirty {
				l.Dirty = true
			}
			if opts.ReadyAt < l.ReadyAt {
				l.ReadyAt = opts.ReadyAt
			}
			c.useCtr++
			l.lastUse = c.useCtr
			return Line{}, false
		}
		if !l.Valid {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		victimIdx = c.victim(set)
	}
	l := &set[victimIdx]
	if l.Valid {
		victim = *l
		evicted = true
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.Writebacks++
		}
		if victim.Src != FillDemand && !victim.Used {
			if victim.Src == FillSW {
				c.stats.UselessSW++
			} else {
				c.stats.UselessHW++
			}
		}
	}
	c.useCtr++
	*l = Line{
		Tag:      line,
		Valid:    true,
		Dirty:    opts.Dirty,
		NT:       opts.NT,
		Src:      opts.Src,
		Used:     opts.Used,
		ReadyAt:  opts.ReadyAt,
		lastUse:  c.useCtr,
		filledAt: c.useCtr,
	}
	c.stats.Fills++
	return victim, evicted
}

// victim picks the way to evict from a full set according to the policy.
func (c *Cache) victim(set []Line) int {
	switch c.cfg.Policy {
	case Random:
		// xorshift64*: deterministic and fast.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(set)))
	case FIFO:
		min := int64(1<<63 - 1)
		idx := 0
		for i := range set {
			if set[i].filledAt < min {
				min = set[i].filledAt
				idx = i
			}
		}
		return idx
	default: // LRU
		min := int64(1<<63 - 1)
		idx := 0
		for i := range set {
			if set[i].lastUse < min {
				min = set[i].lastUse
				idx = i
			}
		}
		return idx
	}
}

// Reset invalidates all lines and zeroes statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	c.useCtr = 0
	c.rng = 0x9e3779b97f4a7c15
	c.stats = Stats{}
}
