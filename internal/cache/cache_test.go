package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size int64, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", Size: size, Assoc: assoc})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Size: 0, Assoc: 2},
		{Size: 64, Assoc: 0},
		{Size: 100, Assoc: 1},        // not a multiple of 64
		{Size: 3 * 64 * 4, Assoc: 4}, // 3 sets: not a power of two
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
	if _, err := New(Config{Size: 64 << 10, Assoc: 2}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHitMiss(t *testing.T) {
	c := mk(t, 4*64, 2) // 2 sets × 2 ways
	if _, ok := c.Lookup(5, 0); ok {
		t.Fatal("hit in empty cache")
	}
	c.Insert(5, 0, FillOpts{Src: FillDemand, Used: true})
	if _, ok := c.Lookup(5, 1); !ok {
		t.Fatal("miss after insert")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUVictim(t *testing.T) {
	c := mk(t, 4*64, 2) // sets selected by line&1
	// Fill set 0 with lines 0 and 2, touch 0, then insert 4: victim must be 2.
	c.Insert(0, 0, FillOpts{})
	c.Insert(2, 0, FillOpts{})
	c.Lookup(0, 1) // refresh 0
	victim, evicted := c.Insert(4, 2, FillOpts{})
	if !evicted || victim.Tag != 2 {
		t.Fatalf("victim = %+v (evicted=%v), want tag 2", victim, evicted)
	}
	if !c.Probe(0) || !c.Probe(4) || c.Probe(2) {
		t.Fatal("wrong lines resident after eviction")
	}
}

func TestInFlightLatency(t *testing.T) {
	c := mk(t, 64*64, 4)
	c.Insert(7, 100, FillOpts{ReadyAt: 150, Src: FillSW})
	wait, ok := c.Lookup(7, 120)
	if !ok || wait != 30 {
		t.Fatalf("in-flight wait = %d (ok=%v), want 30", wait, ok)
	}
	wait, ok = c.Lookup(7, 200)
	if !ok || wait != 0 {
		t.Fatalf("post-arrival wait = %d (ok=%v), want 0", wait, ok)
	}
	if c.Stats().LateHits != 1 {
		t.Fatalf("LateHits = %d, want 1", c.Stats().LateHits)
	}
}

func TestUselessPrefetchAccounting(t *testing.T) {
	c := mk(t, 2*64, 2) // one set, 2 ways
	c.Insert(0, 0, FillOpts{Src: FillSW})
	c.Insert(2, 0, FillOpts{Src: FillHW})
	// Use line 0 before eviction; line 2 stays untouched.
	c.Lookup(0, 1)
	c.Insert(4, 2, FillOpts{Src: FillDemand, Used: true}) // evicts 2 (LRU)
	c.Insert(6, 3, FillOpts{Src: FillDemand, Used: true}) // evicts 0
	st := c.Stats()
	if st.UselessHW != 1 {
		t.Errorf("UselessHW = %d, want 1", st.UselessHW)
	}
	if st.UselessSW != 0 {
		t.Errorf("UselessSW = %d, want 0 (line was demand-hit)", st.UselessSW)
	}
}

func TestDirtyWritebackCount(t *testing.T) {
	c := mk(t, 2*64, 2)
	c.Insert(0, 0, FillOpts{Dirty: true})
	c.Insert(2, 0, FillOpts{})
	v1, _ := c.Insert(4, 1, FillOpts{}) // evicts 0 (dirty)
	if !v1.Dirty {
		t.Error("expected dirty victim")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestTouchMarksDirty(t *testing.T) {
	c := mk(t, 2*64, 2)
	c.Insert(0, 0, FillOpts{})
	c.Touch(0, true)
	v, _ := c.Insert(2, 1, FillOpts{})
	_ = v
	c.Insert(4, 2, FillOpts{})
	if c.Stats().Writebacks != 1 {
		t.Errorf("Touch did not mark dirty: %+v", c.Stats())
	}
}

func TestInsertRefreshExisting(t *testing.T) {
	c := mk(t, 2*64, 2)
	c.Insert(0, 0, FillOpts{ReadyAt: 50})
	if v, evicted := c.Insert(0, 10, FillOpts{ReadyAt: 20}); evicted {
		t.Fatalf("re-insert evicted %+v", v)
	}
	wait, ok := c.Lookup(0, 15)
	if !ok || wait != 5 {
		t.Fatalf("refresh did not keep earlier ReadyAt: wait=%d ok=%v", wait, ok)
	}
	if c.Stats().Fills != 1 {
		t.Errorf("Fills = %d, want 1 (refresh is not a fill)", c.Stats().Fills)
	}
}

func TestNTFlagSurvivesEviction(t *testing.T) {
	c := mk(t, 2*64, 2)
	c.Insert(0, 0, FillOpts{NT: true, Src: FillSW})
	c.Insert(2, 1, FillOpts{})
	v, evicted := c.Insert(4, 2, FillOpts{})
	if !evicted || !v.NT || v.Tag != 0 {
		t.Fatalf("NT victim = %+v (evicted=%v)", v, evicted)
	}
}

// TestCacheNeverExceedsCapacity is a property test: after any access
// sequence, each set holds at most Assoc distinct valid lines and every
// probe result is consistent with the most recent inserts.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		ops := int(opsRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		c, err := New(Config{Name: "q", Size: 16 * 64, Assoc: 4})
		if err != nil {
			return false
		}
		resident := make(map[uint64]bool)
		for i := 0; i < ops; i++ {
			line := uint64(r.Intn(64))
			if r.Intn(2) == 0 {
				if _, ok := c.Lookup(line, int64(i)); ok && !resident[line] {
					return false // hit on a line we never inserted
				}
			}
			if !c.Probe(line) {
				victim, evicted := c.Insert(line, int64(i), FillOpts{})
				if evicted {
					delete(resident, victim.Tag)
				}
				resident[line] = true
			}
		}
		// Every resident line must probe true.
		for line := range resident {
			if !c.Probe(line) {
				return false
			}
		}
		return len(resident) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	c := mk(t, 2*64, 2)
	c.Insert(0, 0, FillOpts{})
	c.Lookup(0, 1)
	c.Reset()
	if c.Probe(0) {
		t.Error("line survived reset")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("stats survived reset: %+v", st)
	}
}

func TestFIFOEvictsOldestFill(t *testing.T) {
	c, err := New(Config{Name: "fifo", Size: 2 * 64, Assoc: 2, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(0, 0, FillOpts{})
	c.Insert(2, 1, FillOpts{})
	c.Lookup(0, 2) // recency must NOT save line 0 under FIFO
	victim, evicted := c.Insert(4, 3, FillOpts{})
	if !evicted || victim.Tag != 0 {
		t.Fatalf("FIFO victim = %+v, want tag 0", victim)
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() []uint64 {
		c, err := New(Config{Name: "r", Size: 4 * 64, Assoc: 4, Policy: Random})
		if err != nil {
			t.Fatal(err)
		}
		var evictions []uint64
		for i := uint64(0); i < 64; i += 4 {
			if v, ev := c.Insert(i, int64(i), FillOpts{}); ev {
				evictions = append(evictions, v.Tag)
			}
		}
		return evictions
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no evictions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random replacement not reproducible")
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Hits: 97, Misses: 3, LateHits: 2, Fills: 3, Evictions: 1,
		Writebacks: 1, UselessSW: 1}
	want := "100 acc, 3.0% miss (2 late), 3 fills, 1 evict (1 wb), useless pf sw 1 / hw 0"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if s.Accesses() != 100 {
		t.Errorf("Accesses = %d", s.Accesses())
	}
	if s.MissRatio() != 0.03 {
		t.Errorf("MissRatio = %g", s.MissRatio())
	}
	var idle Stats
	if idle.MissRatio() != 0 {
		t.Errorf("idle MissRatio = %g, want 0", idle.MissRatio())
	}
}
