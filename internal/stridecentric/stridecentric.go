// Package stridecentric implements the comparison baseline of §VI-D: a
// profile-guided prefetcher in the style of Luk et al. (ICS 2002) and Wu
// (PLDI 2002) that inserts a software prefetch for *every* load exhibiting
// a regular stride, using simple heuristics — no miss-ratio model, no
// cost/benefit filter and no cache bypassing. Its higher prefetch overhead
// (the paper measures ~36 % more prefetches per miss removed) and its
// prefetches for loads that rarely miss are what MDDLI's filtering removes.
package stridecentric

import (
	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
)

// Params configures the stride-centric heuristic.
type Params struct {
	// DominantFrac is the stride-regularity threshold (same 70 % rule the
	// paper applies to both methods so the comparison isolates filtering).
	DominantFrac float64
	// MinStrideSamples is the minimum number of stride samples to trust.
	MinStrideSamples int
	// Latency is the assumed (not measured) memory latency in cycles the
	// heuristic schedules against.
	Latency float64
	// Delta is the assumed cycles per memory operation.
	Delta float64
}

// DefaultParams returns the heuristic's constants.
func DefaultParams() Params {
	return Params{DominantFrac: 0.70, MinStrideSamples: 4, Latency: 250, Delta: core.DefaultDelta}
}

// WithDefaults fills zero-valued fields with the heuristic's constants.
func (p Params) WithDefaults() Params {
	if p.DominantFrac <= 0 {
		p.DominantFrac = 0.70
	}
	if p.MinStrideSamples <= 0 {
		p.MinStrideSamples = 4
	}
	if p.Latency <= 0 {
		p.Latency = 250
	}
	if p.Delta <= 0 {
		p.Delta = core.DefaultDelta
	}
	return p
}

// Decide applies the stride-centric selection rule to one load given its
// stride evidence: n stride observations, among which a dominant stride
// (stride, recurrence) was found or not (ok); loopCount is the innermost
// enclosing trip count, which caps the prefetch distance. It returns the
// decision and, for DecisionInsertNormal, the distance in bytes.
//
// The rule is shared between the sampled analyzer (Analyze) and the static
// analyzer (internal/staticprof): the two tiers may only diverge in the
// evidence they collect, never in the policy applied to it.
func Decide(loopCount int64, n int, stride int64, recurrence float64, ok bool, p Params) (core.Decision, int64) {
	p = p.WithDefaults()
	if n < p.MinStrideSamples {
		return core.DecisionFewStrides, 0
	}
	if !ok || stride == 0 {
		return core.DecisionIrregular, 0
	}
	dist, dok := core.Distance(stride, recurrence, p.Delta, p.Latency, loopCount)
	if !dok {
		return core.DecisionTinyLoop, 0
	}
	return core.DecisionInsertNormal, dist
}

// Analyze builds a stride-centric prefetching plan: every load with a
// dominant stride gets a normal (temporal) prefetch.
func Analyze(c *isa.Compiled, samples *sampler.Samples, p Params) *core.Plan {
	p = p.WithDefaults()
	stridesByPC := samples.StridesByPC()
	plan := &core.Plan{}
	for pc := ref.PC(0); int(pc) < c.NumDemandPCs; pc++ {
		info := c.PCs[pc]
		if info.Op != isa.OpLoad {
			continue
		}
		li := core.LoadInfo{PC: pc}
		ss := stridesByPC[pc]
		li.Strides = len(ss)
		var stride int64
		var recurrence float64
		ok := false
		if len(ss) >= p.MinStrideSamples {
			stride, recurrence, ok = core.DominantStride(ss, p.DominantFrac)
		}
		if ok && stride != 0 {
			li.Stride = stride
		}
		dec, dist := Decide(info.LoopCount, len(ss), stride, recurrence, ok, p)
		li.Decision = dec
		if dec == core.DecisionInsertNormal {
			li.Distance = dist
			plan.Insertions = append(plan.Insertions, isa.Insertion{PC: pc, Distance: dist})
		}
		plan.Loads = append(plan.Loads, li)
	}
	return plan
}
