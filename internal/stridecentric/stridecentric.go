// Package stridecentric implements the comparison baseline of §VI-D: a
// profile-guided prefetcher in the style of Luk et al. (ICS 2002) and Wu
// (PLDI 2002) that inserts a software prefetch for *every* load exhibiting
// a regular stride, using simple heuristics — no miss-ratio model, no
// cost/benefit filter and no cache bypassing. Its higher prefetch overhead
// (the paper measures ~36 % more prefetches per miss removed) and its
// prefetches for loads that rarely miss are what MDDLI's filtering removes.
package stridecentric

import (
	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
)

// Params configures the stride-centric heuristic.
type Params struct {
	// DominantFrac is the stride-regularity threshold (same 70 % rule the
	// paper applies to both methods so the comparison isolates filtering).
	DominantFrac float64
	// MinStrideSamples is the minimum number of stride samples to trust.
	MinStrideSamples int
	// Latency is the assumed (not measured) memory latency in cycles the
	// heuristic schedules against.
	Latency float64
	// Delta is the assumed cycles per memory operation.
	Delta float64
}

// DefaultParams returns the heuristic's constants.
func DefaultParams() Params {
	return Params{DominantFrac: 0.70, MinStrideSamples: 4, Latency: 250, Delta: core.DefaultDelta}
}

// Analyze builds a stride-centric prefetching plan: every load with a
// dominant stride gets a normal (temporal) prefetch.
func Analyze(c *isa.Compiled, samples *sampler.Samples, p Params) *core.Plan {
	if p.DominantFrac <= 0 {
		p.DominantFrac = 0.70
	}
	if p.MinStrideSamples <= 0 {
		p.MinStrideSamples = 4
	}
	if p.Latency <= 0 {
		p.Latency = 250
	}
	if p.Delta <= 0 {
		p.Delta = core.DefaultDelta
	}
	stridesByPC := samples.StridesByPC()
	plan := &core.Plan{}
	for pc := ref.PC(0); int(pc) < c.NumDemandPCs; pc++ {
		info := c.PCs[pc]
		if info.Op != isa.OpLoad {
			continue
		}
		li := core.LoadInfo{PC: pc}
		ss := stridesByPC[pc]
		li.Strides = len(ss)
		if len(ss) < p.MinStrideSamples {
			li.Decision = core.DecisionFewStrides
			plan.Loads = append(plan.Loads, li)
			continue
		}
		stride, recurrence, ok := core.DominantStride(ss, p.DominantFrac)
		if !ok || stride == 0 {
			li.Decision = core.DecisionIrregular
			plan.Loads = append(plan.Loads, li)
			continue
		}
		li.Stride = stride
		dist, ok := core.Distance(stride, recurrence, p.Delta, p.Latency, info.LoopCount)
		if !ok {
			li.Decision = core.DecisionTinyLoop
			plan.Loads = append(plan.Loads, li)
			continue
		}
		li.Distance = dist
		li.Decision = core.DecisionInsertNormal
		plan.Loads = append(plan.Loads, li)
		plan.Insertions = append(plan.Insertions, isa.Insertion{PC: pc, Distance: dist})
	}
	return plan
}
