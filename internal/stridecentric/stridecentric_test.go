package stridecentric

import (
	"testing"

	"prefetchlab/internal/core"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/sampler"
)

// mkProgram has one frequently-hitting strided load and one irregular load:
// stride-centric must prefetch the strided one regardless of its miss ratio.
func mkProgram(t *testing.T) *isa.Compiled {
	t.Helper()
	b := isa.NewBuilder("sc")
	r, v := b.Reg(), b.Reg()
	arena := b.Arena(1 << 20)
	b.MovI(r, int64(arena))
	b.Loop(4096, func() {
		b.Load(v, r, 0)
		b.AddI(r, 8) // sub-line stride: mostly L1 hits
	})
	c, err := isa.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStrideCentricIgnoresMissRatio(t *testing.T) {
	c := mkProgram(t)
	s := sampler.New(sampler.Config{Period: 16, Seed: 2})
	isa.Trace(c, s)
	samples := s.Finish()
	plan := Analyze(c, samples, DefaultParams())
	if len(plan.Insertions) != 1 {
		t.Fatalf("insertions = %d, want 1 (stride-centric prefetches every regular stride)", len(plan.Insertions))
	}
	if plan.Insertions[0].NTA {
		t.Error("stride-centric never uses non-temporal prefetches")
	}
	if plan.Insertions[0].Distance <= 0 {
		t.Errorf("distance = %d", plan.Insertions[0].Distance)
	}
}

func TestStrideCentricSkipsIrregular(t *testing.T) {
	// A load whose addresses jump randomly has no dominant stride.
	var ss []sampler.StrideSample
	strides := []int64{100, -300, 7000, 64, -64, 1000, 12, 99999}
	for i, st := range strides {
		ss = append(ss, sampler.StrideSample{PC: 0, Stride: st, Recurrence: int64(i)})
	}
	b := isa.NewBuilder("irr")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 1<<30)
	b.Loop(10, func() { b.Load(v, r, 0) })
	c, err := isa.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	plan := Analyze(c, &sampler.Samples{Strides: ss}, DefaultParams())
	if len(plan.Insertions) != 0 {
		t.Fatalf("irregular load prefetched: %+v", plan.Insertions)
	}
	if plan.Loads[0].Decision != core.DecisionIrregular {
		t.Fatalf("decision = %s", plan.Loads[0].Decision)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := mkProgram(t)
	s := sampler.New(sampler.Config{Period: 16, Seed: 2})
	isa.Trace(c, s)
	samples := s.Finish()
	// Zero params fall back to defaults rather than rejecting everything.
	plan := Analyze(c, samples, Params{})
	if len(plan.Insertions) != 1 {
		t.Fatalf("zero-params analysis inserted %d", len(plan.Insertions))
	}
}
