// Package ckpt implements the append-only checkpoint file behind the CLI's
// -checkpoint flag. After every completed task the engine appends one
// length-prefixed, CRC-checksummed record; on restart, verified records are
// replayed through the scheduler's Saver hook so only missing task indices
// re-execute. The file carries a configuration fingerprint so a checkpoint
// taken under one experiment configuration is never replayed into another.
//
// Layout:
//
//	magic "PFLCKPT1" | u32 fingerprint length | fingerprint bytes
//	repeated records: u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// where each payload is the gob encoding of a {Kind, Key, Index, Data}
// record. A torn final record (crash mid-append) is detected by length or
// checksum and the file is truncated back to the last verified record, so a
// checkpoint is always usable after an unclean shutdown.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"prefetchlab/internal/atomicio"
)

var magic = []byte("PFLCKPT1")

// ErrFingerprint reports that an existing checkpoint file was written under
// a different experiment configuration and cannot be resumed.
var ErrFingerprint = errors.New("ckpt: configuration fingerprint mismatch")

// ErrCorrupt reports a file that is not a usable checkpoint: bad magic, or
// a header too damaged to verify. Torn or corrupt *records* are not errors
// (they are truncated away); ErrCorrupt means nothing before the records
// could be trusted. Every corrupt-input failure wraps this sentinel, so
// callers can distinguish "delete and start over" from I/O trouble.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// maxRecord bounds a single record so a corrupted length prefix cannot make
// Open attempt a multi-gigabyte allocation.
const maxRecord = 64 << 20

// Record kinds used by the engine.
const (
	KindTask = "task" // a completed scheduler task, keyed by (batch, index)
	KindStat = "stat" // a recorded stats snapshot, keyed by stat key
	// KindShard is an acked cluster shard result, keyed by (batch, index)
	// like KindTask but carrying a ledger entry (origin worker + task
	// value); used by the internal/cluster shard ledger, which is this same
	// file format under a cluster fingerprint.
	KindShard = "shard"
)

type record struct {
	Kind  string
	Key   string
	Index int
	Data  []byte
}

// File is an open checkpoint: an in-memory replay index over the verified
// records plus an append handle. Safe for concurrent use.
type File struct {
	mu       sync.Mutex
	f        *os.File
	seen     map[recordKey][]byte
	replayed int   // records recovered at Open
	appended int   // records written this session
	err      error // first append failure, if any
}

type recordKey struct {
	kind, key string
	index     int
}

// closeQuietly releases f on a path that is already returning an earlier,
// more interesting error; the secondary Close result adds nothing a caller
// could act on.
func closeQuietly(f *os.File) {
	_ = f.Close() // lint:allow errwrap (secondary failure on an error path; the primary error is already being returned)
}

// Open opens (or creates) the checkpoint at path. fingerprint identifies the
// experiment configuration; resuming a file written under a different
// fingerprint fails with ErrFingerprint. Torn or corrupt trailing records
// are discarded and the file is truncated to its last verified record.
func Open(path, fingerprint string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	c := &File{f: f, seen: make(map[recordKey][]byte)}
	info, err := f.Stat()
	if err != nil {
		closeQuietly(f)
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if info.Size() == 0 {
		// Publish the header atomically (temp file + rename): a crash or
		// kill mid-header must never leave a torn prefix that would make the
		// next Open reject the file as corrupt instead of starting fresh.
		closeQuietly(f)
		if err := atomicio.WriteFile(path, func(w io.Writer) error {
			return writeHeaderTo(w, fingerprint)
		}); err != nil {
			return nil, fmt.Errorf("ckpt: writing header: %w", err)
		}
		f, err = os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			closeQuietly(f)
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		c.f = f
		return c, nil
	}
	good, err := c.load(fingerprint)
	if err != nil {
		closeQuietly(f)
		return nil, err
	}
	// Drop any torn tail so the next append starts on a record boundary.
	if err := f.Truncate(good); err != nil {
		closeQuietly(f)
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		closeQuietly(f)
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return c, nil
}

// writeHeaderTo serializes the file header: magic, fingerprint length,
// fingerprint bytes.
func writeHeaderTo(w io.Writer, fingerprint string) error {
	var buf bytes.Buffer
	buf.Write(magic)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(fingerprint)))
	buf.Write(lenb[:])
	buf.WriteString(fingerprint)
	_, err := w.Write(buf.Bytes())
	return err
}

// load verifies the header and replays every intact record, returning the
// offset just past the last verified record.
func (c *File) load(fingerprint string) (int64, error) {
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	r := &countingReader{r: c.f}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil || !bytes.Equal(head, magic) {
		return 0, fmt.Errorf("%w: not a checkpoint file (bad magic)", ErrCorrupt)
	}
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > maxRecord {
		return 0, fmt.Errorf("%w: implausible fingerprint length %d", ErrCorrupt, n)
	}
	fp := make([]byte, n)
	if _, err := io.ReadFull(r, fp); err != nil {
		return 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if string(fp) != fingerprint {
		return 0, fmt.Errorf("%w: file has %q, run has %q", ErrFingerprint, fp, fingerprint)
	}
	good := r.n
	for {
		var prefix [8]byte
		if _, err := io.ReadFull(r, prefix[:]); err != nil {
			return good, nil // clean EOF or torn length prefix
		}
		plen := binary.LittleEndian.Uint32(prefix[0:4])
		sum := binary.LittleEndian.Uint32(prefix[4:8])
		if plen > maxRecord {
			return good, nil // corrupt length
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // corrupt payload
		}
		var rec record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return good, nil
		}
		c.seen[recordKey{rec.Kind, rec.Key, rec.Index}] = rec.Data
		c.replayed++
		good = r.n
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append persists one record, deduplicating by (kind, key, index): a record
// already present (replayed or appended earlier) is not rewritten.
func (c *File) Append(kind, key string, index int, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rk := recordKey{kind, key, index}
	if _, ok := c.seen[rk]; ok {
		return nil
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(record{kind, key, index, data}); err != nil {
		return c.fail(fmt.Errorf("ckpt: encoding record: %w", err))
	}
	var buf bytes.Buffer
	var prefix [8]byte
	binary.LittleEndian.PutUint32(prefix[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(prefix[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(prefix[:])
	buf.Write(payload.Bytes())
	if _, err := c.f.Write(buf.Bytes()); err != nil {
		return c.fail(fmt.Errorf("ckpt: appending record: %w", err))
	}
	c.seen[rk] = data
	c.appended++
	return nil
}

func (c *File) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// Lookup returns the stored data for (kind, key, index).
func (c *File) Lookup(kind, key string, index int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.seen[recordKey{kind, key, index}]
	return data, ok
}

// Each calls fn for every stored record of the given kind.
func (c *File) Each(kind string, fn func(key string, index int, data []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for rk, data := range c.seen {
		if rk.kind == kind {
			fn(rk.key, rk.index, data)
		}
	}
}

// Replayed reports how many verified records Open recovered.
func (c *File) Replayed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayed
}

// Appended reports how many records this session has written.
func (c *File) Appended() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appended
}

// Err returns the first append failure, if any. The scheduler's Saver hook
// cannot return errors, so persistence failures surface here at shutdown.
func (c *File) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Sync flushes the file to stable storage.
func (c *File) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Sync()
}

// Close syncs and closes the file.
func (c *File) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.f.Sync(); err != nil {
		closeQuietly(c.f)
		return fmt.Errorf("ckpt: %w", err)
	}
	return c.f.Close()
}

// Tasks returns a view of the file that satisfies the scheduler's Saver
// interface: completed task results are persisted under KindTask, keyed by
// batch name and task index.
func (c *File) Tasks() *TaskStore { return &TaskStore{c: c} }

// TaskStore adapts a checkpoint File to the scheduler's Saver interface.
type TaskStore struct{ c *TaskStoreFile }

// TaskStoreFile is the underlying checkpoint type; declared as an alias so
// TaskStore's field stays documented without exporting internals.
type TaskStoreFile = File

// Lookup returns the persisted result for a task, if present.
func (s *TaskStore) Lookup(batch string, index int) ([]byte, bool) {
	return s.c.Lookup(KindTask, batch, index)
}

// Save persists a completed task result. Append failures are sticky and
// reported by the File's Err method; the run itself continues.
func (s *TaskStore) Save(batch string, index int, data []byte) {
	// lint:allow errwrap (Append failures are sticky by design: File.Err reports them at close; the run itself must continue)
	_ = s.c.Append(KindTask, batch, index, data)
}
