package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// goldenCheckpoint builds a real checkpoint (header + a few verified
// records) and returns its bytes — the honest corpus the fuzzer mutates.
func goldenCheckpoint(tb testing.TB, fingerprint string) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "golden.ckpt")
	c, err := Open(path, fingerprint)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Append(KindTask, "fig8", i, []byte{byte(i), 0xAB, 0xCD}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := c.Append(KindStat, "solo/amd/lbm", 0, []byte("snapshot")); err != nil {
		tb.Fatal(err)
	}
	if err := c.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzCkptReader feeds arbitrary bytes through Open: however corrupt or
// truncated the file, Open must never panic, and every rejection must be a
// typed error (ErrCorrupt or ErrFingerprint). Inputs that merely have torn
// tails must open successfully with the verified prefix.
func FuzzCkptReader(f *testing.F) {
	const fp = "scale=1 seed=42"
	golden := goldenCheckpoint(f, fp)

	f.Add(golden)                     // fully valid
	f.Add(golden[:len(golden)-3])     // torn final record
	f.Add(golden[:11])                // truncated header
	f.Add([]byte{})                   // empty file (fresh start)
	f.Add([]byte("PFLCKPT1"))         // magic only
	f.Add([]byte("not a checkpoint")) // bad magic
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/2] ^= 0xFF // corrupt a record payload
	f.Add(flipped)
	short := append([]byte(nil), golden[:16]...)
	short[8] = 0xFF // implausible fingerprint length
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(path, fp)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFingerprint) {
				t.Fatalf("untyped error for corrupt input: %v", err)
			}
			return
		}
		// The file opened: it must be appendable and reloadable.
		if err := c.Append(KindTask, "fuzz", 0, []byte("post")); err != nil {
			t.Fatalf("append after open: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		re, err := Open(path, fp)
		if err != nil {
			t.Fatalf("reopen of a file we just wrote: %v", err)
		}
		if _, ok := re.Lookup(KindTask, "fuzz", 0); !ok {
			t.Fatal("record appended after fuzz open did not survive reopen")
		}
		re.Close()
	})
}

// TestOpenTornHeaderIsTypedCorrupt pins the specific crash the atomic
// header write prevents going forward, for files written by older builds:
// a file cut mid-header is rejected with ErrCorrupt, not a panic or an
// anonymous error.
func TestOpenTornHeaderIsTypedCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	if err := os.WriteFile(path, []byte("PFLCKPT1\x10\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, "fp")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
