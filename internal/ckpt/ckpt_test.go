package ckpt

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"prefetchlab/internal/sched"
)

func openT(t *testing.T, path, fp string) *File {
	t.Helper()
	c, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAppendLookupRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := openT(t, path, "fp-1")
	if err := c.Append(KindTask, "fig8", 3, []byte("payload-3")); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(KindStat, "l1/core0", 0, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Lookup(KindTask, "fig8", 3); !ok || string(got) != "payload-3" {
		t.Errorf("Lookup = %q, %v", got, ok)
	}
	if _, ok := c.Lookup(KindTask, "fig8", 4); ok {
		t.Error("found a record that was never written")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openT(t, path, "fp-1")
	defer c2.Close()
	if c2.Replayed() != 2 {
		t.Errorf("replayed = %d, want 2", c2.Replayed())
	}
	if got, ok := c2.Lookup(KindStat, "l1/core0", 0); !ok || string(got) != "snap" {
		t.Errorf("stat record = %q, %v", got, ok)
	}
}

func TestAppendDeduplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := openT(t, path, "fp")
	for i := 0; i < 5; i++ {
		if err := c.Append(KindTask, "b", 1, []byte("same")); err != nil {
			t.Fatal(err)
		}
	}
	if c.Appended() != 1 {
		t.Errorf("appended = %d, want 1", c.Appended())
	}
	c.Close()
	c2 := openT(t, path, "fp")
	defer c2.Close()
	if c2.Replayed() != 1 {
		t.Errorf("replayed = %d, want 1", c2.Replayed())
	}
	// Re-appending a replayed record is also a no-op.
	if err := c2.Append(KindTask, "b", 1, []byte("same")); err != nil {
		t.Fatal(err)
	}
	if c2.Appended() != 0 {
		t.Errorf("appended after replay = %d, want 0", c2.Appended())
	}
}

func TestFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	openT(t, path, "config-A").Close()
	if _, err := Open(path, "config-B"); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("err = %v, want ErrFingerprint", err)
	}
}

func TestTornTailIsDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := openT(t, path, "fp")
	c.Append(KindTask, "b", 0, []byte("first"))
	c.Append(KindTask, "b", 1, []byte("second"))
	c.Close()
	info, _ := os.Stat(path)
	full := info.Size()

	for _, cut := range []int64{1, 5, 9} {
		if err := os.Truncate(path, full-cut); err != nil {
			t.Fatal(err)
		}
		c2 := openT(t, path, "fp")
		if c2.Replayed() != 1 {
			t.Errorf("cut=%d: replayed = %d, want 1 (torn tail dropped)", cut, c2.Replayed())
		}
		if _, ok := c2.Lookup(KindTask, "b", 0); !ok {
			t.Errorf("cut=%d: intact first record lost", cut)
		}
		// The torn record can be re-appended and survives a clean reopen.
		if err := c2.Append(KindTask, "b", 1, []byte("second")); err != nil {
			t.Fatal(err)
		}
		c2.Close()
		c3 := openT(t, path, "fp")
		if c3.Replayed() != 2 {
			t.Errorf("cut=%d: after repair replayed = %d, want 2", cut, c3.Replayed())
		}
		c3.Close()
	}
}

func TestCorruptPayloadIsDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := openT(t, path, "fp")
	c.Append(KindTask, "b", 0, []byte("only"))
	c.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a payload byte; CRC now fails
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := openT(t, path, "fp")
	defer c2.Close()
	if c2.Replayed() != 0 {
		t.Errorf("replayed = %d, want 0 after payload corruption", c2.Replayed())
	}
}

func TestEachVisitsKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := openT(t, path, "fp")
	defer c.Close()
	c.Append(KindTask, "b", 0, []byte("t"))
	c.Append(KindStat, "k1", 0, []byte("s1"))
	c.Append(KindStat, "k2", 0, []byte("s2"))
	got := map[string]string{}
	c.Each(KindStat, func(key string, index int, data []byte) {
		got[key] = string(data)
	})
	if len(got) != 2 || got["k1"] != "s1" || got["k2"] != "s2" {
		t.Errorf("stats visited = %v", got)
	}
}

// TestTaskStoreResumesSchedBatch is the integration golden: a scheduler
// batch interrupted mid-run and resumed against the reopened checkpoint
// produces values identical to an uninterrupted run, re-executing only
// missing indices.
func TestTaskStoreResumesSchedBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	fn := func(i int) (int, error) { return i*i + 7, nil }
	want, err := sched.Map(context.Background(), sched.Pool{Workers: 3, Name: "golden"}, 40, fn)
	if err != nil {
		t.Fatal(err)
	}

	c := openT(t, path, "fp")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = sched.Map(ctx, sched.Pool{Workers: 1, Name: "golden", Save: c.Tasks()}, 40, func(i int) (int, error) {
		if i == 15 {
			cancel()
		}
		return fn(i)
	})
	if !errors.Is(err, sched.ErrCanceled) {
		t.Fatalf("interrupted run err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openT(t, path, "fp")
	defer c2.Close()
	if c2.Replayed() == 0 {
		t.Fatal("nothing checkpointed before cancellation")
	}
	var reexec atomic.Int32
	got, err := sched.Map(context.Background(), sched.Pool{Workers: 5, Name: "golden", Save: c2.Tasks()}, 40, func(i int) (int, error) {
		reexec.Add(1)
		return fn(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(reexec.Load()) != 40-c2.Replayed() {
		t.Errorf("re-executed %d tasks, want %d", reexec.Load(), 40-c2.Replayed())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
