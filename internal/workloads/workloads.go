// Package workloads provides the benchmark programs of the paper's
// evaluation: synthetic equivalents of the 11 SPEC CPU 2006 codes with
// non-negligible off-chip traffic plus the cigar genetic algorithm
// (Table I), and SPMD versions of four NAS / SPEC-OMP parallel codes
// (Figure 12).
//
// SPEC binaries and inputs are not redistributable and the reproduction
// substitutes programs in the isa IR whose *memory behaviour* matches what
// the paper reports for each code: the mix of regular strides, short
// strided bursts, sparse gathers and pointer chasing; working sets relative
// to the 6–8 MB LLCs; and consequently the stride-prefetch coverage each
// benchmark can achieve (Table I) and its reaction to hardware prefetching
// (Figures 4–6). Array sizes are fixed in bytes while iteration counts
// scale, so working-set:cache ratios — which determine all the shapes —
// are stable across run lengths.
package workloads

import (
	"fmt"
	"math/rand"

	"prefetchlab/internal/isa"
)

// Input selects a benchmark input set. The paper profiles on one input and
// evaluates sensitivity by running mixes with different inputs (§VII-D).
type Input struct {
	// ID is the input-set index: 0 is the reference input used for
	// profiling; 1..3 vary data sizes, access mixes and seeds.
	ID int
	// Scale multiplies iteration counts (not data sizes); 0 means 1.0.
	Scale float64
}

// Ref is the reference input.
var Ref = Input{ID: 0, Scale: 1}

// scale returns the effective iteration multiplier.
func (in Input) scale() float64 {
	if in.Scale <= 0 {
		return 1
	}
	return in.Scale
}

// seed derives a per-benchmark, per-input RNG seed.
func (in Input) seed(name string) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h ^ int64(in.ID)*-0x61c8864680b583eb // golden-ratio mix
}

// sizeMul returns the input-dependent data-size multiplier for streaming
// arenas (×16 fixed-point to stay integral).
func (in Input) sizeMul16() int64 {
	switch in.ID & 3 {
	case 1:
		return 12 // ×0.75
	case 2:
		return 20 // ×1.25
	case 3:
		return 24 // ×1.5
	default:
		return 16 // ×1.0
	}
}

// scaleBytes applies the input size multiplier to a byte count, keeping the
// result a multiple of unit.
func (in Input) scaleBytes(base uint64, unit uint64) uint64 {
	v := base * uint64(in.sizeMul16()) / 16
	if unit == 0 {
		unit = 64
	}
	v -= v % unit
	if v < unit {
		v = unit
	}
	return v
}

// iters applies the global iteration scale.
func (in Input) iters(n int64) int64 {
	v := int64(float64(n) * in.scale())
	if v < 1 {
		v = 1
	}
	return v
}

// Spec describes one benchmark.
type Spec struct {
	Name string
	// Build constructs the program for an input.
	Build func(in Input) (*isa.Program, error)
	// Desc summarizes the modelled memory behaviour.
	Desc string
}

// tableIOrder is the benchmark order of the paper's Table I.
var tableIOrder = []string{
	"gcc", "libquantum", "lbm", "mcf", "omnetpp", "soplex",
	"astar", "xalan", "leslie3d", "GemsFDTD", "milc", "cigar",
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		// lint:allow nopanic (init-time registry invariant; a duplicate is a programming error caught before main runs)
		panic("workloads: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
}

// All returns the 12 single-threaded benchmarks in Table I order.
func All() []Spec {
	out := make([]Spec, 0, len(tableIOrder))
	for _, n := range tableIOrder {
		s, ok := registry[n]
		if !ok {
			// lint:allow nopanic (tableIOrder and the registry are both static; a gap is caught by any test before shipping)
			panic("workloads: missing benchmark " + n)
		}
		out = append(out, s)
	}
	return out
}

// ByName returns one benchmark spec.
func ByName(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return s, nil
}

// Names returns the Table I benchmark names in order.
func Names() []string {
	out := make([]string, len(tableIOrder))
	copy(out, tableIOrder)
	return out
}

// rng returns a seeded RNG for deterministic data initialization.
func rng(in Input, name string) *rand.Rand {
	return rand.New(rand.NewSource(in.seed(name)))
}

// scaleEq reports whether two inputs share the same iteration scale.
func (in Input) ScaleEq(other Input) bool { return in.scale() == other.scale() }

// itersMin applies the iteration scale but never returns fewer than min —
// benchmarks whose analyses rely on cross-pass reuse keep at least two
// passes at any scale.
func (in Input) itersMin(n, min int64) int64 {
	v := in.iters(n)
	if v < min {
		v = min
	}
	return v
}
