package workloads

import (
	"math/rand"

	"prefetchlab/internal/isa"
)

// This file holds the access-pattern building blocks the benchmarks are
// composed of: pointer chases over randomized cyclic lists, LCG-driven
// gathers, and strided stream helpers.

// initChase fills a backed region with a random single-cycle permutation of
// line-sized (64 B) nodes: the first word of each node holds the byte
// address of the next node. Returns the address of the start node. A region
// too small to hold one node records an error on the builder.
func initChase(b *isa.Builder, reg *isa.Region, r *rand.Rand) uint64 {
	nodes := reg.Words() / 8 // one node per 64 B line
	if nodes == 0 {
		b.Errorf("chase region %q too small (%d words)", reg.Name, reg.Words())
		return reg.Base
	}
	perm := make([]uint64, nodes)
	for i := range perm {
		perm[i] = uint64(i)
	}
	// Sattolo's algorithm: a uniformly random single cycle, so the chase
	// visits every node before repeating.
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := uint64(0); i < nodes; i++ {
		next := reg.Base + perm[i]*64
		reg.SetWord(i*8, int64(next))
	}
	return reg.Base
}

// chase emits one pointer-chase step: ptr = mem[ptr]; the next node address
// replaces the pointer register.
func chase(b *isa.Builder, ptr isa.Reg) { b.Load(ptr, ptr, 0) }

// lcg holds the registers of an inline linear congruential generator used
// for data-independent "random" gathers.
type lcg struct {
	state isa.Reg
	tmp   isa.Reg
	addr  isa.Reg
	base  isa.Reg
}

// newLCG allocates registers and seeds the generator.
func newLCG(b *isa.Builder, seed int64) lcg {
	g := lcg{state: b.Reg(), tmp: b.Reg(), addr: b.Reg(), base: b.Reg()}
	b.MovI(g.state, seed|1)
	return g
}

// gather emits one random line-granular load from an arena of `lines`
// cache lines (must be a power of two) based at base (held in a register
// set once via setBase). The value is loaded into dst.
func (g lcg) gather(b *isa.Builder, dst isa.Reg, lines int64) {
	if lines&(lines-1) != 0 || lines <= 0 {
		b.Errorf("gather arena lines %d must be a power of two", lines)
		return
	}
	b.MulI(g.state, 6364136223846793005)
	b.AddI(g.state, 1442695040888963407)
	b.MovR(g.tmp, g.state)
	b.ShrI(g.tmp, 17)
	b.AndI(g.tmp, lines-1)
	b.MulI(g.tmp, 64)
	b.MovR(g.addr, g.base)
	b.AddR(g.addr, g.tmp)
	b.Load(dst, g.addr, 0)
}

// setBase loads the arena base address into the generator's base register.
func (g lcg) setBase(b *isa.Builder, base uint64) { b.MovI(g.base, int64(base)) }

// pickAligned emits code leaving a random `align`-aligned address within an
// arena of `blocks` aligned blocks (power of two) in g.addr.
func (g lcg) pickAligned(b *isa.Builder, blocks int64, align int64) {
	if blocks&(blocks-1) != 0 || blocks <= 0 {
		b.Errorf("block count %d must be a power of two", blocks)
		return
	}
	b.MulI(g.state, 6364136223846793005)
	b.AddI(g.state, 1442695040888963407)
	b.MovR(g.tmp, g.state)
	b.ShrI(g.tmp, 17)
	b.AndI(g.tmp, blocks-1)
	b.MulI(g.tmp, align)
	b.MovR(g.addr, g.base)
	b.AddR(g.addr, g.tmp)
}

// po2Lines rounds a byte size down to a power-of-two number of cache lines
// (at least one).
func po2Lines(bytes uint64) int64 {
	lines := int64(bytes / 64)
	p := int64(1)
	for p*2 <= lines {
		p *= 2
	}
	return p
}
