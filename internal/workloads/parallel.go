package workloads

import "prefetchlab/internal/isa"

// SPMD versions of the four parallel workloads of Figure 12: swim and cg
// (the two highest-bandwidth codes of the SPEC-OMP and NAS suites, marked *
// in the figure) plus fma3d and dc as the ordinary, compute-bound cases.
//
// Threads partition a fixed iteration space (strong scaling): thread t of n
// sweeps its contiguous chunk of the shared arrays. Builders allocate the
// same arenas in the same order, so all threads address the same data.

// ParallelSpec describes one parallel workload.
type ParallelSpec struct {
	Name string
	// HighBandwidth marks the two codes whose off-chip demand approaches
	// the channel limit at four threads (swim, cg).
	HighBandwidth bool
	// Build constructs thread tid of a threads-wide run.
	Build func(in Input, threads, tid int) (*isa.Program, error)
	Desc  string
}

// Parallel returns the Figure 12 workloads in paper order.
func Parallel() []ParallelSpec {
	return []ParallelSpec{
		{Name: "swim", HighBandwidth: true, Build: buildSwim,
			Desc: "shallow-water stencil: three leading-edge streams plus a store stream; saturates bandwidth at 4 threads"},
		{Name: "cg", HighBandwidth: true, Build: buildCG,
			Desc: "NAS conjugate gradient: strided value/index streams plus solution-vector gathers; bandwidth hungry"},
		{Name: "fma3d", HighBandwidth: false, Build: buildFMA3D,
			Desc: "crash simulation: cache-resident element sweep, compute bound"},
		{Name: "dc", HighBandwidth: false, Build: buildDC,
			Desc: "data cube: LLC-resident streaming with gathers, moderate bandwidth"},
	}
}

// ParallelByName returns one parallel workload spec.
func ParallelByName(name string) (ParallelSpec, bool) {
	for _, s := range Parallel() {
		if s.Name == name {
			return s, true
		}
	}
	return ParallelSpec{}, false
}

// chunk returns thread tid's [start, count) share of n items.
func chunk(n int64, threads, tid int) (start, count int64) {
	per := n / int64(threads)
	start = per * int64(tid)
	count = per
	if tid == threads-1 {
		count = n - start
	}
	return start, count
}

func buildSwim(in Input, threads, tid int) (*isa.Program, error) {
	b := isa.NewBuilder("swim")
	size := in.scaleBytes(8<<20, 64)
	u := b.Arena(size + 4096)
	v := b.Arena(size + 4096)
	p := b.Arena(size)

	ru, rv, rp := b.Reg(), b.Reg(), b.Reg()
	a0, a1, a2 := b.Reg(), b.Reg(), b.Reg()
	lines := int64(size / 64)
	start, count := chunk(lines, threads, tid)
	passes := in.iters(4)
	b.Loop(passes, func() {
		b.MovI(ru, int64(u)+start*64)
		b.MovI(rv, int64(v)+start*64)
		b.MovI(rp, int64(p)+start*64)
		b.Loop(count, func() {
			b.Load(a0, ru, 128)
			b.Load(a1, rv, 128)
			b.Load(a2, rp, 0)
			// The calc kernels perform ≈19 flops per grid point and one
			// iteration advances a 64-byte line of 8 points. This
			// compute/traffic ratio leaves headroom at one thread, scales
			// at two, and hits the channel limit near four (Fig. 12) —
			// with less compute the stream saturates the channel at a
			// single thread and cannot scale at all.
			b.Compute(150)
			b.Store(a0, rp, 0)
			b.AddI(ru, 64)
			b.AddI(rv, 64)
			b.AddI(rp, 64)
		})
	})
	return b.Program()
}

func buildCG(in Input, threads, tid int) (*isa.Program, error) {
	b := isa.NewBuilder("cg")
	valBytes := in.scaleBytes(8<<20, 64)
	vals := b.Arena(valBytes)
	cols := b.Arena(valBytes / 8)
	x := b.Arena(1 << 20)

	rv, rc := b.Reg(), b.Reg()
	val, col := b.Reg(), b.Reg()
	g := newLCG(b, in.seed("cg-lcg")+int64(tid))
	xv := b.Reg()

	g.setBase(b, x)
	lines := int64(valBytes / 64)
	start, count := chunk(lines, threads, tid)
	passes := in.iters(3)
	b.Loop(passes, func() {
		b.MovI(rv, int64(vals)+start*64)
		b.MovI(rc, int64(cols)+start*8)
		b.Loop(count, func() {
			b.Load(val, rv, 0)
			b.AddI(rv, 64)
			b.Load(col, rc, 0)
			b.AddI(rc, 8)
			g.gather(b, xv, po2Lines(1<<20))
			b.Compute(2)
		})
	})
	return b.Program()
}

func buildFMA3D(in Input, threads, tid int) (*isa.Program, error) {
	b := isa.NewBuilder("fma3d")
	size := in.scaleBytes(1<<20, 64)
	elems := b.Arena(size)

	re, ev := b.Reg(), b.Reg()
	lines := int64(size / 64)
	start, count := chunk(lines, threads, tid)
	passes := in.iters(40)
	b.Loop(passes, func() {
		b.MovI(re, int64(elems)+start*64)
		b.Loop(count, func() {
			b.Load(ev, re, 0)
			b.Compute(12) // element kernel: compute bound
			b.AddI(re, 64)
		})
	})
	return b.Program()
}

func buildDC(in Input, threads, tid int) (*isa.Program, error) {
	b := isa.NewBuilder("dc")
	size := in.scaleBytes(3<<20, 64)
	cube := b.Arena(size)
	dims := b.Arena(2 << 20)

	rc2, cv := b.Reg(), b.Reg()
	g := newLCG(b, in.seed("dc-lcg")+int64(tid))
	dv := b.Reg()

	g.setBase(b, dims)
	lines := int64(size / 64)
	start, count := chunk(lines, threads, tid)
	passes := in.iters(6)
	b.Loop(passes, func() {
		b.MovI(rc2, int64(cube)+start*64)
		b.Loop(count, func() {
			b.Load(cv, rc2, 0)
			b.AddI(rc2, 64)
			g.gather(b, dv, po2Lines(2<<20))
			b.Compute(3)
		})
	})
	return b.Program()
}
