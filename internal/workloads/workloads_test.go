package workloads

import (
	"testing"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/ref"
)

// tiny is a fast input for structural tests.
var tiny = Input{ID: 0, Scale: 0.05}

// build constructs a benchmark program the test knows is valid.
func build(t *testing.T, spec Spec, in Input) *isa.Program {
	t.Helper()
	p, err := spec.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// buildPar constructs one thread of a parallel workload.
func buildPar(t *testing.T, spec ParallelSpec, in Input, n, tid int) *isa.Program {
	t.Helper()
	p, err := spec.Build(in, n, tid)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := build(t, spec, tiny)
			c, err := isa.Compile(p)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var refs int64
			n := isa.Trace(c, isa.SinkFunc(func(r ref.Ref) { refs++ }))
			if n == 0 || refs != n {
				t.Fatalf("trace produced %d refs (reported %d)", refs, n)
			}
			if c.NumDemandPCs == 0 {
				t.Fatal("no demand memory instructions")
			}
			if spec.Desc == "" {
				t.Error("missing description")
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("got %d benchmarks, want 12", len(names))
	}
	want := map[string]bool{
		"gcc": true, "libquantum": true, "lbm": true, "mcf": true,
		"omnetpp": true, "soplex": true, "astar": true, "xalan": true,
		"leslie3d": true, "GemsFDTD": true, "milc": true, "cigar": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName should fail for unknown benchmarks")
	}
}

func TestDeterministicTraces(t *testing.T) {
	spec, _ := ByName("mcf")
	trace := func() []ref.Ref {
		c, err := isa.Compile(build(t, spec, tiny))
		if err != nil {
			t.Fatal(err)
		}
		var out []ref.Ref
		isa.Trace(c, isa.SinkFunc(func(r ref.Ref) { out = append(out, r) }))
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInputVariationChangesBehaviour(t *testing.T) {
	spec, _ := ByName("libquantum")
	c0, err := isa.Compile(build(t, spec, Input{ID: 0, Scale: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := isa.Compile(build(t, spec, Input{ID: 3, Scale: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	// Same static structure (same PCs) so input-0 plans apply to input 3…
	if c0.NumPCs() != c1.NumPCs() {
		t.Fatalf("input changes static shape: %d vs %d PCs", c0.NumPCs(), c1.NumPCs())
	}
	// …but different dynamic behaviour.
	n0 := isa.Trace(c0, isa.SinkFunc(func(ref.Ref) {}))
	n1 := isa.Trace(c1, isa.SinkFunc(func(ref.Ref) {}))
	if n0 == n1 {
		t.Error("different input sets should differ in reference counts")
	}
}

func TestScalePreservesStructure(t *testing.T) {
	spec, _ := ByName("lbm")
	cSmall, err := isa.Compile(build(t, spec, Input{ID: 0, Scale: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := isa.Compile(build(t, spec, Input{ID: 0, Scale: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if cSmall.NumPCs() != cBig.NumPCs() {
		t.Fatal("scale must not change the static program shape")
	}
}

func TestParallelWorkloads(t *testing.T) {
	specs := Parallel()
	if len(specs) != 4 {
		t.Fatalf("got %d parallel workloads, want 4", len(specs))
	}
	high := 0
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if spec.HighBandwidth {
				high++
			}
			// Thread partitions must be disjoint and cover the same PCs.
			c0, err := isa.Compile(buildPar(t, spec, tiny, 4, 0))
			if err != nil {
				t.Fatal(err)
			}
			c3, err := isa.Compile(buildPar(t, spec, tiny, 4, 3))
			if err != nil {
				t.Fatal(err)
			}
			if c0.NumPCs() != c3.NumPCs() {
				t.Fatal("threads differ in static shape")
			}
			n0 := isa.Trace(c0, isa.SinkFunc(func(ref.Ref) {}))
			if n0 == 0 {
				t.Fatal("thread 0 produced no references")
			}
		})
	}
	if _, ok := ParallelByName("swim"); !ok {
		t.Error("swim missing")
	}
	if _, ok := ParallelByName("nope"); ok {
		t.Error("unknown parallel workload found")
	}
}

func TestChunk(t *testing.T) {
	var total int64
	for tid := 0; tid < 4; tid++ {
		start, count := chunk(103, 4, tid)
		if tid > 0 {
			prevStart, prevCount := chunk(103, 4, tid-1)
			if start != prevStart+prevCount {
				t.Fatalf("chunks not contiguous at tid %d", tid)
			}
		}
		total += count
	}
	if total != 103 {
		t.Fatalf("chunks cover %d of 103", total)
	}
}

func TestInputHelpers(t *testing.T) {
	in := Input{ID: 2, Scale: 0.5}
	if in.scale() != 0.5 {
		t.Error("scale")
	}
	if (Input{}).scale() != 1 {
		t.Error("zero scale should default to 1")
	}
	if in.iters(100) != 50 {
		t.Errorf("iters = %d", in.iters(100))
	}
	if in.itersMin(2, 2) != 2 {
		t.Errorf("itersMin floor broken")
	}
	if got := in.scaleBytes(1000, 64); got%64 != 0 || got == 0 {
		t.Errorf("scaleBytes = %d", got)
	}
	if (Input{ID: 0}).seed("x") == (Input{ID: 1}).seed("x") {
		t.Error("seeds must differ across inputs")
	}
	if !in.ScaleEq(Input{ID: 9, Scale: 0.5}) {
		t.Error("ScaleEq")
	}
}
